#!/usr/bin/env python3
"""Query-journal schema gate: validates a JSONL journal produced with
--query-log=PATH (run from anywhere; CI runs it on the bench journal).

Checks, per line:

 1. The line parses as a single JSON object.
 2. Every required key is present with the right type (see SCHEMA),
    including the nested phases_us / cpu / io objects.
 3. status is one of the termination statuses the engine emits.
 4. est_rows is a non-negative integer or null (null = the planner
    produced no estimate for this plan shape).

And across the file:

 5. ids are strictly increasing within a session (gaps are fine --
    sampling skips ids on purpose, so monotonicity is the invariant,
    not density). A restart back to id 1 marks a new session appending
    to the same file and resets the check.

With --generations, rotated files PATH.N (oldest) .. PATH.1 (newest)
are validated too, read oldest-first ahead of the live PATH, and:

 6. the generation numbering is contiguous (PATH.3 existing without
    PATH.2 means a rotation lost a file), and
 7. ids keep the same monotonic-per-session discipline ACROSS the
    generation boundaries -- rotation must never reorder, duplicate,
    or drop records inside the kept window.

Usage: journal_check.py PATH [--min-records=N] [--generations]

--min-records fails the run when fewer than N records validated; the CI
bench job uses it to catch a journal that silently stopped writing.

Exit code 0 = clean, 1 = findings (each printed as path:line message).
"""

import json
import os
import re
import sys

STATUSES = {
    "OK",
    "CANCELLED",
    "DEADLINE_EXCEEDED",
    "RESOURCE_EXHAUSTED",
    "FAILED",
}

PHASES = ("plan", "filter", "sort", "window", "join", "emit")

# key -> (type check, description)
SCHEMA = {
    "id": (lambda v: isinstance(v, int) and v >= 1, "integer >= 1"),
    "query_id": (lambda v: isinstance(v, int) and v >= 0, "integer >= 0"),
    "sql": (lambda v: isinstance(v, str), "string"),
    "fingerprint": (lambda v: isinstance(v, str), "string"),
    "type": (lambda v: isinstance(v, str), "string"),
    "engine": (
        lambda v: v in ("unnested", "naive-fallback"),
        "unnested | naive-fallback",
    ),
    "status": (lambda v: v in STATUSES, " | ".join(sorted(STATUSES))),
    "rows": (lambda v: isinstance(v, int) and v >= 0, "integer >= 0"),
    "est_rows": (
        lambda v: v is None or (isinstance(v, int) and v >= 0),
        "integer >= 0 or null",
    ),
    "elapsed_ms": (
        lambda v: isinstance(v, (int, float)) and v >= 0,
        "number >= 0",
    ),
    "queue_wait_ms": (
        lambda v: isinstance(v, (int, float)) and v >= 0,
        "number >= 0",
    ),
    "threads": (lambda v: isinstance(v, int) and v >= 1, "integer >= 1"),
    "phases_us": (lambda v: isinstance(v, dict), "object"),
    "cpu": (lambda v: isinstance(v, dict), "object"),
    "io": (lambda v: isinstance(v, dict), "object"),
    "mem_peak_bytes": (
        lambda v: isinstance(v, int) and v >= 0,
        "integer >= 0",
    ),
    "cache_hits": (lambda v: isinstance(v, int) and v >= 0, "integer >= 0"),
    "cache_misses": (lambda v: isinstance(v, int) and v >= 0, "integer >= 0"),
}

CPU_KEYS = ("pairs", "degrees", "cmp", "subq")
IO_KEYS = ("page_reads", "page_writes", "buffer_hits")


def check_counts(record, key, subkeys, where, findings):
    obj = record.get(key)
    if not isinstance(obj, dict):
        return
    for sub in subkeys:
        value = obj.get(sub)
        if not isinstance(value, int) or value < 0:
            findings.append(
                f"{where}: {key}.{sub} must be a non-negative integer, "
                f"got {value!r}"
            )
    for sub in obj:
        if sub not in subkeys:
            findings.append(f"{where}: unexpected key {key}.{sub}")


def generation_chain(path):
    """Rotated generations of `path`, oldest first, then `path` itself.

    Returns (chain, findings): findings report holes in the numbering
    (PATH.3 without PATH.2 means a rotation lost a file).
    """
    suffix_re = re.compile(r"\.(\d+)$")
    generations = []
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        if not name.startswith(base + "."):
            continue
        match = suffix_re.search(name[len(base):])
        if match and name == base + "." + match.group(1):
            generations.append(int(match.group(1)))
    generations.sort()
    findings = []
    if generations:
        present = set(generations)
        for missing in range(1, generations[-1]):
            if missing not in present:
                findings.append(
                    f"{path}: generation hole -- {path}.{missing} is "
                    f"missing but {path}.{generations[-1]} exists"
                )
    chain = [f"{path}.{gen}" for gen in reversed(generations)]
    chain.append(path)
    return chain, findings


def check_file(path, min_records, prev_id=0):
    findings = []
    records = 0
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as error:
        return [f"{path}: {error}"], 0, prev_id
    for number, line in enumerate(lines, start=1):
        where = f"{path}:{number}"
        if not line.strip():
            findings.append(f"{where}: blank line in JSONL stream")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            findings.append(f"{where}: not valid JSON ({error})")
            continue
        if not isinstance(record, dict):
            findings.append(f"{where}: line is not a JSON object")
            continue
        records += 1
        for key, (check, expected) in SCHEMA.items():
            if key not in record:
                findings.append(f"{where}: missing key {key}")
            elif not check(record[key]):
                findings.append(
                    f"{where}: {key} must be {expected}, "
                    f"got {record[key]!r}"
                )
        for key in record:
            if key not in SCHEMA:
                findings.append(f"{where}: unexpected key {key}")
        check_counts(record, "phases_us", PHASES, where, findings)
        check_counts(record, "cpu", CPU_KEYS, where, findings)
        check_counts(record, "io", IO_KEYS, where, findings)
        record_id = record.get("id")
        if isinstance(record_id, int):
            if record_id <= prev_id and record_id != 1:
                findings.append(
                    f"{where}: id {record_id} not greater than "
                    f"previous id {prev_id} (and not a session restart)"
                )
            prev_id = record_id
    if records < min_records:
        findings.append(
            f"{path}: {records} record(s) validated, expected at least "
            f"{min_records}"
        )
    return findings, records, prev_id


def main(argv):
    min_records = 0
    generations = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--min-records="):
            min_records = int(arg.split("=", 1)[1])
        elif arg == "--generations":
            generations = True
        elif arg.startswith("--"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: journal_check.py PATH [--min-records=N]"
              " [--generations]",
              file=sys.stderr)
        return 2

    all_findings = []
    total = 0
    for path in paths:
        if generations:
            # Validate the whole rotation chain oldest-first, threading
            # the id cursor through so continuity holds ACROSS the
            # generation boundaries; --min-records applies to the chain
            # as a whole, not to each generation.
            chain, findings = generation_chain(path)
            all_findings.extend(findings)
            prev_id = 0
            chain_records = 0
            for file in chain:
                findings, records, prev_id = check_file(file, 0, prev_id)
                all_findings.extend(findings)
                chain_records += records
            if chain_records < min_records:
                all_findings.append(
                    f"{path}: {chain_records} record(s) validated across "
                    f"{len(chain)} generation(s), expected at least "
                    f"{min_records}"
                )
            total += chain_records
        else:
            findings, records, _ = check_file(path, min_records)
            all_findings.extend(findings)
            total += records
    if all_findings:
        for finding in all_findings:
            print(finding)
        print(f"journal_check: {len(all_findings)} finding(s)")
        return 1
    print(f"journal_check: OK ({total} record(s) validated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
