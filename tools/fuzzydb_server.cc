// The FuzzyDB multi-session server (docs/operations.md, "Server mode").
//
//   fuzzydb_server [--port=N]            listen port (0 = ephemeral)
//   fuzzydb_server --workers=N           query worker threads (default 2)
//   fuzzydb_server --queue-depth=N       pending-request bound beyond the
//                                        workers (default 16); overflow
//                                        is shed RESOURCE_EXHAUSTED
//   fuzzydb_server --memory-budget=N[kmg] process query-memory budget,
//                                        split fair-share across workers
//   fuzzydb_server --timeout-ms=N        default per-query deadline
//   fuzzydb_server --slow-query-ms=N     default slow-query threshold
//   fuzzydb_server --batch-size=N        default batch lanes per session
//   fuzzydb_server --threads=N           default engine threads/session
//   fuzzydb_server --no-cache            sessions start with cache off
//   fuzzydb_server --cache-mb=N          cross-query cache capacity
//   fuzzydb_server --query-log=PATH      structured query journal
//   fuzzydb_server --query-log-sample=N  journal every Nth query
//   fuzzydb_server --query-log-keep=N    rotated generations to keep
//   fuzzydb_server --metrics-json=PATH   dump metrics JSON on exit
//   fuzzydb_server --wal-dir=DIR         durable shared database: recover
//                                        DIR on start, log every mutation,
//                                        all sessions share the catalog
//   fuzzydb_server --wal-fsync=MODE      always (default) | batch | off
//
// Prints "listening on 127.0.0.1:<port>" once ready (stress harnesses
// parse the port). SIGINT initiates a graceful stop: every in-flight
// query is cancelled through the registry (each client sees a
// well-formed CANCELLED frame), the admission queue drains, and the
// process exits 0. A second SIGINT exits immediately.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "cache/cache_manager.h"
#include "obs/metrics.h"
#include "obs/query_journal.h"
#include "server/server.h"
#include "shell/shell.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

// First SIGINT: cancel every in-flight query (async-signal-safe: one
// atomic load + one atomic add) and flag the main loop to stop
// gracefully. Second SIGINT: give up waiting and die.
extern "C" void HandleInterrupt(int) {
  if (g_stop_requested != 0) _exit(130);
  g_stop_requested = 1;
  (void)fuzzydb::Shell::CancelActiveQuery();
}

bool ParseByteSize(const std::string& text, uint64_t* bytes) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str()) return false;
  uint64_t multiplier = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': multiplier = 1ull << 10; break;
      case 'm': case 'M': multiplier = 1ull << 20; break;
      case 'g': case 'G': multiplier = 1ull << 30; break;
      default: return false;
    }
    if (*(end + 1) != '\0') return false;
  }
  *bytes = static_cast<uint64_t>(v) * multiplier;
  return true;
}

bool ParseUint(const std::string& text, uint64_t* value) {
  char* end = nullptr;
  errno = 0;
  *value = std::strtoull(text.c_str(), &end, 10);
  return errno == 0 && end == text.c_str() + text.size() && !text.empty();
}

bool ParseNonNegativeDouble(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty() && *value >= 0;
}

int Usage() {
  std::cerr
      << "usage: fuzzydb_server [--port=N] [--workers=N] "
         "[--queue-depth=N]\n"
         "    [--memory-budget=N[k|m|g]] [--timeout-ms=N] "
         "[--slow-query-ms=N]\n"
         "    [--batch-size=N] [--threads=N] [--no-cache] [--cache-mb=N]\n"
         "    [--query-log=PATH] [--query-log-sample=N] "
         "[--query-log-keep=N]\n"
         "    [--metrics-json=PATH] [--wal-dir=DIR]\n"
         "    [--wal-fsync=always|batch|off]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fuzzydb::server::ServerConfig config;
  std::string metrics_json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const std::string& flag) {
      return arg.substr(flag.size());
    };
    uint64_t number = 0;
    double ms = 0;
    if (arg.rfind("--port=", 0) == 0) {
      if (!ParseUint(value_of("--port="), &number) || number > 65535) {
        return Usage();
      }
      config.port = static_cast<int>(number);
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!ParseUint(value_of("--workers="), &number) || number == 0) {
        return Usage();
      }
      config.workers = static_cast<size_t>(number);
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      if (!ParseUint(value_of("--queue-depth="), &number)) return Usage();
      config.queue_depth = static_cast<size_t>(number);
    } else if (arg.rfind("--memory-budget=", 0) == 0) {
      if (!ParseByteSize(value_of("--memory-budget="), &number)) {
        return Usage();
      }
      config.memory_budget_total = number;
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      if (!ParseNonNegativeDouble(value_of("--timeout-ms="), &ms)) {
        return Usage();
      }
      config.session_defaults.timeout_ms = ms;
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      if (!ParseNonNegativeDouble(value_of("--slow-query-ms="), &ms)) {
        return Usage();
      }
      config.session_defaults.slow_query_ms = ms;
    } else if (arg.rfind("--batch-size=", 0) == 0) {
      if (!ParseUint(value_of("--batch-size="), &number)) return Usage();
      config.session_defaults.batch_size = static_cast<size_t>(number);
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!ParseUint(value_of("--threads="), &number)) return Usage();
      config.session_defaults.threads = static_cast<size_t>(number);
    } else if (arg == "--no-cache") {
      config.session_defaults.cache = false;
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      if (!ParseUint(value_of("--cache-mb="), &number)) return Usage();
      fuzzydb::CacheManager::Global().set_capacity_bytes(number << 20);
    } else if (arg.rfind("--query-log=", 0) == 0) {
      const fuzzydb::Status status =
          fuzzydb::QueryJournal::Global().SetPath(value_of("--query-log="));
      if (!status.ok()) {
        std::cerr << status.ToString() << "\n";
        return 2;
      }
    } else if (arg.rfind("--query-log-sample=", 0) == 0) {
      if (!ParseUint(value_of("--query-log-sample="), &number)) {
        return Usage();
      }
      fuzzydb::QueryJournal::Global().set_sample_every(number);
    } else if (arg.rfind("--query-log-keep=", 0) == 0) {
      if (!ParseUint(value_of("--query-log-keep="), &number)) {
        return Usage();
      }
      fuzzydb::QueryJournal::Global().set_keep_files(number);
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json_path = value_of("--metrics-json=");
    } else if (arg.rfind("--wal-dir=", 0) == 0) {
      config.wal_dir = value_of("--wal-dir=");
      if (config.wal_dir.empty()) return Usage();
    } else if (arg.rfind("--wal-fsync=", 0) == 0) {
      auto mode = fuzzydb::wal::ParseFsyncMode(value_of("--wal-fsync="));
      if (!mode.ok()) {
        std::cerr << mode.status().ToString() << "\n";
        return 2;
      }
      config.wal_options.fsync = *mode;
    } else {
      return Usage();
    }
  }

  fuzzydb::server::Server server(config);
  const fuzzydb::Status status = server.Start();
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::signal(SIGINT, HandleInterrupt);
  std::signal(SIGTERM, HandleInterrupt);
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "shutting down" << std::endl;
  server.Stop();

  if (!metrics_json_path.empty()) {
    const std::string dump = fuzzydb::MetricsRegistry::Global().ToJson();
    if (metrics_json_path == "-") {
      std::cout << dump;
    } else {
      std::ofstream file(metrics_json_path);
      if (!file) {
        std::cerr << "cannot write " << metrics_json_path << "\n";
        return 1;
      }
      file << dump;
    }
  }
  return 0;
}
