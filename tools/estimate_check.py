#!/usr/bin/env python3
"""Gate the cost-based planner's cardinality estimates with q-error.

Usage:
  tools/estimate_check.py [--shell PATH] [--warn-only]
                          [--median-max 2.0] [--qmax-max 16.0]
                          [--json-out PATH]

Runs a seeded workload of generated relations (the shell's `.gen`
command) under EXPLAIN ANALYZE with --explain-json, collects every
operator span that carries both an estimate (est_rows) and an actual
cardinality (rows_out), and computes the per-span q-error

    q = max(est, act) / min(est, act)     (both floored at 1; 1.0 = perfect)

The gate fails when the median q-error exceeds --median-max (default
2.0) or any single estimate is off by more than --qmax-max (default
16x). Every violation prints one line; --warn-only reports but exits 0
(the pull-request mode, like tools/bench_check.py).

The workload mixes the paper's type J experimental query at several
fan-outs with 3- and 4-level chain queries over random relations, so
both the filter/link estimators (stats/column_stats) and the chain
interval estimates (engine/join_order) are exercised.
"""

import argparse
import json
import subprocess
import sys

# Each entry: (name, setup dot-commands, EXPLAIN ANALYZE statement).
# Seeds are fixed so the gate is deterministic; changing the workload
# deliberately is fine, silently weakening it is not -- the sentinel
# check below requires a minimum number of estimated spans.
WORKLOAD = [
    (
        "typej_c6",
        [".gen typej 7 200 300 6"],
        "EXPLAIN ANALYZE SELECT R.X FROM R WHERE R.Y IN "
        "(SELECT S.Z FROM S WHERE S.V = R.U);",
    ),
    (
        "typej_c12",
        [".gen typej 11 150 240 12"],
        "EXPLAIN ANALYZE SELECT R.X FROM R WHERE R.Y IN "
        "(SELECT S.Z FROM S WHERE S.V = R.U);",
    ),
    (
        "typej_c3_sparse",
        [".gen typej 23 300 120 3"],
        "EXPLAIN ANALYZE SELECT R.X FROM R WHERE R.Y IN "
        "(SELECT S.Z FROM S WHERE S.V = R.U);",
    ),
    (
        "chain_k3",
        [
            ".gen rand A 71 3 60",
            ".gen rand B2 72 2 12",
            ".gen rand C3 73 2 60",
        ],
        "EXPLAIN ANALYZE SELECT A.C0 FROM A WHERE A.C1 IN "
        "(SELECT B2.C0 FROM B2 WHERE B2.C1 = A.C2 AND B2.C0 IN "
        "(SELECT C3.C0 FROM C3 WHERE C3.C1 = B2.C1));",
    ),
    (
        "chain_k4",
        [
            ".gen rand A 81 3 40",
            ".gen rand B2 82 2 10",
            ".gen rand C3 83 2 40",
            ".gen rand D4 84 2 10",
        ],
        "EXPLAIN ANALYZE SELECT A.C0 FROM A WHERE A.C1 IN "
        "(SELECT B2.C0 FROM B2 WHERE B2.C1 = A.C2 AND B2.C0 IN "
        "(SELECT C3.C0 FROM C3 WHERE C3.C1 = B2.C1 AND C3.C0 IN "
        "(SELECT D4.C0 FROM D4 WHERE D4.C1 = C3.C1)));",
    ),
]

# A run that yields fewer estimated spans than this has lost coverage
# (estimates silently disabled, markers unparsed, ...) and fails even if
# the q-errors of the spans that remain look fine.
MIN_SPANS = 10

BEGIN_MARKER = "-- trace json begin"
END_MARKER = "-- trace json end"


def run_query(shell, setup, query):
    """Runs one workload entry; returns the parsed span list."""
    script = "\n".join(setup + [query]) + "\n"
    proc = subprocess.run(
        [shell, "--quiet", "--explain-json", "-c", script],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"shell exited {proc.returncode}: {proc.stderr.strip()}"
        )
    out = proc.stdout
    begin = out.find(BEGIN_MARKER)
    end = out.find(END_MARKER)
    if begin < 0 or end < 0 or end <= begin:
        raise RuntimeError("trace JSON markers not found in shell output")
    payload = out[begin + len(BEGIN_MARKER):end].strip()
    return json.loads(payload)


def q_error(est, act):
    est = max(float(est), 1.0)
    act = max(float(act), 1.0)
    return max(est / act, act / est)


def collect(spans):
    """(op, est, act, q) for every span carrying both cardinalities."""
    rows = []
    for span in spans:
        est = span.get("est_rows")
        act = span.get("rows_out")
        if est is None or act is None:
            continue
        rows.append((span.get("op", "?"), est, act, q_error(est, act)))
    return rows


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def main():
    parser = argparse.ArgumentParser(
        description="Gate planner estimate accuracy by per-span q-error."
    )
    parser.add_argument("--shell", default="build/tools/fuzzydb_shell",
                        help="path to the fuzzydb_shell binary")
    parser.add_argument("--median-max", type=float, default=2.0,
                        help="fail when the median q-error exceeds this")
    parser.add_argument("--qmax-max", type=float, default=16.0,
                        help="fail when any span's q-error exceeds this")
    parser.add_argument("--warn-only", action="store_true",
                        help="report violations but exit 0 (PR mode)")
    parser.add_argument("--json-out", default="",
                        help="also write the per-span table as JSON")
    args = parser.parse_args()

    all_rows = []
    problems = []
    for name, setup, query in WORKLOAD:
        try:
            spans = run_query(args.shell, setup, query)
        except (RuntimeError, json.JSONDecodeError) as error:
            problems.append(f"{name}: {error}")
            continue
        rows = collect(spans)
        if not rows:
            problems.append(f"{name}: no spans carried estimates")
            continue
        worst = max(q for _, _, _, q in rows)
        print(f"estimate_check: {name}: {len(rows)} estimated spans, "
              f"worst q-error {worst:.2f}")
        for op, est, act, q in rows:
            all_rows.append(
                {"query": name, "op": op, "est": est, "act": act, "q": q}
            )
            if q > args.qmax_max:
                problems.append(
                    f"{name}: {op} estimate {est} vs actual {act} "
                    f"(q-error {q:.2f} > {args.qmax_max:g}x cap)"
                )

    if len(all_rows) < MIN_SPANS:
        problems.append(
            f"only {len(all_rows)} estimated spans collected "
            f"(expected >= {MIN_SPANS}); estimate coverage has shrunk"
        )
    if all_rows:
        med = median([row["q"] for row in all_rows])
        print(f"estimate_check: {len(all_rows)} spans total, median "
              f"q-error {med:.2f} (gate {args.median_max:g})")
        if med > args.median_max:
            problems.append(
                f"median q-error {med:.2f} > {args.median_max:g}"
            )

    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump({"spans": all_rows}, f, indent=1)
            f.write("\n")

    if not problems:
        print("estimate_check: PASS")
        return 0
    for problem in problems:
        print(f"estimate_check: {problem}")
    if args.warn_only:
        print("estimate_check: violations found (warn-only mode, exiting 0)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
