// The FuzzyDB interactive shell.
//
//   fuzzydb_shell                        interactive session
//   fuzzydb_shell < script.sql           batch execution
//   fuzzydb_shell --trace-json=PATH      EXPLAIN ANALYZE also dumps a
//                                        Chrome trace_event JSON to PATH
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "shell/shell.h"

int main(int argc, char** argv) {
  fuzzydb::Shell shell;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string kTraceFlag = "--trace-json=";
    if (arg.rfind(kTraceFlag, 0) == 0) {
      shell.set_trace_json_path(arg.substr(kTraceFlag.size()));
    } else {
      std::cerr << "usage: fuzzydb_shell [--trace-json=PATH]\n";
      return 2;
    }
  }
  const bool interactive = isatty(STDIN_FILENO) != 0;
  shell.Run(std::cin, std::cout, interactive);
  return 0;
}
