// The FuzzyDB interactive shell.
//
//   fuzzydb_shell              interactive session
//   fuzzydb_shell < script.sql batch execution
#include <iostream>

#include <unistd.h>

#include "shell/shell.h"

int main() {
  fuzzydb::Shell shell;
  const bool interactive = isatty(STDIN_FILENO) != 0;
  shell.Run(std::cin, std::cout, interactive);
  return 0;
}
