// The FuzzyDB interactive shell.
//
//   fuzzydb_shell                        interactive session
//   fuzzydb_shell < script.sql           batch execution
//   fuzzydb_shell -c "STMT; ..."         run statements, then exit
//   fuzzydb_shell --quiet                no banner/prompts (scripting)
//   fuzzydb_shell --trace-json=PATH      EXPLAIN ANALYZE also dumps a
//                                        Chrome trace_event JSON to PATH
//   fuzzydb_shell --metrics-json=PATH    dump the metrics registry as
//                                        JSON on exit ("-" = stdout)
//   fuzzydb_shell --metrics-prom=PATH    same, Prometheus text format
//   fuzzydb_shell --slow-query-ms=N      log queries >= N ms (.slowlog)
//   fuzzydb_shell --timeout-ms=N         per-query deadline (0 = none)
//   fuzzydb_shell --memory-budget=N[kmg] per-query memory budget
//   fuzzydb_shell --cache-mb=N           cross-query cache capacity in
//                                        MiB (0 = off, the default)
//   fuzzydb_shell --query-log=PATH       append one JSONL record per
//                                        query to PATH (the structured
//                                        query journal)
//   fuzzydb_shell --query-log-sample=N   journal every Nth query
//                                        (1 = all, the default)
//   fuzzydb_shell --query-log-keep=N     rotated journal generations to
//                                        keep as PATH.1..PATH.N
//                                        (default 3)
//   fuzzydb_shell --no-cbo               disable cost-based planning
//                                        (legacy fixed-rule plans;
//                                        answers are bit-identical)
//   fuzzydb_shell --wal-dir=DIR          write-ahead durability: recover
//                                        the database in DIR, log every
//                                        mutation (docs/durability.md)
//   fuzzydb_shell --wal-fsync=MODE       always (default) | batch | off
//   fuzzydb_shell --explain-json         EXPLAIN ANALYZE also prints the
//                                        per-operator JSON summary
//                                        between marker lines
//
// With -c, the exit code is non-zero when any statement failed. Ctrl-C
// during an interactive query cancels that query (CANCELLED) instead of
// killing the shell; a second Ctrl-C while idle exits.
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "cache/cache_manager.h"
#include "obs/metrics.h"
#include "obs/query_journal.h"
#include "shell/shell.h"

namespace {

// Writes `text` to `path`, with "-" meaning stdout. Returns false (after
// printing to stderr) when the file cannot be opened.
bool WriteDump(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream file(path);
  if (!file) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  file << text;
  return true;
}

// Parses a byte size with an optional k/m/g suffix ("64m" = 64 MiB).
// Returns false on malformed input.
bool ParseByteSize(const std::string& text, uint64_t* bytes) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str()) return false;
  uint64_t multiplier = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': multiplier = 1ull << 10; break;
      case 'm': case 'M': multiplier = 1ull << 20; break;
      case 'g': case 'G': multiplier = 1ull << 30; break;
      default: return false;
    }
    if (*(end + 1) != '\0') return false;
  }
  *bytes = static_cast<uint64_t>(v) * multiplier;
  return true;
}

// SIGINT cancels the in-flight query cooperatively; when no query is
// running, fall back to the default disposition (terminate) so Ctrl-C
// at the prompt still exits.
extern "C" void HandleInterrupt(int) {
  if (!fuzzydb::Shell::CancelActiveQuery()) {
    std::signal(SIGINT, SIG_DFL);
    std::raise(SIGINT);
  }
}

}  // namespace

int main(int argc, char** argv) {
  fuzzydb::Shell shell;
  std::string command;
  bool have_command = false;
  bool quiet = false;
  std::string metrics_json_path;
  std::string metrics_prom_path;
  std::string wal_dir;
  fuzzydb::wal::WalOptions wal_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string kTraceFlag = "--trace-json=";
    const std::string kWalDirFlag = "--wal-dir=";
    const std::string kWalFsyncFlag = "--wal-fsync=";
    const std::string kMetricsJsonFlag = "--metrics-json=";
    const std::string kMetricsPromFlag = "--metrics-prom=";
    const std::string kSlowFlag = "--slow-query-ms=";
    const std::string kTimeoutFlag = "--timeout-ms=";
    const std::string kBudgetFlag = "--memory-budget=";
    const std::string kCacheFlag = "--cache-mb=";
    const std::string kBatchFlag = "--batch-size=";
    const std::string kQueryLogFlag = "--query-log=";
    const std::string kQueryLogSampleFlag = "--query-log-sample=";
    const std::string kQueryLogKeepFlag = "--query-log-keep=";
    if (arg.rfind(kTraceFlag, 0) == 0) {
      shell.set_trace_json_path(arg.substr(kTraceFlag.size()));
    } else if (arg.rfind(kWalDirFlag, 0) == 0) {
      wal_dir = arg.substr(kWalDirFlag.size());
      if (wal_dir.empty()) {
        std::cerr << "--wal-dir requires a directory\n";
        return 2;
      }
    } else if (arg.rfind(kWalFsyncFlag, 0) == 0) {
      auto mode =
          fuzzydb::wal::ParseFsyncMode(arg.substr(kWalFsyncFlag.size()));
      if (!mode.ok()) {
        std::cerr << mode.status().ToString() << "\n";
        return 2;
      }
      wal_options.fsync = *mode;
    } else if (arg.rfind(kMetricsJsonFlag, 0) == 0) {
      metrics_json_path = arg.substr(kMetricsJsonFlag.size());
    } else if (arg.rfind(kMetricsPromFlag, 0) == 0) {
      metrics_prom_path = arg.substr(kMetricsPromFlag.size());
    } else if (arg.rfind(kSlowFlag, 0) == 0) {
      shell.set_slow_query_ms(std::atof(arg.c_str() + kSlowFlag.size()));
    } else if (arg.rfind(kTimeoutFlag, 0) == 0) {
      shell.set_timeout_ms(std::atof(arg.c_str() + kTimeoutFlag.size()));
    } else if (arg.rfind(kBudgetFlag, 0) == 0) {
      uint64_t bytes = 0;
      if (!ParseByteSize(arg.substr(kBudgetFlag.size()), &bytes)) {
        std::cerr << "bad --memory-budget value (want N[k|m|g]): " << arg
                  << "\n";
        return 2;
      }
      shell.set_memory_budget(bytes);
    } else if (arg.rfind(kCacheFlag, 0) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long mb =
          std::strtoull(arg.c_str() + kCacheFlag.size(), &end, 10);
      if (errno != 0 || end == arg.c_str() + kCacheFlag.size() ||
          *end != '\0') {
        std::cerr << "bad --cache-mb value (want a number of MiB): " << arg
                  << "\n";
        return 2;
      }
      fuzzydb::CacheManager::Global().set_capacity_bytes(
          static_cast<uint64_t>(mb) << 20);
    } else if (arg.rfind(kBatchFlag, 0) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long lanes =
          std::strtoull(arg.c_str() + kBatchFlag.size(), &end, 10);
      if (errno != 0 || end == arg.c_str() + kBatchFlag.size() ||
          *end != '\0') {
        std::cerr << "bad --batch-size value (want a lane count, 0 = scalar): "
                  << arg << "\n";
        return 2;
      }
      shell.set_batch_size(static_cast<size_t>(lanes));
    } else if (arg.rfind(kQueryLogFlag, 0) == 0) {
      const fuzzydb::Status status = fuzzydb::QueryJournal::Global().SetPath(
          arg.substr(kQueryLogFlag.size()));
      if (!status.ok()) {
        std::cerr << status.ToString() << "\n";
        return 2;
      }
    } else if (arg.rfind(kQueryLogSampleFlag, 0) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long every = std::strtoull(
          arg.c_str() + kQueryLogSampleFlag.size(), &end, 10);
      if (errno != 0 || end == arg.c_str() + kQueryLogSampleFlag.size() ||
          *end != '\0') {
        std::cerr << "bad --query-log-sample value (want N >= 1): " << arg
                  << "\n";
        return 2;
      }
      fuzzydb::QueryJournal::Global().set_sample_every(
          static_cast<uint64_t>(every));
    } else if (arg.rfind(kQueryLogKeepFlag, 0) == 0) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long keep = std::strtoull(
          arg.c_str() + kQueryLogKeepFlag.size(), &end, 10);
      if (errno != 0 || end == arg.c_str() + kQueryLogKeepFlag.size() ||
          *end != '\0') {
        std::cerr << "bad --query-log-keep value (want N >= 0): " << arg
                  << "\n";
        return 2;
      }
      fuzzydb::QueryJournal::Global().set_keep_files(
          static_cast<uint64_t>(keep));
    } else if (arg == "--no-cbo") {
      shell.set_cost_based(false);
    } else if (arg == "--explain-json") {
      shell.set_explain_json(true);
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "-c") {
      if (i + 1 >= argc) {
        std::cerr << "-c requires an argument\n";
        return 2;
      }
      command = argv[++i];
      have_command = true;
    } else {
      std::cerr << "usage: fuzzydb_shell [-c \"STMT;\"] [--quiet]\n"
                   "    [--trace-json=PATH] [--metrics-json=PATH|-]\n"
                   "    [--metrics-prom=PATH|-] [--slow-query-ms=N]\n"
                   "    [--timeout-ms=N] [--memory-budget=N[k|m|g]]\n"
                   "    [--cache-mb=N] [--batch-size=N] [--no-cbo]\n"
                   "    [--query-log=PATH] [--query-log-sample=N]\n"
                   "    [--query-log-keep=N] [--explain-json]\n"
                   "    [--wal-dir=DIR] [--wal-fsync=always|batch|off]\n";
      return 2;
    }
  }
  shell.set_quiet(quiet);
  if (!wal_dir.empty()) {
    const fuzzydb::Status status =
        shell.EnableWal(wal_dir, wal_options, std::cout);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 2;
    }
  }
  std::signal(SIGINT, HandleInterrupt);

  if (have_command) {
    // Statements passed with -c run as a non-interactive session; a
    // missing final ';' is forgiven.
    if (command.find(';') == std::string::npos) command += ';';
    std::istringstream in(command);
    shell.Run(in, std::cout, /*interactive=*/false);
  } else {
    const bool interactive = isatty(STDIN_FILENO) != 0;
    shell.Run(std::cin, std::cout, interactive);
  }

  int exit_code = 0;
  // -c is the scripting interface: surface statement failures in the
  // exit code. Interactive/batch sessions keep exit 0 so a session that
  // recovered from an error doesn't look failed.
  if (have_command && shell.had_error()) exit_code = 1;
  if (!metrics_json_path.empty() &&
      !WriteDump(metrics_json_path,
                 fuzzydb::MetricsRegistry::Global().ToJson() + "\n")) {
    exit_code = 1;
  }
  if (!metrics_prom_path.empty() &&
      !WriteDump(metrics_prom_path,
                 fuzzydb::MetricsRegistry::Global().ToPrometheusText())) {
    exit_code = 1;
  }
  return exit_code;
}
