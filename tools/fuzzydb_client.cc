// Line-protocol client for the FuzzyDB server (docs/operations.md).
//
//   fuzzydb_client --port=N               connect to 127.0.0.1:N
//   fuzzydb_client --port=N -c "stmts"    run statements and exit
//   fuzzydb_client --port=N --raw         print raw JSON frames
//   fuzzydb_client --port=N < script.sql  pipe a script
//
// Each input line is sent as one request; the client blocks for the
// matching reply frame (the protocol pairs them one-to-one) and renders
// the frame's text output -- so a transcript looks like the serial
// shell's. With --raw the JSON frame itself is printed instead, which
// is what the stress/CI harnesses diff. Exits nonzero when any frame
// carried a non-OK status or the server spoke malformed frames.
//
// With -c, statements are split on ';' boundaries and newlines so
// `-c "CREATE ...; SELECT ...;"` works like two script lines.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/wire.h"

namespace {

int Usage() {
  std::cerr << "usage: fuzzydb_client --port=N [--host=ADDR] [--raw] "
               "[-c \"statements\"]\n";
  return 2;
}

bool SendAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return false;
    written += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one reply line (the server speaks JSONL). Returns false on EOF
/// or error before a full line arrived.
bool ReadLine(int fd, std::string* buffer, std::string* line) {
  while (true) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// Splits -c text into one statement per line: ';' ends a statement
/// (kept), and literal newlines also separate them.
std::vector<std::string> SplitStatements(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      if (!current.empty()) lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
      if (c == ';') {
        lines.push_back(current);
        current.clear();
      }
    }
  }
  if (current.find_first_not_of(" \t") != std::string::npos) {
    lines.push_back(current);
  }
  return lines;
}

void RenderFrame(const fuzzydb::server::ReplyFrame& frame, bool raw,
                 const std::string& raw_line) {
  if (raw) {
    std::cout << raw_line << "\n";
    return;
  }
  if (!frame.text.empty()) std::cout << frame.text;
  if (!frame.error.empty() && frame.text.find(frame.error) ==
                                  std::string::npos) {
    std::cout << frame.error << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::string host = "127.0.0.1";
  bool raw = false;
  std::string command;
  bool have_command = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "-c" && i + 1 < argc) {
      command = argv[++i];
      have_command = true;
    } else {
      return Usage();
    }
  }
  if (port <= 0 || port > 65535) return Usage();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "socket() failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::cerr << "bad host " << host << "\n";
    return Usage();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::cerr << "cannot connect to " << host << ":" << port << ": "
              << std::strerror(errno) << "\n";
    ::close(fd);
    return 1;
  }

  std::vector<std::string> lines;
  if (have_command) {
    lines = SplitStatements(command);
  } else {
    std::string line;
    while (std::getline(std::cin, line)) lines.push_back(line);
  }

  std::string buffer;
  bool any_error = false;
  bool protocol_error = false;
  for (const std::string& line : lines) {
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (!SendAll(fd, line + "\n")) {
      std::cerr << "connection lost while sending\n";
      protocol_error = true;
      break;
    }
    std::string reply;
    if (!ReadLine(fd, &buffer, &reply)) {
      std::cerr << "connection closed before reply\n";
      protocol_error = true;
      break;
    }
    fuzzydb::server::ReplyFrame frame;
    if (!fuzzydb::server::ParseReplyFrame(reply, &frame)) {
      std::cerr << "malformed frame: " << reply << "\n";
      protocol_error = true;
      break;
    }
    RenderFrame(frame, raw, reply);
    if (frame.status != "OK") any_error = true;
    if (frame.goodbye) break;
  }
  ::close(fd);
  if (protocol_error) return 2;
  return any_error ? 1 : 0;
}
