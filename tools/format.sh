#!/usr/bin/env bash
# Formats the C++ sources with the repo's .clang-format.
#
#   tools/format.sh            rewrite files in place
#   tools/format.sh --check    fail (with a diff) if anything would change
#
# CI runs the --check mode; see .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "error: clang-format not found on PATH" >&2
  echo "       (apt-get install clang-format, or skip formatting locally" >&2
  echo "       and let CI report the diff)" >&2
  exit 1
fi

mapfile -t files < <(git ls-files '*.cc' '*.h')
if [ "${#files[@]}" -eq 0 ]; then
  echo "no C++ sources found" >&2
  exit 1
fi

if [ "${1:-}" = "--check" ]; then
  clang-format --style=file --dry-run --Werror "${files[@]}"
  echo "formatting clean (${#files[@]} files)"
else
  clang-format --style=file -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
