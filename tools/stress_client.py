#!/usr/bin/env python3
"""Multi-client stress harness for the FuzzyDB server (CI server-stress).

Spawns fuzzydb_server on an ephemeral port, drives N parallel clients
over raw sockets with a seeded workload, and checks the protocol
contract end to end:

1. every reply line parses as a JSON frame with a status field;
2. every status is OK or RESOURCE_EXHAUSTED (shedding is legal under
   load -- anything else, including a hang past --timeout, is a bug);
3. each client's replies arrive in request order (seq pairs 1:1);
4. the server survives all clients disconnecting and exits 0 on
   SIGINT with no leaked temp files in its scratch directory;
5. optionally (--journal PATH), the journal passes journal_check.py.

Usage:
  tools/stress_client.py --server build/tools/fuzzydb_server \
      --clients 8 --statements 40 [--workers 2] [--queue-depth 4] \
      [--seed 7] [--timeout 120] [--journal /tmp/server.jsonl]

Exits nonzero on any protocol violation, crash, or hang.
"""
import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

# Workload template: every client creates its own tables (names are
# suffixed with the client id, so clients never depend on each other's
# DDL) and then loops fuzzy SELECTs, including a nested one, which is
# the paper's workload shape.
DDL = [
    "CREATE TABLE emp{cid} (name STRING, sal FUZZY, dept STRING);",
    "CREATE TABLE dept{cid} (dname STRING, budget FUZZY);",
]
INSERT_EMP = ("INSERT INTO emp{cid} VALUES ('e{row}', "
              "ABOUT({base}, 15), 'd{dept}');")
INSERT_DEPT = ("INSERT INTO dept{cid} VALUES ('d{dept}', "
               "ABOUT({budget}, 25));")
QUERIES = [
    ("SELECT name FROM emp{cid} WHERE sal > ABOUT({threshold}, 10) "
     "WITH D >= 0.5;"),
    ("SELECT name FROM emp{cid} WHERE sal > ABOUT({threshold}, 10) AND "
     "dept = 'd{dept}' WITH D >= 0.3;"),
    ("SELECT name FROM emp{cid} WHERE sal > ANY (SELECT budget FROM "
     "dept{cid} WHERE dname = 'd{dept}') WITH D >= 0.3;"),
]
ALLOWED_STATUSES = {"OK", "RESOURCE_EXHAUSTED"}


def build_workload(cid, statements, seed):
    """Deterministic per-client statement list (no global RNG state)."""
    lines = [ddl.format(cid=cid) for ddl in DDL]
    for dept in range(3):
        lines.append(INSERT_DEPT.format(cid=cid, dept=dept,
                                        budget=100 + 50 * dept))
    for row in range(8):
        lines.append(INSERT_EMP.format(cid=cid, row=row,
                                       base=80 + 17 * row,
                                       dept=row % 3))
    state = (seed * 2654435761 + cid * 40503) & 0xFFFFFFFF
    for i in range(statements):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        query = QUERIES[state % len(QUERIES)]
        lines.append(query.format(cid=cid,
                                  threshold=90 + (state >> 8) % 120,
                                  dept=(state >> 4) % 3))
    return lines


def run_client(cid, port, statements, seed, timeout, failures):
    lines = build_workload(cid, statements, seed)
    try:
        sock = socket.create_connection(("127.0.0.1", port),
                                        timeout=timeout)
        sock.settimeout(timeout)
        reader = sock.makefile("r", encoding="utf-8")
        shed = 0
        for lineno, line in enumerate(lines, start=1):
            sock.sendall((line + "\n").encode("utf-8"))
            reply = reader.readline()
            if not reply:
                failures.append("client %d: connection closed before "
                                "reply to line %d" % (cid, lineno))
                return
            try:
                frame = json.loads(reply)
            except ValueError:
                failures.append("client %d: unparseable frame: %r"
                                % (cid, reply[:200]))
                return
            status = frame.get("status")
            if status not in ALLOWED_STATUSES:
                failures.append("client %d line %d (%s): status %r "
                                "error %r" % (cid, lineno, line[:60],
                                              status,
                                              frame.get("error")))
                return
            if status == "RESOURCE_EXHAUSTED":
                shed += 1
                # Retriable by contract: DDL/INSERT must land for later
                # queries to make sense, so retry those until admitted.
                if not line.startswith("SELECT"):
                    for _ in range(200):
                        time.sleep(0.02)
                        sock.sendall((line + "\n").encode("utf-8"))
                        reply = reader.readline()
                        if not reply:
                            failures.append("client %d: closed during "
                                            "retry" % cid)
                            return
                        if json.loads(reply).get("status") == "OK":
                            break
                    else:
                        failures.append("client %d: line %d never "
                                        "admitted" % (cid, lineno))
                        return
        sock.close()
        print("client %d: %d statements, %d shed" %
              (cid, len(lines), shed))
    except socket.timeout:
        failures.append("client %d: timed out (hang?)" % cid)
    except OSError as exc:
        failures.append("client %d: socket error: %s" % (cid, exc))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--server", required=True,
                        help="path to the fuzzydb_server binary")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--statements", type=int, default=40)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--journal", default="",
                        help="journal path; also runs journal_check.py")
    args = parser.parse_args()

    scratch = tempfile.mkdtemp(prefix="fuzzydb_stress_")
    cmd = [args.server, "--port=0",
           "--workers=%d" % args.workers,
           "--queue-depth=%d" % args.queue_depth]
    if args.journal:
        cmd.append("--query-log=%s" % args.journal)
    env = dict(os.environ, TMPDIR=scratch)
    server = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True,
                              env=env)
    port = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = server.stdout.readline()
        if not line:
            break
        sys.stdout.write(line)
        if line.startswith("listening on 127.0.0.1:"):
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        print("server never announced its port", file=sys.stderr)
        server.kill()
        return 1

    failures = []
    threads = [threading.Thread(target=run_client,
                                args=(cid, port, args.statements,
                                      args.seed, args.timeout,
                                      failures))
               for cid in range(args.clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(args.timeout + 30)
        if thread.is_alive():
            failures.append("a client thread is stuck")

    # Graceful shutdown: SIGINT, bounded wait, exit code 0 expected.
    server.send_signal(signal.SIGINT)
    try:
        server.wait(timeout=60)
    except subprocess.TimeoutExpired:
        failures.append("server did not exit within 60s of SIGINT")
        server.kill()
    else:
        if server.returncode != 0:
            failures.append("server exited %d" % server.returncode)
    tail = server.stdout.read()
    if tail:
        sys.stdout.write(tail)

    leftovers = os.listdir(scratch)
    if leftovers:
        failures.append("leaked temp files: %s" % ", ".join(leftovers))
    else:
        os.rmdir(scratch)

    if args.journal:
        check = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "journal_check.py")
        result = subprocess.run([sys.executable, check, args.journal,
                                 "--generations"])
        if result.returncode != 0:
            failures.append("journal_check.py failed")

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("stress OK: %d clients x %d statements" %
          (args.clients, args.statements))
    return 0


if __name__ == "__main__":
    sys.exit(main())
