#!/usr/bin/env python3
"""Multi-client stress harness for the FuzzyDB server (CI server-stress).

Spawns fuzzydb_server on an ephemeral port, drives N parallel clients
over raw sockets with a seeded workload, and checks the protocol
contract end to end:

1. every reply line parses as a JSON frame with a status field;
2. every status is OK or RESOURCE_EXHAUSTED (shedding is legal under
   load -- anything else, including a hang past --timeout, is a bug);
3. each client's replies arrive in request order (seq pairs 1:1);
4. the server survives all clients disconnecting and exits 0 on
   SIGINT with no leaked temp files in its scratch directory;
5. optionally (--journal PATH), the journal passes journal_check.py.

Usage:
  tools/stress_client.py --server build/tools/fuzzydb_server \
      --clients 8 --statements 40 [--workers 2] [--queue-depth 4] \
      [--seed 7] [--timeout 120] [--journal /tmp/server.jsonl]

With --wal-dir DIR the harness runs the crash-recovery drill instead
(CI recovery-stress; contract in docs/durability.md): the server is
started with a write-ahead log at DIR and --wal-fsync=always, N
writers insert uniquely tagged rows into a shared durable table while
the harness records which inserts the server acknowledged, then the
server is killed with SIGKILL mid-batch. A second server on the same
DIR must recover every acknowledged row (unacknowledged ones may or
may not appear -- both are legal), survive a CHECKPOINT, and leave no
*.tmp manifests and at most one checkpoint image behind.

Exits nonzero on any protocol violation, crash, hang, or lost write.
"""
import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

# Workload template: every client creates its own tables (names are
# suffixed with the client id, so clients never depend on each other's
# DDL) and then loops fuzzy SELECTs, including a nested one, which is
# the paper's workload shape.
DDL = [
    "CREATE TABLE emp{cid} (name STRING, sal FUZZY, dept STRING);",
    "CREATE TABLE dept{cid} (dname STRING, budget FUZZY);",
]
INSERT_EMP = ("INSERT INTO emp{cid} VALUES ('e{row}', "
              "ABOUT({base}, 15), 'd{dept}');")
INSERT_DEPT = ("INSERT INTO dept{cid} VALUES ('d{dept}', "
               "ABOUT({budget}, 25));")
QUERIES = [
    ("SELECT name FROM emp{cid} WHERE sal > ABOUT({threshold}, 10) "
     "WITH D >= 0.5;"),
    ("SELECT name FROM emp{cid} WHERE sal > ABOUT({threshold}, 10) AND "
     "dept = 'd{dept}' WITH D >= 0.3;"),
    ("SELECT name FROM emp{cid} WHERE sal > ANY (SELECT budget FROM "
     "dept{cid} WHERE dname = 'd{dept}') WITH D >= 0.3;"),
]
ALLOWED_STATUSES = {"OK", "RESOURCE_EXHAUSTED"}


def build_workload(cid, statements, seed):
    """Deterministic per-client statement list (no global RNG state)."""
    lines = [ddl.format(cid=cid) for ddl in DDL]
    for dept in range(3):
        lines.append(INSERT_DEPT.format(cid=cid, dept=dept,
                                        budget=100 + 50 * dept))
    for row in range(8):
        lines.append(INSERT_EMP.format(cid=cid, row=row,
                                       base=80 + 17 * row,
                                       dept=row % 3))
    state = (seed * 2654435761 + cid * 40503) & 0xFFFFFFFF
    for i in range(statements):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        query = QUERIES[state % len(QUERIES)]
        lines.append(query.format(cid=cid,
                                  threshold=90 + (state >> 8) % 120,
                                  dept=(state >> 4) % 3))
    return lines


def run_client(cid, port, statements, seed, timeout, failures):
    lines = build_workload(cid, statements, seed)
    try:
        sock = socket.create_connection(("127.0.0.1", port),
                                        timeout=timeout)
        sock.settimeout(timeout)
        reader = sock.makefile("r", encoding="utf-8")
        shed = 0
        for lineno, line in enumerate(lines, start=1):
            sock.sendall((line + "\n").encode("utf-8"))
            reply = reader.readline()
            if not reply:
                failures.append("client %d: connection closed before "
                                "reply to line %d" % (cid, lineno))
                return
            try:
                frame = json.loads(reply)
            except ValueError:
                failures.append("client %d: unparseable frame: %r"
                                % (cid, reply[:200]))
                return
            status = frame.get("status")
            if status not in ALLOWED_STATUSES:
                failures.append("client %d line %d (%s): status %r "
                                "error %r" % (cid, lineno, line[:60],
                                              status,
                                              frame.get("error")))
                return
            if status == "RESOURCE_EXHAUSTED":
                shed += 1
                # Retriable by contract: DDL/INSERT must land for later
                # queries to make sense, so retry those until admitted.
                if not line.startswith("SELECT"):
                    for _ in range(200):
                        time.sleep(0.02)
                        sock.sendall((line + "\n").encode("utf-8"))
                        reply = reader.readline()
                        if not reply:
                            failures.append("client %d: closed during "
                                            "retry" % cid)
                            return
                        if json.loads(reply).get("status") == "OK":
                            break
                    else:
                        failures.append("client %d: line %d never "
                                        "admitted" % (cid, lineno))
                        return
        sock.close()
        print("client %d: %d statements, %d shed" %
              (cid, len(lines), shed))
    except socket.timeout:
        failures.append("client %d: timed out (hang?)" % cid)
    except OSError as exc:
        failures.append("client %d: socket error: %s" % (cid, exc))


def spawn_server(path, extra_args, scratch):
    """Start the server, return (process, announced port or None)."""
    env = dict(os.environ, TMPDIR=scratch)
    server = subprocess.Popen([path, "--port=0"] + extra_args,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True,
                              env=env)
    deadline = time.time() + 30
    while time.time() < deadline:
        line = server.stdout.readline()
        if not line:
            break
        sys.stdout.write(line)
        if line.startswith("listening on 127.0.0.1:"):
            return server, int(line.rsplit(":", 1)[1])
    server.kill()
    return server, None


def exchange(port, lines, timeout):
    """One session: send each line, return the list of reply frames."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    sock.settimeout(timeout)
    reader = sock.makefile("r", encoding="utf-8")
    frames = []
    for line in lines:
        sock.sendall((line + "\n").encode("utf-8"))
        frames.append(json.loads(reader.readline()))
    sock.close()
    return frames


def run_recovery_writer(cid, port, statements, timeout, acked, failures):
    """Insert tagged rows until done or the server dies mid-batch.

    Appends each tag to `acked` only after the server's OK reply --
    with --wal-fsync=always that reply promises durability, so the
    restarted server owes us exactly this list. A torn connection is
    not a failure here: it is the crash under test.
    """
    try:
        sock = socket.create_connection(("127.0.0.1", port),
                                        timeout=timeout)
        sock.settimeout(timeout)
        reader = sock.makefile("r", encoding="utf-8")
    except OSError:
        return  # server already gone: nothing was acknowledged
    for row in range(statements):
        tag = "c%d_r%d" % (cid, row)
        line = ("INSERT INTO ledger VALUES ('%s', %d) DEGREE 0.5;"
                % (tag, row))
        for _ in range(200):  # retry shedding until admitted
            try:
                sock.sendall((line + "\n").encode("utf-8"))
                reply = reader.readline()
                status = json.loads(reply).get("status") if reply else None
            except (OSError, ValueError):
                return  # the SIGKILL tore the connection or the frame
            if status is None:
                return  # connection closed: the crash happened
            if status == "OK":
                acked.append(tag)  # list.append is atomic under the GIL
                break
            if status != "RESOURCE_EXHAUSTED":
                failures.append("writer %d: status %r for %r"
                                % (cid, status, line[:60]))
                return
            time.sleep(0.02)
        else:
            failures.append("writer %d: row %d never admitted"
                            % (cid, row))
            return


def run_recovery(args):
    """The crash-recovery drill (see the module docstring)."""
    scratch = tempfile.mkdtemp(prefix="fuzzydb_recovery_")
    server_args = ["--wal-dir=%s" % args.wal_dir, "--wal-fsync=always",
                   "--workers=%d" % args.workers,
                   "--queue-depth=%d" % args.queue_depth]
    failures = []

    server, port = spawn_server(args.server, server_args, scratch)
    if port is None:
        print("server never announced its port", file=sys.stderr)
        return 1
    try:
        frames = exchange(port, ["CREATE TABLE ledger "
                                 "(tag STRING, x FUZZY);"], args.timeout)
        if frames[0].get("status") != "OK":
            print("CREATE TABLE refused: %r" % frames[0], file=sys.stderr)
            server.kill()
            return 1
    except (OSError, ValueError) as exc:
        print("DDL session failed: %s" % exc, file=sys.stderr)
        server.kill()
        return 1

    acked = []
    writers = [threading.Thread(target=run_recovery_writer,
                                args=(cid, port, args.statements,
                                      args.timeout, acked, failures))
               for cid in range(args.clients)]
    for thread in writers:
        thread.start()
    # SIGKILL once roughly half the planned rows are acknowledged: the
    # crash lands mid-batch, with in-flight inserts at every stage of
    # the append/fsync/reply pipeline.
    planned = args.clients * args.statements
    deadline = time.time() + args.timeout
    while (len(acked) < max(1, planned // 2) and time.time() < deadline
           and any(thread.is_alive() for thread in writers)):
        time.sleep(0.01)
    server.kill()  # SIGKILL: no shutdown hook runs, only the log survives
    server.wait()
    for thread in writers:
        thread.join(args.timeout + 30)
        if thread.is_alive():
            failures.append("a writer thread is stuck")
    print("killed server with %d/%d inserts acknowledged"
          % (len(acked), planned))
    if not acked:
        failures.append("no insert was ever acknowledged before the kill")

    # Restart on the same directory: recovery must replay every
    # acknowledged row, then survive a checkpoint and a clean stop.
    server, port = spawn_server(args.server, server_args, scratch)
    if port is None:
        print("restarted server never announced its port",
              file=sys.stderr)
        return 1
    try:
        frames = exchange(port,
                          ["SELECT tag FROM ledger WITH D >= 0.0;",
                           "CHECKPOINT;"], args.timeout)
    except (OSError, ValueError) as exc:
        failures.append("post-recovery session failed: %s" % exc)
        frames = []
    if frames:
        select, checkpoint = frames
        if select.get("status") != "OK":
            failures.append("post-recovery SELECT: %r" % select)
        recovered = {row[0].strip("'") for row in select.get("rows", [])}
        lost = sorted(tag for tag in acked if tag not in recovered)
        if lost:
            failures.append("lost %d acknowledged row(s), e.g. %s"
                            % (len(lost), ", ".join(lost[:5])))
        legal = {"c%d_r%d" % (cid, row) for cid in range(args.clients)
                 for row in range(args.statements)}
        phantoms = sorted(recovered - legal)
        if phantoms:
            failures.append("recovered rows nobody sent: %s"
                            % ", ".join(phantoms[:5]))
        print("recovered %d rows (%d acknowledged, %d in flight at "
              "the kill)" % (len(recovered), len(acked),
                             len(recovered) - len(acked)))
        if checkpoint.get("status") != "OK":
            failures.append("post-recovery CHECKPOINT: %r" % checkpoint)

    server.send_signal(signal.SIGINT)
    try:
        server.wait(timeout=60)
    except subprocess.TimeoutExpired:
        failures.append("recovered server did not exit within 60s")
        server.kill()
    else:
        if server.returncode != 0:
            failures.append("recovered server exited %d"
                            % server.returncode)

    # Sweep check: the crash plus checkpoint left no debris -- no temp
    # manifests and at most the one live checkpoint image.
    entries = os.listdir(args.wal_dir)
    tmps = [e for e in entries if e.endswith(".tmp")]
    if tmps:
        failures.append("temp manifests left behind: %s" % ", ".join(tmps))
    images = [e for e in entries if e.startswith("ckpt_")]
    if len(images) > 1:
        failures.append("more than one checkpoint image: %s"
                        % ", ".join(images))

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("recovery OK: %d writers, %d acknowledged rows survived "
          "SIGKILL" % (args.clients, len(acked)))
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--server", required=True,
                        help="path to the fuzzydb_server binary")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--statements", type=int, default=40)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--journal", default="",
                        help="journal path; also runs journal_check.py")
    parser.add_argument("--wal-dir", default="",
                        help="run the crash-recovery drill against a "
                             "write-ahead log at this directory")
    args = parser.parse_args()

    if args.wal_dir:
        return run_recovery(args)

    scratch = tempfile.mkdtemp(prefix="fuzzydb_stress_")
    extra = ["--workers=%d" % args.workers,
             "--queue-depth=%d" % args.queue_depth]
    if args.journal:
        extra.append("--query-log=%s" % args.journal)
    server, port = spawn_server(args.server, extra, scratch)
    if port is None:
        print("server never announced its port", file=sys.stderr)
        return 1

    failures = []
    threads = [threading.Thread(target=run_client,
                                args=(cid, port, args.statements,
                                      args.seed, args.timeout,
                                      failures))
               for cid in range(args.clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(args.timeout + 30)
        if thread.is_alive():
            failures.append("a client thread is stuck")

    # Graceful shutdown: SIGINT, bounded wait, exit code 0 expected.
    server.send_signal(signal.SIGINT)
    try:
        server.wait(timeout=60)
    except subprocess.TimeoutExpired:
        failures.append("server did not exit within 60s of SIGINT")
        server.kill()
    else:
        if server.returncode != 0:
            failures.append("server exited %d" % server.returncode)
    tail = server.stdout.read()
    if tail:
        sys.stdout.write(tail)

    leftovers = os.listdir(scratch)
    if leftovers:
        failures.append("leaked temp files: %s" % ", ".join(leftovers))
    else:
        os.rmdir(scratch)

    if args.journal:
        check = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "journal_check.py")
        result = subprocess.run([sys.executable, check, args.journal,
                                 "--generations"])
        if result.returncode != 0:
            failures.append("journal_check.py failed")

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("stress OK: %d clients x %d statements" %
          (args.clients, args.statements))
    return 0


if __name__ == "__main__":
    sys.exit(main())
