#!/usr/bin/env python3
"""Compare a bench JSON report against a stored baseline.

Usage:
  tools/bench_check.py RUN.json BASELINE.json [--warn-only]
  tools/bench_check.py RUN_DIR BASELINE_DIR [--warn-only]
  tools/bench_check.py --self-test BASELINE.json

In directory mode every BENCH_*.json in BASELINE_DIR must have a
same-named report in RUN_DIR; a missing report is a failure, not a
silent pass -- a bench that stops emitting its report must not look
green. Extra reports in RUN_DIR (new suites without a baseline yet)
are allowed.

Reports are the BENCH_<suite>.json files written by bench binaries via
`--json-out=PATH` (see bench/bench_common.h, BenchReport). Counter
metrics (ios, tuple_pairs, degree_evaluations) are deterministic for a
seeded workload at num_threads = 1 and must match the baseline exactly;
wall/cpu time and peak memory get ratio tolerances because CI machines
vary. A regression prints one line per violation and exits 1 (or 0 with
--warn-only, the pull-request mode). --self-test injects a synthetic 2x
regression into a copy of the baseline and verifies the comparison
catches it -- a guard against the checker itself rotting into a no-op.
"""

import argparse
import copy
import glob
import json
import os
import sys

# Metrics that must match the baseline exactly (deterministic counters;
# only enforced when both reports ran single-threaded).
EXACT_METRICS = ("ios", "tuple_pairs", "degree_evaluations")

# metric -> max allowed run/baseline ratio. Values are generous because
# shared CI runners are noisy; the exact counters above are the precise
# tripwire, these catch order-of-magnitude rot.
RATIO_TOLERANCES = {
    "wall_seconds": 3.0,
    "cpu_seconds": 3.0,
    "peak_mem_bytes": 1.25,
}

# Below this absolute value a ratio check is skipped: a 2 ms wall time
# tripling to 6 ms is scheduler noise, not a regression.
RATIO_FLOORS = {
    "wall_seconds": 0.05,
    "cpu_seconds": 0.05,
    "peak_mem_bytes": 64 * 1024,
}


def load(path):
    with open(path) as f:
        return json.load(f)


def compare(run, baseline):
    """Returns a list of human-readable problem strings (empty = pass)."""
    problems = []
    for field in ("schema_version", "suite", "smoke", "threads"):
        if run.get(field) != baseline.get(field):
            problems.append(
                f"{field} mismatch: run={run.get(field)!r} "
                f"baseline={baseline.get(field)!r}"
            )
    if any("schema_version" in p or "suite" in p for p in problems):
        # Incomparable files; per-bench checks would just add noise.
        return problems

    exact_ok = run.get("threads") == 1 and baseline.get("threads") == 1
    base_by_name = {b["name"]: b for b in baseline.get("benches", [])}
    run_by_name = {b["name"]: b for b in run.get("benches", [])}

    for name in base_by_name:
        if name not in run_by_name:
            problems.append(f"bench '{name}' missing from run")
    for name, bench in run_by_name.items():
        base = base_by_name.get(name)
        if base is None:
            # New configurations are fine; they become baseline on reseed.
            continue
        if exact_ok:
            for metric in EXACT_METRICS:
                if bench.get(metric) != base.get(metric):
                    problems.append(
                        f"{name}: {metric} changed "
                        f"{base.get(metric)} -> {bench.get(metric)} "
                        f"(deterministic counter, must match exactly)"
                    )
        for metric, tolerance in RATIO_TOLERANCES.items():
            base_value = base.get(metric, 0)
            run_value = bench.get(metric, 0)
            if max(base_value, run_value) < RATIO_FLOORS[metric]:
                continue
            if base_value == 0:
                problems.append(
                    f"{name}: {metric} appeared ({run_value}) with a zero "
                    f"baseline; reseed the baseline"
                )
            elif run_value > base_value * tolerance:
                problems.append(
                    f"{name}: {metric} regressed {base_value} -> "
                    f"{run_value} ({run_value / base_value:.2f}x > "
                    f"{tolerance}x tolerance)"
                )
    return problems


def self_test(baseline):
    """Doubles every metric in a copy of the baseline; the comparison
    must flag it, or the checker has rotted into a no-op."""
    injected = copy.deepcopy(baseline)
    for bench in injected.get("benches", []):
        for metric in EXACT_METRICS + tuple(RATIO_TOLERANCES):
            if metric in bench:
                bench[metric] *= 2
    problems = compare(injected, baseline)
    if not problems:
        print("self-test FAILED: 2x regression was not detected")
        return 1
    print(f"self-test passed: 2x regression detected ({len(problems)} "
          f"violations, e.g. '{problems[0]}')")
    return 0


def compare_files(run_path, baseline_path):
    """Compares one report/baseline pair; returns problem strings."""
    run, baseline = load(run_path), load(baseline_path)
    problems = compare(run, baseline)
    if not problems:
        print(f"bench_check: {len(run.get('benches', []))} benches within "
              f"tolerance of {baseline_path}")
    return problems


def compare_dirs(run_dir, baseline_dir):
    """Every baseline suite must have a matching run report."""
    problems = []
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not baselines:
        problems.append(f"no BENCH_*.json baselines found in {baseline_dir}")
    for baseline_path in baselines:
        name = os.path.basename(baseline_path)
        run_path = os.path.join(run_dir, name)
        if not os.path.exists(run_path):
            problems.append(
                f"{name}: baseline exists but the run produced no report "
                f"in {run_dir} (bench not run, or stopped emitting "
                f"--json-out)"
            )
            continue
        problems.extend(
            f"{name}: {p}" for p in compare_files(run_path, baseline_path)
        )
    return problems


def main():
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON report against a baseline."
    )
    parser.add_argument("run", help="BENCH_<suite>.json from this run, or "
                        "a directory of reports (or the baseline itself "
                        "with --self-test)")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline (or baseline directory) "
                        "to compare against")
    parser.add_argument("--warn-only", action="store_true",
                        help="report violations but exit 0 (PR mode)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker flags an injected 2x "
                        "regression against RUN itself")
    args = parser.parse_args()

    if args.self_test:
        return self_test(load(args.run))
    if args.baseline is None:
        parser.error("BASELINE is required unless --self-test")

    if os.path.isdir(args.run) != os.path.isdir(args.baseline):
        parser.error("RUN and BASELINE must both be files or both be "
                     "directories")
    if os.path.isdir(args.run):
        problems = compare_dirs(args.run, args.baseline)
    else:
        problems = compare_files(args.run, args.baseline)
    if not problems:
        return 0
    for problem in problems:
        print(f"bench_check: {problem}")
    if args.warn_only:
        print("bench_check: violations found (warn-only mode, exiting 0)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
