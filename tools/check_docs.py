#!/usr/bin/env python3
"""Documentation consistency gate (run from anywhere; CI runs it on push).

Two checks over README.md, DESIGN.md, CHANGES.md, ROADMAP.md, and
docs/*.md:

 1. Every relative markdown link resolves: the target file exists, and
    when the link carries a #fragment, the target contains a heading
    whose GitHub-style anchor matches. External links (http/https/
    mailto) and links that escape the repository (e.g. the CI badge's
    ../../actions/... URL, which is resolved by the GitHub website, not
    the working tree) are skipped.

 2. Every metric name registered in src/obs/metrics.cc,
    src/server/server_metrics.cc, or src/wal/wal_metrics.cc appears in
    docs/operations.md, so the operator-facing catalog cannot silently
    drift from the code.

Exit code 0 = clean, 1 = findings (each printed as file:line message).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
METRIC_RE = re.compile(r'"(fuzzydb_[a-z_]+)"')
FENCE_RE = re.compile(r"^(```|~~~)")


def doc_files():
    files = []
    for name in ("README.md", "DESIGN.md", "CHANGES.md", "ROADMAP.md"):
        path = os.path.join(REPO, name)
        if os.path.exists(path):
            files.append(path)
    docs_dir = os.path.join(REPO, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def strip_fenced(lines):
    """Yield (lineno, line) outside fenced code blocks."""
    in_fence = False
    for i, line in enumerate(lines, start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield i, line


def github_anchor(heading):
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation
    (keeping alphanumerics, underscores, hyphens, spaces), then turn
    spaces into hyphens."""
    text = re.sub(r"`", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        anchors = set()
        counts = {}
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        for _, line in strip_fenced(lines):
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_anchor(m.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_links(path, findings):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    for lineno, line in strip_fenced(lines):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = target.partition("#")
            if target:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
            else:
                resolved = path  # same-file #fragment
            rel = os.path.relpath(resolved, REPO)
            if rel.startswith(".."):
                continue  # escapes the repo: a website URL, not a file
            if not os.path.exists(resolved):
                findings.append(
                    f"{os.path.relpath(path, REPO)}:{lineno}: "
                    f"broken link target '{target}'")
                continue
            if fragment and resolved.endswith(".md"):
                if fragment not in anchors_of(resolved):
                    findings.append(
                        f"{os.path.relpath(path, REPO)}:{lineno}: "
                        f"no heading for anchor '#{fragment}' in {rel}")


METRIC_SOURCES = (
    os.path.join("src", "obs", "metrics.cc"),
    os.path.join("src", "server", "server_metrics.cc"),
    os.path.join("src", "wal", "wal_metrics.cc"),
)


def check_metrics_coverage(findings):
    operations = os.path.join(REPO, "docs", "operations.md")
    sources = [s for s in METRIC_SOURCES
               if os.path.exists(os.path.join(REPO, s))]
    if not sources or not os.path.exists(operations):
        findings.append("metrics coverage: missing metric sources or "
                        "docs/operations.md")
        return
    with open(operations, encoding="utf-8") as f:
        catalog = f.read()
    for source in sources:
        with open(os.path.join(REPO, source), encoding="utf-8") as f:
            registered = sorted(set(METRIC_RE.findall(f.read())))
        for name in registered:
            if name not in catalog:
                findings.append(
                    f"docs/operations.md: registered metric '{name}' "
                    f"({source}) is missing from the catalog")


def main():
    findings = []
    for path in doc_files():
        check_links(path, findings)
    check_metrics_coverage(findings)
    for finding in findings:
        print(finding)
    if findings:
        print(f"check_docs: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("check_docs: all links resolve and the metrics catalog is "
          "complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
