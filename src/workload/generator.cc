#include "workload/generator.h"

#include <algorithm>
#include <cmath>

namespace fuzzydb {

namespace {

/// A join value in group `group`: crisp at the group center, or a fuzzy
/// trapezoid whose support contains an open interval around the center
/// (guaranteeing a positive equality degree with every group member).
Value MakeJoinValue(Rng* rng, double center, const WorkloadConfig& config) {
  if (!rng->Bernoulli(config.fuzzy_fraction)) {
    return Value::Number(center);
  }
  const double w = config.max_interval_width;
  // Support ends at least w/4 away from the center on each side.
  const double left = rng->UniformDouble(0.25 * w, 0.5 * w);
  const double right = rng->UniformDouble(0.25 * w, 0.5 * w);
  const double a = center - left;
  const double d = center + right;
  // Random core inside the support.
  double b = rng->UniformDouble(a, d);
  double c = rng->UniformDouble(a, d);
  if (b > c) std::swap(b, c);
  return Value::Fuzzy(Trapezoid(a, b, c, d));
}

double MakeDegree(Rng* rng, const WorkloadConfig& config) {
  if (rng->Bernoulli(config.partial_membership_fraction)) {
    return rng->UniformDouble(0.2, 1.0);
  }
  return 1.0;
}

}  // namespace

TypeJDataset GenerateTypeJDataset(const WorkloadConfig& config) {
  Rng rng(config.seed);
  const size_t num_groups = std::max<size_t>(
      1, static_cast<size_t>(
             std::llround(static_cast<double>(config.num_s) /
                          std::max(1.0, config.join_fanout))));
  const double spacing = 4.0 * config.max_interval_width;

  TypeJDataset dataset;
  dataset.r = Relation("R", Schema{Column{"X", ValueType::kFuzzy},
                                   Column{"Y", ValueType::kFuzzy},
                                   Column{"U", ValueType::kFuzzy}});
  dataset.s = Relation("S", Schema{Column{"Z", ValueType::kFuzzy},
                                   Column{"V", ValueType::kFuzzy}});

  for (size_t i = 0; i < config.num_r; ++i) {
    const auto group =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(num_groups) - 1));
    const double center = static_cast<double>(group) * spacing;
    (void)dataset.r.Append(
        Tuple({Value::Number(static_cast<double>(i)),
               MakeJoinValue(&rng, center, config),
               Value::Number(static_cast<double>(group))},
              MakeDegree(&rng, config)));
  }
  for (size_t i = 0; i < config.num_s; ++i) {
    const auto group =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(num_groups) - 1));
    const double center = static_cast<double>(group) * spacing;
    (void)dataset.s.Append(
        Tuple({MakeJoinValue(&rng, center, config),
               Value::Number(static_cast<double>(group))},
              MakeDegree(&rng, config)));
  }
  return dataset;
}

Relation GenerateRandomRelation(uint64_t seed, const std::string& name,
                                size_t num_cols, size_t num_rows,
                                double domain_lo, double domain_hi) {
  Rng rng(seed);
  std::vector<Column> columns;
  for (size_t c = 0; c < num_cols; ++c) {
    columns.push_back(Column{"C" + std::to_string(c), ValueType::kFuzzy});
  }
  Relation relation(name, Schema(std::move(columns)));

  auto random_value = [&]() -> Value {
    // Integer-ish corners over a small domain: collisions are the point.
    auto point = [&] {
      return static_cast<double>(
          rng.UniformInt(static_cast<int64_t>(domain_lo),
                         static_cast<int64_t>(domain_hi)));
    };
    switch (rng.UniformInt(0, 3)) {
      case 0:  // crisp
        return Value::Number(point());
      case 1: {  // interval
        double lo = point(), hi = point();
        if (lo > hi) std::swap(lo, hi);
        return Value::Fuzzy(Trapezoid::Interval(lo, hi));
      }
      case 2: {  // triangle
        double corners[3] = {point(), point(), point()};
        std::sort(corners, corners + 3);
        return Value::Fuzzy(
            Trapezoid::Triangle(corners[0], corners[1], corners[2]));
      }
      default: {  // trapezoid
        double corners[4] = {point(), point(), point(), point()};
        std::sort(corners, corners + 4);
        return Value::Fuzzy(
            Trapezoid(corners[0], corners[1], corners[2], corners[3]));
      }
    }
  };

  for (size_t i = 0; i < num_rows; ++i) {
    std::vector<Value> values;
    values.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) values.push_back(random_value());
    // Degrees on a coarse grid so duplicate-elimination ties are common.
    const double degree =
        static_cast<double>(rng.UniformInt(1, 10)) / 10.0;
    (void)relation.Append(Tuple(std::move(values), degree));
  }
  return relation;
}

}  // namespace fuzzydb
