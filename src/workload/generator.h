// Synthetic workloads reproducing the paper's experimental setup.
//
// Section 9: "Tuples of the relations are randomly generated and a tuple
// of one relation joins, on the average, C tuples of the other relation"
// with controllable relation size (number of tuples), tuple size in bytes
// (128..2048) and join fan-out C (1..128). Values are "imprecise but not
// very vague": fuzzy join values have small support intervals.
//
// Join values are organized into groups around well-separated centers:
// tuples join exactly within their group (all group members' supports
// share an open interval around the center, so every in-group pair has a
// positive equality degree), giving an average fan-out of
// C = n_S / num_groups.
#ifndef FUZZYDB_WORKLOAD_GENERATOR_H_
#define FUZZYDB_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "relational/relation.h"

namespace fuzzydb {

/// Knobs of the synthetic type J workload.
struct WorkloadConfig {
  uint64_t seed = 42;

  size_t num_r = 1000;  // outer relation tuples
  size_t num_s = 1000;  // inner relation tuples

  /// Average number of S tuples joining each R tuple (the paper's C).
  double join_fanout = 7.0;

  /// Fraction of join values that are fuzzy (vs crisp).
  double fuzzy_fraction = 0.5;

  /// Maximum support width of a fuzzy join value. Group centers are
  /// spaced 4x this apart, so distinct groups never overlap.
  double max_interval_width = 4.0;

  /// Fraction of tuples whose membership degree is drawn uniformly from
  /// (0.2, 1.0) instead of being exactly 1.
  double partial_membership_fraction = 0.0;
};

/// The generated pair of relations.
/// R(X number, Y fuzzy-join, U group-key) and S(Z fuzzy-join, V group-key):
/// the experimental query is
///   SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U).
struct TypeJDataset {
  Relation r;
  Relation s;
};

/// Generates the dataset deterministically from config.seed.
TypeJDataset GenerateTypeJDataset(const WorkloadConfig& config);

/// A fully random small relation for property tests: `num_cols` fuzzy
/// columns with values drawn over a small domain (mixing crisp points,
/// intervals, triangles and trapezoids) plus random membership degrees.
/// Small domains make value collisions and overlaps frequent, which is
/// what exercises duplicate elimination and fuzzy joins.
Relation GenerateRandomRelation(uint64_t seed, const std::string& name,
                                size_t num_cols, size_t num_rows,
                                double domain_lo = 0.0,
                                double domain_hi = 20.0);

}  // namespace fuzzydb

#endif  // FUZZYDB_WORKLOAD_GENERATOR_H_
