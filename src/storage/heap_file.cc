#include "storage/heap_file.h"

#include "common/failpoint.h"

namespace fuzzydb {

Status HeapFileWriter::Append(const Tuple& tuple) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("heapfile/append"));
  SerializeTuple(tuple, &scratch_, min_record_size_);
  if (scratch_.size() > kPageSize - 64) {
    return Status::InvalidArgument("tuple record too large for a page");
  }
  if (!current_.Fits(scratch_.size())) {
    FUZZYDB_RETURN_IF_ERROR(
        pool_->WritePage(file_, file_->NumPages(), current_));
    current_.Reset();
    current_dirty_ = false;
  }
  if (current_.Insert(scratch_.data(), scratch_.size()) < 0) {
    return Status::Internal("page insert failed after fit check");
  }
  current_dirty_ = true;
  ++tuples_written_;
  return Status::OK();
}

Status HeapFileWriter::Finish() {
  if (current_dirty_) {
    FUZZYDB_RETURN_IF_ERROR(
        pool_->WritePage(file_, file_->NumPages(), current_));
    current_.Reset();
    current_dirty_ = false;
  }
  return Status::OK();
}

Status HeapFileScanner::Next(Tuple* tuple, bool* has_tuple) {
  while (page_ < file_->NumPages()) {
    FUZZYDB_ASSIGN_OR_RETURN(const Page* page, pool_->GetPage(file_, page_));
    if (slot_ < page->NumRecords()) {
      uint16_t length;
      const uint8_t* record = page->Record(slot_, &length);
      FUZZYDB_ASSIGN_OR_RETURN(*tuple, DeserializeTuple(record, length));
      ++slot_;
      // Advance eagerly past exhausted pages so current_page() always
      // names the page of the next unread tuple (block joins rely on it).
      if (slot_ >= page->NumRecords()) {
        ++page_;
        slot_ = 0;
      }
      *has_tuple = true;
      return Status::OK();
    }
    ++page_;
    slot_ = 0;
  }
  *has_tuple = false;
  return Status::OK();
}

void HeapFileScanner::Rewind() {
  page_ = 0;
  slot_ = 0;
}

void HeapFileScanner::SeekToPage(PageId page) {
  page_ = page;
  slot_ = 0;
}

Result<std::unique_ptr<PageFile>> WriteRelationToFile(
    const Relation& relation, const std::string& path, BufferPool* pool,
    size_t min_record_size) {
  FUZZYDB_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> file,
                           PageFile::Create(path));
  HeapFileWriter writer(file.get(), pool, min_record_size);
  for (const Tuple& t : relation.tuples()) {
    FUZZYDB_RETURN_IF_ERROR(writer.Append(t));
  }
  FUZZYDB_RETURN_IF_ERROR(writer.Finish());
  return file;
}

Result<Relation> ReadRelationFromFile(PageFile* file, BufferPool* pool,
                                      const std::string& name,
                                      const Schema& schema) {
  Relation relation(name, schema);
  HeapFileScanner scanner(file, pool);
  Tuple tuple;
  bool has = false;
  while (true) {
    FUZZYDB_RETURN_IF_ERROR(scanner.Next(&tuple, &has));
    if (!has) break;
    FUZZYDB_RETURN_IF_ERROR(relation.Append(std::move(tuple)));
    tuple = Tuple();
  }
  return relation;
}

}  // namespace fuzzydb
