#include "storage/serializer.h"

#include <cstring>

namespace fuzzydb {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t pos = out->size();
  out->resize(pos + sizeof(v));
  std::memcpy(out->data() + pos, &v, sizeof(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  const size_t pos = out->size();
  out->resize(pos + sizeof(v));
  std::memcpy(out->data() + pos, &v, sizeof(v));
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t length) : data_(data), end_(length) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > end_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + sizeof(*v) > end_) return false;
    std::memcpy(v, data_ + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }
  bool ReadF64(double* v) {
    if (pos_ + sizeof(*v) > end_) return false;
    std::memcpy(v, data_ + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }
  bool ReadBytes(size_t n, const uint8_t** out) {
    if (pos_ + n > end_) return false;
    *out = data_ + pos_;
    pos_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t pos_ = 0;
  size_t end_;
};

}  // namespace

void SerializeTuple(const Tuple& tuple, std::vector<uint8_t>* out,
                    size_t min_size) {
  out->clear();
  PutU8(out, static_cast<uint8_t>(tuple.NumValues()));
  for (size_t i = 0; i < tuple.NumValues(); ++i) {
    const Value& v = tuple.ValueAt(i);
    PutU8(out, static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kString: {
        const std::string& s = v.AsString();
        PutU32(out, static_cast<uint32_t>(s.size()));
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
      case ValueType::kFuzzy: {
        const Trapezoid& t = v.AsFuzzy();
        PutF64(out, t.a());
        PutF64(out, t.b());
        PutF64(out, t.c());
        PutF64(out, t.d());
        break;
      }
    }
  }
  PutF64(out, tuple.degree());
  // Padding block (always present, possibly empty).
  const size_t base = out->size() + sizeof(uint32_t);
  const size_t pad = base < min_size ? min_size - base : 0;
  PutU32(out, static_cast<uint32_t>(pad));
  out->resize(out->size() + pad, 0);
}

size_t SerializedTupleSize(const Tuple& tuple) {
  size_t size = 1;  // value count
  for (size_t i = 0; i < tuple.NumValues(); ++i) {
    const Value& v = tuple.ValueAt(i);
    size += 1;  // type tag
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kString:
        size += sizeof(uint32_t) + v.AsString().size();
        break;
      case ValueType::kFuzzy:
        size += 4 * sizeof(double);
        break;
    }
  }
  size += sizeof(double);    // degree
  size += sizeof(uint32_t);  // padding length
  return size;
}

Result<Tuple> DeserializeTuple(const uint8_t* data, size_t length) {
  Reader reader(data, length);
  uint8_t count;
  if (!reader.ReadU8(&count)) {
    return Status::Internal("truncated tuple record (value count)");
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint8_t i = 0; i < count; ++i) {
    uint8_t tag;
    if (!reader.ReadU8(&tag)) {
      return Status::Internal("truncated tuple record (type tag)");
    }
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        values.push_back(Value::Null());
        break;
      case ValueType::kString: {
        uint32_t len;
        const uint8_t* bytes;
        if (!reader.ReadU32(&len) || !reader.ReadBytes(len, &bytes)) {
          return Status::Internal("truncated tuple record (string)");
        }
        values.push_back(Value::String(
            std::string(reinterpret_cast<const char*>(bytes), len)));
        break;
      }
      case ValueType::kFuzzy: {
        double a, b, c, d;
        if (!reader.ReadF64(&a) || !reader.ReadF64(&b) || !reader.ReadF64(&c) ||
            !reader.ReadF64(&d)) {
          return Status::Internal("truncated tuple record (fuzzy)");
        }
        values.push_back(Value::Fuzzy(Trapezoid(a, b, c, d)));
        break;
      }
      default:
        return Status::Internal("bad value type tag in tuple record");
    }
  }
  double degree;
  if (!reader.ReadF64(&degree)) {
    return Status::Internal("truncated tuple record (degree)");
  }
  return Tuple(std::move(values), degree);
}

}  // namespace fuzzydb
