#include "storage/file_manager.h"

#include <cstdio>

#include "common/failpoint.h"

namespace fuzzydb {

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/file-create"));
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IoError("cannot create file '" + path + "'");
  }
  return std::unique_ptr<PageFile>(new PageFile(path, f, 0));
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/file-open"));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return Status::IoError("cannot open file '" + path + "'");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek in file '" + path + "'");
  }
  const long size = std::ftell(f);
  if (size < 0 || static_cast<size_t>(size) % kPageSize != 0) {
    std::fclose(f);
    return Status::IoError("file '" + path + "' is not page-aligned");
  }
  return std::unique_ptr<PageFile>(
      new PageFile(path, f, static_cast<PageId>(size / kPageSize)));
}

PageFile::~PageFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PageFile::ReadPage(PageId id, Page* page) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/page-read"));
  if (id >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " out of range in '" + path_ + "'");
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(page->raw(), kPageSize, 1, file_) != 1) {
    return Status::IoError("read failed on '" + path_ + "'");
  }
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const Page& page) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/page-write"));
  if (id > num_pages_) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " beyond end of '" + path_ + "'");
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(page.raw(), kPageSize, 1, file_) != 1) {
    return Status::IoError("write failed on '" + path_ + "'");
  }
  if (id == num_pages_) ++num_pages_;
  return Status::OK();
}

Result<PageId> PageFile::AppendPage(const Page& page) {
  const PageId id = num_pages_;
  FUZZYDB_RETURN_IF_ERROR(WritePage(id, page));
  return id;
}

void RemoveFileIfExists(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace fuzzydb
