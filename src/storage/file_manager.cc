#include "storage/file_manager.h"

#include <cstdio>
#include <map>
#include <mutex>

#include "common/failpoint.h"

namespace fuzzydb {

namespace {

/// Process-wide write-version registry: path -> LSN of the last write.
/// Guarded by a mutex; page I/O is fwrite-dominated, so the lock is noise.
struct VersionRegistry {
  std::mutex mu;
  uint64_t next_lsn = 1;
  std::map<std::string, uint64_t> by_path;

  static VersionRegistry& Instance() {
    static VersionRegistry* r = new VersionRegistry();
    return *r;
  }

  uint64_t Stamp(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu);
    return by_path[path] = next_lsn++;
  }

  uint64_t Lookup(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_path.find(path);
    return it == by_path.end() ? 0 : it->second;
  }

  uint64_t OpenVersion(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = by_path.emplace(path, 0);
    if (inserted) it->second = next_lsn++;
    return it->second;
  }
};

}  // namespace

uint64_t PageFile::PathVersion(const std::string& path) {
  return VersionRegistry::Instance().Lookup(path);
}

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/file-create"));
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IoError("cannot create file '" + path + "'");
  }
  // Truncating is a write: any cached artifact derived from a previous
  // file at this path must stop matching.
  const uint64_t version = VersionRegistry::Instance().Stamp(path);
  return std::unique_ptr<PageFile>(new PageFile(path, f, 0, version));
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/file-open"));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return Status::IoError("cannot open file '" + path + "'");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek in file '" + path + "'");
  }
  const long size = std::ftell(f);
  if (size < 0 || static_cast<size_t>(size) % kPageSize != 0) {
    std::fclose(f);
    return Status::IoError("file '" + path + "' is not page-aligned");
  }
  const uint64_t version = VersionRegistry::Instance().OpenVersion(path);
  return std::unique_ptr<PageFile>(new PageFile(
      path, f, static_cast<PageId>(size / kPageSize), version));
}

PageFile::~PageFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PageFile::ReadPage(PageId id, Page* page) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/page-read"));
  if (id >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " out of range in '" + path_ + "'");
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(page->raw(), kPageSize, 1, file_) != 1) {
    return Status::IoError("read failed on '" + path_ + "'");
  }
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const Page& page) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/page-write"));
  if (id > num_pages_) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " beyond end of '" + path_ + "'");
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(page.raw(), kPageSize, 1, file_) != 1) {
    return Status::IoError("write failed on '" + path_ + "'");
  }
  if (id == num_pages_) ++num_pages_;
  version_ = VersionRegistry::Instance().Stamp(path_);
  return Status::OK();
}

Result<PageId> PageFile::AppendPage(const Page& page) {
  const PageId id = num_pages_;
  FUZZYDB_RETURN_IF_ERROR(WritePage(id, page));
  return id;
}

void RemoveFileIfExists(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace fuzzydb
