// Durable storage of a whole catalog.
//
// A saved database is a directory containing
//   catalog.meta  -- a text manifest: linguistic terms, relation schemas
//   rel_<i>.fdb   -- one heap file of tuples per relation
//
// The manifest is line-oriented with tab-separated fields so names may
// contain spaces ("medium young"). Loading reconstructs an in-memory
// Catalog; all page traffic flows through the caller's BufferPool.
#ifndef FUZZYDB_STORAGE_DATABASE_H_
#define FUZZYDB_STORAGE_DATABASE_H_

#include <string>

#include "common/status.h"
#include "relational/catalog.h"
#include "storage/buffer_pool.h"

namespace fuzzydb {

/// Saves `catalog` (relations + term definitions) under `directory`,
/// creating it if needed and replacing any database already there.
Status SaveDatabase(const Catalog& catalog, const std::string& directory,
                    BufferPool* pool);

/// Loads the database stored under `directory`.
Result<Catalog> LoadDatabase(const std::string& directory, BufferPool* pool);

}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_DATABASE_H_
