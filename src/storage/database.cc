#include "storage/database.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "storage/heap_file.h"

namespace fuzzydb {

namespace {

constexpr char kManifestName[] = "catalog.meta";
constexpr char kMagic[] = "fuzzydb";
constexpr int kVersion = 1;

Status EnsureDirectory(const std::string& directory) {
  struct stat st;
  if (stat(directory.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::IoError("'" + directory + "' exists and is not a directory");
    }
    return Status::OK();
  }
  if (mkdir(directory.c_str(), 0755) != 0) {
    return Status::IoError("cannot create directory '" + directory + "'");
  }
  return Status::OK();
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

Result<double> ParseDouble(const std::string& field) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == nullptr || *end != '\0' || field.empty()) {
    return Status::IoError("bad numeric field '" + field + "' in manifest");
  }
  return v;
}

Result<ValueType> ParseType(const std::string& field) {
  if (field == "STRING") return ValueType::kString;
  if (field == "FUZZY") return ValueType::kFuzzy;
  if (field == "NULL") return ValueType::kNull;
  return Status::IoError("bad column type '" + field + "' in manifest");
}

}  // namespace

Status SaveDatabase(const Catalog& catalog, const std::string& directory,
                    BufferPool* pool) {
  FUZZYDB_RETURN_IF_ERROR(EnsureDirectory(directory));

  std::ostringstream manifest;
  manifest << kMagic << "\t" << kVersion << "\n";

  for (const std::string& term : catalog.terms().Names()) {
    FUZZYDB_ASSIGN_OR_RETURN(Trapezoid t, catalog.terms().Lookup(term));
    manifest << "term\t" << term << "\t" << FormatDouble(t.a(), 17) << "\t"
             << FormatDouble(t.b(), 17) << "\t" << FormatDouble(t.c(), 17)
             << "\t" << FormatDouble(t.d(), 17) << "\n";
  }

  size_t index = 0;
  for (const std::string& name : catalog.RelationNames()) {
    FUZZYDB_ASSIGN_OR_RETURN(const Relation* relation,
                             catalog.GetRelation(name));
    const std::string file_name = "rel_" + std::to_string(index++) + ".fdb";
    manifest << "relation\t" << relation->name() << "\t" << file_name << "\t"
             << relation->schema().NumColumns() << "\n";
    for (const Column& column : relation->schema().columns()) {
      manifest << "col\t" << column.name << "\t" << ValueTypeName(column.type)
               << "\n";
    }
    FUZZYDB_ASSIGN_OR_RETURN(
        auto file,
        WriteRelationToFile(*relation, directory + "/" + file_name, pool));
    pool->Invalidate(file.get());
  }
  manifest << "end\n";

  const std::string manifest_path = directory + "/" + kManifestName;
  std::ofstream out(manifest_path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot write manifest '" + manifest_path + "'");
  }
  out << manifest.str();
  out.close();
  if (!out) {
    return Status::IoError("failed writing manifest '" + manifest_path + "'");
  }
  return Status::OK();
}

Result<Catalog> LoadDatabase(const std::string& directory, BufferPool* pool) {
  const std::string manifest_path = directory + "/" + kManifestName;
  std::ifstream in(manifest_path);
  if (!in) {
    return Status::NotFound("no database manifest at '" + manifest_path + "'");
  }

  Catalog catalog;
  catalog.mutable_terms() = TermDictionary();  // only persisted terms

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty manifest");
  }
  {
    const auto fields = SplitTabs(line);
    if (fields.size() != 2 || fields[0] != kMagic) {
      return Status::IoError("bad manifest header");
    }
  }

  // Pending relation being parsed.
  std::string rel_name, rel_file;
  size_t cols_expected = 0;
  Schema schema;

  auto finish_relation = [&]() -> Status {
    if (rel_name.empty()) return Status::OK();
    if (schema.NumColumns() != cols_expected) {
      return Status::IoError("manifest column count mismatch for '" +
                             rel_name + "'");
    }
    FUZZYDB_ASSIGN_OR_RETURN(auto file,
                             PageFile::Open(directory + "/" + rel_file));
    FUZZYDB_ASSIGN_OR_RETURN(
        Relation relation,
        ReadRelationFromFile(file.get(), pool, rel_name, schema));
    pool->Invalidate(file.get());
    FUZZYDB_RETURN_IF_ERROR(catalog.AddRelation(std::move(relation)));
    rel_name.clear();
    schema = Schema();
    return Status::OK();
  };

  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = SplitTabs(line);
    const std::string& kind = fields[0];
    if (kind == "term") {
      if (fields.size() != 6) return Status::IoError("bad term line");
      double corners[4];
      for (int i = 0; i < 4; ++i) {
        FUZZYDB_ASSIGN_OR_RETURN(corners[i], ParseDouble(fields[2 + i]));
      }
      catalog.mutable_terms().Define(
          fields[1], Trapezoid(corners[0], corners[1], corners[2], corners[3]));
    } else if (kind == "relation") {
      FUZZYDB_RETURN_IF_ERROR(finish_relation());
      if (fields.size() != 4) return Status::IoError("bad relation line");
      rel_name = fields[1];
      rel_file = fields[2];
      FUZZYDB_ASSIGN_OR_RETURN(const double n, ParseDouble(fields[3]));
      cols_expected = static_cast<size_t>(n);
    } else if (kind == "col") {
      if (fields.size() != 3) return Status::IoError("bad column line");
      FUZZYDB_ASSIGN_OR_RETURN(ValueType type, ParseType(fields[2]));
      FUZZYDB_RETURN_IF_ERROR(schema.AddColumn(Column{fields[1], type}));
    } else if (kind == "end") {
      FUZZYDB_RETURN_IF_ERROR(finish_relation());
      saw_end = true;
      break;
    } else {
      return Status::IoError("unknown manifest entry '" + kind + "'");
    }
  }
  if (!saw_end) {
    return Status::IoError("manifest truncated (no end marker)");
  }
  return catalog;
}

}  // namespace fuzzydb
