// Page-granular file storage.
#ifndef FUZZYDB_STORAGE_FILE_MANAGER_H_
#define FUZZYDB_STORAGE_FILE_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace fuzzydb {

/// A file of fixed-size pages. Thin wrapper over stdio with page-granular
/// reads and writes; all I/O accounting happens in the BufferPool above.
class PageFile {
 public:
  /// Creates (truncating) or opens a page file.
  static Result<std::unique_ptr<PageFile>> Create(const std::string& path);
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path);

  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Number of pages currently in the file.
  PageId NumPages() const { return num_pages_; }

  /// Reads page `id` into `*page`.
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at `id`; `id` may be at most NumPages() (append).
  Status WritePage(PageId id, const Page& page);

  /// Appends a page, returning its id.
  Result<PageId> AppendPage(const Page& page);

  const std::string& path() const { return path_; }

  /// Write version of this file, from a process-wide path -> LSN registry.
  /// Create stamps a fresh LSN; Open reuses the registered LSN (so two
  /// opens of an unchanged file agree, which is what lets the sorted-run
  /// cache key on (path, version) across queries); every successful write
  /// advances both the registry and this handle. A cache entry keyed by
  /// the version therefore cannot be served after the file changed.
  uint64_t version() const { return version_; }

  /// Registry LSN currently recorded for `path` (0 if never seen).
  static uint64_t PathVersion(const std::string& path);

 private:
  PageFile(std::string path, std::FILE* file, PageId num_pages,
           uint64_t version)
      : path_(std::move(path)),
        file_(file),
        num_pages_(num_pages),
        version_(version) {}

  std::string path_;
  std::FILE* file_;
  PageId num_pages_;
  uint64_t version_;
};

/// Deletes the file at `path` if it exists.
void RemoveFileIfExists(const std::string& path);

}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_FILE_MANAGER_H_
