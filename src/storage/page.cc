#include "storage/page.h"

namespace fuzzydb {

namespace {
constexpr size_t kNumSlotsOffset = 0;
constexpr size_t kFreeEndOffset = 2;
constexpr size_t kHeaderSize = 4;
constexpr size_t kSlotSize = 4;  // u16 offset + u16 length
}  // namespace

void Page::Reset() {
  std::memset(bytes_, 0, kPageSize);
  WriteU16(kNumSlotsOffset, 0);
  WriteU16(kFreeEndOffset, static_cast<uint16_t>(kPageSize));
}

uint16_t Page::ReadU16(size_t offset) const {
  uint16_t v;
  std::memcpy(&v, bytes_ + offset, sizeof(v));
  return v;
}

void Page::WriteU16(size_t offset, uint16_t value) {
  std::memcpy(bytes_ + offset, &value, sizeof(value));
}

uint16_t Page::NumRecords() const { return ReadU16(kNumSlotsOffset); }

size_t Page::FreeSpace() const {
  const size_t slots_end = kHeaderSize + NumRecords() * kSlotSize;
  const size_t free_end = ReadU16(kFreeEndOffset);
  const size_t available = free_end > slots_end ? free_end - slots_end : 0;
  return available > kSlotSize ? available - kSlotSize : 0;
}

bool Page::Fits(size_t length) const { return length <= FreeSpace(); }

int Page::Insert(const uint8_t* data, size_t length) {
  if (!Fits(length)) return -1;
  const uint16_t num_slots = NumRecords();
  const uint16_t free_end = ReadU16(kFreeEndOffset);
  const uint16_t record_offset = static_cast<uint16_t>(free_end - length);
  std::memcpy(bytes_ + record_offset, data, length);
  const size_t slot_offset = kHeaderSize + num_slots * kSlotSize;
  WriteU16(slot_offset, record_offset);
  WriteU16(slot_offset + 2, static_cast<uint16_t>(length));
  WriteU16(kNumSlotsOffset, static_cast<uint16_t>(num_slots + 1));
  WriteU16(kFreeEndOffset, record_offset);
  return num_slots;
}

const uint8_t* Page::Record(uint16_t slot, uint16_t* length) const {
  const size_t slot_offset = kHeaderSize + slot * kSlotSize;
  const uint16_t record_offset = ReadU16(slot_offset);
  *length = ReadU16(slot_offset + 2);
  return bytes_ + record_offset;
}

}  // namespace fuzzydb
