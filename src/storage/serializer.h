// Tuple (de)serialization for page storage.
//
// Record format:
//   [u8 value_count]
//   value_count x value:
//     [u8 ValueType tag] then
//       NULL:   (nothing)
//       STRING: [u32 length][bytes]
//       FUZZY:  [f64 a][f64 b][f64 c][f64 d]
//   [f64 degree]
// plus optional trailing padding (used by the workload generator to reach
// a target tuple size, mirroring the paper's 128..2048-byte tuples):
//   [u32 pad_length][pad bytes]
#ifndef FUZZYDB_STORAGE_SERIALIZER_H_
#define FUZZYDB_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "relational/tuple.h"

namespace fuzzydb {

/// Serializes `tuple` into `out` (cleared first). When `min_size` > 0 the
/// record is padded up to at least `min_size` bytes.
void SerializeTuple(const Tuple& tuple, std::vector<uint8_t>* out,
                    size_t min_size = 0);

/// Parses a record produced by SerializeTuple.
Result<Tuple> DeserializeTuple(const uint8_t* data, size_t length);

/// Size in bytes SerializeTuple would produce without padding.
size_t SerializedTupleSize(const Tuple& tuple);

}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_SERIALIZER_H_
