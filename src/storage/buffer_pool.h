// An LRU buffer pool with I/O accounting.
//
// Mirrors the paper's experimental setup: a fixed number of main-memory
// buffer pages sits between the algorithms and the page files, and every
// page transfer is counted (Fig. 3 reports I/O counts; the analysis in
// Section 3 reasons in buffer pages M). Writes are write-through, so
// eviction never needs a flush.
#ifndef FUZZYDB_STORAGE_BUFFER_POOL_H_
#define FUZZYDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>

#include "common/status.h"
#include "storage/file_manager.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace fuzzydb {

/// Caches pages of PageFiles with LRU replacement.
class BufferPool {
 public:
  /// `capacity` is M, the number of buffer pages. `stats` may be null.
  explicit BufferPool(size_t capacity, IoStats* stats = nullptr);

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity);

  /// Returns the page, reading it from the file on a miss. The pointer is
  /// valid until the next GetPage/WritePage call (pages are unpinned; the
  /// caller must copy anything it needs across calls).
  Result<const Page*> GetPage(PageFile* file, PageId id);

  /// Write-through: updates the file (counting one page write) and the
  /// cached copy if present.
  Status WritePage(PageFile* file, PageId id, const Page& page);

  /// Drops all cached pages belonging to `file` (call before deleting or
  /// truncating a file).
  void Invalidate(PageFile* file);

  /// Drops everything.
  void Clear();

  const IoStats& stats() const { return local_stats_; }
  void ResetStats() { local_stats_.Reset(); }

  /// Simulated device latency added to every page read miss and page
  /// write, in microseconds. The paper's experiments ran on a 1991 disk;
  /// on a modern machine the files live in the OS page cache, so without
  /// this the I/O share of response time (Tables 2-4) would vanish.
  /// Default 0 (off); the benchmark harness enables it.
  void set_simulated_latency_us(uint64_t us) { simulated_latency_us_ = us; }
  uint64_t simulated_latency_us() const { return simulated_latency_us_; }

  /// Process-wide default applied to newly constructed pools (the join
  /// operators create internal pools; the bench harness sets this once).
  static void SetDefaultSimulatedLatencyUs(uint64_t us);
  static uint64_t DefaultSimulatedLatencyUs();

 private:
  struct Frame {
    PageFile* file;
    PageId id;
    Page page;
  };
  using FrameList = std::list<Frame>;
  using Key = std::pair<PageFile*, PageId>;

  void Touch(FrameList::iterator it);
  void CountRead();
  void CountWrite();
  void CountHit();
  void SimulateDeviceLatency() const;

  size_t capacity_;
  uint64_t simulated_latency_us_ = 0;
  IoStats* stats_;
  IoStats local_stats_;
  FrameList frames_;                       // front = most recently used
  std::map<Key, FrameList::iterator> index_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_BUFFER_POOL_H_
