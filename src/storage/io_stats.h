// I/O accounting.
//
// The paper reports page I/O counts (Fig. 3 plots "Number of IOs") and
// derives cost formulas in page units (b_R, b_S). IoStats counts every
// page transferred between the buffer pool and files; the benchmark
// harness reads and resets these counters around each measured phase.
#ifndef FUZZYDB_STORAGE_IO_STATS_H_
#define FUZZYDB_STORAGE_IO_STATS_H_

#include <cstdint>

namespace fuzzydb {

/// Counters for page traffic and buffer behaviour.
struct IoStats {
  uint64_t page_reads = 0;    // pages fetched from a file
  uint64_t page_writes = 0;   // pages flushed to a file
  uint64_t buffer_hits = 0;   // requests served without a file read

  uint64_t TotalIos() const { return page_reads + page_writes; }

  void Reset() { *this = IoStats{}; }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.page_reads = page_reads - other.page_reads;
    d.page_writes = page_writes - other.page_writes;
    d.buffer_hits = buffer_hits - other.buffer_hits;
    return d;
  }

  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    buffer_hits += other.buffer_hits;
    return *this;
  }

  /// Difference against an earlier snapshot that clamps at zero instead
  /// of wrapping when the snapshot discipline was violated; sets
  /// *clamped (may be null) when any counter would have gone negative.
  /// See CpuStats::CheckedDelta.
  IoStats CheckedDelta(const IoStats& earlier,
                       bool* clamped = nullptr) const {
    IoStats d;
    auto sub = [&](uint64_t now, uint64_t before) -> uint64_t {
      if (now >= before) return now - before;
      if (clamped != nullptr) *clamped = true;
      return 0;
    };
    d.page_reads = sub(page_reads, earlier.page_reads);
    d.page_writes = sub(page_writes, earlier.page_writes);
    d.buffer_hits = sub(buffer_hits, earlier.buffer_hits);
    return d;
  }

  bool operator==(const IoStats&) const = default;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_IO_STATS_H_
