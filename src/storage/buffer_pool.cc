#include "storage/buffer_pool.h"

#include <cassert>
#include <ctime>

#include "common/failpoint.h"

namespace fuzzydb {

namespace {
uint64_t g_default_simulated_latency_us = 0;
}  // namespace

void BufferPool::SetDefaultSimulatedLatencyUs(uint64_t us) {
  g_default_simulated_latency_us = us;
}

uint64_t BufferPool::DefaultSimulatedLatencyUs() {
  return g_default_simulated_latency_us;
}

BufferPool::BufferPool(size_t capacity, IoStats* stats)
    : capacity_(capacity == 0 ? 1 : capacity),
      simulated_latency_us_(g_default_simulated_latency_us),
      stats_(stats) {}

void BufferPool::set_capacity(size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  while (frames_.size() > capacity_) {
    const Frame& victim = frames_.back();
    index_.erase({victim.file, victim.id});
    frames_.pop_back();
  }
}

void BufferPool::SimulateDeviceLatency() const {
  if (simulated_latency_us_ == 0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(simulated_latency_us_ / 1000000);
  ts.tv_nsec = static_cast<long>((simulated_latency_us_ % 1000000) * 1000);
  nanosleep(&ts, nullptr);
}

void BufferPool::CountRead() {
  ++local_stats_.page_reads;
  if (stats_ != nullptr) ++stats_->page_reads;
  SimulateDeviceLatency();
}

void BufferPool::CountWrite() {
  ++local_stats_.page_writes;
  if (stats_ != nullptr) ++stats_->page_writes;
  SimulateDeviceLatency();
}

void BufferPool::CountHit() {
  ++local_stats_.buffer_hits;
  if (stats_ != nullptr) ++stats_->buffer_hits;
}

void BufferPool::Touch(FrameList::iterator it) {
  frames_.splice(frames_.begin(), frames_, it);
}

Result<const Page*> BufferPool::GetPage(PageFile* file, PageId id) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("bufferpool/get-page"));
  const Key key{file, id};
  auto found = index_.find(key);
  if (found != index_.end()) {
    CountHit();
    Touch(found->second);
    return const_cast<const Page*>(&frames_.front().page);
  }
  // Miss: evict if full, then read.
  if (frames_.size() >= capacity_) {
    const Frame& victim = frames_.back();
    index_.erase({victim.file, victim.id});
    frames_.pop_back();
  }
  frames_.emplace_front();
  Frame& frame = frames_.front();
  frame.file = file;
  frame.id = id;
  const Status st = file->ReadPage(id, &frame.page);
  if (!st.ok()) {
    frames_.pop_front();
    return st;
  }
  CountRead();
  index_[key] = frames_.begin();
  return const_cast<const Page*>(&frames_.front().page);
}

Status BufferPool::WritePage(PageFile* file, PageId id, const Page& page) {
  FUZZYDB_RETURN_IF_ERROR(file->WritePage(id, page));
  CountWrite();
  auto found = index_.find({file, id});
  if (found != index_.end()) {
    found->second->page = page;
    Touch(found->second);
  }
  return Status::OK();
}

void BufferPool::Invalidate(PageFile* file) {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->file == file) {
      index_.erase({it->file, it->id});
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferPool::Clear() {
  frames_.clear();
  index_.clear();
}

}  // namespace fuzzydb
