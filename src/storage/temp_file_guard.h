// RAII cleanup of temporary files (sort runs, partition spills).
//
// Operators that materialize temporaries track each path as soon as the
// file is created; the success path Untracks (or Dismisses) after its
// own cleanup, and any early-error return sweeps the leftovers here, so
// a failed query leaves no *.run / partition files behind.
//
// Error-path pool hygiene: by the time the guard runs, the PageFile
// objects for the tracked paths have usually been destroyed, leaving
// BufferPool frames keyed by dangling PageFile pointers (a later file
// allocated at the same address would get bogus cache hits). If anything
// is swept, the guard clears the whole pool -- the pool is write-through
// (no dirty pages), so this only costs re-reads on an already-failed
// query.
#ifndef FUZZYDB_STORAGE_TEMP_FILE_GUARD_H_
#define FUZZYDB_STORAGE_TEMP_FILE_GUARD_H_

#include <algorithm>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/file_manager.h"

namespace fuzzydb {

class TempFileGuard {
 public:
  explicit TempFileGuard(BufferPool* pool = nullptr) : pool_(pool) {}
  TempFileGuard(const TempFileGuard&) = delete;
  TempFileGuard& operator=(const TempFileGuard&) = delete;

  ~TempFileGuard() {
    if (dismissed_ || paths_.empty()) return;
    if (pool_ != nullptr) pool_->Clear();
    for (const std::string& path : paths_) RemoveFileIfExists(path);
  }

  void Track(std::string path) { paths_.push_back(std::move(path)); }

  void Untrack(const std::string& path) {
    paths_.erase(std::remove(paths_.begin(), paths_.end(), path),
                 paths_.end());
  }

  /// The success path: nothing is removed at destruction.
  void Dismiss() { dismissed_ = true; }

 private:
  BufferPool* pool_;
  std::vector<std::string> paths_;
  bool dismissed_ = false;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_TEMP_FILE_GUARD_H_
