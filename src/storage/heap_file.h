// Heap files: sequences of tuples stored on slotted pages.
//
// A relation's tuples are appended in arrival (or sorted) order; scans are
// sequential. All page traffic flows through a BufferPool so the paper's
// I/O counts are observable.
#ifndef FUZZYDB_STORAGE_HEAP_FILE_H_
#define FUZZYDB_STORAGE_HEAP_FILE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "storage/buffer_pool.h"
#include "storage/file_manager.h"
#include "storage/serializer.h"

namespace fuzzydb {

/// Appends tuples to a PageFile page by page. Call Finish() to flush the
/// final partial page.
class HeapFileWriter {
 public:
  /// `min_record_size`: pad each record to at least this many bytes (the
  /// paper's experiments control tuple size from 128 to 2048 bytes).
  HeapFileWriter(PageFile* file, BufferPool* pool, size_t min_record_size = 0)
      : file_(file), pool_(pool), min_record_size_(min_record_size) {}

  Status Append(const Tuple& tuple);
  Status Finish();

  uint64_t tuples_written() const { return tuples_written_; }

 private:
  PageFile* file_;
  BufferPool* pool_;
  size_t min_record_size_;
  Page current_;
  bool current_dirty_ = false;
  uint64_t tuples_written_ = 0;
  std::vector<uint8_t> scratch_;
};

/// Sequential scan over a heap file, tuple at a time, through the pool.
class HeapFileScanner {
 public:
  HeapFileScanner(PageFile* file, BufferPool* pool)
      : file_(file), pool_(pool) {}

  /// Fetches the next tuple. Sets *has_tuple = false at end of file.
  Status Next(Tuple* tuple, bool* has_tuple);

  /// Restarts the scan from the beginning.
  void Rewind();

  /// Restarts the scan from page `page`, slot 0.
  void SeekToPage(PageId page);

  PageId current_page() const { return page_; }

 private:
  PageFile* file_;
  BufferPool* pool_;
  PageId page_ = 0;
  uint16_t slot_ = 0;
};

/// Writes all tuples of `relation` into a fresh page file at `path`.
Result<std::unique_ptr<PageFile>> WriteRelationToFile(
    const Relation& relation, const std::string& path, BufferPool* pool,
    size_t min_record_size = 0);

/// Reads an entire heap file into an in-memory Relation (schema supplied
/// by the caller).
Result<Relation> ReadRelationFromFile(PageFile* file, BufferPool* pool,
                                      const std::string& name,
                                      const Schema& schema);

}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_HEAP_FILE_H_
