// Slotted pages.
//
// The experiments in the paper use 8 KB pages ("one buffer page (8 k-bytes)
// is allocated to the inner relation..."). A page stores variable-length
// tuple records through a slot directory growing from the front while
// record payloads grow from the back.
#ifndef FUZZYDB_STORAGE_PAGE_H_
#define FUZZYDB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace fuzzydb {

/// Page size in bytes, matching the paper's experimental setup.
inline constexpr size_t kPageSize = 8192;

/// Identifies a page within a file.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// A slotted page. Layout:
///   [u16 num_slots][u16 free_end][slot 0][slot 1]... payload ...[end]
/// where each slot is {u16 offset, u16 length} and payloads are allocated
/// from the end of the page downwards.
class Page {
 public:
  Page() { Reset(); }

  /// Clears the page to the empty state.
  void Reset();

  /// Number of records on the page.
  uint16_t NumRecords() const;

  /// Free bytes available for one more record (slot overhead included).
  size_t FreeSpace() const;

  /// True if a record of `length` bytes fits.
  bool Fits(size_t length) const;

  /// Appends a record; returns its slot index or -1 when it doesn't fit.
  int Insert(const uint8_t* data, size_t length);

  /// Pointer to the record in slot `slot`; length returned via out-param.
  const uint8_t* Record(uint16_t slot, uint16_t* length) const;

  uint8_t* raw() { return bytes_; }
  const uint8_t* raw() const { return bytes_; }

 private:
  uint16_t ReadU16(size_t offset) const;
  void WriteU16(size_t offset, uint16_t value);

  uint8_t bytes_[kPageSize];
};

}  // namespace fuzzydb

#endif  // FUZZYDB_STORAGE_PAGE_H_
