#include "parallel/thread_pool.h"

#include <utility>

#include "obs/metrics.h"

namespace fuzzydb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(
        QueuedTask{std::move(task), std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front().task);
      enqueued = queue_.front().enqueued;
      queue_.pop_front();
    }
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - enqueued);
      m->morsel_queue_wait_us->Record(
          static_cast<uint64_t>(waited.count()));
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace fuzzydb
