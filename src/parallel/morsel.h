// Morsel scheduling: a shared atomic cursor over tuple ranges.
//
// A "morsel" is a small contiguous range of tuple indices (~2048 tuples,
// following the morsel-driven parallelism design of HyPer) that one
// worker processes at a time. Workers pull morsels from a MorselCursor
// until it is exhausted; the atomic fetch-add makes the handout lock-free
// and naturally load-balanced.
//
// Crucially, the *decomposition* into morsels is a pure function of
// (total, morsel_size) -- morsel k always covers
// [k * morsel_size, min((k + 1) * morsel_size, total)) -- regardless of
// how many workers pull from the cursor or in which order. Operators that
// keep per-morsel outputs (merged in morsel order) and per-worker
// statistics (summed at the barrier) are therefore bit-for-bit
// deterministic across thread counts.
#ifndef FUZZYDB_PARALLEL_MORSEL_H_
#define FUZZYDB_PARALLEL_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace fuzzydb {

/// Hands out fixed-size index ranges [begin, end) from an atomic cursor.
class MorselCursor {
 public:
  /// Ranges cover [0, total) in chunks of `morsel_size` (at least 1).
  MorselCursor(size_t total, size_t morsel_size)
      : total_(total), morsel_size_(morsel_size == 0 ? 1 : morsel_size) {}

  /// Claims the next morsel. Returns false when the input is exhausted;
  /// every call after exhaustion keeps returning false. Thread-safe.
  bool Next(size_t* begin, size_t* end) {
    const size_t b = next_.fetch_add(morsel_size_, std::memory_order_relaxed);
    if (b >= total_) return false;
    *begin = b;
    *end = b + morsel_size_ < total_ ? b + morsel_size_ : total_;
    return true;
  }

  /// Number of morsels the input decomposes into.
  size_t NumMorsels() const {
    return (total_ + morsel_size_ - 1) / morsel_size_;
  }

  size_t total() const { return total_; }
  size_t morsel_size() const { return morsel_size_; }

 private:
  const size_t total_;
  const size_t morsel_size_;
  std::atomic<size_t> next_{0};
};

/// The fixed decomposition a MorselCursor hands out, materialized in
/// order: morsel k is [k * morsel_size, min((k + 1) * morsel_size, total)).
std::vector<std::pair<size_t, size_t>> MorselRanges(size_t total,
                                                    size_t morsel_size);

}  // namespace fuzzydb

#endif  // FUZZYDB_PARALLEL_MORSEL_H_
