// A fixed-size thread pool for morsel-driven operator parallelism.
//
// The pool is deliberately minimal: a fixed set of workers, a FIFO task
// queue, and future-based completion/exception propagation. Operators do
// not submit fine-grained tasks here directly -- they go through
// ParallelFor (parallel_for.h), which submits one long-running task per
// worker and lets the workers pull tuple-range morsels from a shared
// atomic cursor (morsel.h). That keeps queue traffic independent of the
// input size.
#ifndef FUZZYDB_PARALLEL_THREAD_POOL_H_
#define FUZZYDB_PARALLEL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fuzzydb {

/// Fixed-size pool of worker threads executing submitted tasks in FIFO
/// order. Destruction drains every task already submitted (their futures
/// become ready) before joining the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Completes all pending tasks, then joins the workers.
  ~ThreadPool();

  /// Number of worker threads.
  size_t size() const { return threads_.size(); }

  /// Enqueues `fn`. The returned future becomes ready when the task has
  /// run; if the task threw, the exception is rethrown by `get()`.
  /// Must not be called after (or concurrently with) destruction.
  std::future<void> Submit(std::function<void()> fn);

 private:
  void WorkerLoop();

  /// A queued task plus its enqueue time, so the dequeuing worker can
  /// report scheduling delay (fuzzydb_morsel_queue_wait_us).
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;  // guarded by mu_
  bool shutting_down_ = false;    // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_PARALLEL_THREAD_POOL_H_
