#include "parallel/parallel_for.h"

#include <exception>
#include <future>

#include "obs/query_registry.h"

namespace fuzzydb {

size_t WorkerSlots(const ParallelContext& ctx) {
  return ctx.pool == nullptr || ctx.pool->size() == 0 ? 1 : ctx.pool->size();
}

void ParallelFor(const ParallelContext& ctx, size_t total,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  ParallelFor(ctx, total, ctx.morsel_size, body);
}

void ParallelFor(const ParallelContext& ctx, size_t total, size_t morsel_size,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (total == 0) return;
  MorselCursor cursor(total, morsel_size);
  if (ctx.pool == nullptr || ctx.pool->size() <= 1 ||
      cursor.NumMorsels() <= 1) {
    // Serial: the calling thread drains the cursor as worker 0. Same
    // morsel decomposition as the parallel path, so per-morsel work (and
    // anything counted inside it) is identical.
    size_t begin = 0, end = 0;
    while (!QueryStopRequested(ctx.query) && cursor.Next(&begin, &end)) {
      body(0, begin, end);
      if (ctx.progress != nullptr) ctx.progress->AddMorsel(end - begin);
    }
    return;
  }

  const size_t workers = std::min(ctx.pool->size(), cursor.NumMorsels());
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(ctx.pool->Submit([&ctx, &cursor, &body, w] {
      size_t begin = 0, end = 0;
      while (!QueryStopRequested(ctx.query) && cursor.Next(&begin, &end)) {
        body(w, begin, end);
        if (ctx.progress != nullptr) ctx.progress->AddMorsel(end - begin);
      }
    }));
  }
  // Barrier: wait for every worker, remember the first failure, rethrow
  // after all of them stopped touching shared state.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace fuzzydb
