#include "parallel/morsel.h"

namespace fuzzydb {

std::vector<std::pair<size_t, size_t>> MorselRanges(size_t total,
                                                    size_t morsel_size) {
  MorselCursor cursor(total, morsel_size);
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(cursor.NumMorsels());
  size_t begin = 0, end = 0;
  while (cursor.Next(&begin, &end)) ranges.emplace_back(begin, end);
  return ranges;
}

}  // namespace fuzzydb
