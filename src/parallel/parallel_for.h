// ParallelFor / ParallelSort: the facade engine operators use.
//
// Both primitives are *deterministic across thread counts*: the work
// decomposition is a pure function of (input size, morsel size), only the
// assignment of morsels to workers varies. An operator that
//   - writes per-morsel outputs merged in morsel order, and
//   - tallies statistics into per-worker slots summed at the barrier
// produces identical results (tuples, degrees, and counters) whether it
// runs on one thread or sixteen. The equivalence/determinism tests
// enforce this property for every query type.
#ifndef FUZZYDB_PARALLEL_PARALLEL_FOR_H_
#define FUZZYDB_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "common/query_context.h"
#include "parallel/morsel.h"
#include "parallel/thread_pool.h"

namespace fuzzydb {

class CacheManager;
class QueryProgress;

/// How an operator should parallelize: the pool to run on (null = run on
/// the calling thread) and the morsel granularity.
struct ParallelContext {
  ThreadPool* pool = nullptr;  // not owned; nullptr means serial
  size_t morsel_size = 2048;   // tuples per morsel

  /// Governance: when set, morsel dispatch stops as soon as the query is
  /// cancelled, past its deadline, or over budget -- workers finish the
  /// morsel in hand and stop pulling, bounding the latency of a stop
  /// request to one morsel. Null means ungoverned (run to completion).
  const QueryContext* query = nullptr;  // not owned

  /// Cross-query cache consulted by the evaluator's operators (see
  /// cache/cache_manager.h). Null or capacity 0 means no caching; always
  /// consulted from the coordinating thread only, so cache stats stay
  /// thread-count invariant.
  CacheManager* cache = nullptr;  // not owned

  /// Lanes per batch for the batch-at-a-time degree kernels inside
  /// morsel bodies (ExecOptions::batch_size, clamped by the operators
  /// to TrapezoidBatch::kCapacity); 0 = scalar tuple-at-a-time path.
  /// Batches never span a morsel, so batch decomposition -- like the
  /// morsel decomposition -- is a pure function of (size, morsel_size,
  /// batch_size), independent of thread count.
  size_t batch_size = 1024;

  /// ExecOptions::cost_based, threaded through so deeply nested
  /// operators (chain steps, subquery windows) know whether to compute
  /// statistics-based estimates and cost-picked algorithms. Planning
  /// inputs are thread-count invariant, so this knob never changes
  /// results -- see engine/cost_model.h.
  bool cost_based = true;

  /// Live progress for SHOW QUERIES (see obs/query_registry.h): every
  /// completed morsel bumps its morsel/item counters with one relaxed
  /// add from whichever worker finished it. The counted totals are a
  /// pure function of the morsel decomposition, hence thread-count
  /// invariant. Null (the default) costs one pointer test per morsel.
  QueryProgress* progress = nullptr;  // not owned
};

/// Number of distinct worker slots a ParallelFor body may observe; size
/// per-worker statistics buffers with this.
size_t WorkerSlots(const ParallelContext& ctx);

/// Runs `body(worker, begin, end)` over every morsel of [0, total).
/// `worker` is in [0, WorkerSlots(ctx)); each worker processes one morsel
/// at a time, so per-worker state needs no synchronization. Blocks until
/// all morsels are done; the first exception thrown by a body is
/// rethrown here (remaining morsels still complete). Must not be called
/// from inside a pool worker (the pool does not run nested tasks and the
/// barrier would deadlock once every worker waits).
void ParallelFor(const ParallelContext& ctx, size_t total,
                 const std::function<void(size_t worker, size_t begin,
                                          size_t end)>& body);

/// As above with an explicit morsel size overriding ctx.morsel_size
/// (e.g. one partition or one run-pair per morsel).
void ParallelFor(const ParallelContext& ctx, size_t total, size_t morsel_size,
                 const std::function<void(size_t worker, size_t begin,
                                          size_t end)>& body);

/// Sorts *v by the comparator `make_less` builds. `make_less` is called
/// with a `uint64_t*` the comparator must increment once per invocation;
/// the counted total (a deterministic function of the input) is added to
/// *comparisons when non-null.
///
/// Algorithm: the vector is cut into fixed runs of ctx.morsel_size, each
/// run is std::sort-ed (in parallel), and runs are combined by rounds of
/// pairwise merges with a fixed tree shape (pairs merged in parallel
/// within a round). Because the run boundaries and the merge tree depend
/// only on (size, morsel_size), the comparator call count and the final
/// element order are identical for every thread count. Inputs no larger
/// than one morsel degenerate to a single std::sort -- today's serial
/// behavior, bit for bit.
template <typename T, typename MakeLess>
void ParallelSort(const ParallelContext& ctx, std::vector<T>* v,
                  uint64_t* comparisons, MakeLess&& make_less) {
  const size_t n = v->size();
  const size_t morsel = ctx.morsel_size == 0 ? 1 : ctx.morsel_size;
  uint64_t total = 0;
  if (n <= morsel) {
    uint64_t count = 0;
    std::sort(v->begin(), v->end(), make_less(&count));
    total = count;
  } else {
    // Per-run sorts; counts are kept per run so workers never share a
    // counter (and the sum is scheduling-independent).
    const size_t num_runs = (n + morsel - 1) / morsel;
    std::vector<uint64_t> run_counts(num_runs, 0);
    ParallelFor(ctx, n, morsel, [&](size_t, size_t begin, size_t end) {
      std::sort(v->begin() + static_cast<ptrdiff_t>(begin),
                v->begin() + static_cast<ptrdiff_t>(end),
                make_less(&run_counts[begin / morsel]));
    });
    for (uint64_t c : run_counts) total += c;

    // Pairwise merge rounds over a ping-pong buffer.
    std::vector<T> buffer(n);
    std::vector<T>* src = v;
    std::vector<T>* dst = &buffer;
    for (size_t width = morsel; width < n; width *= 2) {
      const size_t num_pairs = (n + 2 * width - 1) / (2 * width);
      std::vector<uint64_t> pair_counts(num_pairs, 0);
      ParallelFor(ctx, num_pairs, 1, [&](size_t, size_t pair_begin,
                                         size_t pair_end) {
        for (size_t p = pair_begin; p < pair_end; ++p) {
          const size_t lo = p * 2 * width;
          const size_t mid = std::min(lo + width, n);
          const size_t hi = std::min(lo + 2 * width, n);
          auto from = [&](size_t i) {
            return std::make_move_iterator(src->begin() +
                                           static_cast<ptrdiff_t>(i));
          };
          if (mid < hi) {
            std::merge(from(lo), from(mid), from(mid), from(hi),
                       dst->begin() + static_cast<ptrdiff_t>(lo),
                       make_less(&pair_counts[p]));
          } else {
            // Odd run out: carried to the next round unmerged.
            std::move(src->begin() + static_cast<ptrdiff_t>(lo),
                      src->begin() + static_cast<ptrdiff_t>(hi),
                      dst->begin() + static_cast<ptrdiff_t>(lo));
          }
        }
      });
      for (uint64_t c : pair_counts) total += c;
      std::swap(src, dst);
    }
    if (src != v) *v = std::move(*src);
  }
  if (comparisons != nullptr) *comparisons += total;
}

}  // namespace fuzzydb

#endif  // FUZZYDB_PARALLEL_PARALLEL_FOR_H_
