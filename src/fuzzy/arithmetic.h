// Fuzzy arithmetic on trapezoidal distributions (Section 6 of the paper).
//
// "With a trapezoidal membership function, a fuzzy value induces two
// intervals (a-cuts): the 1-cut [b, c] and the 0-cut [a, d]. Fuzzy
// arithmetic operations take two values and determine the two intervals of
// the resulting value." Addition/subtraction/multiplication/division are
// the interval-arithmetic extensions applied to both cuts; the Fuzzy SQL
// AVG and SUM aggregates are built on them.
#ifndef FUZZYDB_FUZZY_ARITHMETIC_H_
#define FUZZYDB_FUZZY_ARITHMETIC_H_

#include "common/status.h"
#include "fuzzy/trapezoid.h"

namespace fuzzydb {

/// x + y: corner-wise interval addition on both cuts.
Trapezoid FuzzyAdd(const Trapezoid& x, const Trapezoid& y);

/// x - y: [a1 - d2, b1 - c2, c1 - b2, d1 - a2].
Trapezoid FuzzySubtract(const Trapezoid& x, const Trapezoid& y);

/// x * y: interval multiplication on both cuts (all sign combinations).
Trapezoid FuzzyMultiply(const Trapezoid& x, const Trapezoid& y);

/// x / y. Fails with InvalidArgument when the support of y contains 0.
Result<Trapezoid> FuzzyDivide(const Trapezoid& x, const Trapezoid& y);

/// x / k for a crisp non-zero scalar (used by AVG).
Trapezoid FuzzyScale(const Trapezoid& x, double k);

}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_ARITHMETIC_H_
