#include "fuzzy/term_dictionary.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace fuzzydb {

void TermDictionary::Define(const std::string& name, const Trapezoid& value) {
  terms_[ToLower(name)] = value;
}

bool TermDictionary::Contains(const std::string& name) const {
  return terms_.count(ToLower(name)) > 0;
}

Result<Trapezoid> TermDictionary::Lookup(const std::string& name) const {
  const std::string key = ToLower(name);
  auto it = terms_.find(key);
  if (it != terms_.end()) return it->second;

  // Generic "about <number>[K]" fallback.
  if (key.rfind("about ", 0) == 0) {
    std::string num = key.substr(6);
    double scale = 1.0;
    if (!num.empty() && (num.back() == 'k')) {
      scale = 1000.0;
      num.pop_back();
    }
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end) * scale;
    if (end != nullptr && *end == '\0' && !num.empty()) {
      const double spread = std::max(1.0, 0.1 * std::fabs(v));
      return Trapezoid::About(v, spread);
    }
  }
  return Status::NotFound("unknown linguistic term: '" + name + "'");
}

std::vector<std::string> TermDictionary::Names() const {
  std::vector<std::string> names;
  names.reserve(terms_.size());
  for (const auto& [name, value] : terms_) names.push_back(name);
  return names;
}

TermDictionary TermDictionary::BuiltIn() {
  TermDictionary dict;
  // AGE vocabulary (years).
  dict.Define("young", Trapezoid(0, 0, 20, 30));
  dict.Define("medium young", Trapezoid(20, 25, 30, 35));
  dict.Define("middle age", Trapezoid(31.5, 31.5, 44, 49));
  dict.Define("old", Trapezoid(55, 65, 120, 120));
  dict.Define("about 29", Trapezoid::Triangle(27, 29, 31));
  dict.Define("about 35", Trapezoid::Triangle(30, 35, 40));
  dict.Define("about 50", Trapezoid::Triangle(45, 50, 55));
  // INCOME vocabulary (thousands of dollars).
  dict.Define("low", Trapezoid(0, 0, 15, 30));
  dict.Define("medium low", Trapezoid(15, 25, 35, 45));
  dict.Define("medium high", Trapezoid(55, 60, 64, 69));
  dict.Define("high", Trapezoid(62, 67, 150, 150));
  dict.Define("about 25k", Trapezoid::Triangle(20, 25, 30));
  dict.Define("about 40k", Trapezoid::Triangle(35, 40, 45));
  dict.Define("about 60k", Trapezoid::Triangle(55, 60, 65));
  return dict;
}

}  // namespace fuzzydb
