// The linear order on fuzzy values used by the extended merge-join.
//
// Definition 3.1 of the paper: each data value v represents the interval
// [b(v), e(v)] on which its membership function is positive (for a crisp
// value, b(v) = e(v) = v). Values are ordered lexicographically by
// (b(v), e(v)):
//
//   v1 < v2  iff  b(v1) < b(v2), or b(v1) = b(v2) and e(v1) < e(v2).
//
// Tuples are ordered with respect to a join attribute X by the order of
// their X values. Two values can only have a positive equality degree when
// their intervals intersect, which is what makes the merge-join's window
// scan (Definition 3.2) correct.
#ifndef FUZZYDB_FUZZY_INTERVAL_ORDER_H_
#define FUZZYDB_FUZZY_INTERVAL_ORDER_H_

#include "fuzzy/trapezoid.h"
#include "fuzzy/trapezoid_batch.h"

namespace fuzzydb {

/// Three-way comparison under Definition 3.1: negative when x precedes y,
/// 0 when the intervals coincide, positive when x succeeds y.
int CompareIntervalOrder(const Trapezoid& x, const Trapezoid& y);

/// x strictly precedes y in the interval order.
bool IntervalOrderLess(const Trapezoid& x, const Trapezoid& y);

/// True when the supports [b(x), e(x)] and [b(y), e(y)] intersect; a
/// positive equality degree requires this.
bool SupportsIntersect(const Trapezoid& x, const Trapezoid& y);

/// True when the whole support of x lies strictly before the support of y
/// (e(x) < b(y)); such an x can never equal y and, in a sorted scan, no
/// later value can either.
bool SupportEntirelyBefore(const Trapezoid& x, const Trapezoid& y);

// Batch counterparts, one lane per trapezoid of `xs` against the probe
// `y`. Each lane agrees exactly with its scalar function above (the
// loops share the per-lane arithmetic; see fuzzy/degree_kernels.h).
// The output arrays must have room for xs.size() entries.

/// out[i] = CompareIntervalOrder(xs[i], y).
void BatchCompareIntervalOrder(const TrapezoidBatch& xs, const Trapezoid& y,
                               int* out);

/// out[i] = SupportsIntersect(xs[i], y) as 0/1.
void BatchSupportsIntersect(const TrapezoidBatch& xs, const Trapezoid& y,
                            unsigned char* out);

/// out[i] = SupportEntirelyBefore(xs[i], y) as 0/1.
void BatchSupportEntirelyBefore(const TrapezoidBatch& xs, const Trapezoid& y,
                                unsigned char* out);

}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_INTERVAL_ORDER_H_
