#include "fuzzy/necessity.h"

#include <cassert>

namespace fuzzydb {

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
    case CompareOp::kApproxEq:
      break;
  }
  assert(false && "approximate equality has no comparator complement");
  return CompareOp::kNe;
}

double NecessityDegree(const Trapezoid& x, CompareOp op, const Trapezoid& y) {
  assert(op != CompareOp::kApproxEq);
  return 1.0 - SatisfactionDegree(x, NegateCompareOp(op), y);
}

}  // namespace fuzzydb
