#include "fuzzy/degree_batch.h"

#include <cassert>
#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "fuzzy/degree_kernels.h"

namespace fuzzydb {

namespace {

// All kernels are written once against this operand view and
// instantiated for the three shapes (batch-vs-scalar, scalar-vs-batch,
// batch-vs-batch). A scalar side points at a single corner set and
// ignores the lane index, which the optimizer hoists out of the loop.
// The pointers are __restrict__ -- they address distinct SoA arrays
// (or a ScalarSide corner array), never the degree output -- which the
// phase-1 loops need to auto-vectorize without alias versioning.
template <bool kXBatch, bool kYBatch>
struct Operands {
  const double *__restrict__ xa, *__restrict__ xb;
  const double *__restrict__ xc, *__restrict__ xd;
  const double *__restrict__ ya, *__restrict__ yb;
  const double *__restrict__ yc, *__restrict__ yd;

  double XA(size_t i) const { return kXBatch ? xa[i] : *xa; }
  double XB(size_t i) const { return kXBatch ? xb[i] : *xb; }
  double XC(size_t i) const { return kXBatch ? xc[i] : *xc; }
  double XD(size_t i) const { return kXBatch ? xd[i] : *xd; }
  double YA(size_t i) const { return kYBatch ? ya[i] : *ya; }
  double YB(size_t i) const { return kYBatch ? yb[i] : *yb; }
  double YC(size_t i) const { return kYBatch ? yc[i] : *yc; }
  double YD(size_t i) const { return kYBatch ? yd[i] : *yd; }
};

using SelVec = uint32_t[TrapezoidBatch::kCapacity];
// Lane mask as doubles (0.0 / 1.0): the same 8-byte element width as
// the operand lanes, so the phase-1 loops vectorize without narrowing
// conversions (a bool/char mask store defeats the SSE2 vectorizer).
using MaskVec = double[TrapezoidBatch::kCapacity];

/// Compresses a lane mask into a selection vector; returns the count.
/// Kept out of the flat phase-1 loops so those stay auto-vectorizable
/// (the data-dependent append defeats the vectorizer). Selection only,
/// no arithmetic, so it cannot affect degree values.
///
/// The SSE2 path folds 16 lanes at a time into a movmskpd bitmap and
/// then walks only the set bits; when slow lanes are sparse (the
/// common case -- the fast paths answer most lanes) this replaces one
/// store + compare per lane with two vector ops per lane pair. SSE2 is
/// part of the x86-64 baseline, so this is not an -march dependency.
inline size_t CompressMask(const MaskVec& mask, size_t n, SelVec& sel) {
  size_t ns = 0;
  size_t i = 0;
#if defined(__SSE2__)
  const __m128d zero = _mm_setzero_pd();
  for (; i + 16 <= n; i += 16) {
    unsigned bits = 0;
    for (size_t j = 0; j < 16; j += 2) {
      const __m128d v = _mm_loadu_pd(&mask[i + j]);
      // CMPNEQPD matches the scalar mask[i] != 0.0 test exactly (mask
      // holds only 0.0 / 1.0 products, never NaN).
      bits |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmpneq_pd(v, zero)))
              << j;
    }
    while (bits != 0) {
      sel[ns++] = static_cast<uint32_t>(i) +
                  static_cast<uint32_t>(__builtin_ctz(bits));
      bits &= bits - 1;
    }
  }
#endif
  for (; i < n; ++i) {
    sel[ns] = static_cast<uint32_t>(i);
    ns += static_cast<size_t>(mask[i] != 0.0);
  }
  return ns;
}

// d(X = Y), with ~= folded in: when kApprox, Y is widened lane-wise by
// the tolerance (ApproxEqualLane does the same on the scalar path).
// Phase 1 resolves the two fast paths of EqualityLane -- the predicates
// are mutually exclusive, so evaluation order cannot matter -- and
// marks the leftover lanes for the exact candidate sweep of phase 2.
//
// The fast paths are {0,1}-valued double arithmetic, split into loops
// of at most two single-compare selects each: gcc's if-converter
// (which vectorization requires) gives up on a loop body with three or
// more selects or any compound boolean condition. Products and
// complements of exact 0.0/1.0 values are exact, so the fast-path
// degrees are bit-identical to the scalar branches.
template <bool kXBatch, bool kYBatch, bool kApprox>
void EqualityImpl(const Operands<kXBatch, kYBatch>& o, size_t n,
                  double tolerance, double* __restrict__ out) {
  MaskVec mask;
  SelVec slow;
  for (size_t i = 0; i < n; ++i) {
    const double xa = o.XA(i), xd = o.XD(i);
    const double ya = kApprox ? o.YA(i) - tolerance : o.YA(i);
    const double yd = kApprox ? o.YD(i) + tolerance : o.YD(i);
    // 1.0 when the supports intersect (LaneSupportsDisjoint negated).
    mask[i] = ((xd < ya) ? 0.0 : 1.0) * ((yd < xa) ? 0.0 : 1.0);
  }
  for (size_t i = 0; i < n; ++i) {
    const double xb = o.XB(i), xc = o.XC(i);
    const double yb = o.YB(i), yc = o.YC(i);
    // 1.0 when the cores intersect: xb <= yc && yb <= xc, equivalent
    // to LaneCoresIntersect's max/min form under the invariant b <= c.
    out[i] = ((xb <= yc) ? 1.0 : 0.0) * ((yb <= xc) ? 1.0 : 0.0);
  }
  // Slow lanes: supports intersect but cores don't. out already holds
  // the 1.0/0.0 fast-path answer (disjoint supports imply disjoint
  // cores, so out is 0.0 there). Kept as a vector pass: folding this
  // test into the scalar compress loop measures slower.
  for (size_t i = 0; i < n; ++i) {
    mask[i] *= 1.0 - out[i];
  }
  const size_t ns = CompressMask(mask, n, slow);
  for (size_t k = 0; k < ns; ++k) {
    const size_t i = slow[k];
    const double ya = kApprox ? o.YA(i) - tolerance : o.YA(i);
    const double yd = kApprox ? o.YD(i) + tolerance : o.YD(i);
    out[i] = kernel::EqualityLaneSlow(o.XA(i), o.XB(i), o.XC(i), o.XD(i),  //
                                      ya, o.YB(i), o.YC(i), yd);
  }
}

// d(X <> Y) is select-only: 1.0 unless both sides are crisp and equal.
template <bool kXBatch, bool kYBatch>
void NotEqualImpl(const Operands<kXBatch, kYBatch>& o, size_t n,
                  double* __restrict__ out) {
  for (size_t i = 0; i < n; ++i) {
    const double xa = o.XA(i), xd = o.XD(i);
    const double ya = o.YA(i), yd = o.YD(i);
    out[i] = (xa != xd || ya != yd || xa != ya) ? 1.0 : 0.0;
  }
}

// d(X <= Y). Two fast paths hold exactly (degree_batch_test sweeps
// them): a support entirely before Y's reaches the supremum 1.0 at
// v = y.b (both factors are exactly 1 there), and a support entirely
// after Y's zeroes every candidate, including the rise/fall crossing,
// which lies strictly inside (y.d, x.a).
template <bool kXBatch, bool kYBatch>
void LessEqualImpl(const Operands<kXBatch, kYBatch>& o, size_t n,
                   double* __restrict__ out) {
  MaskVec mask;
  SelVec slow;
  for (size_t i = 0; i < n; ++i) {
    const double xa = o.XA(i), xd = o.XD(i);
    const double ya = o.YA(i), yd = o.YD(i);
    const double one = (xd < ya) ? 1.0 : 0.0;
    const double zero = (yd < xa) ? 1.0 : 0.0;
    out[i] = one;
    mask[i] = (1.0 - one) * (1.0 - zero);
  }
  const size_t ns = CompressMask(mask, n, slow);
  for (size_t k = 0; k < ns; ++k) {
    const size_t i = slow[k];
    out[i] = kernel::LessEqualLane(o.XA(i), o.XB(i),  //
                                   o.YA(i), o.YB(i), o.YC(i), o.YD(i));
  }
}

// d(X < Y). Fast paths: the crisp-crisp pair of LessLane, plus the
// same ordered-support paths as <= (exact for < as well: the
// vertical-edge limit corrections contribute the same 0/1 values).
// yd == xa (touching supports) is not a fast path and falls through.
template <bool kXBatch, bool kYBatch>
void LessImpl(const Operands<kXBatch, kYBatch>& o, size_t n,
              double* __restrict__ out) {
  // Same {0,1} double arithmetic as EqualityImpl, split into loops of
  // at most two selects. The crisp-crisp fast path answers xa < ya
  // directly; the ordered-support paths only apply to non-crisp lanes
  // (LessLane's candidate sweep is exact for those, mirroring
  // LessEqualImpl's fast paths).
  MaskVec mask;
  MaskVec crisp;
  SelVec slow;
  for (size_t i = 0; i < n; ++i) {
    const double xa = o.XA(i), xd = o.XD(i);
    const double ya = o.YA(i), yd = o.YD(i);
    crisp[i] = ((xa == xd) ? 1.0 : 0.0) * ((ya == yd) ? 1.0 : 0.0);
  }
  for (size_t i = 0; i < n; ++i) {
    const double xa = o.XA(i), xd = o.XD(i);
    const double ya = o.YA(i), yd = o.YD(i);
    out[i] = (xd < ya) ? 1.0 : 0.0;            // support X before Y
    mask[i] = (yd < xa) ? 0.0 : 1.0;           // NOT support Y before X
  }
  for (size_t i = 0; i < n; ++i) {
    const double lt = (o.XA(i) < o.YA(i)) ? 1.0 : 0.0;
    const double c = crisp[i];
    const double before = out[i];
    out[i] = c * lt + (1.0 - c) * before;
    mask[i] *= (1.0 - c) * (1.0 - before);
  }
  const size_t ns = CompressMask(mask, n, slow);
  for (size_t k = 0; k < ns; ++k) {
    const size_t i = slow[k];
    out[i] = kernel::LessLane(o.XA(i), o.XB(i), o.XC(i), o.XD(i),  //
                              o.YA(i), o.YB(i), o.YC(i), o.YD(i));
  }
}

/// Unpacked scalar operand; Operands points into its corner array.
struct ScalarSide {
  double corners[4];
  explicit ScalarSide(const Trapezoid& t)
      : corners{t.a(), t.b(), t.c(), t.d()} {}
};

template <bool kYBatch>
Operands<true, kYBatch> WithXBatch(const TrapezoidBatch& xs) {
  Operands<true, kYBatch> o{};
  o.xa = xs.a();
  o.xb = xs.b();
  o.xc = xs.c();
  o.xd = xs.d();
  return o;
}

Operands<true, false> Shape(const TrapezoidBatch& xs, const ScalarSide& y) {
  Operands<true, false> o = WithXBatch<false>(xs);
  o.ya = &y.corners[0];
  o.yb = &y.corners[1];
  o.yc = &y.corners[2];
  o.yd = &y.corners[3];
  return o;
}

Operands<false, true> Shape(const ScalarSide& x, const TrapezoidBatch& ys) {
  Operands<false, true> o{};
  o.xa = &x.corners[0];
  o.xb = &x.corners[1];
  o.xc = &x.corners[2];
  o.xd = &x.corners[3];
  o.ya = ys.a();
  o.yb = ys.b();
  o.yc = ys.c();
  o.yd = ys.d();
  return o;
}

Operands<true, true> Shape(const TrapezoidBatch& xs, const TrapezoidBatch& ys) {
  assert(xs.size() == ys.size());
  Operands<true, true> o = WithXBatch<true>(xs);
  o.ya = ys.a();
  o.yb = ys.b();
  o.yc = ys.c();
  o.yd = ys.d();
  return o;
}

}  // namespace

void BatchEqualityDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                         double* out) {
  const ScalarSide ss(y);
  EqualityImpl<true, false, false>(Shape(xs, ss), xs.size(), 0.0, out);
}

void BatchEqualityDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                         double* out) {
  const ScalarSide ss(x);
  EqualityImpl<false, true, false>(Shape(ss, ys), ys.size(), 0.0, out);
}

void BatchEqualityDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                         double* out) {
  EqualityImpl<true, true, false>(Shape(xs, ys), xs.size(), 0.0, out);
}

void BatchNotEqualDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                         double* out) {
  const ScalarSide ss(y);
  NotEqualImpl(Shape(xs, ss), xs.size(), out);
}

void BatchNotEqualDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                         double* out) {
  const ScalarSide ss(x);
  NotEqualImpl(Shape(ss, ys), ys.size(), out);
}

void BatchNotEqualDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                         double* out) {
  NotEqualImpl(Shape(xs, ys), xs.size(), out);
}

void BatchLessDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                     double* out) {
  const ScalarSide ss(y);
  LessImpl(Shape(xs, ss), xs.size(), out);
}

void BatchLessDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                     double* out) {
  const ScalarSide ss(x);
  LessImpl(Shape(ss, ys), ys.size(), out);
}

void BatchLessDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                     double* out) {
  LessImpl(Shape(xs, ys), xs.size(), out);
}

void BatchLessEqualDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                          double* out) {
  const ScalarSide ss(y);
  LessEqualImpl(Shape(xs, ss), xs.size(), out);
}

void BatchLessEqualDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                          double* out) {
  const ScalarSide ss(x);
  LessEqualImpl(Shape(ss, ys), ys.size(), out);
}

void BatchLessEqualDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                          double* out) {
  LessEqualImpl(Shape(xs, ys), xs.size(), out);
}

void BatchApproxEqualDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                            double tolerance, double* out) {
  assert(tolerance > 0.0);
  const ScalarSide ss(y);
  EqualityImpl<true, false, true>(Shape(xs, ss), xs.size(), tolerance, out);
}

void BatchApproxEqualDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                            double tolerance, double* out) {
  assert(tolerance > 0.0);
  const ScalarSide ss(x);
  EqualityImpl<false, true, true>(Shape(ss, ys), ys.size(), tolerance, out);
}

void BatchApproxEqualDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                            double tolerance, double* out) {
  assert(tolerance > 0.0);
  EqualityImpl<true, true, true>(Shape(xs, ys), xs.size(), tolerance, out);
}

void BatchSatisfactionDegree(const TrapezoidBatch& xs, CompareOp op,
                             const Trapezoid& y, double approx_tolerance,
                             double* out) {
  switch (op) {
    case CompareOp::kEq:
      return BatchEqualityDegree(xs, y, out);
    case CompareOp::kNe:
      return BatchNotEqualDegree(xs, y, out);
    case CompareOp::kLt:
      return BatchLessDegree(xs, y, out);
    case CompareOp::kLe:
      return BatchLessEqualDegree(xs, y, out);
    case CompareOp::kGt:
      return BatchLessDegree(y, xs, out);
    case CompareOp::kGe:
      return BatchLessEqualDegree(y, xs, out);
    case CompareOp::kApproxEq:
      return BatchApproxEqualDegree(xs, y, approx_tolerance, out);
  }
}

void BatchSatisfactionDegree(const Trapezoid& x, CompareOp op,
                             const TrapezoidBatch& ys, double approx_tolerance,
                             double* out) {
  switch (op) {
    case CompareOp::kEq:
      return BatchEqualityDegree(x, ys, out);
    case CompareOp::kNe:
      return BatchNotEqualDegree(x, ys, out);
    case CompareOp::kLt:
      return BatchLessDegree(x, ys, out);
    case CompareOp::kLe:
      return BatchLessEqualDegree(x, ys, out);
    case CompareOp::kGt:
      return BatchLessDegree(ys, x, out);
    case CompareOp::kGe:
      return BatchLessEqualDegree(ys, x, out);
    case CompareOp::kApproxEq:
      return BatchApproxEqualDegree(x, ys, approx_tolerance, out);
  }
}

void BatchSatisfactionDegree(const TrapezoidBatch& xs, CompareOp op,
                             const TrapezoidBatch& ys, double approx_tolerance,
                             double* out) {
  switch (op) {
    case CompareOp::kEq:
      return BatchEqualityDegree(xs, ys, out);
    case CompareOp::kNe:
      return BatchNotEqualDegree(xs, ys, out);
    case CompareOp::kLt:
      return BatchLessDegree(xs, ys, out);
    case CompareOp::kLe:
      return BatchLessEqualDegree(xs, ys, out);
    case CompareOp::kGt:
      return BatchLessDegree(ys, xs, out);
    case CompareOp::kGe:
      return BatchLessEqualDegree(ys, xs, out);
    case CompareOp::kApproxEq:
      return BatchApproxEqualDegree(xs, ys, approx_tolerance, out);
  }
}

}  // namespace fuzzydb
