// Linguistic term dictionary: maps vocabulary such as "medium young" or
// "about 35" to trapezoidal possibility distributions.
//
// Fuzzy SQL queries reference fuzzy constants by name (Query 1 of the
// paper: M.INCOME > "medium high"); the binder resolves them through a
// TermDictionary. The built-in dictionary defines the AGE and INCOME
// vocabularies of the paper's dating-service example, calibrated so that
// every satisfaction degree published in Example 4.1 and Figs. 1-2
// reproduces exactly:
//
//   mu_medium_young(24) = 0.8                     (Fig. 1)
//   d(about 35   = medium young) = 0.5            (Fig. 1 / Section 2.2)
//   d(middle age = medium young) = 0.7            (Example 4.1, Betty)
//   d(about 50   = middle age)   = 0.4            (Example 4.1, T)
//   d(about 60K  = high)         = 0.3            (Example 4.1, Ann 101)
//   d(medium high = high)        = 0.7            (Example 4.1, Ann 102)
//
// (The paper's Fig. 2 gives the term shapes only graphically; these
// definitions are the calibration consistent with all published numbers.)
#ifndef FUZZYDB_FUZZY_TERM_DICTIONARY_H_
#define FUZZYDB_FUZZY_TERM_DICTIONARY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzzy/trapezoid.h"

namespace fuzzydb {

/// A case-insensitive name -> distribution mapping.
class TermDictionary {
 public:
  TermDictionary() = default;

  /// Registers or replaces a term.
  void Define(const std::string& name, const Trapezoid& value);

  /// Looks up a term; also accepts "about <v>" / "about <v>K" generically
  /// (spread of 10% of |v|, minimum 1) when no explicit entry exists.
  Result<Trapezoid> Lookup(const std::string& name) const;

  /// True when the term is explicitly defined.
  bool Contains(const std::string& name) const;

  /// All explicitly defined term names, sorted.
  std::vector<std::string> Names() const;

  /// The paper's AGE/INCOME vocabulary (see file comment).
  static TermDictionary BuiltIn();

 private:
  std::map<std::string, Trapezoid> terms_;  // keys lower-cased
};

}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_TERM_DICTIONARY_H_
