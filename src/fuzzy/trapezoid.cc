#include "fuzzy/trapezoid.h"

#include <cassert>

#include "common/string_util.h"

namespace fuzzydb {

Trapezoid::Trapezoid(double a, double b, double c, double d)
    : a_(a), b_(b), c_(c), d_(d) {
  assert(a <= b && b <= c && c <= d && "trapezoid corners must be ordered");
}

double Trapezoid::Membership(double x) const {
  if (x < a_ || x > d_) return 0.0;
  if (x >= b_ && x <= c_) return 1.0;
  if (x < b_) return (x - a_) / (b_ - a_);  // a_ < b_ here, division safe
  return (d_ - x) / (d_ - c_);              // c_ < d_ here
}

double Trapezoid::SupAtOrBelow(double x) const {
  if (x < a_) return 0.0;
  if (x >= b_) return 1.0;
  // a_ <= x < b_ implies a_ < b_.
  return (x - a_) / (b_ - a_);
}

double Trapezoid::SupStrictlyBelow(double x) const {
  if (x <= a_) return 0.0;
  if (x > b_) return 1.0;
  if (a_ == b_) return 1.0;  // x > a_ == b_ handled above; here x == b_ > a_?
  // a_ < x <= b_: supremum of the rising edge approaching x.
  return (x - a_) / (b_ - a_);
}

double Trapezoid::SupAtOrAbove(double x) const {
  if (x > d_) return 0.0;
  if (x <= c_) return 1.0;
  // c_ < x <= d_ implies c_ < d_.
  return (d_ - x) / (d_ - c_);
}

double Trapezoid::SupStrictlyAbove(double x) const {
  if (x >= d_) return 0.0;
  if (x < c_) return 1.0;
  if (c_ == d_) return 1.0;  // x < d_ == c_ handled above.
  return (d_ - x) / (d_ - c_);
}

std::string Trapezoid::ToString() const {
  if (IsCrisp()) return FormatDouble(a_);
  return "trap(" + FormatDouble(a_) + "," + FormatDouble(b_) + "," +
         FormatDouble(c_) + "," + FormatDouble(d_) + ")";
}

}  // namespace fuzzydb
