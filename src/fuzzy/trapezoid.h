// Trapezoidal possibility distributions.
//
// The paper (Section 2.1) restricts attribute-value possibility
// distributions to trapezoidal membership functions; triangles, intervals
// and crisp points are degenerate trapezoids. A trapezoid is described by
// four abscissae a <= b <= c <= d:
//
//     mu(x) = 0                  for x < a or x > d
//     mu(x) = (x - a) / (b - a)  for a <= x < b          (rising edge)
//     mu(x) = 1                  for b <= x <= c         (core / 1-cut)
//     mu(x) = (d - x) / (d - c)  for c < x <= d          (falling edge)
//
// The support (0-cut closure) is [a, d]; the core (1-cut) is [b, c]. When
// an edge is vertical (a == b or c == d) the membership function jumps and
// the value at the corner belongs to the core, matching the convention
// used by the paper's crisp-value distribution mu_v(x) = 1 iff x == v.
#ifndef FUZZYDB_FUZZY_TRAPEZOID_H_
#define FUZZYDB_FUZZY_TRAPEZOID_H_

#include <string>

namespace fuzzydb {

/// A trapezoidal possibility distribution over the reals.
class Trapezoid {
 public:
  /// Constructs the crisp value 0.
  Trapezoid() : a_(0), b_(0), c_(0), d_(0) {}

  /// Constructs a trapezoid; requires a <= b <= c <= d (asserted).
  Trapezoid(double a, double b, double c, double d);

  /// A crisp (completely known) value v: all four corners equal v.
  static Trapezoid Crisp(double v) { return Trapezoid(v, v, v, v); }

  /// A rectangular distribution: every point of [lo, hi] fully possible.
  static Trapezoid Interval(double lo, double hi) {
    return Trapezoid(lo, lo, hi, hi);
  }

  /// A triangular distribution peaking at `peak` with the given support.
  static Trapezoid Triangle(double lo, double peak, double hi) {
    return Trapezoid(lo, peak, peak, hi);
  }

  /// "About v": a symmetric triangle with support [v - spread, v + spread].
  static Trapezoid About(double v, double spread) {
    return Triangle(v - spread, v, v + spread);
  }

  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }
  double d() const { return d_; }

  /// Left end of the support: the b(v) of Definition 3.1.
  double SupportBegin() const { return a_; }
  /// Right end of the support: the e(v) of Definition 3.1.
  double SupportEnd() const { return d_; }
  /// Width of the support interval.
  double SupportWidth() const { return d_ - a_; }

  /// True when the distribution is a single completely-known point.
  bool IsCrisp() const { return a_ == d_; }
  /// The crisp value; only meaningful when IsCrisp().
  double CrispValue() const { return a_; }

  /// Membership degree at x (vertical edges evaluate to 1 at the corner).
  double Membership(double x) const;

  /// sup over { mu(t) : t <= x }. Nondecreasing in x; used to evaluate
  /// order comparisons Poss(X <= Y).
  double SupAtOrBelow(double x) const;

  /// sup over { mu(t) : t < x }. Differs from SupAtOrBelow only at a
  /// vertical rising edge, where the supremum just below the corner is 0.
  double SupStrictlyBelow(double x) const;

  /// sup over { mu(t) : t >= x }.
  double SupAtOrAbove(double x) const;

  /// sup over { mu(t) : t > x }.
  double SupStrictlyAbove(double x) const;

  /// Center of the 1-cut, (b + c) / 2. The defuzzification used by the
  /// Fuzzy SQL MIN/MAX aggregates (Section 6).
  double CoreCenter() const { return 0.5 * (b_ + c_); }

  /// Left end of the closed alpha-cut { x : mu(x) >= alpha } for
  /// alpha in (0, 1]; AlphaCutBegin(0) is the support begin. Two values
  /// can only be equal with degree >= alpha when their alpha-cuts
  /// intersect -- the "fuzzy equality indicator" of Zhang & Wang [42]
  /// that lets a thresholded merge-join use tighter windows.
  double AlphaCutBegin(double alpha) const { return a_ + alpha * (b_ - a_); }
  /// Right end of the closed alpha-cut.
  double AlphaCutEnd(double alpha) const { return d_ - alpha * (d_ - c_); }

  /// Exact representation equality (same four corners).
  bool operator==(const Trapezoid& other) const {
    return a_ == other.a_ && b_ == other.b_ && c_ == other.c_ &&
           d_ == other.d_;
  }
  bool operator!=(const Trapezoid& other) const { return !(*this == other); }

  /// "v" for crisp values, "trap(a,b,c,d)" otherwise.
  std::string ToString() const;

 private:
  double a_, b_, c_, d_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_TRAPEZOID_H_
