// Columnar (structure-of-arrays) batches of trapezoids.
//
// The batch execution path (docs/architecture.md, "Batch execution")
// gathers the corner abscissae of up to kCapacity trapezoids into four
// contiguous double arrays so the degree kernels in degree_batch.h can
// sweep them with dense, branch-light loops that auto-vectorize under
// -O2. A fifth array receives the per-lane degrees, so a batch can be
// evaluated fully in place.
//
// A TrapezoidBatch is ~40 KiB of plain arrays: embed one per worker in
// reusable scratch state (heap-allocated), never on a hot stack frame.
#ifndef FUZZYDB_FUZZY_TRAPEZOID_BATCH_H_
#define FUZZYDB_FUZZY_TRAPEZOID_BATCH_H_

#include <array>
#include <cassert>
#include <cstddef>

#include "fuzzy/trapezoid.h"

namespace fuzzydb {

/// A fixed-capacity SoA batch of trapezoids plus a degree output lane.
class TrapezoidBatch {
 public:
  /// Upper bound on lanes per batch; ExecOptions::batch_size is clamped
  /// to this. 1024 doubles x 5 arrays stays comfortably in L2.
  static constexpr size_t kCapacity = 1024;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == kCapacity; }
  void Clear() { size_ = 0; }

  /// Appends one trapezoid; requires !full().
  void PushBack(const Trapezoid& t) {
    assert(size_ < kCapacity);
    a_[size_] = t.a();
    b_[size_] = t.b();
    c_[size_] = t.c();
    d_[size_] = t.d();
    ++size_;
  }

  /// Fills lanes [0, count) with copies of `t` (for a constant operand
  /// facing a gathered column), replacing the previous contents.
  void Splat(const Trapezoid& t, size_t count) {
    assert(count <= kCapacity);
    for (size_t i = 0; i < count; ++i) {
      a_[i] = t.a();
      b_[i] = t.b();
      c_[i] = t.c();
      d_[i] = t.d();
    }
    size_ = count;
  }

  /// Reassembles lane i as a value object (tests and slow paths).
  Trapezoid At(size_t i) const {
    assert(i < size_);
    return Trapezoid(a_[i], b_[i], c_[i], d_[i]);
  }

  const double* a() const { return a_.data(); }
  const double* b() const { return b_.data(); }
  const double* c() const { return c_.data(); }
  const double* d() const { return d_.data(); }

  /// The degree output lane; kernels write degrees()[0, size).
  double* degrees() { return degree_.data(); }
  const double* degrees() const { return degree_.data(); }

 private:
  size_t size_ = 0;
  alignas(64) std::array<double, kCapacity> a_;
  alignas(64) std::array<double, kCapacity> b_;
  alignas(64) std::array<double, kCapacity> c_;
  alignas(64) std::array<double, kCapacity> d_;
  alignas(64) std::array<double, kCapacity> degree_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_TRAPEZOID_BATCH_H_
