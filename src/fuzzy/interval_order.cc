#include "fuzzy/interval_order.h"

#include "fuzzy/degree_kernels.h"

namespace fuzzydb {

int CompareIntervalOrder(const Trapezoid& x, const Trapezoid& y) {
  return kernel::CompareIntervalOrderLane(x.SupportBegin(), x.SupportEnd(),
                                          y.SupportBegin(), y.SupportEnd());
}

bool IntervalOrderLess(const Trapezoid& x, const Trapezoid& y) {
  return CompareIntervalOrder(x, y) < 0;
}

bool SupportsIntersect(const Trapezoid& x, const Trapezoid& y) {
  return kernel::SupportsIntersectLane(x.SupportBegin(), x.SupportEnd(),
                                       y.SupportBegin(), y.SupportEnd());
}

bool SupportEntirelyBefore(const Trapezoid& x, const Trapezoid& y) {
  return kernel::SupportEntirelyBeforeLane(x.SupportEnd(), y.SupportBegin());
}

void BatchCompareIntervalOrder(const TrapezoidBatch& xs, const Trapezoid& y,
                               int* out) {
  const size_t n = xs.size();
  const double* a = xs.a();
  const double* d = xs.d();
  const double ya = y.SupportBegin();
  const double yd = y.SupportEnd();
  for (size_t i = 0; i < n; ++i) {
    out[i] = kernel::CompareIntervalOrderLane(a[i], d[i], ya, yd);
  }
}

void BatchSupportsIntersect(const TrapezoidBatch& xs, const Trapezoid& y,
                            unsigned char* out) {
  const size_t n = xs.size();
  const double* a = xs.a();
  const double* d = xs.d();
  const double ya = y.SupportBegin();
  const double yd = y.SupportEnd();
  for (size_t i = 0; i < n; ++i) {
    out[i] = kernel::SupportsIntersectLane(a[i], d[i], ya, yd) ? 1 : 0;
  }
}

void BatchSupportEntirelyBefore(const TrapezoidBatch& xs, const Trapezoid& y,
                                unsigned char* out) {
  const size_t n = xs.size();
  const double* d = xs.d();
  const double ya = y.SupportBegin();
  for (size_t i = 0; i < n; ++i) {
    out[i] = kernel::SupportEntirelyBeforeLane(d[i], ya) ? 1 : 0;
  }
}

}  // namespace fuzzydb
