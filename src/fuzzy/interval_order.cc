#include "fuzzy/interval_order.h"

namespace fuzzydb {

int CompareIntervalOrder(const Trapezoid& x, const Trapezoid& y) {
  if (x.SupportBegin() < y.SupportBegin()) return -1;
  if (x.SupportBegin() > y.SupportBegin()) return 1;
  if (x.SupportEnd() < y.SupportEnd()) return -1;
  if (x.SupportEnd() > y.SupportEnd()) return 1;
  return 0;
}

bool IntervalOrderLess(const Trapezoid& x, const Trapezoid& y) {
  return CompareIntervalOrder(x, y) < 0;
}

bool SupportsIntersect(const Trapezoid& x, const Trapezoid& y) {
  return x.SupportBegin() <= y.SupportEnd() &&
         y.SupportBegin() <= x.SupportEnd();
}

bool SupportEntirelyBefore(const Trapezoid& x, const Trapezoid& y) {
  return x.SupportEnd() < y.SupportBegin();
}

}  // namespace fuzzydb
