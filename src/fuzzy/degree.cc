#include "fuzzy/degree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fuzzydb {

namespace {

/// Solves for the crossing abscissa of a rising linear edge
/// (x0, 0) -> (x1, 1) and a falling linear edge (x2, 1) -> (x3, 0).
/// Returns false when either edge is vertical (no interior crossing to add;
/// corner candidates cover those cases).
bool RiseFallCrossing(double x0, double x1, double x2, double x3,
                      double* out) {
  const double rise = x1 - x0;
  const double fall = x3 - x2;
  if (rise <= 0.0 || fall <= 0.0) return false;
  // (x - x0) / rise = (x3 - x) / fall
  *out = (x0 * fall + x3 * rise) / (rise + fall);
  return true;
}

double MembershipRightLimit(const Trapezoid& t, double x) {
  if (x < t.a() || x >= t.d()) return 0.0;
  if (x >= t.c()) return (t.d() - x) / (t.d() - t.c());  // c < d here
  if (x >= t.b()) return 1.0;
  return (x - t.a()) / (t.b() - t.a());  // a <= x < b implies a < b
}

double MembershipLeftLimit(const Trapezoid& t, double x) {
  if (x > t.d() || x <= t.a()) return 0.0;
  if (x <= t.b()) return (x - t.a()) / (t.b() - t.a());  // a < b here
  if (x <= t.c()) return 1.0;
  return (t.d() - x) / (t.d() - t.c());  // c < x <= d implies c < d
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kApproxEq:
      return "~=";
  }
  return "?";
}

double EqualityDegree(const Trapezoid& x, const Trapezoid& y) {
  // Fast paths.
  if (x.SupportEnd() < y.SupportBegin() || y.SupportEnd() < x.SupportBegin()) {
    return 0.0;
  }
  if (std::max(x.b(), y.b()) <= std::min(x.c(), y.c())) {
    return 1.0;  // cores intersect
  }

  // sup_t min(mu_x(t), mu_y(t)). The minimum of two piecewise-linear
  // unimodal functions attains its supremum at a corner of either function
  // or at a crossing of a rising edge with a falling edge.
  double candidates[10];
  int n = 0;
  candidates[n++] = x.a();
  candidates[n++] = x.b();
  candidates[n++] = x.c();
  candidates[n++] = x.d();
  candidates[n++] = y.a();
  candidates[n++] = y.b();
  candidates[n++] = y.c();
  candidates[n++] = y.d();
  double cross;
  if (RiseFallCrossing(x.a(), x.b(), y.c(), y.d(), &cross)) {
    candidates[n++] = cross;
  }
  if (RiseFallCrossing(y.a(), y.b(), x.c(), x.d(), &cross)) {
    candidates[n++] = cross;
  }

  double best = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = candidates[i];
    best = std::max(best, std::min(x.Membership(t), y.Membership(t)));
  }
  return best;
}

double NotEqualDegree(const Trapezoid& x, const Trapezoid& y) {
  if (x.IsCrisp() && y.IsCrisp()) {
    return x.CrispValue() != y.CrispValue() ? 1.0 : 0.0;
  }
  // At least one distribution has a non-degenerate support, so a pair
  // (x0, y0) with x0 != y0 and membership arbitrarily close to 1 exists.
  return 1.0;
}

double LessEqualDegree(const Trapezoid& x, const Trapezoid& y) {
  // Poss(X <= Y) = sup_v min(mu_Y(v), g(v)) with the nondecreasing
  // envelope g(v) = sup_{u <= v} mu_X(u). g has corners at x.a() and
  // x.b() and rises linearly in between (jumping when a == b).
  double candidates[7];
  int n = 0;
  candidates[n++] = x.a();
  candidates[n++] = x.b();
  candidates[n++] = y.a();
  candidates[n++] = y.b();
  candidates[n++] = y.c();
  candidates[n++] = y.d();
  double cross;
  if (RiseFallCrossing(x.a(), x.b(), y.c(), y.d(), &cross)) {
    candidates[n++] = cross;
  }
  double best = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = candidates[i];
    best = std::max(best, std::min(y.Membership(v), x.SupAtOrBelow(v)));
  }
  return best;
}

double LessDegree(const Trapezoid& x, const Trapezoid& y) {
  if (x.IsCrisp() && y.IsCrisp()) {
    return x.CrispValue() < y.CrispValue() ? 1.0 : 0.0;
  }
  // Poss(X < Y) = sup_v min(mu_Y(v), g(v)) with
  // g(v) = sup_{u < v} mu_X(u). g equals the SupAtOrBelow envelope except
  // at a vertical rising edge of X (x.a() == x.b()), where g jumps from 0
  // to 1 immediately *after* the corner; the supremum there is approached
  // as v -> corner+, contributing min(1, right-limit of mu_Y).
  double candidates[7];
  int n = 0;
  candidates[n++] = x.a();
  candidates[n++] = x.b();
  candidates[n++] = y.a();
  candidates[n++] = y.b();
  candidates[n++] = y.c();
  candidates[n++] = y.d();
  double cross;
  if (RiseFallCrossing(x.a(), x.b(), y.c(), y.d(), &cross)) {
    candidates[n++] = cross;
  }
  double best = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = candidates[i];
    best = std::max(best, std::min(y.Membership(v), x.SupStrictlyBelow(v)));
  }
  if (x.a() == x.b()) {
    best = std::max(best, MembershipRightLimit(y, x.a()));
  }
  // Symmetrically, a vertical falling edge of Y at y.c() == y.d() means
  // sup_{u < v} with v just below the corner: mu_Y approaches 1 from the
  // left while g is left-continuous there, contributing
  // min(left-limit of mu_Y at d, g(d)) -- but mu_Y's left limit at a
  // vertical falling corner is 0 (support ends), except when the corner
  // carries the core: mu_Y(d) = 1 is already a candidate. What remains is
  // the limit v -> y.d()- when y.c() == y.d(): mu_Y -> left-limit, g is
  // nondecreasing so using g(y.d()-) = SupStrictlyBelow(x, y.d()).
  if (y.c() == y.d()) {
    best = std::max(best, std::min(MembershipLeftLimit(y, y.d()),
                                   x.SupStrictlyBelow(y.d())));
  }
  return std::min(best, 1.0);
}

double ApproxEqualDegree(const Trapezoid& x, const Trapezoid& y,
                         double tolerance) {
  assert(tolerance > 0.0);
  // sup min(mu_X(u), mu_Y(v), 1 - |u - v| / tol) equals the equality
  // degree between X and Y (+) Triangle(-tol, 0, tol), by the sup-min
  // extension principle (fuzzy addition of trapezoids is corner-wise).
  const Trapezoid widened(y.a() - tolerance, y.b(), y.c(), y.d() + tolerance);
  return EqualityDegree(x, widened);
}

double SatisfactionDegree(const Trapezoid& x, CompareOp op,
                          const Trapezoid& y, double approx_tolerance) {
  switch (op) {
    case CompareOp::kEq:
      return EqualityDegree(x, y);
    case CompareOp::kNe:
      return NotEqualDegree(x, y);
    case CompareOp::kLt:
      return LessDegree(x, y);
    case CompareOp::kLe:
      return LessEqualDegree(x, y);
    case CompareOp::kGt:
      return LessDegree(y, x);
    case CompareOp::kGe:
      return LessEqualDegree(y, x);
    case CompareOp::kApproxEq:
      return ApproxEqualDegree(x, y, approx_tolerance);
  }
  return 0.0;
}

}  // namespace fuzzydb
