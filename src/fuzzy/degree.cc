#include "fuzzy/degree.h"

#include <cassert>

#include "fuzzy/degree_kernels.h"

// The sup-min arithmetic lives in fuzzy/degree_kernels.h as inline
// per-lane functions shared with the batch kernels (degree_batch.cc);
// the entry points here unpack the Trapezoid corners and delegate, so
// scalar and batch evaluation are bit-identical by construction.

namespace fuzzydb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kApproxEq:
      return "~=";
  }
  return "?";
}

double EqualityDegree(const Trapezoid& x, const Trapezoid& y) {
  return kernel::EqualityLane(x.a(), x.b(), x.c(), x.d(),  //
                              y.a(), y.b(), y.c(), y.d());
}

double NotEqualDegree(const Trapezoid& x, const Trapezoid& y) {
  return kernel::NotEqualLane(x.a(), x.d(), y.a(), y.d());
}

double LessEqualDegree(const Trapezoid& x, const Trapezoid& y) {
  return kernel::LessEqualLane(x.a(), x.b(),  //
                               y.a(), y.b(), y.c(), y.d());
}

double LessDegree(const Trapezoid& x, const Trapezoid& y) {
  return kernel::LessLane(x.a(), x.b(), x.c(), x.d(),  //
                          y.a(), y.b(), y.c(), y.d());
}

double ApproxEqualDegree(const Trapezoid& x, const Trapezoid& y,
                         double tolerance) {
  assert(tolerance > 0.0);
  return kernel::ApproxEqualLane(x.a(), x.b(), x.c(), x.d(),  //
                                 y.a(), y.b(), y.c(), y.d(), tolerance);
}

double SatisfactionDegree(const Trapezoid& x, CompareOp op,
                          const Trapezoid& y, double approx_tolerance) {
  switch (op) {
    case CompareOp::kEq:
      return EqualityDegree(x, y);
    case CompareOp::kNe:
      return NotEqualDegree(x, y);
    case CompareOp::kLt:
      return LessDegree(x, y);
    case CompareOp::kLe:
      return LessEqualDegree(x, y);
    case CompareOp::kGt:
      return LessDegree(y, x);
    case CompareOp::kGe:
      return LessEqualDegree(y, x);
    case CompareOp::kApproxEq:
      return ApproxEqualDegree(x, y, approx_tolerance);
  }
  return 0.0;
}

}  // namespace fuzzydb
