#include "fuzzy/arithmetic.h"

#include <algorithm>
#include <cassert>

namespace fuzzydb {

namespace {

/// Interval product [lo1, hi1] * [lo2, hi2].
void IntervalMultiply(double lo1, double hi1, double lo2, double hi2,
                      double* lo, double* hi) {
  const double p1 = lo1 * lo2;
  const double p2 = lo1 * hi2;
  const double p3 = hi1 * lo2;
  const double p4 = hi1 * hi2;
  *lo = std::min(std::min(p1, p2), std::min(p3, p4));
  *hi = std::max(std::max(p1, p2), std::max(p3, p4));
}

}  // namespace

Trapezoid FuzzyAdd(const Trapezoid& x, const Trapezoid& y) {
  return Trapezoid(x.a() + y.a(), x.b() + y.b(), x.c() + y.c(),
                   x.d() + y.d());
}

Trapezoid FuzzySubtract(const Trapezoid& x, const Trapezoid& y) {
  return Trapezoid(x.a() - y.d(), x.b() - y.c(), x.c() - y.b(),
                   x.d() - y.a());
}

Trapezoid FuzzyMultiply(const Trapezoid& x, const Trapezoid& y) {
  double lo0, hi0, lo1, hi1;
  IntervalMultiply(x.a(), x.d(), y.a(), y.d(), &lo0, &hi0);
  IntervalMultiply(x.b(), x.c(), y.b(), y.c(), &lo1, &hi1);
  return Trapezoid(lo0, lo1, hi1, hi0);
}

Result<Trapezoid> FuzzyDivide(const Trapezoid& x, const Trapezoid& y) {
  if (y.a() <= 0.0 && y.d() >= 0.0) {
    return Status::InvalidArgument(
        "fuzzy division by a distribution whose support contains zero");
  }
  double lo0, hi0, lo1, hi1;
  IntervalMultiply(x.a(), x.d(), 1.0 / y.d(), 1.0 / y.a(), &lo0, &hi0);
  IntervalMultiply(x.b(), x.c(), 1.0 / y.c(), 1.0 / y.b(), &lo1, &hi1);
  return Trapezoid(lo0, lo1, hi1, hi0);
}

Trapezoid FuzzyScale(const Trapezoid& x, double k) {
  assert(k != 0.0);
  if (k > 0.0) {
    return Trapezoid(x.a() / k, x.b() / k, x.c() / k, x.d() / k);
  }
  return Trapezoid(x.d() / k, x.c() / k, x.b() / k, x.a() / k);
}

}  // namespace fuzzydb
