// The necessity measure of the double-measure system (paper Section 2.2
// discussion; Prade & Testemale [28], [30]).
//
// For a predicate "X theta F":
//
//     Nec(X theta F) = 1 - Poss(X not-theta F)
//
// the "impossibility for the opposite comparison to be successful". With
// convex, normal possibility distributions (all trapezoids here),
// necessity never exceeds possibility.
//
// This module exists for completeness and comparison: the query engine
// deliberately measures possibility only, because the double-measure
// system yields two answer relations per operator, which breaks operator
// composition -- and with it, unnesting (the whole point of the paper).
// NecessityDegree is offered to users who want to post-qualify answers
// ("how certainly does this tuple satisfy the query?"), not used inside
// the evaluators.
#ifndef FUZZYDB_FUZZY_NECESSITY_H_
#define FUZZYDB_FUZZY_NECESSITY_H_

#include "fuzzy/degree.h"

namespace fuzzydb {

/// The comparator whose satisfaction is the failure of `op`.
CompareOp NegateCompareOp(CompareOp op);

/// Nec(X op Y) = 1 - Poss(X negate(op) Y). Not defined for kApproxEq
/// (its complement is not one of the comparators); asserts on it.
double NecessityDegree(const Trapezoid& x, CompareOp op, const Trapezoid& y);

}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_NECESSITY_H_
