// Shared per-lane satisfaction-degree arithmetic.
//
// The scalar entry points in degree.cc and the batch kernels in
// degree_batch.cc must return bit-identical doubles for every input
// (tests/degree_batch_test.cc enforces this). Both therefore delegate
// to the inline "lane" functions below, which operate on raw corner
// abscissae (no Trapezoid object, no constructor assert) and reproduce
// the corner/edge-crossing arithmetic of the paper's Section 2.2
// sup-min degrees exactly: the same operations, in the same order,
// with the same rounding. Any change here changes *both* paths, which
// is the point -- there is exactly one copy of the degree math.
//
// Lane preconditions mirror Trapezoid's invariant a <= b <= c <= d;
// callers gather corners from already-validated Trapezoid values.
#ifndef FUZZYDB_FUZZY_DEGREE_KERNELS_H_
#define FUZZYDB_FUZZY_DEGREE_KERNELS_H_

#include <algorithm>

#include "fuzzy/degree.h"

namespace fuzzydb {
namespace kernel {

/// Membership degree at x; vertical edges evaluate to 1 at the corner.
/// Mirrors Trapezoid::Membership.
inline double LaneMembership(double a, double b, double c, double d,
                             double x) {
  if (x < a || x > d) return 0.0;
  if (x >= b && x <= c) return 1.0;
  if (x < b) return (x - a) / (b - a);
  return (d - x) / (d - c);
}

/// sup { mu(t) : t <= x }. Mirrors Trapezoid::SupAtOrBelow (only the
/// rising edge matters, so c and d are not needed).
inline double LaneSupAtOrBelow(double a, double b, double x) {
  if (x < a) return 0.0;
  if (x >= b) return 1.0;
  return (x - a) / (b - a);
}

/// sup { mu(t) : t < x }. Mirrors Trapezoid::SupStrictlyBelow.
inline double LaneSupStrictlyBelow(double a, double b, double x) {
  if (x <= a) return 0.0;
  if (x > b) return 1.0;
  if (a == b) return 1.0;
  return (x - a) / (b - a);
}

/// Crossing abscissa of a rising edge (x0,0)->(x1,1) and a falling edge
/// (x2,1)->(x3,0); false when either edge is vertical.
inline bool LaneRiseFallCrossing(double x0, double x1, double x2, double x3,
                                 double* out) {
  const double rise = x1 - x0;
  const double fall = x3 - x2;
  if (rise <= 0.0 || fall <= 0.0) return false;
  // (x - x0) / rise = (x3 - x) / fall
  *out = (x0 * fall + x3 * rise) / (rise + fall);
  return true;
}

/// lim_{t -> x+} mu(t): the right limit of the membership function.
inline double LaneMembershipRightLimit(double a, double b, double c, double d,
                                       double x) {
  if (x < a || x >= d) return 0.0;
  if (x >= c) return (d - x) / (d - c);  // c < d here
  if (x >= b) return 1.0;
  return (x - a) / (b - a);  // a <= x < b implies a < b
}

/// lim_{t -> x-} mu(t): the left limit of the membership function.
inline double LaneMembershipLeftLimit(double a, double b, double c, double d,
                                      double x) {
  if (x > d || x <= a) return 0.0;
  if (x <= b) return (x - a) / (b - a);  // a < b here
  if (x <= c) return 1.0;
  return (d - x) / (d - c);  // c < x <= d implies c < d
}

/// True when the supports [xa, xd] and [ya, yd] are disjoint, in which
/// case every equality candidate evaluates to exactly 0.0.
inline bool LaneSupportsDisjoint(double xa, double xd, double ya, double yd) {
  return xd < ya || yd < xa;
}

/// True when the cores [xb, xc] and [yb, yc] intersect, in which case
/// the equality supremum is attained exactly (both memberships are 1.0
/// at any shared core point).
inline bool LaneCoresIntersect(double xb, double xc, double yb, double yc) {
  return std::max(xb, yb) <= std::min(xc, yc);
}

/// The candidate sweep of EqualityDegree without its fast paths; valid
/// for any inputs, but callers usually branch on the two predicates
/// above first (the sweep reproduces their 0.0 / 1.0 answers exactly).
inline double EqualityLaneSlow(double xa, double xb, double xc, double xd,
                               double ya, double yb, double yc, double yd) {
  // sup_t min(mu_x(t), mu_y(t)). The minimum of two piecewise-linear
  // unimodal functions attains its supremum at a corner of either
  // function or at a crossing of a rising edge with a falling edge.
  double candidates[10];
  int n = 0;
  candidates[n++] = xa;
  candidates[n++] = xb;
  candidates[n++] = xc;
  candidates[n++] = xd;
  candidates[n++] = ya;
  candidates[n++] = yb;
  candidates[n++] = yc;
  candidates[n++] = yd;
  double cross;
  if (LaneRiseFallCrossing(xa, xb, yc, yd, &cross)) candidates[n++] = cross;
  if (LaneRiseFallCrossing(ya, yb, xc, xd, &cross)) candidates[n++] = cross;

  double best = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = candidates[i];
    best = std::max(best, std::min(LaneMembership(xa, xb, xc, xd, t),
                                   LaneMembership(ya, yb, yc, yd, t)));
  }
  return best;
}

/// d(X = Y): sup-min equality degree. Mirrors EqualityDegree.
inline double EqualityLane(double xa, double xb, double xc, double xd,
                           double ya, double yb, double yc, double yd) {
  if (LaneSupportsDisjoint(xa, xd, ya, yd)) return 0.0;
  if (LaneCoresIntersect(xb, xc, yb, yc)) return 1.0;
  return EqualityLaneSlow(xa, xb, xc, xd, ya, yb, yc, yd);
}

/// d(X <> Y). Mirrors NotEqualDegree.
inline double NotEqualLane(double xa, double xd, double ya, double yd) {
  if (xa == xd && ya == yd) return xa != ya ? 1.0 : 0.0;
  // At least one support is non-degenerate, so a pair (x0, y0) with
  // x0 != y0 and membership arbitrarily close to 1 exists.
  return 1.0;
}

/// d(X <= Y): Poss(X <= Y). Mirrors LessEqualDegree (xc, xd unused:
/// only X's nondecreasing envelope matters).
inline double LessEqualLane(double xa, double xb, double ya, double yb,
                            double yc, double yd) {
  double candidates[7];
  int n = 0;
  candidates[n++] = xa;
  candidates[n++] = xb;
  candidates[n++] = ya;
  candidates[n++] = yb;
  candidates[n++] = yc;
  candidates[n++] = yd;
  double cross;
  if (LaneRiseFallCrossing(xa, xb, yc, yd, &cross)) candidates[n++] = cross;
  double best = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = candidates[i];
    best = std::max(best, std::min(LaneMembership(ya, yb, yc, yd, v),
                                   LaneSupAtOrBelow(xa, xb, v)));
  }
  return best;
}

/// d(X < Y): Poss(X < Y). Mirrors LessDegree, including the two
/// vertical-edge limit corrections.
inline double LessLane(double xa, double xb, double xc, double xd,
                       double ya, double yb, double yc, double yd) {
  (void)xc;
  if (xa == xd && ya == yd) return xa < ya ? 1.0 : 0.0;
  double candidates[7];
  int n = 0;
  candidates[n++] = xa;
  candidates[n++] = xb;
  candidates[n++] = ya;
  candidates[n++] = yb;
  candidates[n++] = yc;
  candidates[n++] = yd;
  double cross;
  if (LaneRiseFallCrossing(xa, xb, yc, yd, &cross)) candidates[n++] = cross;
  double best = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = candidates[i];
    best = std::max(best, std::min(LaneMembership(ya, yb, yc, yd, v),
                                   LaneSupStrictlyBelow(xa, xb, v)));
  }
  if (xa == xb) {
    best = std::max(best, LaneMembershipRightLimit(ya, yb, yc, yd, xa));
  }
  if (yc == yd) {
    best = std::max(best,
                    std::min(LaneMembershipLeftLimit(ya, yb, yc, yd, yd),
                             LaneSupStrictlyBelow(xa, xb, yd)));
  }
  return std::min(best, 1.0);
}

/// d(X ~= Y): equality against Y widened by the tolerance (fuzzy
/// addition of Triangle(-tol, 0, tol) is corner-wise). Mirrors
/// ApproxEqualDegree without constructing the widened Trapezoid.
inline double ApproxEqualLane(double xa, double xb, double xc, double xd,
                              double ya, double yb, double yc, double yd,
                              double tolerance) {
  return EqualityLane(xa, xb, xc, xd, ya - tolerance, yb, yc, yd + tolerance);
}

/// Dispatches one lane of SatisfactionDegree (kGt / kGe swap operands).
inline double SatisfactionLane(CompareOp op, double xa, double xb, double xc,
                               double xd, double ya, double yb, double yc,
                               double yd, double approx_tolerance) {
  switch (op) {
    case CompareOp::kEq:
      return EqualityLane(xa, xb, xc, xd, ya, yb, yc, yd);
    case CompareOp::kNe:
      return NotEqualLane(xa, xd, ya, yd);
    case CompareOp::kLt:
      return LessLane(xa, xb, xc, xd, ya, yb, yc, yd);
    case CompareOp::kLe:
      return LessEqualLane(xa, xb, ya, yb, yc, yd);
    case CompareOp::kGt:
      return LessLane(ya, yb, yc, yd, xa, xb, xc, xd);
    case CompareOp::kGe:
      return LessEqualLane(ya, yb, xa, xb, xc, xd);
    case CompareOp::kApproxEq:
      return ApproxEqualLane(xa, xb, xc, xd, ya, yb, yc, yd, approx_tolerance);
  }
  return 0.0;
}

/// Lexicographic (SupportBegin, SupportEnd) comparison of Definition
/// 3.1. Mirrors CompareIntervalOrder.
inline int CompareIntervalOrderLane(double xa, double xd, double ya,
                                    double yd) {
  if (xa < ya) return -1;
  if (xa > ya) return 1;
  if (xd < yd) return -1;
  if (xd > yd) return 1;
  return 0;
}

/// Mirrors SupportsIntersect.
inline bool SupportsIntersectLane(double xa, double xd, double ya, double yd) {
  return xa <= yd && ya <= xd;
}

/// Mirrors SupportEntirelyBefore.
inline bool SupportEntirelyBeforeLane(double xd, double ya) {
  return xd < ya;
}

}  // namespace kernel
}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_DEGREE_KERNELS_H_
