// Batch-at-a-time satisfaction-degree kernels.
//
// Each kernel evaluates one comparator over a whole TrapezoidBatch in
// two phases: a dense, branch-light sweep that resolves every lane
// whose answer a fast path determines exactly (disjoint supports,
// intersecting cores, crisp pairs, ordered supports) and collects the
// rest in a selection vector, then the exact corner/edge-crossing
// sweep over the surviving lanes only. Both phases call the same
// inline lane arithmetic as the scalar functions in degree.h
// (fuzzy/degree_kernels.h), so for every lane the result is
// bit-identical to the scalar call -- tests/degree_batch_test.cc
// holds each kernel to that contract over 10k seeded pairs.
//
// Three operand shapes per comparator: batch-vs-scalar (a gathered
// column against a constant), scalar-vs-batch (needed because ~= and
// the order comparators are not operand-symmetric), and elementwise
// batch-vs-batch (two gathered columns; sizes must match).
//
// `out` must have room for the batch size and may alias the batch's
// own degrees() lane.
#ifndef FUZZYDB_FUZZY_DEGREE_BATCH_H_
#define FUZZYDB_FUZZY_DEGREE_BATCH_H_

#include "fuzzy/degree.h"
#include "fuzzy/trapezoid.h"
#include "fuzzy/trapezoid_batch.h"

namespace fuzzydb {

void BatchEqualityDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                         double* out);
void BatchEqualityDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                         double* out);
void BatchEqualityDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                         double* out);

void BatchNotEqualDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                         double* out);
void BatchNotEqualDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                         double* out);
void BatchNotEqualDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                         double* out);

void BatchLessDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                     double* out);
void BatchLessDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                     double* out);
void BatchLessDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                     double* out);

void BatchLessEqualDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                          double* out);
void BatchLessEqualDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                          double* out);
void BatchLessEqualDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                          double* out);

void BatchApproxEqualDegree(const TrapezoidBatch& xs, const Trapezoid& y,
                            double tolerance, double* out);
void BatchApproxEqualDegree(const Trapezoid& x, const TrapezoidBatch& ys,
                            double tolerance, double* out);
void BatchApproxEqualDegree(const TrapezoidBatch& xs, const TrapezoidBatch& ys,
                            double tolerance, double* out);

/// Batch counterparts of SatisfactionDegree: dispatch the comparator
/// once, then run its kernel over the whole batch (kGt / kGe swap the
/// operand roles exactly like the scalar dispatcher).
void BatchSatisfactionDegree(const TrapezoidBatch& xs, CompareOp op,
                             const Trapezoid& y, double approx_tolerance,
                             double* out);
void BatchSatisfactionDegree(const Trapezoid& x, CompareOp op,
                             const TrapezoidBatch& ys, double approx_tolerance,
                             double* out);
void BatchSatisfactionDegree(const TrapezoidBatch& xs, CompareOp op,
                             const TrapezoidBatch& ys, double approx_tolerance,
                             double* out);

}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_DEGREE_BATCH_H_
