// Satisfaction degrees of fuzzy comparison predicates.
//
// Following Section 2.2 of the paper, the degree to which a predicate
// "X theta Y" is satisfied by values U (of X) and V (of Y) is the
// possibility
//
//     d(X theta Y) = sup_{x,y} min(mu_U(x), mu_V(y), mu_theta(x, y))
//
// For the binary comparators (=, !=, <, <=, >, >=), mu_theta is the 0/1
// characteristic function of the comparison; for the approximate-equality
// comparator (~=), mu_theta(x, y) = max(0, 1 - |x - y| / tolerance).
//
// All degrees are computed analytically (no sampling): for trapezoids the
// pointwise minimum of the two membership functions is piecewise linear,
// so the supremum is attained at a corner, a rising/falling edge crossing,
// or (for strict comparisons against a vertical edge) as a one-sided
// limit. The computations here are exact up to floating-point rounding.
#ifndef FUZZYDB_FUZZY_DEGREE_H_
#define FUZZYDB_FUZZY_DEGREE_H_

#include <string>

#include "fuzzy/trapezoid.h"

namespace fuzzydb {

/// Comparison operators of Fuzzy SQL predicates.
enum class CompareOp {
  kEq,        // =
  kNe,        // <> / !=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kApproxEq,  // ~= (similarity with a tolerance)
};

/// Returns the SQL spelling of `op` ("=", "<", "~=", ...).
const char* CompareOpName(CompareOp op);

/// Possibility that X and Y take a common value:
/// sup_x min(mu_X(x), mu_Y(x)). This is "the height of the highest
/// intersection point of the two possibility distributions" (Section 2.2).
double EqualityDegree(const Trapezoid& x, const Trapezoid& y);

/// Possibility that X and Y take different values. 1 unless both are
/// crisp, in which case it is the crisp inequality test.
double NotEqualDegree(const Trapezoid& x, const Trapezoid& y);

/// Poss(X <= Y) = sup_{x <= y} min(mu_X(x), mu_Y(y)).
double LessEqualDegree(const Trapezoid& x, const Trapezoid& y);

/// Poss(X < Y) = sup_{x < y} min(mu_X(x), mu_Y(y)).
double LessDegree(const Trapezoid& x, const Trapezoid& y);

/// Poss(X ~= Y): approximate equality with linear similarity
/// mu(x, y) = max(0, 1 - |x - y| / tolerance). `tolerance` must be > 0.
double ApproxEqualDegree(const Trapezoid& x, const Trapezoid& y,
                         double tolerance);

/// Dispatches to the functions above. For kApproxEq, `approx_tolerance`
/// must be > 0.
double SatisfactionDegree(const Trapezoid& x, CompareOp op,
                          const Trapezoid& y, double approx_tolerance = 1.0);

}  // namespace fuzzydb

#endif  // FUZZYDB_FUZZY_DEGREE_H_
