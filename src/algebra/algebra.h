// Fuzzy relational algebra.
//
// The paper's argument for the possibility-only measure (Section 2.2,
// Appendix) is that it makes the algebraic operations *composable*:
// selection, projection and join each map fuzzy relations to fuzzy
// relations, so a complex query can be evaluated operator by operator --
// the property unnesting depends on. This module provides that algebra,
// playing the role of the Omron Fuzzy LUNA library's operator layer:
//
//   Select    sigma_p(R):   tuple degree min(mu_R(r), d(p(r)))
//   Project   pi_A(R):      duplicates keep the max degree (fuzzy OR)
//   Product   R x S:        degree min(mu_R(r), mu_S(s))
//   Join      R |x|_p S:    degree min(mu_R(r), mu_S(s), d(p(r, s)))
//   Union     R u S:        degree max (fuzzy OR)
//   Intersect R n S:        degree min (fuzzy AND)
//   Difference R - S:       degree min(mu_R(r), 1 - mu_S(r))
//   Rename
//
// Set operations use binary value identity for tuple matching (two
// tuples are "the same element" iff their representations coincide),
// consistent with duplicate elimination.
#ifndef FUZZYDB_ALGEBRA_ALGEBRA_H_
#define FUZZYDB_ALGEBRA_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzzy/degree.h"
#include "relational/relation.h"

namespace fuzzydb {
namespace algebra {

/// A selection predicate: the satisfaction degree of one tuple.
using TuplePredicate = std::function<double(const Tuple&)>;

/// A theta-join predicate over a pair of tuples.
using PairPredicate = std::function<double(const Tuple&, const Tuple&)>;

/// Builds the common single-comparison predicates.
TuplePredicate ColumnCompare(size_t column, CompareOp op, Value constant);
PairPredicate ColumnsCompare(size_t left_column, CompareOp op,
                             size_t right_column);

/// sigma_p(R): keeps tuples with positive combined degree
/// min(mu_R(r), d(p(r))).
Relation Select(const Relation& input, const TuplePredicate& predicate);

/// pi_cols(R): projects to `columns` (by index), eliminating duplicates
/// with the maximum degree. Fails on out-of-range indexes.
Result<Relation> Project(const Relation& input,
                         const std::vector<size_t>& columns);

/// R x S: every pair, degree = min of the degrees.
Relation CartesianProduct(const Relation& left, const Relation& right);

/// R |x|_p S: pairs with positive min(mu_R, mu_S, d(p)).
Relation ThetaJoin(const Relation& left, const Relation& right,
                   const PairPredicate& predicate);

/// Fuzzy equijoin on one column pair -- ThetaJoin specialised to the
/// paper's R.X = S.X, evaluated with the extended merge-join (sort on
/// the interval order + window scan) when both columns are fuzzy, and
/// falling back to the nested loop otherwise. Identical results either
/// way.
Result<Relation> FuzzyEquiJoin(const Relation& left, size_t left_column,
                               const Relation& right, size_t right_column);

/// R u S (schemas must have equal arity): degree max per identical tuple.
Result<Relation> Union(const Relation& left, const Relation& right);

/// R n S: tuples identical in both, degree min.
Result<Relation> Intersect(const Relation& left, const Relation& right);

/// R - S: degree min(mu_R(r), 1 - mu_S(r)); tuples absent from S keep
/// their R degree.
Result<Relation> Difference(const Relation& left, const Relation& right);

/// Renames the relation (schema is carried by the input).
Relation Rename(Relation input, const std::string& name);

}  // namespace algebra
}  // namespace fuzzydb

#endif  // FUZZYDB_ALGEBRA_ALGEBRA_H_
