#include "algebra/algebra.h"

#include <algorithm>
#include <map>

#include "fuzzy/interval_order.h"

namespace fuzzydb {
namespace algebra {

namespace {

/// Combines two schemas for products and joins, qualifying collisions.
Schema ConcatSchemas(const Schema& left, const Schema& right) {
  Schema combined;
  for (const Column& column : left.columns()) {
    std::string name = column.name;
    for (int n = 2; combined.Has(name); ++n) {
      name = column.name + "_" + std::to_string(n);
    }
    (void)combined.AddColumn(Column{name, column.type});
  }
  for (const Column& column : right.columns()) {
    std::string name = column.name;
    for (int n = 2; combined.Has(name); ++n) {
      name = column.name + "_" + std::to_string(n);
    }
    (void)combined.AddColumn(Column{name, column.type});
  }
  return combined;
}

/// Orders tuples by value content, for the set-operation maps.
struct TupleValueLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    const size_t n = std::min(a.NumValues(), b.NumValues());
    for (size_t i = 0; i < n; ++i) {
      const int cmp = a.ValueAt(i).TotalOrderCompare(b.ValueAt(i));
      if (cmp != 0) return cmp < 0;
    }
    return a.NumValues() < b.NumValues();
  }
};

Status CheckArity(const Relation& left, const Relation& right,
                  const char* op) {
  if (left.schema().NumColumns() != right.schema().NumColumns()) {
    return Status::InvalidArgument(
        std::string(op) + " requires relations of equal arity (" +
        std::to_string(left.schema().NumColumns()) + " vs " +
        std::to_string(right.schema().NumColumns()) + ")");
  }
  return Status::OK();
}

}  // namespace

TuplePredicate ColumnCompare(size_t column, CompareOp op, Value constant) {
  return [column, op, constant = std::move(constant)](const Tuple& t) {
    return t.ValueAt(column).Compare(op, constant);
  };
}

PairPredicate ColumnsCompare(size_t left_column, CompareOp op,
                             size_t right_column) {
  return [left_column, op, right_column](const Tuple& l, const Tuple& r) {
    return l.ValueAt(left_column).Compare(op, r.ValueAt(right_column));
  };
}

Relation Select(const Relation& input, const TuplePredicate& predicate) {
  Relation out(input.name(), input.schema());
  for (const Tuple& t : input.tuples()) {
    const double d = std::min(t.degree(), predicate(t));
    if (d > 0.0) {
      Tuple copy = t;
      copy.set_degree(d);
      (void)out.Append(std::move(copy));
    }
  }
  return out;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<size_t>& columns) {
  Schema schema;
  for (size_t c : columns) {
    if (c >= input.schema().NumColumns()) {
      return Status::OutOfRange("projection column " + std::to_string(c) +
                                " out of range");
    }
    std::string name = input.schema().ColumnAt(c).name;
    for (int n = 2; schema.Has(name); ++n) {
      name = input.schema().ColumnAt(c).name + "_" + std::to_string(n);
    }
    (void)schema.AddColumn(Column{name, input.schema().ColumnAt(c).type});
  }
  Relation out(input.name(), schema);
  for (const Tuple& t : input.tuples()) {
    (void)out.Append(t.Project(columns));
  }
  out.EliminateDuplicates();
  return out;
}

Relation CartesianProduct(const Relation& left, const Relation& right) {
  Relation out(left.name() + "_x_" + right.name(),
               ConcatSchemas(left.schema(), right.schema()));
  for (const Tuple& l : left.tuples()) {
    for (const Tuple& r : right.tuples()) {
      (void)out.Append(l.Concat(r));
    }
  }
  return out;
}

Relation ThetaJoin(const Relation& left, const Relation& right,
                   const PairPredicate& predicate) {
  Relation out(left.name() + "_join_" + right.name(),
               ConcatSchemas(left.schema(), right.schema()));
  for (const Tuple& l : left.tuples()) {
    for (const Tuple& r : right.tuples()) {
      const double d =
          std::min({l.degree(), r.degree(), predicate(l, r)});
      if (d > 0.0) {
        Tuple joined = l.Concat(r);
        joined.set_degree(d);
        (void)out.Append(std::move(joined));
      }
    }
  }
  return out;
}

Result<Relation> FuzzyEquiJoin(const Relation& left, size_t left_column,
                               const Relation& right, size_t right_column) {
  if (left_column >= left.schema().NumColumns() ||
      right_column >= right.schema().NumColumns()) {
    return Status::OutOfRange("join column out of range");
  }
  auto all_fuzzy = [](const Relation& rel, size_t col) {
    for (const Tuple& t : rel.tuples()) {
      if (!t.ValueAt(col).is_fuzzy()) return false;
    }
    return true;
  };
  if (!all_fuzzy(left, left_column) || !all_fuzzy(right, right_column)) {
    return ThetaJoin(left, right,
                     ColumnsCompare(left_column, CompareOp::kEq,
                                    right_column));
  }

  // Extended merge-join (Section 3): sort both sides on the interval
  // order, then scan each outer tuple's window Rng(r).
  std::vector<const Tuple*> outer, inner;
  outer.reserve(left.NumTuples());
  inner.reserve(right.NumTuples());
  for (const Tuple& t : left.tuples()) outer.push_back(&t);
  for (const Tuple& t : right.tuples()) inner.push_back(&t);
  auto less_on = [](size_t col) {
    return [col](const Tuple* a, const Tuple* b) {
      return IntervalOrderLess(a->ValueAt(col).AsFuzzy(),
                               b->ValueAt(col).AsFuzzy());
    };
  };
  std::sort(outer.begin(), outer.end(), less_on(left_column));
  std::sort(inner.begin(), inner.end(), less_on(right_column));

  Relation out(left.name() + "_join_" + right.name(),
               ConcatSchemas(left.schema(), right.schema()));
  size_t window_start = 0;
  for (const Tuple* l : outer) {
    const Trapezoid& key = l->ValueAt(left_column).AsFuzzy();
    while (window_start < inner.size() &&
           inner[window_start]->ValueAt(right_column).AsFuzzy().SupportEnd() <
               key.SupportBegin()) {
      ++window_start;
    }
    for (size_t i = window_start; i < inner.size(); ++i) {
      const Trapezoid& inner_key =
          inner[i]->ValueAt(right_column).AsFuzzy();
      if (inner_key.SupportBegin() > key.SupportEnd()) break;
      const double d = std::min(
          {l->degree(), inner[i]->degree(), EqualityDegree(key, inner_key)});
      if (d > 0.0) {
        Tuple joined = l->Concat(*inner[i]);
        joined.set_degree(d);
        FUZZYDB_RETURN_IF_ERROR(out.Append(std::move(joined)));
      }
    }
  }
  return out;
}

Result<Relation> Union(const Relation& left, const Relation& right) {
  FUZZYDB_RETURN_IF_ERROR(CheckArity(left, right, "union"));
  Relation out(left.name() + "_u_" + right.name(), left.schema());
  for (const Tuple& t : left.tuples()) (void)out.Append(t);
  for (const Tuple& t : right.tuples()) (void)out.Append(t);
  out.EliminateDuplicates();  // max degree per identical tuple: fuzzy OR
  return out;
}

Result<Relation> Intersect(const Relation& left, const Relation& right) {
  FUZZYDB_RETURN_IF_ERROR(CheckArity(left, right, "intersection"));
  std::map<Tuple, double, TupleValueLess> degrees;
  for (const Tuple& t : right.tuples()) {
    auto [it, fresh] = degrees.emplace(t, t.degree());
    if (!fresh) it->second = std::max(it->second, t.degree());
  }
  Relation out(left.name() + "_n_" + right.name(), left.schema());
  for (const Tuple& t : left.tuples()) {
    auto it = degrees.find(t);
    if (it == degrees.end()) continue;
    Tuple copy = t;
    copy.set_degree(std::min(t.degree(), it->second));
    FUZZYDB_RETURN_IF_ERROR(out.Append(std::move(copy)));
  }
  out.EliminateDuplicates();
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  FUZZYDB_RETURN_IF_ERROR(CheckArity(left, right, "difference"));
  std::map<Tuple, double, TupleValueLess> degrees;
  for (const Tuple& t : right.tuples()) {
    auto [it, fresh] = degrees.emplace(t, t.degree());
    if (!fresh) it->second = std::max(it->second, t.degree());
  }
  Relation out(left.name() + "_minus_" + right.name(), left.schema());
  for (const Tuple& t : left.tuples()) {
    auto it = degrees.find(t);
    const double other = it == degrees.end() ? 0.0 : it->second;
    const double d = std::min(t.degree(), 1.0 - other);
    if (d > 0.0) {
      Tuple copy = t;
      copy.set_degree(d);
      FUZZYDB_RETURN_IF_ERROR(out.Append(std::move(copy)));
    }
  }
  out.EliminateDuplicates();
  return out;
}

Relation Rename(Relation input, const std::string& name) {
  input.set_name(name);
  return input;
}

}  // namespace algebra
}  // namespace fuzzydb
