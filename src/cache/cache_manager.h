// Cross-query caching (the ROADMAP's "caching" scaling lever).
//
// The paper's unnesting transformations make a nested query cheap within
// one execution, but a repeated workload still pays the dominant costs --
// external sort into support-interval order (Def. 3.1) and inner-block
// materialization -- from scratch on every query. CacheManager is a
// process-wide LRU over four artifact kinds:
//
//   kSortedFile   an interval-sorted run on disk, keyed by the *input*
//                 file's (path, write-version) + sort column + threshold;
//                 lets RunTypeJMergeJoin skip ExternalSort entirely.
//   kPermutation  the interval-order permutation of an in-memory relation
//                 keyed by (relation id @ version, column); the unnesting
//                 evaluator derives any filtered sort order from it in
//                 O(n + k) instead of re-sorting.
//   kFiltered     the (tuple index, degree) survivors of a filtered block.
//   kResult       a fully evaluated query-block result, keyed by a
//                 canonical plan fingerprint (plan_fingerprint.h), with
//                 theta-subsumption: a result cached at threshold t' <= t
//                 answers a query at t after ApplyThreshold(t).
//
// Correctness stance:
//  - Capacity 0 (the default) makes every call an immediate no-op that
//    records nothing, so a cache-off run is byte-identical to builds
//    before this layer existed, metrics included.
//  - Staleness is impossible by construction: in-memory keys embed
//    Relation (id, version) and file keys embed the PageFile write
//    version, both of which change on every mutation of the source.
//    InvalidateRelation() additionally frees entries eagerly on writes.
//  - theta-subsumption is sound because every consumer folds degrees with
//    max/min only and final answers pass EliminateDuplicates, so results
//    do not depend on tuple tie-order, and filtering a result computed at
//    a lower threshold up to a higher one is exact (Section 5's
//    threshold-pushdown argument run in reverse).
//
// Admission is charged through the query's MemoryBudget (charge then
// immediately release: denial skips the insert and is observable via
// denied_bytes, but never fails the query). Inserts and evictions are
// coverable by the "cache/insert" and "cache/evict" fail points.
#ifndef FUZZYDB_CACHE_CACHE_MANAGER_H_
#define FUZZYDB_CACHE_CACHE_MANAGER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/query_context.h"
#include "relational/relation.h"

namespace fuzzydb {

/// Cumulative outcome counters of one CacheManager (monotonic; survive
/// Clear()). Thread-count invariant: every cache operation happens on the
/// coordinating thread at operator granularity.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t denied = 0;       // inserts rejected by the memory budget
  uint64_t invalidated = 0;  // entries dropped by InvalidateRelation
};

class CacheManager {
 public:
  using Permutation = std::vector<uint32_t>;
  /// Survivors of a filtered block: (index into the source relation's
  /// tuple vector, satisfaction degree).
  using FilteredBlock = std::vector<std::pair<uint32_t, double>>;

  /// The process-wide instance the shell and executors share. Tests may
  /// construct private instances instead.
  static CacheManager& Global();

  CacheManager() = default;
  ~CacheManager();
  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  /// Byte capacity; 0 (default) disables the cache entirely -- every
  /// lookup and insert returns immediately without recording anything.
  /// Shrinking evicts immediately.
  void set_capacity_bytes(uint64_t bytes);
  uint64_t capacity_bytes() const;
  bool enabled() const { return capacity_bytes() > 0; }

  uint64_t used_bytes() const;
  CacheStats stats() const;

  /// Drops every entry (unlinking cached sorted files). Stats survive.
  void Clear();

  /// Drops entries depending on `relation_id` (any write to a catalog
  /// relation). Version-keyed entries could never be *served* stale; this
  /// frees their bytes eagerly.
  void InvalidateRelation(uint64_t relation_id);

  // --- sorted-run (file) cache ---------------------------------------

  /// On hit, stores the cache-owned path of the sorted run in
  /// `*cached_path`. The file stays owned by the cache; callers open it
  /// read-only and must tolerate it disappearing before the open (POSIX
  /// keeps the data alive for already-open handles).
  bool LookupSortedFile(const std::string& key, std::string* cached_path);

  /// Offers the sorted run at `path` to the cache. On acceptance the file
  /// is renamed to a cache-owned name and true is returned; on rejection
  /// (disabled, duplicate key, budget denial, fail point, too large)
  /// false is returned and the caller keeps ownership of `path`.
  bool InsertSortedFile(const std::string& key, const std::string& path,
                        uint64_t bytes, QueryContext* query);

  // --- in-memory caches ----------------------------------------------

  std::shared_ptr<const Permutation> LookupPermutation(
      const std::string& key);
  bool InsertPermutation(const std::string& key,
                         std::shared_ptr<const Permutation> perm,
                         std::vector<uint64_t> deps, QueryContext* query);

  std::shared_ptr<const FilteredBlock> LookupFiltered(const std::string& key);
  bool InsertFiltered(const std::string& key,
                      std::shared_ptr<const FilteredBlock> block,
                      std::vector<uint64_t> deps, QueryContext* query);

  /// theta-subsumption lookup: hits iff an entry exists whose stored
  /// threshold is <= `theta`; the caller must ApplyThreshold(theta) on a
  /// copy. Returns null on miss.
  std::shared_ptr<const Relation> LookupResult(const std::string& key,
                                               double theta);

  /// Stores `result` as the block's value at threshold `theta`. If an
  /// entry at a lower (more general) threshold already exists it is kept
  /// and the insert is a no-op; an entry at a higher threshold is
  /// replaced by this more general one.
  bool InsertResult(const std::string& key, double theta,
                    std::shared_ptr<const Relation> result,
                    std::vector<uint64_t> deps, QueryContext* query);

  /// The sys.cache system relation: one row per resident entry, schema
  /// (key STRING, kind STRING, bytes FUZZY, hits FUZZY), sorted by key.
  Relation ToRelation() const;

  /// Deterministic size model for relation payloads (same relation =>
  /// same estimate at any thread count).
  static uint64_t EstimateRelationBytes(const Relation& rel);

 private:
  enum class Kind { kSortedFile, kPermutation, kFiltered, kResult };

  struct Entry {
    std::string key;
    Kind kind = Kind::kResult;
    uint64_t bytes = 0;
    double theta = 0.0;  // kResult only
    uint64_t hits = 0;
    std::vector<uint64_t> deps;  // relation ids (in-memory kinds)
    // Exactly one payload is set, per kind.
    std::shared_ptr<const Permutation> permutation;
    std::shared_ptr<const FilteredBlock> filtered;
    std::shared_ptr<const Relation> result;
    std::string file_path;  // kSortedFile: cache-owned file on disk
  };

  static const char* KindName(Kind kind);

  /// Locked helpers. RemoveLocked unlinks file payloads; InsertLocked
  /// runs fail points, budget admission, and LRU eviction, returning true
  /// when the entry was admitted.
  void RemoveLocked(std::list<Entry>::iterator it);
  bool InsertLocked(Entry entry, QueryContext* query);
  Entry* LookupLocked(const std::string& key, Kind kind);
  void MirrorBytesLocked();

  mutable std::mutex mu_;
  uint64_t capacity_ = 0;
  uint64_t used_ = 0;
  uint64_t next_file_seq_ = 1;
  CacheStats stats_;
  std::list<Entry> entries_;  // front = most recently used
  std::map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_CACHE_CACHE_MANAGER_H_
