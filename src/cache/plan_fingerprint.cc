#include "cache/plan_fingerprint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace fuzzydb {

namespace {

void AppendU64(uint64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

/// Doubles are rendered as their IEEE-754 bit pattern: exact, locale-free,
/// and collision-free for distinct values (including -0.0 vs 0.0).
void AppendDouble(double v, std::string* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, bits);
  *out += buf;
}

/// Strings are length-prefixed so "ab|c" cannot collide with "ab" "c".
void AppendString(const std::string& s, std::string* out) {
  AppendU64(s.size(), out);
  *out += ':';
  *out += s;
}

void AppendValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += 'N';
  } else if (v.is_string()) {
    *out += 'S';
    AppendString(v.AsString(), out);
  } else {
    const Trapezoid& t = v.AsFuzzy();
    *out += 'F';
    AppendDouble(t.a(), out);
    AppendDouble(t.b(), out);
    AppendDouble(t.c(), out);
    AppendDouble(t.d(), out);
  }
}

void AppendColumn(const sql::BoundColumnRef& c, std::string* out) {
  *out += 'c';
  AppendU64(static_cast<uint64_t>(c.up), out);
  *out += ',';
  AppendU64(c.table, out);
  *out += ',';
  AppendU64(c.column, out);
}

void AppendOperand(const sql::BoundOperand& o, std::string* out) {
  if (o.is_column) {
    AppendColumn(o.column, out);
  } else {
    AppendValue(o.constant, out);
  }
}

void AppendQuery(const sql::BoundQuery& q, bool include_threshold,
                 std::vector<uint64_t>* deps, std::string* out) {
  *out += "q{t[";
  for (const sql::BoundTable& t : q.tables) {
    const uint64_t id = t.relation == nullptr ? 0 : t.relation->id();
    const uint64_t version =
        t.relation == nullptr ? 0 : t.relation->version();
    AppendU64(id, out);
    *out += '@';
    AppendU64(version, out);
    *out += ';';
    if (deps != nullptr && id != 0) deps->push_back(id);
  }
  *out += "]s[";
  for (const sql::BoundSelectItem& s : q.select) {
    AppendU64(static_cast<uint64_t>(s.agg), out);
    AppendColumn(s.column, out);
    *out += ';';
  }
  *out += "]p[";
  for (const sql::BoundPredicate& p : q.predicates) {
    AppendU64(static_cast<uint64_t>(p.kind), out);
    *out += p.negated ? '!' : '.';
    AppendU64(static_cast<uint64_t>(p.quantifier), out);
    AppendU64(static_cast<uint64_t>(p.op), out);
    AppendDouble(p.approx_tolerance, out);
    AppendOperand(p.lhs, out);
    if (p.subquery != nullptr) {
      // Subquery thresholds are always part of the block's semantics.
      AppendQuery(*p.subquery, /*include_threshold=*/true, deps, out);
    } else {
      AppendOperand(p.rhs, out);
    }
    *out += ';';
  }
  *out += "]g[";
  for (const sql::BoundColumnRef& g : q.group_by) {
    AppendColumn(g, out);
    *out += ';';
  }
  *out += "]h[";
  for (const sql::BoundHavingItem& h : q.having) {
    AppendU64(static_cast<uint64_t>(h.agg), out);
    AppendColumn(h.column, out);
    AppendU64(static_cast<uint64_t>(h.op), out);
    AppendValue(h.constant, out);
    AppendDouble(h.approx_tolerance, out);
    *out += ';';
  }
  *out += "]o[";
  for (const sql::BoundOrderItem& o : q.order_by) {
    *out += o.by_degree ? 'd' : 'v';
    AppendU64(o.output_column, out);
    *out += o.descending ? '-' : '+';
    *out += ';';
  }
  *out += "]w[";
  if (include_threshold && q.has_with) {
    AppendDouble(q.with_threshold, out);
  }
  *out += "]}";
}

}  // namespace

std::string PlanFingerprint(const sql::BoundQuery& query,
                            bool include_threshold,
                            std::vector<uint64_t>* deps) {
  std::string out;
  out.reserve(256);
  AppendQuery(query, include_threshold, deps, &out);
  return out;
}

}  // namespace fuzzydb
