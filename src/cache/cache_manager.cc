#include "cache/cache_manager.h"

#include <algorithm>
#include <cstdio>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "storage/file_manager.h"

namespace fuzzydb {

namespace {

constexpr double kThetaEpsilon = 1e-12;

}  // namespace

CacheManager& CacheManager::Global() {
  // Heap-allocated intentionally (like MetricsRegistry): cached sorted
  // files are leaked to the OS at exit rather than racing static
  // destruction order; tests that care about file cleanup call Clear().
  static CacheManager* cache = new CacheManager();
  return *cache;
}

CacheManager::~CacheManager() { Clear(); }

void CacheManager::set_capacity_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = bytes;
  // Shrinking below the resident set evicts from the LRU tail now.
  while (used_ > capacity_ && !entries_.empty()) {
    ++stats_.evictions;
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->cache_evictions->Add();
    }
    RemoveLocked(std::prev(entries_.end()));
  }
  MirrorBytesLocked();
}

uint64_t CacheManager::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

uint64_t CacheManager::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

CacheStats CacheManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CacheManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!entries_.empty()) RemoveLocked(entries_.begin());
  MirrorBytesLocked();
}

void CacheManager::InvalidateRelation(uint64_t relation_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto next = std::next(it);
    if (std::find(it->deps.begin(), it->deps.end(), relation_id) !=
        it->deps.end()) {
      ++stats_.invalidated;
      RemoveLocked(it);
    }
    it = next;
  }
  MirrorBytesLocked();
}

const char* CacheManager::KindName(Kind kind) {
  switch (kind) {
    case Kind::kSortedFile:
      return "sorted_file";
    case Kind::kPermutation:
      return "permutation";
    case Kind::kFiltered:
      return "filtered_block";
    case Kind::kResult:
      return "result";
  }
  return "unknown";
}

void CacheManager::RemoveLocked(std::list<Entry>::iterator it) {
  if (it->kind == Kind::kSortedFile && !it->file_path.empty()) {
    // POSIX unlink semantics: a reader that already opened the file keeps
    // a live handle; only the name goes away.
    std::remove(it->file_path.c_str());
  }
  used_ -= it->bytes;
  index_.erase(it->key);
  entries_.erase(it);
}

void CacheManager::MirrorBytesLocked() {
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->cache_bytes->Set(static_cast<int64_t>(used_));
  }
}

CacheManager::Entry* CacheManager::LookupLocked(const std::string& key,
                                                Kind kind) {
  auto it = index_.find(key);
  if (it == index_.end() || it->second->kind != kind) return nullptr;
  // Touch: move to the MRU end.
  entries_.splice(entries_.begin(), entries_, it->second);
  it->second = entries_.begin();
  return &*entries_.begin();
}

bool CacheManager::InsertLocked(Entry entry, QueryContext* query) {
  if (capacity_ == 0 || entry.bytes == 0 || entry.bytes > capacity_) {
    return false;
  }
  if (!FailPoints::Check("cache/insert").ok()) return false;
  // Admission control: reserve against the query's budget, then release
  // immediately -- the cache is not query-lifetime memory, but a query
  // that cannot afford the bytes must not populate the cache either.
  // MemoryBudget::Charge (not ChargeMemory) so a denial never latches the
  // query's stop flag: the query itself proceeds uncached.
  if (query != nullptr) {
    Status admitted = query->memory().Charge(entry.bytes);
    if (!admitted.ok()) {
      ++stats_.denied;
      return false;
    }
    query->memory().Release(entry.bytes);
  }
  bool abandon = false;
  while (used_ + entry.bytes > capacity_ && !entries_.empty()) {
    // A fault during eviction must leave the accounting balanced: the
    // eviction itself completes (bytes released, file unlinked) and only
    // the pending insert is abandoned.
    if (!FailPoints::Check("cache/evict").ok()) abandon = true;
    ++stats_.evictions;
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->cache_evictions->Add();
    }
    RemoveLocked(std::prev(entries_.end()));
  }
  if (abandon) {
    MirrorBytesLocked();
    return false;
  }
  used_ += entry.bytes;
  ++stats_.inserts;
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->cache_inserts->Add();
  }
  entries_.push_front(std::move(entry));
  index_[entries_.front().key] = entries_.begin();
  MirrorBytesLocked();
  return true;
}

bool CacheManager::LookupSortedFile(const std::string& key,
                                    std::string* cached_path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return false;
  Entry* e = LookupLocked(key, Kind::kSortedFile);
  if (e == nullptr) {
    ++stats_.misses;
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->cache_misses->Add();
    }
    return false;
  }
  ++e->hits;
  ++stats_.hits;
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) m->cache_hits->Add();
  *cached_path = e->file_path;
  return true;
}

bool CacheManager::InsertSortedFile(const std::string& key,
                                    const std::string& path, uint64_t bytes,
                                    QueryContext* query) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return false;
  if (index_.find(key) != index_.end()) return false;
  Entry entry;
  entry.key = key;
  entry.kind = Kind::kSortedFile;
  entry.bytes = bytes;
  // Rename into a cache-owned name first: the caller's path is a
  // deterministic temp name that a later query will re-create, which
  // must never truncate a resident cache entry.
  const std::string owned = path + ".cached" + std::to_string(next_file_seq_);
  if (std::rename(path.c_str(), owned.c_str()) != 0) return false;
  ++next_file_seq_;
  entry.file_path = owned;
  if (!InsertLocked(std::move(entry), query)) {
    // Rejected after the rename: the file is ours to discard.
    std::remove(owned.c_str());
    return true;  // either way the caller's path is gone
  }
  return true;
}

std::shared_ptr<const CacheManager::Permutation>
CacheManager::LookupPermutation(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return nullptr;
  Entry* e = LookupLocked(key, Kind::kPermutation);
  if (e == nullptr) {
    ++stats_.misses;
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->cache_misses->Add();
    }
    return nullptr;
  }
  ++e->hits;
  ++stats_.hits;
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) m->cache_hits->Add();
  return e->permutation;
}

bool CacheManager::InsertPermutation(
    const std::string& key, std::shared_ptr<const Permutation> perm,
    std::vector<uint64_t> deps, QueryContext* query) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0 || perm == nullptr) return false;
  if (index_.find(key) != index_.end()) return false;
  Entry entry;
  entry.key = key;
  entry.kind = Kind::kPermutation;
  entry.bytes = 64 + perm->size() * sizeof(uint32_t);
  entry.deps = std::move(deps);
  entry.permutation = std::move(perm);
  return InsertLocked(std::move(entry), query);
}

std::shared_ptr<const CacheManager::FilteredBlock>
CacheManager::LookupFiltered(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return nullptr;
  Entry* e = LookupLocked(key, Kind::kFiltered);
  if (e == nullptr) {
    ++stats_.misses;
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->cache_misses->Add();
    }
    return nullptr;
  }
  ++e->hits;
  ++stats_.hits;
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) m->cache_hits->Add();
  return e->filtered;
}

bool CacheManager::InsertFiltered(const std::string& key,
                                  std::shared_ptr<const FilteredBlock> block,
                                  std::vector<uint64_t> deps,
                                  QueryContext* query) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0 || block == nullptr) return false;
  if (index_.find(key) != index_.end()) return false;
  Entry entry;
  entry.key = key;
  entry.kind = Kind::kFiltered;
  entry.bytes = 64 + block->size() * sizeof(FilteredBlock::value_type);
  entry.deps = std::move(deps);
  entry.filtered = std::move(block);
  return InsertLocked(std::move(entry), query);
}

std::shared_ptr<const Relation> CacheManager::LookupResult(
    const std::string& key, double theta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return nullptr;
  Entry* e = LookupLocked(key, Kind::kResult);
  if (e == nullptr || e->theta > theta + kThetaEpsilon) {
    // An entry cached at a *higher* threshold cannot answer this query:
    // it already dropped tuples the caller needs.
    ++stats_.misses;
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->cache_misses->Add();
    }
    return nullptr;
  }
  ++e->hits;
  ++stats_.hits;
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) m->cache_hits->Add();
  return e->result;
}

bool CacheManager::InsertResult(const std::string& key, double theta,
                                std::shared_ptr<const Relation> result,
                                std::vector<uint64_t> deps,
                                QueryContext* query) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0 || result == nullptr) return false;
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->kind != Kind::kResult ||
        it->second->theta <= theta + kThetaEpsilon) {
      // The resident entry is at least as general; keep it.
      return false;
    }
    // This result was computed at a lower threshold: it subsumes the
    // resident one. Replace (not counted as an eviction).
    RemoveLocked(it->second);
  }
  Entry entry;
  entry.key = key;
  entry.kind = Kind::kResult;
  entry.theta = theta;
  entry.bytes = EstimateRelationBytes(*result);
  entry.deps = std::move(deps);
  entry.result = std::move(result);
  const bool ok = InsertLocked(std::move(entry), query);
  MirrorBytesLocked();
  return ok;
}

Relation CacheManager::ToRelation() const {
  std::lock_guard<std::mutex> lock(mu_);
  Relation rel("sys.cache", Schema{{"key", ValueType::kString},
                                   {"kind", ValueType::kString},
                                   {"bytes", ValueType::kFuzzy},
                                   {"hits", ValueType::kFuzzy}});
  // index_ iterates in key order, so sys.cache rows are stable.
  for (const auto& [key, it] : index_) {
    (void)rel.Append(Tuple({Value::String(key),
                            Value::String(KindName(it->kind)),
                            Value::Number(static_cast<double>(it->bytes)),
                            Value::Number(static_cast<double>(it->hits))},
                           /*degree=*/1.0));
  }
  return rel;
}

uint64_t CacheManager::EstimateRelationBytes(const Relation& rel) {
  // Deterministic size model (exact allocation sizes vary by libstdc++):
  // fixed per-relation and per-tuple overheads plus a per-value cost.
  uint64_t bytes = 64;
  for (const Tuple& t : rel.tuples()) {
    bytes += 48;
    for (size_t i = 0; i < t.NumValues(); ++i) {
      const Value& v = t.ValueAt(i);
      if (v.is_string()) {
        bytes += 32 + v.AsString().size();
      } else if (v.is_fuzzy()) {
        bytes += 48;
      } else {
        bytes += 8;
      }
    }
  }
  return bytes;
}

}  // namespace fuzzydb
