// Canonical fingerprints of bound query blocks.
//
// The inner-block result cache (cache_manager.h) keys on *semantics*, not
// query text: two textually different queries over the same relations in
// the same state must share a key, and any change to an input relation
// must change the key. PlanFingerprint renders a BoundQuery into a
// canonical string with those properties:
//
//  - relations appear as id@version, so a mutation anywhere under the
//    plan (including in subqueries) changes the fingerprint;
//  - numeric constants are rendered as exact IEEE-754 bit patterns, so
//    0.1 and 0.1000000000000001 never collide;
//  - the WITH threshold of the *outermost* block can be excluded
//    (include_threshold = false) -- that is what enables
//    theta-subsumption, where one cache entry serves every threshold
//    above the one it was computed at. Subquery thresholds are always
//    included: they change the block's semantics, not just its filter.
#ifndef FUZZYDB_CACHE_PLAN_FINGERPRINT_H_
#define FUZZYDB_CACHE_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/binder.h"

namespace fuzzydb {

/// Renders `query` canonically. When `deps` is non-null, the ids of every
/// relation referenced anywhere in the plan (subqueries included) are
/// appended, for CacheManager::InvalidateRelation bookkeeping.
std::string PlanFingerprint(const sql::BoundQuery& query,
                            bool include_threshold,
                            std::vector<uint64_t>* deps = nullptr);

}  // namespace fuzzydb

#endif  // FUZZYDB_CACHE_PLAN_FINGERPRINT_H_
