// A sampling-based partitioned fuzzy equijoin.
//
// Section 3 of the paper notes that fuzzy joins resemble band joins [9]
// and valid-time joins [36], for which "partitioned joins based on
// sampling are suggested", and leaves the choice of optimal join method
// as an open question. This operator answers it empirically (see
// bench_ablation_join_methods):
//
//   1. sample the inner relation's key supports to pick P-1 range
//      boundaries (quantiles of the support-begin values) and record the
//      exact maximum support width W;
//   2. partition the inner relation by support begin -- each inner tuple
//      lands in exactly one partition;
//   3. partition the outer relation with replication: r is copied to
//      every partition whose range intersects [b(r) - W, e(r)], the only
//      region where an intersecting inner support can begin;
//   4. join each partition pair in memory with a sort + window scan.
//
// Because each inner tuple lives in exactly one partition, every joining
// pair is emitted exactly once. Compared with the extended merge-join,
// no global external sort is needed (only per-partition in-memory
// sorts), at the price of writing both relations out once more and of
// outer replication when values are wide relative to partition ranges.
#ifndef FUZZYDB_ENGINE_PARTITIONED_JOIN_H_
#define FUZZYDB_ENGINE_PARTITIONED_JOIN_H_

#include <string>

#include "common/status.h"
#include "engine/merge_join.h"  // FuzzyJoinSpec, JoinEmit
#include "parallel/parallel_for.h"

namespace fuzzydb {

/// Instrumentation of one partitioned join.
struct PartitionedJoinStats {
  size_t partitions = 0;
  uint64_t outer_replicas = 0;  // outer tuples written, >= |R|
  double max_inner_width = 0.0;
};

/// Runs the partitioned fuzzy equijoin (spec.key_op must be kEq; key
/// columns must hold fuzzy values). Temporary partition files are
/// created as `temp_prefix + ".p<i>.{inner,outer}"` and removed before
/// returning. Page traffic flows through `pool`.
///
/// With `parallel` set, partition pairs are sorted and probed
/// concurrently (one partition per morsel); partition loads stay on the
/// calling thread because the BufferPool is not thread-safe. Emission
/// order, emitted pairs, and `cpu` totals are identical to the serial
/// run: each worker buffers its partition's matches and counts into a
/// per-partition CpuStats, both folded in partition order at the
/// barrier. The parallel probe materializes every partition pair in
/// memory at once (the serial path holds one pair at a time).
///
/// With `query` set, cancellation/deadline are polled per scanned tuple
/// and per partition, loaded partition pairs are charged against the
/// memory budget, and every early return removes the partition
/// temporaries before surfacing its status.
Status FilePartitionedJoin(PageFile* outer, PageFile* inner, BufferPool* pool,
                           const FuzzyJoinSpec& spec, size_t num_partitions,
                           const std::string& temp_prefix, CpuStats* cpu,
                           const JoinEmit& emit,
                           PartitionedJoinStats* stats = nullptr,
                           const ParallelContext* parallel = nullptr,
                           ExecTrace* trace = nullptr,
                           QueryContext* query = nullptr);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_PARTITIONED_JOIN_H_
