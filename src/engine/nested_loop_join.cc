#include "engine/nested_loop_join.h"

#include <algorithm>

#include "common/query_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzydb {

Status FileNestedLoopJoin(PageFile* outer, PageFile* inner, IoStats* io,
                          size_t buffer_pages, const FuzzyJoinSpec& spec,
                          CpuStats* cpu, const JoinEmit& emit,
                          ExecTrace* trace, QueryContext* query) {
  if (buffer_pages < 2) {
    return Status::InvalidArgument("nested-loop join needs >= 2 buffer pages");
  }
  TraceScope span(trace, "nested-loop-join", cpu, io,
                  "block=" + std::to_string(buffer_pages - 1) + "p");
  uint64_t outer_rows = 0;
  uint64_t emitted = 0;
  // Dedicated pools so the inner relation really only gets one page of
  // buffer, as in the paper's setup.
  BufferPool outer_pool(buffer_pages - 1, io);
  BufferPool inner_pool(1, io);

  const PageId outer_pages = outer->NumPages();
  const PageId block_size = static_cast<PageId>(buffer_pages - 1);

  for (PageId block_start = 0; block_start < outer_pages;
       block_start += block_size) {
    const PageId block_end =
        std::min<PageId>(block_start + block_size, outer_pages);

    // Load the outer block into memory, charging it against the budget
    // for the duration of this block's inner scan. current_page() names
    // the page of the next unread tuple, so this consumes exactly the
    // block's pages.
    std::vector<Tuple> block;
    ScopedBudget block_budget(query);
    {
      HeapFileScanner scan(outer, &outer_pool);
      scan.SeekToPage(block_start);
      Tuple t;
      bool has = false;
      while (scan.current_page() < block_end) {
        FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
        FUZZYDB_RETURN_IF_ERROR(scan.Next(&t, &has));
        if (!has) break;
        ++outer_rows;
        FUZZYDB_RETURN_IF_ERROR(block_budget.Charge(SerializedTupleSize(t)));
        block.push_back(std::move(t));
        t = Tuple();
      }
    }

    // One full scan of the inner relation for this block.
    HeapFileScanner inner_scan(inner, &inner_pool);
    Tuple s;
    bool has_s = false;
    while (true) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
      FUZZYDB_RETURN_IF_ERROR(inner_scan.Next(&s, &has_s));
      if (!has_s) break;
      for (const Tuple& r : block) {
        if (cpu != nullptr) ++cpu->tuple_pairs;
        double d = std::min(r.degree(), s.degree());
        if (d <= 0.0) continue;
        if (cpu != nullptr) ++cpu->degree_evaluations;
        d = std::min(d, r.ValueAt(spec.outer_key)
                            .Compare(spec.key_op, s.ValueAt(spec.inner_key)));
        for (const auto& residual : spec.residuals) {
          if (d <= 0.0) break;
          if (cpu != nullptr) ++cpu->degree_evaluations;
          d = std::min(d,
                       r.ValueAt(residual.outer_col)
                           .Compare(residual.op, s.ValueAt(residual.inner_col)));
        }
        if (d > 0.0) {
          ++emitted;
          FUZZYDB_RETURN_IF_ERROR(emit(r, s, d));
        }
      }
    }
  }
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->nested_loop_rows_in->Add(outer_rows);
    m->nested_loop_rows_out->Add(emitted);
  }
  span.SetInputRows(outer_rows);
  span.SetOutputRows(emitted);
  return Status::OK();
}

}  // namespace fuzzydb
