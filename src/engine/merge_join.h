// The file-based extended merge-join (Section 3 of the paper).
//
// Inputs are heap files previously sorted on their join attributes by the
// interval order of Definition 3.1 (see sort/external_sort.h). The join
// scans the outer file once; for each outer tuple r it examines exactly
// the window Rng(r) of inner tuples (Definition 3.2), which is kept in
// main memory ("the page stays in the main memory since some tuples in
// the page may join with the next R-tuple"). Inner pages are fetched at
// most once when the largest window fits in the buffer.
#ifndef FUZZYDB_ENGINE_MERGE_JOIN_H_
#define FUZZYDB_ENGINE_MERGE_JOIN_H_

#include <functional>

#include "common/status.h"
#include "engine/exec_stats.h"
#include "fuzzy/degree.h"
#include "storage/heap_file.h"

namespace fuzzydb {

class ExecTrace;
class QueryContext;

/// Describes the fuzzy join R |x| S.
struct FuzzyJoinSpec {
  /// Key columns (must hold fuzzy values): the window and the primary
  /// degree d(R.key op S.key) are driven by these.
  size_t outer_key = 0;
  size_t inner_key = 0;
  CompareOp key_op = CompareOp::kEq;

  /// Additional predicates evaluated on each windowed pair.
  struct Residual {
    size_t outer_col;
    size_t inner_col;
    CompareOp op;
  };
  std::vector<Residual> residuals;

  /// WITH D >= threshold pushdown (the optimization of [42], presented
  /// there as fuzzy equality indicators): pairs below the threshold can
  /// never reach the answer, and a key-equality degree >= z requires the
  /// z-cuts (not just the supports) to intersect, so the merge window
  /// retires and stops on alpha-cut bounds. When > 0 the join inputs
  /// must be sorted on the interval order of their z-cuts and pairs with
  /// combined degree < threshold are not emitted.
  double threshold = 0.0;
};

/// Called for each pair whose combined degree
/// min(r.D, s.D, d(key), d(residuals...)) is positive.
using JoinEmit =
    std::function<Status(const Tuple& outer, const Tuple& inner, double d)>;

/// Runs the extended merge-join over two interval-order-sorted heap
/// files. CPU work is tallied in `cpu` (may be null). With `trace` set,
/// records a "merge-join" span (counter deltas, scanned/emitted rows).
/// With `query` set, cancellation/deadline are polled once per outer
/// tuple and the in-memory window is charged against the memory budget.
///
/// `batch_size` chunks each outer tuple's window for the batch
/// satisfaction-degree kernels (ExecOptions::batch_size; 0 = the scalar
/// pair-at-a-time path). Emitted pairs, degrees and CpuStats are
/// identical for every setting.
Status FileMergeJoin(PageFile* sorted_outer, PageFile* sorted_inner,
                     BufferPool* pool, const FuzzyJoinSpec& spec,
                     CpuStats* cpu, const JoinEmit& emit,
                     ExecTrace* trace = nullptr,
                     QueryContext* query = nullptr,
                     size_t batch_size = 1024);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_MERGE_JOIN_H_
