#include "engine/merge_join.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/query_context.h"
#include "fuzzy/degree_batch.h"
#include "fuzzy/trapezoid_batch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzydb {

namespace {

/// Combined degree of one (r, s) pair under `spec`.
double PairDegree(const Tuple& r, const Tuple& s, const FuzzyJoinSpec& spec,
                  CpuStats* cpu) {
  double d = std::min(r.degree(), s.degree());
  if (d <= 0.0) return 0.0;
  if (cpu != nullptr) ++cpu->degree_evaluations;
  d = std::min(d, r.ValueAt(spec.outer_key)
                      .Compare(spec.key_op, s.ValueAt(spec.inner_key)));
  for (const auto& residual : spec.residuals) {
    if (d <= 0.0) break;
    if (cpu != nullptr) ++cpu->degree_evaluations;
    d = std::min(d, r.ValueAt(residual.outer_col)
                        .Compare(residual.op, s.ValueAt(residual.inner_col)));
  }
  return d;
}

/// Scratch for the batched window evaluation (docs/architecture.md,
/// "Batch execution"): one window chunk's tuples, operand lanes, and
/// degree lanes. Heap-allocated once per join, reused across windows.
struct JoinScratch {
  std::array<const Tuple*, TrapezoidBatch::kCapacity> window;
  TrapezoidBatch operand;
  std::array<double, TrapezoidBatch::kCapacity> degree;
  std::array<double, TrapezoidBatch::kCapacity> result;
  std::array<uint32_t, TrapezoidBatch::kCapacity> active;
  uint64_t batches = 0;  // kernel invocations (span/metric annotation)
  uint64_t rows = 0;     // lanes those invocations evaluated
};

/// Evaluates one window chunk of `count` inner tuples against `r`,
/// leaving the combined degrees in js->degree. Mirrors PairDegree's
/// min-fold and early exits lane for lane (a lane joins a stage only
/// while its degree is > 0, and degree_evaluations advances once per
/// participating lane), so CpuStats match the scalar path exactly.
void JoinChunkDegrees(const Tuple& r, size_t count,
                      const FuzzyJoinSpec& spec, JoinScratch* js,
                      CpuStats* cpu, Histogram* fill_hist) {
  double* deg = js->degree.data();
  double* res = js->result.data();
  uint32_t* active = js->active.data();
  const Tuple* const* window = js->window.data();
  const double r_degree = r.degree();
  for (size_t k = 0; k < count; ++k) {
    deg[k] = std::min(r_degree, window[k]->degree());
  }

  // The key stage, then each residual: identical structure, so one
  // lambda runs them all. `outer` is r's operand (the same value for
  // every lane); a non-fuzzy value on either side drops the whole
  // stage to the per-lane scalar fallback with the same counting.
  auto run_stage = [&](const Value& outer, CompareOp op, size_t inner_col) {
    size_t live = 0;
    for (size_t k = 0; k < count; ++k) {
      active[live] = static_cast<uint32_t>(k);
      live += static_cast<size_t>(deg[k] > 0.0);
    }
    if (live == 0) return false;  // every lane exited: skip later stages
    bool batched = outer.is_fuzzy();
    if (batched) {
      js->operand.Clear();
      for (size_t j = 0; j < live; ++j) {
        const Value& v = window[active[j]]->ValueAt(inner_col);
        if (!v.is_fuzzy()) {
          batched = false;
          break;
        }
        js->operand.PushBack(v.AsFuzzy());
      }
    }
    if (batched) {
      BatchSatisfactionDegree(outer.AsFuzzy(), op, js->operand,
                              /*approx_tolerance=*/1.0, res);
      if (cpu != nullptr) cpu->degree_evaluations += live;
      ++js->batches;
      js->rows += live;
      if (fill_hist != nullptr) fill_hist->Record(live);
      for (size_t j = 0; j < live; ++j) {
        const size_t k = active[j];
        deg[k] = std::min(deg[k], res[j]);
      }
    } else {
      for (size_t j = 0; j < live; ++j) {
        const size_t k = active[j];
        if (cpu != nullptr) ++cpu->degree_evaluations;
        deg[k] = std::min(
            deg[k], outer.Compare(op, window[k]->ValueAt(inner_col)));
      }
    }
    return true;
  };

  if (!run_stage(r.ValueAt(spec.outer_key), spec.key_op, spec.inner_key)) {
    return;
  }
  for (const auto& residual : spec.residuals) {
    if (!run_stage(r.ValueAt(residual.outer_col), residual.op,
                   residual.inner_col)) {
      return;
    }
  }
}

}  // namespace

Status FileMergeJoin(PageFile* sorted_outer, PageFile* sorted_inner,
                     BufferPool* pool, const FuzzyJoinSpec& spec,
                     CpuStats* cpu, const JoinEmit& emit, ExecTrace* trace,
                     QueryContext* query, size_t batch_size) {
  TraceScope span(trace, "merge-join", cpu,
                  pool == nullptr ? nullptr : &pool->stats());
  uint64_t outer_rows = 0;
  uint64_t emitted = 0;
  EngineMetrics* metrics = EngineMetrics::IfEnabled();
  Histogram* window_hist =
      metrics == nullptr ? nullptr : metrics->merge_window_length;
  Histogram* fill_hist = metrics == nullptr ? nullptr : metrics->batch_fill;
  const size_t batch = std::min(batch_size, TrapezoidBatch::kCapacity);
  std::unique_ptr<JoinScratch> scratch;
  if (batch > 0) scratch = std::make_unique<JoinScratch>();
  HeapFileScanner outer_scan(sorted_outer, pool);
  HeapFileScanner inner_scan(sorted_inner, pool);

  // The in-memory window of inner tuples: tuples retired from the front
  // as the outer key advances, extended at the back on demand. The
  // window is the operator's resident memory: charged as tuples enter,
  // released as they retire (the scope release keeps the budget balanced
  // on early returns).
  std::deque<Tuple> window;
  ScopedBudget window_budget(query);
  bool inner_exhausted = false;
  Tuple pending_inner;   // read past the window end, not yet needed
  bool has_pending = false;

  Tuple r;
  bool has_r = false;
  while (true) {
    FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
    FUZZYDB_RETURN_IF_ERROR(outer_scan.Next(&r, &has_r));
    if (!has_r) break;
    ++outer_rows;
    const Value& rv = r.ValueAt(spec.outer_key);
    if (!rv.is_fuzzy()) {
      return Status::InvalidArgument("merge-join key must be fuzzy");
    }
    // With a WITH-threshold pushdown the window works on alpha-cuts
    // (threshold 0 degenerates to the support interval).
    const double alpha = spec.threshold;
    const double r_begin = rv.AsFuzzy().AlphaCutBegin(alpha);
    const double r_end = rv.AsFuzzy().AlphaCutEnd(alpha);

    // Retire window tuples wholly before r (e(s.X) < b(r.X)); later outer
    // tuples have keys no smaller, so retirement is permanent.
    while (!window.empty()) {
      if (cpu != nullptr) ++cpu->comparisons;
      if (window.front().ValueAt(spec.inner_key).AsFuzzy().AlphaCutEnd(
              alpha) < r_begin) {
        window_budget.Release(SerializedTupleSize(window.front()));
        window.pop_front();
      } else {
        break;
      }
    }

    // Extend the window until the first inner tuple wholly after r
    // (b(s.X) > e(r.X)); that tuple is kept pending for the next r.
    if (has_pending) {
      if (cpu != nullptr) ++cpu->comparisons;
      const Trapezoid& pk = pending_inner.ValueAt(spec.inner_key).AsFuzzy();
      if (pk.AlphaCutEnd(alpha) < r_begin) {
        // The pending tuple fell wholly before this (and thus every
        // later) outer tuple: drop it without ever entering the window.
        has_pending = false;
      } else if (pk.AlphaCutBegin(alpha) <= r_end) {
        FUZZYDB_RETURN_IF_ERROR(
            window_budget.Charge(SerializedTupleSize(pending_inner)));
        window.push_back(std::move(pending_inner));
        has_pending = false;
      }
    }
    while (!has_pending && !inner_exhausted) {
      Tuple s;
      bool has_s = false;
      FUZZYDB_RETURN_IF_ERROR(inner_scan.Next(&s, &has_s));
      if (!has_s) {
        inner_exhausted = true;
        break;
      }
      if (cpu != nullptr) ++cpu->comparisons;
      const Trapezoid& sk = s.ValueAt(spec.inner_key).AsFuzzy();
      if (sk.AlphaCutEnd(alpha) < r_begin) {
        continue;  // wholly before r: skip (can never join later either)
      }
      if (sk.AlphaCutBegin(alpha) > r_end) {
        pending_inner = std::move(s);
        has_pending = true;
        break;
      }
      FUZZYDB_RETURN_IF_ERROR(window_budget.Charge(SerializedTupleSize(s)));
      window.push_back(std::move(s));
    }

    // Join r against its window Rng(r).
    if (window_hist != nullptr) window_hist->Record(window.size());
    if (batch > 0) {
      // Batch path: evaluate the window in chunks, then emit the
      // surviving pairs in window order -- the same pairs, degrees and
      // counters as the scalar loop below.
      auto it = window.begin();
      size_t remaining = window.size();
      while (remaining > 0) {
        const size_t count = std::min(batch, remaining);
        for (size_t k = 0; k < count; ++k) scratch->window[k] = &*it++;
        remaining -= count;
        if (cpu != nullptr) cpu->tuple_pairs += count;
        JoinChunkDegrees(r, count, spec, scratch.get(), cpu, fill_hist);
        for (size_t k = 0; k < count; ++k) {
          const double d = scratch->degree[k];
          if (d > 0.0 && d >= spec.threshold) {
            ++emitted;
            FUZZYDB_RETURN_IF_ERROR(emit(r, *scratch->window[k], d));
          }
        }
      }
      continue;
    }
    for (const Tuple& s : window) {
      if (cpu != nullptr) ++cpu->tuple_pairs;
      const double d = PairDegree(r, s, spec, cpu);
      if (d > 0.0 && d >= spec.threshold) {
        ++emitted;
        FUZZYDB_RETURN_IF_ERROR(emit(r, s, d));
      }
    }
  }
  if (metrics != nullptr) {
    metrics->merge_join_rows_in->Add(outer_rows);
    metrics->merge_join_rows_out->Add(emitted);
    if (scratch != nullptr && scratch->batches > 0) {
      metrics->batch_batches->Add(scratch->batches);
      metrics->batch_rows->Add(scratch->rows);
    }
  }
  if (scratch != nullptr && scratch->batches > 0) {
    span.SetBatches(scratch->batches, scratch->rows);
  }
  span.SetInputRows(outer_rows);
  span.SetOutputRows(emitted);
  return Status::OK();
}

}  // namespace fuzzydb
