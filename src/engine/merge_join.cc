#include "engine/merge_join.h"

#include <algorithm>
#include <deque>

#include "common/query_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzydb {

namespace {

/// Combined degree of one (r, s) pair under `spec`.
double PairDegree(const Tuple& r, const Tuple& s, const FuzzyJoinSpec& spec,
                  CpuStats* cpu) {
  double d = std::min(r.degree(), s.degree());
  if (d <= 0.0) return 0.0;
  if (cpu != nullptr) ++cpu->degree_evaluations;
  d = std::min(d, r.ValueAt(spec.outer_key)
                      .Compare(spec.key_op, s.ValueAt(spec.inner_key)));
  for (const auto& residual : spec.residuals) {
    if (d <= 0.0) break;
    if (cpu != nullptr) ++cpu->degree_evaluations;
    d = std::min(d, r.ValueAt(residual.outer_col)
                        .Compare(residual.op, s.ValueAt(residual.inner_col)));
  }
  return d;
}

}  // namespace

Status FileMergeJoin(PageFile* sorted_outer, PageFile* sorted_inner,
                     BufferPool* pool, const FuzzyJoinSpec& spec,
                     CpuStats* cpu, const JoinEmit& emit, ExecTrace* trace,
                     QueryContext* query) {
  TraceScope span(trace, "merge-join", cpu,
                  pool == nullptr ? nullptr : &pool->stats());
  uint64_t outer_rows = 0;
  uint64_t emitted = 0;
  EngineMetrics* metrics = EngineMetrics::IfEnabled();
  Histogram* window_hist =
      metrics == nullptr ? nullptr : metrics->merge_window_length;
  HeapFileScanner outer_scan(sorted_outer, pool);
  HeapFileScanner inner_scan(sorted_inner, pool);

  // The in-memory window of inner tuples: tuples retired from the front
  // as the outer key advances, extended at the back on demand. The
  // window is the operator's resident memory: charged as tuples enter,
  // released as they retire (the scope release keeps the budget balanced
  // on early returns).
  std::deque<Tuple> window;
  ScopedBudget window_budget(query);
  bool inner_exhausted = false;
  Tuple pending_inner;   // read past the window end, not yet needed
  bool has_pending = false;

  Tuple r;
  bool has_r = false;
  while (true) {
    FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
    FUZZYDB_RETURN_IF_ERROR(outer_scan.Next(&r, &has_r));
    if (!has_r) break;
    ++outer_rows;
    const Value& rv = r.ValueAt(spec.outer_key);
    if (!rv.is_fuzzy()) {
      return Status::InvalidArgument("merge-join key must be fuzzy");
    }
    // With a WITH-threshold pushdown the window works on alpha-cuts
    // (threshold 0 degenerates to the support interval).
    const double alpha = spec.threshold;
    const double r_begin = rv.AsFuzzy().AlphaCutBegin(alpha);
    const double r_end = rv.AsFuzzy().AlphaCutEnd(alpha);

    // Retire window tuples wholly before r (e(s.X) < b(r.X)); later outer
    // tuples have keys no smaller, so retirement is permanent.
    while (!window.empty()) {
      if (cpu != nullptr) ++cpu->comparisons;
      if (window.front().ValueAt(spec.inner_key).AsFuzzy().AlphaCutEnd(
              alpha) < r_begin) {
        window_budget.Release(SerializedTupleSize(window.front()));
        window.pop_front();
      } else {
        break;
      }
    }

    // Extend the window until the first inner tuple wholly after r
    // (b(s.X) > e(r.X)); that tuple is kept pending for the next r.
    if (has_pending) {
      if (cpu != nullptr) ++cpu->comparisons;
      const Trapezoid& pk = pending_inner.ValueAt(spec.inner_key).AsFuzzy();
      if (pk.AlphaCutEnd(alpha) < r_begin) {
        // The pending tuple fell wholly before this (and thus every
        // later) outer tuple: drop it without ever entering the window.
        has_pending = false;
      } else if (pk.AlphaCutBegin(alpha) <= r_end) {
        FUZZYDB_RETURN_IF_ERROR(
            window_budget.Charge(SerializedTupleSize(pending_inner)));
        window.push_back(std::move(pending_inner));
        has_pending = false;
      }
    }
    while (!has_pending && !inner_exhausted) {
      Tuple s;
      bool has_s = false;
      FUZZYDB_RETURN_IF_ERROR(inner_scan.Next(&s, &has_s));
      if (!has_s) {
        inner_exhausted = true;
        break;
      }
      if (cpu != nullptr) ++cpu->comparisons;
      const Trapezoid& sk = s.ValueAt(spec.inner_key).AsFuzzy();
      if (sk.AlphaCutEnd(alpha) < r_begin) {
        continue;  // wholly before r: skip (can never join later either)
      }
      if (sk.AlphaCutBegin(alpha) > r_end) {
        pending_inner = std::move(s);
        has_pending = true;
        break;
      }
      FUZZYDB_RETURN_IF_ERROR(window_budget.Charge(SerializedTupleSize(s)));
      window.push_back(std::move(s));
    }

    // Join r against its window Rng(r).
    if (window_hist != nullptr) window_hist->Record(window.size());
    for (const Tuple& s : window) {
      if (cpu != nullptr) ++cpu->tuple_pairs;
      const double d = PairDegree(r, s, spec, cpu);
      if (d > 0.0 && d >= spec.threshold) {
        ++emitted;
        FUZZYDB_RETURN_IF_ERROR(emit(r, s, d));
      }
    }
  }
  if (metrics != nullptr) {
    metrics->merge_join_rows_in->Add(outer_rows);
    metrics->merge_join_rows_out->Add(emitted);
  }
  span.SetInputRows(outer_rows);
  span.SetOutputRows(emitted);
  return Status::OK();
}

}  // namespace fuzzydb
