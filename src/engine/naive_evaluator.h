// The naive (tuple-at-a-time, nested-loop) evaluator.
//
// This evaluator implements the *execution semantics* of Fuzzy SQL
// literally as defined in Sections 4-8 of the paper: for every tuple
// combination of a block's FROM relations, each subquery predicate
// re-evaluates its inner block with the current outer tuples bound
// (producing the temporary relation T(r)), satisfaction degrees combine
// by min, and duplicate answers keep the maximum degree.
//
// It is the baseline the paper compares against -- O(n_R x n_S) for
// 2-level queries -- and doubles as the executable specification that the
// unnesting evaluator must agree with (Theorems 4.1-8.1).
#ifndef FUZZYDB_ENGINE_NAIVE_EVALUATOR_H_
#define FUZZYDB_ENGINE_NAIVE_EVALUATOR_H_

#include "common/status.h"
#include "engine/exec_stats.h"
#include "engine/semantics.h"
#include "relational/relation.h"
#include "sql/binder.h"

namespace fuzzydb {

class ExecTrace;
class QueryContext;

/// Evaluates bound queries by their literal semantics.
class NaiveEvaluator {
 public:
  /// With `query` set, cancellation/deadline are polled once per
  /// complete tuple combination, so even the O(n_R x n_S) baseline
  /// stops within one combination of the trigger.
  explicit NaiveEvaluator(CpuStats* cpu = nullptr, ExecTrace* trace = nullptr,
                          const QueryContext* query = nullptr)
      : cpu_(cpu), trace_(trace), query_(query) {}

  /// Evaluates a bound query; the result relation is duplicate-free and
  /// respects the query's WITH threshold.
  ///
  /// GROUPBY/HAVING semantics (Section 2.2 declares them "similar to
  /// their counterpart in standard SQL"; the degree semantics follows
  /// the fuzzy-set reading used everywhere else): rows that satisfy the
  /// WHERE clause with a positive degree group by the identity of their
  /// grouping values; a group's membership degree is the maximum member
  /// degree (fuzzy OR over the ways the group arises); aggregates apply
  /// to the group's fuzzy set of values; each HAVING conjunct
  /// contributes d(AGG(group) op constant) by min.
  Result<Relation> Evaluate(const sql::BoundQuery& query);

 private:
  Result<Relation> EvaluateBlock(const sql::BoundQuery& query,
                                 Frames* frames);
  Result<Relation> EvaluateGroupedBlock(const sql::BoundQuery& query,
                                        Frames* frames);
  Result<double> PredicateDegree(const sql::BoundPredicate& pred,
                                 Frames* frames);

  CpuStats* cpu_;
  ExecTrace* trace_;
  const QueryContext* query_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_NAIVE_EVALUATOR_H_
