#include "engine/executor.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "cache/cache_manager.h"
#include "common/query_context.h"
#include "common/stopwatch.h"
#include "engine/merge_join.h"
#include "engine/nested_loop_join.h"
#include "fuzzy/interval_order.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "sort/external_sort.h"
#include "storage/temp_file_guard.h"

namespace fuzzydb {

namespace {

/// Accumulates answer degrees per distinct projected value (fuzzy OR:
/// duplicates keep the maximum degree).
class AnswerAccumulator {
 public:
  void Add(const Value& x, double degree) {
    auto [it, inserted] = degrees_.emplace(x, degree);
    if (!inserted && degree > it->second) it->second = degree;
  }

  Relation Finish(double threshold) const {
    Relation answer("answer", Schema{Column{"X", ValueType::kFuzzy}});
    for (const auto& [x, d] : degrees_) {
      if (d >= threshold && d > 0.0) {
        (void)answer.Append(Tuple({x}, d));
      }
    }
    return answer;
  }

 private:
  std::map<Value, double, ValueLess> degrees_;
};

/// Interval-order comparator on tuple column `col` that counts
/// comparisons into `cpu`. With a WITH-threshold pushdown (`alpha` > 0)
/// the order is taken over the alpha-cuts instead of the supports, so
/// the thresholded merge window stays sound.
TupleLess IntervalLessOnColumn(size_t col, CpuStats* cpu, double alpha = 0) {
  return [col, cpu, alpha](const Tuple& a, const Tuple& b) {
    if (cpu != nullptr) ++cpu->comparisons;
    const Trapezoid& x = a.ValueAt(col).AsFuzzy();
    const Trapezoid& y = b.ValueAt(col).AsFuzzy();
    if (x.AlphaCutBegin(alpha) != y.AlphaCutBegin(alpha)) {
      return x.AlphaCutBegin(alpha) < y.AlphaCutBegin(alpha);
    }
    return x.AlphaCutEnd(alpha) < y.AlphaCutEnd(alpha);
  };
}

}  // namespace

Result<RunResult> RunTypeJNestedLoop(PageFile* r_file, PageFile* s_file,
                                     const TypeJQuerySpec& spec,
                                     size_t buffer_pages,
                                     const ExecOptions* options) {
  RunResult result;
  Stopwatch wall;
  CpuStopwatch cpu_clock;
  ExecTrace* trace = options == nullptr ? nullptr : options->trace;
  TraceScope span(trace, "query", &result.stats.cpu, &result.stats.io,
                  "typeJ nested-loop");

  FuzzyJoinSpec join;
  join.outer_key = spec.r_y;
  join.inner_key = spec.s_z;
  join.key_op = CompareOp::kEq;
  join.residuals.push_back({spec.r_u, spec.s_v, CompareOp::kEq});

  AnswerAccumulator acc;
  FUZZYDB_RETURN_IF_ERROR(FileNestedLoopJoin(
      r_file, s_file, &result.stats.io, buffer_pages, join,
      &result.stats.cpu, [&](const Tuple& r, const Tuple& s, double d) {
        (void)s;
        acc.Add(r.ValueAt(spec.r_x), d);
        return Status::OK();
      }, trace, options == nullptr ? nullptr : options->context));

  result.answer = acc.Finish(spec.threshold);
  span.SetOutputRows(result.answer.NumTuples());
  result.stats.join_seconds = wall.ElapsedSeconds();
  result.stats.total_seconds = wall.ElapsedSeconds();
  result.stats.cpu_seconds = cpu_clock.ElapsedSeconds();
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->join_stage_us->Record(
        static_cast<uint64_t>(result.stats.join_seconds * 1e6));
  }
  return result;
}

Result<RunResult> RunTypeJMergeJoin(PageFile* r_file, PageFile* s_file,
                                    const TypeJQuerySpec& spec,
                                    size_t buffer_pages,
                                    const std::string& temp_prefix,
                                    size_t min_record_size,
                                    const ExecOptions* options) {
  RunResult result;
  Stopwatch wall;
  CpuStopwatch cpu_clock;
  BufferPool pool(buffer_pages, &result.stats.io);
  ExecTrace* trace = options == nullptr ? nullptr : options->trace;
  TraceScope span(trace, "query", &result.stats.cpu, &result.stats.io,
                  "typeJ merge");

  // Worker pool for the CPU-bound run sorts. Only engaged with > 1
  // thread: the parallel run-sort path's comparison count differs from
  // std::sort's, so single-threaded options must match nullptr exactly.
  std::unique_ptr<ThreadPool> workers;
  ParallelContext parallel_ctx;
  const ParallelContext* parallel = nullptr;
  QueryContext* query = options == nullptr ? nullptr : options->context;
  QueryProgress* progress =
      options == nullptr ? nullptr : options->progress;
  if (options != nullptr && options->ResolvedThreads() > 1) {
    workers = std::make_unique<ThreadPool>(options->ResolvedThreads());
    parallel_ctx.pool = workers.get();
    parallel_ctx.morsel_size = options->morsel_size;
    parallel_ctx.query = query;
    parallel_ctx.progress = progress;
    parallel = &parallel_ctx;
  }

  // ---- Sort phase (charged to sort_seconds; Table 3) ----------------
  // With a WITH threshold the sort key is the threshold-cut interval
  // (the [42] indicator optimization); the join window then prunes on
  // the same cuts.
  Stopwatch sort_watch;
  PhaseScope sort_phase(progress, QueryPhase::kSort);
  SortStats sort_stats;
  // Both sorted temporaries are tracked until the success-path cleanup
  // below: if the second sort (or the join) fails, the first sort's
  // output must not be left behind. Cache-owned sorted runs are never
  // tracked -- they outlive this query by design.
  TempFileGuard sorted_guard(&pool);
  CacheManager* cache = options == nullptr ? nullptr : options->cache;
  if (cache != nullptr && !cache->enabled()) cache = nullptr;

  // Cache key for one sorted side. The input file's registered version
  // (LSN) makes stale hits impossible: any write to the base file stamps
  // a fresh version and the old key is never looked up again. The sort
  // order depends on the key column and the alpha-cut threshold, and the
  // record layout on min_record_size, so all three are part of the key.
  auto sorted_run_key = [&](PageFile* input, size_t col) {
    uint64_t bits = 0;
    std::memcpy(&bits, &spec.threshold, sizeof(bits));
    char alpha_hex[32];
    std::snprintf(alpha_hex, sizeof(alpha_hex), "%016" PRIx64, bits);
    return "srun|" + input->path() + "|v" + std::to_string(input->version()) +
           "|c" + std::to_string(col) + "|a" + alpha_hex + "|r" +
           std::to_string(min_record_size);
  };

  // Produces the interval-order-sorted run for one side: from the
  // sorted-run cache when a current-version entry exists, otherwise by
  // ExternalSort. A hit whose file cannot be opened (evicted between
  // lookup and open) falls back to the cold path.
  bool r_from_cache = false;
  bool s_from_cache = false;
  std::string r_key;
  std::string s_key;
  auto sorted_input =
      [&](PageFile* input, size_t col, const std::string& run_prefix,
          const std::string& sorted_path, std::string* key,
          bool* from_cache) -> Result<std::unique_ptr<PageFile>> {
    if (cache != nullptr) {
      *key = sorted_run_key(input, col);
      std::string cached_path;
      if (cache->LookupSortedFile(*key, &cached_path)) {
        auto reopened = PageFile::Open(cached_path);
        if (reopened.ok()) {
          TraceScope cached(trace, "sort", nullptr, nullptr,
                            input->path() + " (cached)");
          *from_cache = true;
          return std::move(reopened).value();
        }
      }
    }
    FUZZYDB_ASSIGN_OR_RETURN(
        std::unique_ptr<PageFile> sorted,
        ExternalSort(input, &pool,
                     IntervalLessOnColumn(col, nullptr, spec.threshold),
                     run_prefix, sorted_path, buffer_pages, min_record_size,
                     &sort_stats, parallel, trace, query));
    sorted_guard.Track(sorted->path());
    return sorted;
  };

  std::unique_ptr<PageFile> r_sorted;
  FUZZYDB_ASSIGN_OR_RETURN(
      r_sorted, sorted_input(r_file, spec.r_y, temp_prefix + ".R",
                             temp_prefix + ".R.sorted", &r_key,
                             &r_from_cache));
  std::unique_ptr<PageFile> s_sorted;
  FUZZYDB_ASSIGN_OR_RETURN(
      s_sorted, sorted_input(s_file, spec.s_z, temp_prefix + ".S",
                             temp_prefix + ".S.sorted", &s_key,
                             &s_from_cache));
  result.stats.cpu.comparisons += sort_stats.comparisons;
  result.stats.sort_seconds = sort_watch.ElapsedSeconds();
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->sort_stage_us->Record(
        static_cast<uint64_t>(result.stats.sort_seconds * 1e6));
  }

  // ---- Join phase ----------------------------------------------------
  Stopwatch join_watch;
  PhaseScope join_phase(progress, QueryPhase::kJoin);
  pool.Clear();  // the paper's join phase starts with a cold buffer

  FuzzyJoinSpec join;
  join.outer_key = spec.r_y;
  join.inner_key = spec.s_z;
  join.key_op = CompareOp::kEq;
  join.residuals.push_back({spec.r_u, spec.s_v, CompareOp::kEq});
  join.threshold = spec.threshold;

  AnswerAccumulator acc;
  FUZZYDB_RETURN_IF_ERROR(FileMergeJoin(
      r_sorted.get(), s_sorted.get(), &pool, join, &result.stats.cpu,
      [&](const Tuple& r, const Tuple& s, double d) {
        (void)s;
        acc.Add(r.ValueAt(spec.r_x), d);
        return Status::OK();
      }, trace, query,
      options == nullptr ? size_t{1024} : options->batch_size));

  result.answer = acc.Finish(spec.threshold);
  span.SetOutputRows(result.answer.NumTuples());
  result.stats.join_seconds = join_watch.ElapsedSeconds();
  result.stats.total_seconds = wall.ElapsedSeconds();
  result.stats.cpu_seconds = cpu_clock.ElapsedSeconds();
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->join_stage_us->Record(
        static_cast<uint64_t>(result.stats.join_seconds * 1e6));
  }

  // Clean up the sorted temporaries. A freshly sorted run is offered to
  // the cache first (which takes ownership by renaming it); only when
  // the cache declines -- disabled, duplicate key, or failpoint -- is
  // the file deleted. Cache-served runs stay where they are: the cache
  // owns those files.
  pool.Invalidate(r_sorted.get());
  pool.Invalidate(s_sorted.get());
  const std::string r_path = r_sorted->path();
  const std::string s_path = s_sorted->path();
  const uint64_t r_bytes = static_cast<uint64_t>(r_sorted->NumPages()) *
                           static_cast<uint64_t>(kPageSize);
  const uint64_t s_bytes = static_cast<uint64_t>(s_sorted->NumPages()) *
                           static_cast<uint64_t>(kPageSize);
  r_sorted.reset();
  s_sorted.reset();
  if (!r_from_cache &&
      !(cache != nullptr &&
        cache->InsertSortedFile(r_key, r_path, r_bytes, query))) {
    RemoveFileIfExists(r_path);
  }
  if (!s_from_cache &&
      !(cache != nullptr &&
        cache->InsertSortedFile(s_key, s_path, s_bytes, query))) {
    RemoveFileIfExists(s_path);
  }
  sorted_guard.Dismiss();
  return result;
}

}  // namespace fuzzydb
