#include "engine/semantics.h"

#include <algorithm>
#include <cassert>

namespace fuzzydb {

const Value& OperandValue(const sql::BoundOperand& operand,
                          const Frames& frames) {
  if (!operand.is_column) return operand.constant;
  const auto& ref = operand.column;
  assert(static_cast<size_t>(ref.up) < frames.size());
  const auto& frame = frames[frames.size() - 1 - ref.up];
  assert(ref.table < frame.size() && frame[ref.table] != nullptr);
  return frame[ref.table]->ValueAt(ref.column);
}

double ComparisonDegree(const sql::BoundPredicate& pred, const Frames& frames,
                        CpuStats* cpu) {
  const Value& lhs = OperandValue(pred.lhs, frames);
  const Value& rhs = OperandValue(pred.rhs, frames);
  if (cpu != nullptr) ++cpu->degree_evaluations;
  return lhs.Compare(pred.op, rhs, pred.approx_tolerance);
}

double InDegree(const Value& v, const Relation& t, CpuStats* cpu) {
  double best = 0.0;
  for (const Tuple& z : t.tuples()) {
    if (cpu != nullptr) ++cpu->degree_evaluations;
    const double d =
        std::min(z.degree(), v.Compare(CompareOp::kEq, z.ValueAt(0)));
    best = std::max(best, d);
  }
  return best;
}

double AllDegree(const Value& v, CompareOp op, const Relation& t,
                 CpuStats* cpu) {
  if (t.Empty()) return 1.0;
  double worst_violation = 0.0;
  for (const Tuple& z : t.tuples()) {
    if (cpu != nullptr) ++cpu->degree_evaluations;
    const double violation =
        std::min(z.degree(), 1.0 - v.Compare(op, z.ValueAt(0)));
    worst_violation = std::max(worst_violation, violation);
  }
  return 1.0 - worst_violation;
}

double SomeDegree(const Value& v, CompareOp op, const Relation& t,
                  CpuStats* cpu) {
  double best = 0.0;
  for (const Tuple& z : t.tuples()) {
    if (cpu != nullptr) ++cpu->degree_evaluations;
    best = std::max(best, std::min(z.degree(), v.Compare(op, z.ValueAt(0))));
  }
  return best;
}

double FrameMembership(const Frames& frames) {
  double degree = 1.0;
  for (const Tuple* tuple : frames.back()) {
    if (tuple != nullptr) degree = std::min(degree, tuple->degree());
  }
  return degree;
}

void ApplyOrderBy(const std::vector<sql::BoundOrderItem>& order_by,
                  Relation* relation) {
  if (order_by.empty()) return;
  relation->Sort([&order_by](const Tuple& a, const Tuple& b) {
    for (const sql::BoundOrderItem& item : order_by) {
      int cmp = 0;
      if (item.by_degree) {
        cmp = a.degree() < b.degree() ? -1 : (a.degree() > b.degree() ? 1 : 0);
      } else {
        const Value& va = a.ValueAt(item.output_column);
        const Value& vb = b.ValueAt(item.output_column);
        if (va.is_fuzzy() && vb.is_fuzzy()) {
          const double ca = va.AsFuzzy().CoreCenter();
          const double cb = vb.AsFuzzy().CoreCenter();
          cmp = ca < cb ? -1 : (ca > cb ? 1 : 0);
        } else {
          cmp = va.TotalOrderCompare(vb);
        }
      }
      if (cmp != 0) return item.descending ? cmp > 0 : cmp < 0;
    }
    return false;
  });
}

}  // namespace fuzzydb
