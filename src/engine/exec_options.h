// Execution knobs shared by the evaluators and file-based runners.
#ifndef FUZZYDB_ENGINE_EXEC_OPTIONS_H_
#define FUZZYDB_ENGINE_EXEC_OPTIONS_H_

#include <cstddef>
#include <string>
#include <thread>

namespace fuzzydb {

class CacheManager;
class ExecTrace;
class QueryContext;
class QueryProgress;

/// Options controlling how a query is executed. Every parallel path is
/// deterministic: results and CpuStats are identical for every
/// num_threads, so these knobs trade wall time only.
struct ExecOptions {
  /// Worker threads for the parallel operators; 0 means
  /// hardware_concurrency(), 1 runs everything on the calling thread.
  size_t num_threads = 0;

  /// When set, operators append per-operator spans (wall time, counter
  /// deltas, cardinalities) to this trace (see obs/trace.h). Null (the
  /// default) disables tracing; the disabled path costs one pointer
  /// test per span. Trace counters are thread-count-invariant.
  ExecTrace* trace = nullptr;

  /// Tuples handed to a worker at a time (see parallel/morsel.h). The
  /// default keeps per-morsel state L1/L2-resident while leaving enough
  /// morsels for load balancing on the bench workloads; tests shrink it
  /// to exercise many-morsel schedules on small relations.
  size_t morsel_size = 2048;

  /// Lanes per batch for the batch-at-a-time degree kernels (see
  /// docs/architecture.md, "Batch execution"). 0 forces the scalar
  /// tuple-at-a-time path everywhere (the A/B switch); values above
  /// TrapezoidBatch::kCapacity (1024) are clamped to it. Results,
  /// CpuStats and trace counters are identical for every setting --
  /// the knob trades wall time only, like num_threads.
  size_t batch_size = 1024;

  /// When > 0, a query whose wall time reaches this many milliseconds is
  /// recorded in SlowQueryLog::Global() together with its rendered
  /// EXPLAIN ANALYZE tree. If `trace` is null the evaluator attaches a
  /// private trace for the duration of the query so the tree is still
  /// captured; with the threshold at 0 (the default) nothing changes.
  double slow_query_ms = 0.0;

  /// The SQL text of the statement being executed, for the slow-query
  /// log. Optional; empty means the log entry has no query text.
  std::string query_text;

  /// Lifecycle governance for this query: cooperative cancellation, a
  /// wall-clock deadline, and a memory budget (see
  /// common/query_context.h). Operators poll it at morsel and page
  /// boundaries, so a stop request surfaces as a well-formed
  /// CANCELLED / DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED status within
  /// one morsel/page of work. Null (the default) means ungoverned.
  QueryContext* context = nullptr;  // not owned

  /// Cost-based physical planning (see engine/cost_model.h and
  /// stats/column_stats.h). When set, chain join orders and per-step
  /// join algorithms come from column statistics fed through the cost
  /// model, and traced spans carry est_rows for the estimator-accuracy
  /// gate. When false (shell --no-cbo) the legacy behavior is
  /// reproduced exactly: sampled link selectivities and the fixed
  /// "merge iff both keys fuzzy" rule. Answers are bit-identical either
  /// way -- the knob trades planning signal, never semantics.
  bool cost_based = true;

  /// Cross-query cache (see cache/cache_manager.h). Null or a cache with
  /// capacity 0 disables caching: every operator behaves exactly as if
  /// this layer did not exist, metrics included. The cache is consulted
  /// only from the coordinating thread, so cache stats are thread-count
  /// invariant like everything else here.
  CacheManager* cache = nullptr;  // not owned

  /// Live progress publication for SHOW QUERIES / sys.queries (see
  /// obs/query_registry.h). Operators bump its counters at morsel
  /// granularity and switch its phase on the control thread; null (the
  /// default) disables introspection at one pointer test per touch
  /// point, the same discipline as `trace`. Progress counters are
  /// thread-count-invariant; phase times are wall-clock.
  QueryProgress* progress = nullptr;  // not owned

  size_t ResolvedThreads() const {
    if (num_threads > 0) return num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
};

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_EXEC_OPTIONS_H_
