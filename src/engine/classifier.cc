#include "engine/classifier.h"

namespace fuzzydb {

namespace {

using sql::BoundPredicate;
using sql::BoundQuery;
using sql::Predicate;

/// A comparison predicate with exactly one side referencing an enclosing
/// block (up > 0) and the other side local or constant.
bool IsCorrelationPredicate(const BoundPredicate& pred) {
  if (pred.kind != Predicate::Kind::kCompare) return false;
  const bool lhs_outer = pred.lhs.is_column && pred.lhs.column.up > 0;
  const bool rhs_outer = pred.rhs.is_column && pred.rhs.column.up > 0;
  return lhs_outer != rhs_outer;
}

/// A predicate that references only the current block (and constants).
bool IsLocalPredicate(const BoundPredicate& pred) {
  return pred.kind == Predicate::Kind::kCompare && pred.IsLocal();
}

/// Examines an inner block: true when it consists of local predicates
/// plus correlation predicates only (no further subqueries), with all
/// correlated references pointing exactly `max_up` levels at most.
bool InnerBlockIsSimple(const BoundQuery& block, bool* correlated,
                        int max_up = 1) {
  *correlated = false;
  for (const BoundPredicate& pred : block.predicates) {
    if (pred.subquery != nullptr) return false;
    if (IsLocalPredicate(pred)) continue;
    if (!IsCorrelationPredicate(pred)) return false;
    const auto& outer_col =
        (pred.lhs.is_column && pred.lhs.column.up > 0) ? pred.lhs.column
                                                       : pred.rhs.column;
    if (outer_col.up > max_up) return false;
    *correlated = true;
  }
  return true;
}

/// Chain query check (Section 8): every block has exactly one table, at
/// most one subquery predicate which is a non-negated IN whose subquery
/// recursively satisfies the same shape; other predicates are local
/// comparisons or correlation comparisons referencing enclosing blocks.
bool IsChainBlock(const BoundQuery& block) {
  int subqueries = 0;
  for (const BoundPredicate& pred : block.predicates) {
    if (pred.subquery != nullptr) {
      if (pred.kind != Predicate::Kind::kIn || pred.negated) return false;
      // The linking operand must be local to this block.
      if (!pred.lhs.is_column || pred.lhs.column.up != 0) return false;
      if (!IsChainBlock(*pred.subquery)) return false;
      ++subqueries;
      continue;
    }
    if (!IsLocalPredicate(pred) && !IsCorrelationPredicate(pred)) {
      return false;
    }
  }
  if (subqueries > 1) return false;
  for (const auto& item : block.select) {
    if (item.agg != sql::AggFunc::kNone) return false;
  }
  return true;
}

}  // namespace

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kFlat:
      return "FLAT";
    case QueryType::kTypeN:
      return "N";
    case QueryType::kTypeJ:
      return "J";
    case QueryType::kTypeNX:
      return "NX";
    case QueryType::kTypeJX:
      return "JX";
    case QueryType::kTypeA:
      return "A";
    case QueryType::kTypeJA:
      return "JA";
    case QueryType::kTypeALL:
      return "ALL";
    case QueryType::kTypeJALL:
      return "JALL";
    case QueryType::kTypeSOME:
      return "SOME";
    case QueryType::kTypeJSOME:
      return "JSOME";
    case QueryType::kTypeEXISTS:
      return "EXISTS";
    case QueryType::kTypeJEXISTS:
      return "JEXISTS";
    case QueryType::kTypeMulti:
      return "MULTI";
    case QueryType::kChain:
      return "CHAIN";
    case QueryType::kGeneral:
      return "GENERAL";
  }
  return "?";
}

QueryType Classify(const sql::BoundQuery& query) {
  // Collect the outer block's subquery predicates.
  const BoundPredicate* sub_pred = nullptr;
  int num_subqueries = 0;
  bool outer_simple = true;
  for (const BoundPredicate& pred : query.predicates) {
    if (pred.subquery != nullptr) {
      sub_pred = &pred;
      ++num_subqueries;
    } else if (!IsLocalPredicate(pred)) {
      outer_simple = false;
    }
  }
  if (num_subqueries == 0) return QueryType::kFlat;
  if (!outer_simple) return QueryType::kGeneral;

  if (num_subqueries == 1 && sub_pred->subquery->NestingDepth() == 1) {
    bool correlated = false;
    if (InnerBlockIsSimple(*sub_pred->subquery, &correlated)) {
      switch (sub_pred->kind) {
        case Predicate::Kind::kIn:
          if (sub_pred->negated) {
            return correlated ? QueryType::kTypeJX : QueryType::kTypeNX;
          }
          return correlated ? QueryType::kTypeJ : QueryType::kTypeN;
        case Predicate::Kind::kAggCompare:
          return correlated ? QueryType::kTypeJA : QueryType::kTypeA;
        case Predicate::Kind::kQuantified:
          if (sub_pred->quantifier == Predicate::Quantifier::kAll) {
            return correlated ? QueryType::kTypeJALL : QueryType::kTypeALL;
          }
          return correlated ? QueryType::kTypeJSOME : QueryType::kTypeSOME;
        case Predicate::Kind::kExists:
          return correlated ? QueryType::kTypeJEXISTS : QueryType::kTypeEXISTS;
        case Predicate::Kind::kCompare:
          break;
      }
      return QueryType::kGeneral;
    }
  }

  // Several independent subquery predicates, each 2-level and simple:
  // evaluated by combining the per-predicate unnested plans (min).
  if (num_subqueries >= 2 && query.tables.size() == 1) {
    bool all_simple = true;
    for (const BoundPredicate& pred : query.predicates) {
      if (pred.subquery == nullptr) continue;
      bool correlated = false;
      if (pred.subquery->NestingDepth() != 1 ||
          !InnerBlockIsSimple(*pred.subquery, &correlated)) {
        all_simple = false;
        break;
      }
    }
    if (all_simple) return QueryType::kTypeMulti;
  }

  // Deeper nesting: chain queries.
  if (IsChainBlock(query)) return QueryType::kChain;
  return QueryType::kGeneral;
}

}  // namespace fuzzydb
