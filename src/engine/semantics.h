// Shared pieces of the Fuzzy SQL execution semantics (Sections 4-8).
//
// Both evaluators (naive and unnesting) are built on the same degree
// algebra implemented here, so their results can only differ if a
// transformation is wrong -- which is exactly what the equivalence tests
// check.
#ifndef FUZZYDB_ENGINE_SEMANTICS_H_
#define FUZZYDB_ENGINE_SEMANTICS_H_

#include <vector>

#include "common/status.h"
#include "engine/exec_stats.h"
#include "relational/relation.h"
#include "sql/binder.h"

namespace fuzzydb {

/// The evaluation context: one frame per enclosing query block, outermost
/// first. frames[k][t] is the current tuple of table t in block k;
/// a BoundColumnRef with `up = u` resolves against
/// frames[frames.size() - 1 - u].
using Frames = std::vector<std::vector<const Tuple*>>;

/// Resolves a bound operand to a value. Column operands must resolve to a
/// non-null frame entry.
const Value& OperandValue(const sql::BoundOperand& operand,
                          const Frames& frames);

/// Degree of a simple comparison predicate lhs op rhs in `frames`.
/// Counts one degree evaluation in `cpu` when provided.
double ComparisonDegree(const sql::BoundPredicate& pred, const Frames& frames,
                        CpuStats* cpu);

/// d(v IN T): max over tuples z of T of min(mu_T(z), d(v = z)).
/// T must be a single-column relation. (Section 4.)
double InDegree(const Value& v, const Relation& t, CpuStats* cpu);

/// d(v op ALL T): 1 when T is empty, else
/// 1 - max_z min(mu_T(z), 1 - d(v op z)). (Section 7.)
double AllDegree(const Value& v, CompareOp op, const Relation& t,
                 CpuStats* cpu);

/// d(v op SOME T): 0 when T is empty, else max_z min(mu_T(z), d(v op z)).
double SomeDegree(const Value& v, CompareOp op, const Relation& t,
                  CpuStats* cpu);

/// min(tuple degrees of the current block's frame) -- the fuzzy AND of
/// "r_i is in R_i" memberships.
double FrameMembership(const Frames& frames);

/// Applies a query's ORDER BY to the final answer relation: fuzzy values
/// order by the defuzzified center of their 1-cut, strings
/// lexicographically, NULLs first; "ORDER BY D" sorts by membership
/// degree. The sort is stable, so ties preserve the dedup order.
void ApplyOrderBy(const std::vector<sql::BoundOrderItem>& order_by,
                  Relation* relation);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_SEMANTICS_H_
