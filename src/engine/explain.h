// Textual plan descriptions (EXPLAIN).
//
// Describes how the unnesting evaluator would execute a bound query:
// its classified type, the transformation applied (which theorem of the
// paper it instantiates), the merge keys, and the residual predicates.
// Purely informational; the description never influences execution.
#ifndef FUZZYDB_ENGINE_EXPLAIN_H_
#define FUZZYDB_ENGINE_EXPLAIN_H_

#include <string>

#include "engine/classifier.h"
#include "sql/binder.h"

namespace fuzzydb {

/// A multi-line, indented description of the chosen strategy.
std::string DescribePlan(const sql::BoundQuery& query);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_EXPLAIN_H_
