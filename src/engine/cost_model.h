// The operator cost model behind cost-based physical planning.
//
// Costs are abstract microseconds built from three resource counters the
// benchmarks already measure (BENCH_fig3 / BENCH_kernel report all
// three, which is what the default CostWeights were calibrated against):
//
//   - page IOs       (IoStats::page_reads + page_writes),
//   - degree evaluations (CpuStats::degree_evaluations),
//   - spill bytes    (run files written by ExternalSort),
//
// plus a cheap per-comparison term for sort arithmetic. The absolute
// scale is irrelevant -- the planner only compares costs -- but keeping
// the units physical makes the weights auditable against bench output.
//
// Two families of estimators:
//
//   - File joins (Sections 3-5 of the paper): CostFileMergeJoin /
//     CostFileNestedLoop / CostFilePartitionedJoin cost the three heap
//     file join algorithms from table cardinalities, page counts, and
//     the overlap fanout C estimated by stats/column_stats.h.
//   - Chain steps (Section 8): CostChainMergeStep / CostChainNestedStep
//     cost one in-memory extension of a partial chain-join result, and
//     ChooseChainStepAlgorithm picks the cheaper -- replacing the fixed
//     "merge iff both key columns fuzzy" rule when ExecOptions::
//     cost_based is set.
//
// Everything here is a pure function of its inputs, so planning is
// deterministic and thread-count invariant.
#ifndef FUZZYDB_ENGINE_COST_MODEL_H_
#define FUZZYDB_ENGINE_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace fuzzydb {

/// Per-unit resource weights in abstract microseconds. Defaults were
/// calibrated against the Release-mode BENCH_fig3 counters (an 8 KB
/// page read costs about three orders of magnitude more than one
/// trapezoid equality-degree evaluation).
struct CostWeights {
  double page_io_us = 50.0;      // one 8 KB page read or write
  double degree_eval_us = 0.05;  // one fuzzy-degree evaluation
  double comparison_us = 0.01;   // one sort/merge comparison
  double spill_byte_us = 0.002;  // one byte written to a run file
};

/// The three physical join algorithms (Sections 3-5 of the paper).
enum class JoinAlgorithm {
  kNestedLoop,
  kMergeWindow,
  kPartitioned,
};

/// Cost of externally sorting `rows` tuples spanning `pages` pages with
/// `buffer_pages` of memory: read + write every page once per pass
/// (run generation, then ceil(log_{M-1} runs) merge passes), n log n
/// comparisons, and spill bytes for every intermediate run page.
double CostExternalSort(uint64_t rows, uint64_t pages, size_t buffer_pages,
                        const CostWeights& w = {});

/// Block nested-loop join: outer read once, inner read once per outer
/// block of M-1 pages, a degree evaluation per tuple pair.
double CostFileNestedLoop(uint64_t outer_rows, uint64_t outer_pages,
                          uint64_t inner_rows, uint64_t inner_pages,
                          size_t buffer_pages, const CostWeights& w = {});

/// Extended merge join: sort both inputs, scan each once, evaluate
/// degrees only on windowed pairs (outer_rows * fanout, the paper's C).
double CostFileMergeJoin(uint64_t outer_rows, uint64_t outer_pages,
                         uint64_t inner_rows, uint64_t inner_pages,
                         size_t buffer_pages, double fanout,
                         const CostWeights& w = {});

/// Partitioned fuzzy join: read + repartition both inputs (replication
/// factor `replication` >= 1 for supports straddling partition
/// boundaries), then join matching partitions pairwise.
double CostFilePartitionedJoin(uint64_t outer_rows, uint64_t outer_pages,
                               uint64_t inner_rows, uint64_t inner_pages,
                               double fanout, double replication,
                               const CostWeights& w = {});

/// Cheapest file algorithm for one edge given the estimated fanout.
JoinAlgorithm ChooseFileJoinAlgorithm(uint64_t outer_rows,
                                      uint64_t outer_pages,
                                      uint64_t inner_rows,
                                      uint64_t inner_pages,
                                      size_t buffer_pages, double fanout,
                                      double replication,
                                      const CostWeights& w = {});

/// One in-memory chain-join step, nested-loop flavor: every (partial
/// row, incoming tuple) pair gets a degree evaluation.
double CostChainNestedStep(uint64_t rows, uint64_t incoming,
                           const CostWeights& w = {});

/// One in-memory chain-join step, merge-window flavor: sort both sides
/// by interval order, then evaluate degrees only on the estimated
/// windowed pairs.
double CostChainMergeStep(uint64_t rows, uint64_t incoming,
                          double est_pairs, const CostWeights& w = {});

/// Cheaper of the two chain-step flavors. `merge_legal` gates on the
/// semantic requirement (both key columns fuzzy); when the merge path
/// is illegal the nested loop wins unconditionally.
JoinAlgorithm ChooseChainStepAlgorithm(uint64_t rows, uint64_t incoming,
                                       double est_pairs, bool merge_legal,
                                       const CostWeights& w = {});

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_COST_MODEL_H_
