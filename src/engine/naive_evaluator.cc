#include "engine/naive_evaluator.h"

#include <algorithm>
#include <functional>
#include <map>

#include "common/query_context.h"
#include "engine/aggregate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzydb {

namespace {

/// True when every SELECT item is an aggregate (an "aggregate block").
bool IsAggregateBlock(const sql::BoundQuery& query) {
  for (const auto& item : query.select) {
    if (item.agg != sql::AggFunc::kNone) return true;
  }
  return false;
}

/// Total order on tuples by value content; the grouping-key comparator.
struct TupleValueLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    const size_t n = std::min(a.NumValues(), b.NumValues());
    for (size_t i = 0; i < n; ++i) {
      const int cmp = a.ValueAt(i).TotalOrderCompare(b.ValueAt(i));
      if (cmp != 0) return cmp < 0;
    }
    return a.NumValues() < b.NumValues();
  }
};

}  // namespace

Result<Relation> NaiveEvaluator::Evaluate(const sql::BoundQuery& query) {
  TraceScope span(trace_, "naive-evaluate", cpu_, nullptr,
                  query.tables.empty() ? std::string()
                                       : query.tables[0].relation->name());
  Frames frames;
  FUZZYDB_ASSIGN_OR_RETURN(Relation answer, EvaluateBlock(query, &frames));
  ApplyOrderBy(query.order_by, &answer);
  span.SetOutputRows(answer.NumTuples());
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->naive_rows_out->Add(answer.NumTuples());
  }
  return answer;
}

Result<Relation> NaiveEvaluator::EvaluateBlock(const sql::BoundQuery& query,
                                               Frames* frames) {
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) m->naive_blocks->Add();
  if (!query.group_by.empty()) {
    return EvaluateGroupedBlock(query, frames);
  }
  const bool aggregate_block = IsAggregateBlock(query);
  if (aggregate_block) {
    for (const auto& item : query.select) {
      if (item.agg == sql::AggFunc::kNone) {
        return Status::Unsupported(
            "mixing aggregates and plain columns in SELECT");
      }
    }
  }

  Relation result("", query.output_schema);

  // Per-aggregate-item fuzzy sets of collected values.
  std::vector<Relation> agg_sets;
  if (aggregate_block) {
    for (const auto& item : query.select) {
      agg_sets.emplace_back("", Schema{Column{item.name, ValueType::kFuzzy}});
    }
  }

  frames->emplace_back(query.tables.size(), nullptr);

  // Recursive nested loop over this block's tables.
  Status status;
  std::function<Status(size_t)> enumerate = [&](size_t table_idx) -> Status {
    if (table_idx < query.tables.size()) {
      for (const Tuple& tuple : query.tables[table_idx].relation->tuples()) {
        frames->back()[table_idx] = &tuple;
        FUZZYDB_RETURN_IF_ERROR(enumerate(table_idx + 1));
      }
      frames->back()[table_idx] = nullptr;
      return Status::OK();
    }

    // One complete combination: fold membership and predicate degrees.
    FUZZYDB_RETURN_IF_ERROR(CheckQuery(query_));
    if (cpu_ != nullptr) ++cpu_->tuple_pairs;
    double degree = FrameMembership(*frames);
    for (const auto& pred : query.predicates) {
      if (degree <= 0.0) break;
      FUZZYDB_ASSIGN_OR_RETURN(const double d, PredicateDegree(pred, frames));
      degree = std::min(degree, d);
    }
    if (degree <= 0.0) return Status::OK();

    if (aggregate_block) {
      for (size_t i = 0; i < query.select.size(); ++i) {
        const auto& ref = query.select[i].column;
        const Value& v =
            frames->back()[ref.table]->ValueAt(ref.column);
        FUZZYDB_RETURN_IF_ERROR(
            agg_sets[i].AppendOrMax(Tuple({v}, degree)));
      }
      return Status::OK();
    }

    std::vector<Value> values;
    values.reserve(query.select.size());
    for (const auto& item : query.select) {
      values.push_back(
          frames->back()[item.column.table]->ValueAt(item.column.column));
    }
    return result.Append(Tuple(std::move(values), degree));
  };
  status = enumerate(0);
  frames->pop_back();
  FUZZYDB_RETURN_IF_ERROR(status);

  if (aggregate_block) {
    std::vector<Value> values;
    double degree = 1.0;
    for (size_t i = 0; i < query.select.size(); ++i) {
      FUZZYDB_ASSIGN_OR_RETURN(
          AggregateResult agg,
          ApplyAggregate(query.select[i].agg, agg_sets[i]));
      if (agg.value.is_null()) {
        // Non-COUNT aggregate over an empty set: no usable value, the
        // block yields no tuple (Section 6: A(r) = null, d_r = 0).
        return result;
      }
      values.push_back(std::move(agg.value));
      degree = std::min(degree, agg.degree);
    }
    FUZZYDB_RETURN_IF_ERROR(result.Append(Tuple(std::move(values), degree)));
  }

  result.EliminateDuplicates(query.with_threshold);
  return result;
}

Result<Relation> NaiveEvaluator::EvaluateGroupedBlock(
    const sql::BoundQuery& query, Frames* frames) {
  // Aggregate expressions to collect per group: the aggregated SELECT
  // items followed by the aggregated HAVING items.
  struct AggExpr {
    sql::AggFunc func;
    sql::BoundColumnRef column;
  };
  std::vector<AggExpr> agg_exprs;
  for (const auto& item : query.select) {
    if (item.agg != sql::AggFunc::kNone) {
      agg_exprs.push_back({item.agg, item.column});
    }
  }
  const size_t having_agg_base = agg_exprs.size();
  for (const auto& item : query.having) {
    if (item.agg != sql::AggFunc::kNone) {
      agg_exprs.push_back({item.agg, item.column});
    }
  }

  // Maps group-by position of each plain SELECT / HAVING column.
  auto group_index_of = [&](const sql::BoundColumnRef& ref) -> size_t {
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      if (query.group_by[g].table == ref.table &&
          query.group_by[g].column == ref.column) {
        return g;
      }
    }
    return query.group_by.size();  // binder prevents this
  };

  struct GroupState {
    double degree = 0.0;             // max member degree (fuzzy OR)
    std::vector<Relation> agg_sets;  // fuzzy value set per agg expression
  };
  std::map<Tuple, GroupState, TupleValueLess> groups;

  frames->emplace_back(query.tables.size(), nullptr);
  std::function<Status(size_t)> enumerate = [&](size_t table_idx) -> Status {
    if (table_idx < query.tables.size()) {
      for (const Tuple& tuple : query.tables[table_idx].relation->tuples()) {
        frames->back()[table_idx] = &tuple;
        FUZZYDB_RETURN_IF_ERROR(enumerate(table_idx + 1));
      }
      frames->back()[table_idx] = nullptr;
      return Status::OK();
    }
    FUZZYDB_RETURN_IF_ERROR(CheckQuery(query_));
    if (cpu_ != nullptr) ++cpu_->tuple_pairs;
    double degree = FrameMembership(*frames);
    for (const auto& pred : query.predicates) {
      if (degree <= 0.0) break;
      FUZZYDB_ASSIGN_OR_RETURN(const double d, PredicateDegree(pred, frames));
      degree = std::min(degree, d);
    }
    if (degree <= 0.0) return Status::OK();

    std::vector<Value> key_values;
    key_values.reserve(query.group_by.size());
    for (const auto& ref : query.group_by) {
      key_values.push_back(frames->back()[ref.table]->ValueAt(ref.column));
    }
    auto [it, fresh] =
        groups.emplace(Tuple(std::move(key_values), 1.0), GroupState{});
    GroupState& state = it->second;
    if (fresh) {
      for (size_t i = 0; i < agg_exprs.size(); ++i) {
        state.agg_sets.emplace_back(
            "", Schema{Column{"A", ValueType::kFuzzy}});
      }
    }
    state.degree = std::max(state.degree, degree);
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      const auto& ref = agg_exprs[i].column;
      FUZZYDB_RETURN_IF_ERROR(state.agg_sets[i].AppendOrMax(
          Tuple({frames->back()[ref.table]->ValueAt(ref.column)}, degree)));
    }
    return Status::OK();
  };
  const Status enumerate_status = enumerate(0);
  frames->pop_back();
  FUZZYDB_RETURN_IF_ERROR(enumerate_status);

  // Finalize each group.
  Relation result("", query.output_schema);
  for (const auto& [key, state] : groups) {
    double degree = state.degree;

    // HAVING conjuncts fold in by min.
    size_t having_agg = having_agg_base;
    for (const auto& item : query.having) {
      if (degree <= 0.0) break;
      Value lhs;
      if (item.agg == sql::AggFunc::kNone) {
        lhs = key.ValueAt(group_index_of(item.column));
      } else {
        FUZZYDB_ASSIGN_OR_RETURN(
            AggregateResult agg,
            ApplyAggregate(item.agg, state.agg_sets[having_agg]));
        ++having_agg;
        if (agg.value.is_null()) {
          degree = 0.0;
          break;
        }
        lhs = std::move(agg.value);
        degree = std::min(degree, agg.degree);
      }
      if (cpu_ != nullptr) ++cpu_->degree_evaluations;
      degree = std::min(
          degree, lhs.Compare(item.op, item.constant, item.approx_tolerance));
    }
    if (degree <= 0.0) continue;

    // Output row: grouping values and aggregate results.
    std::vector<Value> values;
    values.reserve(query.select.size());
    size_t select_agg = 0;
    bool dropped = false;
    for (const auto& item : query.select) {
      if (item.agg == sql::AggFunc::kNone) {
        values.push_back(key.ValueAt(group_index_of(item.column)));
        continue;
      }
      FUZZYDB_ASSIGN_OR_RETURN(
          AggregateResult agg,
          ApplyAggregate(item.agg, state.agg_sets[select_agg]));
      ++select_agg;
      if (agg.value.is_null()) {
        dropped = true;
        break;
      }
      values.push_back(std::move(agg.value));
      degree = std::min(degree, agg.degree);
    }
    if (dropped || degree <= 0.0) continue;
    FUZZYDB_RETURN_IF_ERROR(result.Append(Tuple(std::move(values), degree)));
  }

  result.EliminateDuplicates(query.with_threshold);
  return result;
}

Result<double> NaiveEvaluator::PredicateDegree(
    const sql::BoundPredicate& pred, Frames* frames) {
  if (pred.kind == sql::Predicate::Kind::kCompare) {
    return ComparisonDegree(pred, *frames, cpu_);
  }

  // Subquery predicate: re-evaluate the inner block against the current
  // outer tuples -- the naive T(r) of the paper.
  if (cpu_ != nullptr) ++cpu_->subquery_evaluations;
  FUZZYDB_ASSIGN_OR_RETURN(Relation t,
                           EvaluateBlock(*pred.subquery, frames));

  if (pred.kind == sql::Predicate::Kind::kExists) {
    // d(EXISTS T) = the possibility that T is non-empty: the highest
    // membership degree among T's tuples.
    double d = 0.0;
    for (const Tuple& z : t.tuples()) d = std::max(d, z.degree());
    return pred.negated ? 1.0 - d : d;
  }

  const Value& v = OperandValue(pred.lhs, *frames);

  switch (pred.kind) {
    case sql::Predicate::Kind::kIn: {
      const double d = InDegree(v, t, cpu_);
      return pred.negated ? 1.0 - d : d;
    }
    case sql::Predicate::Kind::kQuantified:
      return pred.quantifier == sql::Predicate::Quantifier::kAll
                 ? AllDegree(v, pred.op, t, cpu_)
                 : SomeDegree(v, pred.op, t, cpu_);
    case sql::Predicate::Kind::kAggCompare: {
      if (t.Empty()) return 0.0;  // A(r) is NULL
      if (cpu_ != nullptr) ++cpu_->degree_evaluations;
      return std::min(t.TupleAt(0).degree(),
                      v.Compare(pred.op, t.TupleAt(0).ValueAt(0)));
    }
    case sql::Predicate::Kind::kCompare:
    case sql::Predicate::Kind::kExists:  // handled above
      break;
  }
  return Status::Internal("unhandled predicate kind");
}

}  // namespace fuzzydb
