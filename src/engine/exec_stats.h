// Execution statistics: the units in which the paper reports costs.
#ifndef FUZZYDB_ENGINE_EXEC_STATS_H_
#define FUZZYDB_ENGINE_EXEC_STATS_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/io_stats.h"

namespace fuzzydb {

/// CPU-side work counters. The paper's CPU cost is dominated by "calls to
/// the fuzzy library functions and the number of comparisons for merge and
/// join" (Section 9); we count both.
///
/// CpuStats is mergeable: parallel operators tally into one thread-local
/// instance per worker and fold them with += at the barrier, which keeps
/// the totals exact without atomics on the hot path.
struct CpuStats {
  uint64_t tuple_pairs = 0;        // pairs examined by a join
  uint64_t degree_evaluations = 0; // fuzzy predicate evaluations
  uint64_t comparisons = 0;        // order comparisons (sort + merge)
  uint64_t subquery_evaluations = 0;  // inner-block evaluations (naive)

  /// The counter fields, as one list so the arithmetic below cannot fall
  /// out of sync when a counter is added.
  static constexpr std::array<uint64_t CpuStats::*, 4> Counters() {
    return {&CpuStats::tuple_pairs, &CpuStats::degree_evaluations,
            &CpuStats::comparisons, &CpuStats::subquery_evaluations};
  }

  void Reset() { *this = CpuStats{}; }

  CpuStats& operator+=(const CpuStats& other) {
    for (auto counter : Counters()) this->*counter += other.*counter;
    return *this;
  }

  /// Counter-wise difference; `other` must be an earlier snapshot of the
  /// same accumulator, so no counter may run backwards.
  CpuStats operator-(const CpuStats& other) const {
    CpuStats d;
    for (auto counter : Counters()) {
      assert(this->*counter >= other.*counter && "CpuStats underflow");
      d.*counter = this->*counter - other.*counter;
    }
    return d;
  }

  /// Counter-wise difference that clamps instead of wrapping. operator-
  /// is underflow-checked only by a debug assert; in a Release build a
  /// violated snapshot discipline would wrap to ~2^64. Trace deltas (and
  /// any subtraction whose snapshot ordering cannot be proven locally)
  /// use this helper: a counter that would go negative yields 0 and sets
  /// *clamped (may be null) so the consumer can flag the span.
  CpuStats CheckedDelta(const CpuStats& earlier,
                        bool* clamped = nullptr) const {
    CpuStats d;
    for (auto counter : Counters()) {
      if (this->*counter >= earlier.*counter) {
        d.*counter = this->*counter - earlier.*counter;
      } else if (clamped != nullptr) {
        *clamped = true;
      }
    }
    return d;
  }

  friend CpuStats operator+(CpuStats lhs, const CpuStats& rhs) {
    lhs += rhs;
    return lhs;
  }

  bool operator==(const CpuStats&) const = default;
};

/// RAII fold of per-worker CpuStats slots into a total accumulator.
/// Parallel operators used to fold with a plain loop after the barrier,
/// which a throwing morsel body skipped — leaving the enclosing trace
/// span with zero deltas. Declare a folder *after* the operator's
/// TraceScope (and before launching workers): during unwinding it runs
/// first, so the fold lands before the span snapshots its delta whether
/// the operator returns or throws. Fold() folds early and disarms (the
/// success path, so totals are available before scope exit).
class CpuStatsFolder {
 public:
  CpuStatsFolder(const std::vector<CpuStats>* slots, CpuStats* total)
      : slots_(slots), total_(total) {}
  ~CpuStatsFolder() { Fold(); }
  CpuStatsFolder(const CpuStatsFolder&) = delete;
  CpuStatsFolder& operator=(const CpuStatsFolder&) = delete;

  void Fold() {
    if (slots_ == nullptr || total_ == nullptr) return;
    for (const CpuStats& slot : *slots_) *total_ += slot;
    slots_ = nullptr;  // fold exactly once
  }

 private:
  const std::vector<CpuStats>* slots_;
  CpuStats* total_;
};

/// Everything a measured query run reports.
struct ExecStats {
  CpuStats cpu;
  IoStats io;
  double sort_seconds = 0.0;   // time spent sorting (Table 3)
  double join_seconds = 0.0;   // time spent merging/joining
  double total_seconds = 0.0;  // response time
  double cpu_seconds = 0.0;    // process CPU time

  void Reset() { *this = ExecStats{}; }

  std::string ToString() const;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_EXEC_STATS_H_
