// Execution statistics: the units in which the paper reports costs.
#ifndef FUZZYDB_ENGINE_EXEC_STATS_H_
#define FUZZYDB_ENGINE_EXEC_STATS_H_

#include <cstdint>
#include <string>

#include "storage/io_stats.h"

namespace fuzzydb {

/// CPU-side work counters. The paper's CPU cost is dominated by "calls to
/// the fuzzy library functions and the number of comparisons for merge and
/// join" (Section 9); we count both.
struct CpuStats {
  uint64_t tuple_pairs = 0;        // pairs examined by a join
  uint64_t degree_evaluations = 0; // fuzzy predicate evaluations
  uint64_t comparisons = 0;        // order comparisons (sort + merge)
  uint64_t subquery_evaluations = 0;  // inner-block evaluations (naive)

  void Reset() { *this = CpuStats{}; }

  CpuStats operator-(const CpuStats& other) const {
    CpuStats d;
    d.tuple_pairs = tuple_pairs - other.tuple_pairs;
    d.degree_evaluations = degree_evaluations - other.degree_evaluations;
    d.comparisons = comparisons - other.comparisons;
    d.subquery_evaluations = subquery_evaluations - other.subquery_evaluations;
    return d;
  }
};

/// Everything a measured query run reports.
struct ExecStats {
  CpuStats cpu;
  IoStats io;
  double sort_seconds = 0.0;   // time spent sorting (Table 3)
  double join_seconds = 0.0;   // time spent merging/joining
  double total_seconds = 0.0;  // response time
  double cpu_seconds = 0.0;    // process CPU time

  void Reset() { *this = ExecStats{}; }

  std::string ToString() const;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_EXEC_STATS_H_
