#include "engine/explain.h"

#include <sstream>

namespace fuzzydb {

namespace {

using sql::BoundPredicate;
using sql::BoundQuery;
using sql::Predicate;

const char* TheoremFor(QueryType type) {
  switch (type) {
    case QueryType::kTypeN:
      return "Theorem 4.1";
    case QueryType::kTypeJ:
      return "Theorem 4.2";
    case QueryType::kTypeNX:
    case QueryType::kTypeJX:
      return "Theorem 5.1";
    case QueryType::kTypeA:
    case QueryType::kTypeJA:
      return "Theorem 6.1";
    case QueryType::kTypeALL:
    case QueryType::kTypeJALL:
      return "Theorem 7.1";
    case QueryType::kTypeSOME:
    case QueryType::kTypeJSOME:
    case QueryType::kTypeEXISTS:
    case QueryType::kTypeJEXISTS:
      return "Section 7 remark";
    case QueryType::kChain:
      return "Theorem 8.1";
    case QueryType::kTypeMulti:
      return "per-predicate plans, combined by min";
    default:
      return "";
  }
}

std::string ColumnName(const BoundQuery& block, const sql::BoundColumnRef& ref) {
  const auto& table = block.tables[ref.table];
  return table.alias + "." + table.relation->schema().ColumnAt(ref.column).name;
}

void DescribeBlock(const BoundQuery& block, int depth, std::ostringstream* out);

void DescribePredicate(const BoundQuery& block, const BoundPredicate& pred,
                       int depth, std::ostringstream* out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  if (pred.subquery == nullptr) {
    *out << indent << (pred.IsLocal() ? "filter: " : "correlation: ");
    auto operand_name = [&](const sql::BoundOperand& operand) -> std::string {
      if (!operand.is_column) return operand.constant.ToString();
      if (operand.column.up == 0) return ColumnName(block, operand.column);
      return std::string("outer(") + std::to_string(operand.column.up) + ")";
    };
    *out << operand_name(pred.lhs) << " " << CompareOpName(pred.op) << " "
         << operand_name(pred.rhs) << "\n";
    return;
  }
  *out << indent;
  switch (pred.kind) {
    case Predicate::Kind::kIn:
      *out << (pred.negated ? "anti-semijoin (NOT IN)" : "semijoin (IN)");
      break;
    case Predicate::Kind::kQuantified:
      *out << (pred.quantifier == Predicate::Quantifier::kAll
                   ? "group-by-min (op ALL)"
                   : "semijoin (op SOME)");
      break;
    case Predicate::Kind::kAggCompare:
      *out << "aggregate pipeline (T1/T2"
           << (pred.subquery->select[0].agg == sql::AggFunc::kCount
                   ? " + left outer join for COUNT"
                   : "")
           << ")";
      break;
    case Predicate::Kind::kExists:
      *out << (pred.negated ? "anti-semijoin (NOT EXISTS)"
                            : "semijoin (EXISTS)");
      break;
    case Predicate::Kind::kCompare:
      break;
  }
  *out << " on";
  if (pred.lhs.is_column) {
    *out << " " << ColumnName(block, pred.lhs.column);
  }
  *out << "\n";
  DescribeBlock(*pred.subquery, depth + 1, out);
}

void DescribeBlock(const BoundQuery& block, int depth,
                   std::ostringstream* out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  *out << indent << "scan";
  for (const auto& table : block.tables) {
    *out << " " << table.relation->name();
    if (table.alias != table.relation->name()) *out << " as " << table.alias;
    *out << " (" << table.relation->NumTuples() << " tuples)";
  }
  *out << "\n";
  for (const BoundPredicate& pred : block.predicates) {
    DescribePredicate(block, pred, depth, out);
  }
  if (block.has_with) {
    *out << indent << "threshold: WITH D >= " << block.with_threshold << "\n";
  }
}

}  // namespace

std::string DescribePlan(const sql::BoundQuery& query) {
  std::ostringstream out;
  const QueryType type = Classify(query);
  out << "plan: type " << QueryTypeName(type);
  const char* theorem = TheoremFor(type);
  if (*theorem != '\0') out << " (" << theorem << ")";
  if (type == QueryType::kGeneral) out << " -- naive evaluation";
  out << "\n";
  DescribeBlock(query, 1, &out);
  if (!query.order_by.empty()) {
    out << "  order by: " << query.order_by.size() << " key(s)\n";
  }
  return out.str();
}

}  // namespace fuzzydb
