#include "engine/partitioned_join.h"

#include <algorithm>
#include <vector>

#include "common/query_context.h"
#include "fuzzy/interval_order.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/heap_file.h"
#include "storage/temp_file_guard.h"

namespace fuzzydb {

namespace {

/// Combined degree of one (r, s) pair under `spec` (same folding as the
/// merge-join's).
double PairDegree(const Tuple& r, const Tuple& s, const FuzzyJoinSpec& spec,
                  CpuStats* cpu) {
  double d = std::min(r.degree(), s.degree());
  if (d <= 0.0) return 0.0;
  if (cpu != nullptr) ++cpu->degree_evaluations;
  d = std::min(d, r.ValueAt(spec.outer_key)
                      .Compare(spec.key_op, s.ValueAt(spec.inner_key)));
  for (const auto& residual : spec.residuals) {
    if (d <= 0.0) break;
    if (cpu != nullptr) ++cpu->degree_evaluations;
    d = std::min(d, r.ValueAt(residual.outer_col)
                        .Compare(residual.op, s.ValueAt(residual.inner_col)));
  }
  return d;
}

/// Index of the partition whose half-open range [bound[i-1], bound[i])
/// contains x; boundaries are sorted, partition count = bounds.size()+1.
size_t PartitionOf(const std::vector<double>& bounds, double x) {
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), x) - bounds.begin());
}

/// Reads every tuple of `file`. Must run on the calling thread (the
/// BufferPool is not thread-safe).
Result<std::vector<Tuple>> LoadPartition(PageFile* file, BufferPool* pool) {
  std::vector<Tuple> tuples;
  HeapFileScanner scan(file, pool);
  Tuple t;
  bool has = false;
  while (true) {
    FUZZYDB_RETURN_IF_ERROR(scan.Next(&t, &has));
    if (!has) break;
    tuples.push_back(std::move(t));
    t = Tuple();
  }
  return tuples;
}

/// In-memory sort of one partition side by the interval order of
/// `key_col`, counting comparisons into *cpu. Safe on a worker thread.
void SortPartition(std::vector<Tuple>* tuples, size_t key_col,
                   CpuStats* cpu) {
  std::sort(tuples->begin(), tuples->end(),
            [key_col, cpu](const Tuple& a, const Tuple& b) {
              if (cpu != nullptr) ++cpu->comparisons;
              return IntervalOrderLess(a.ValueAt(key_col).AsFuzzy(),
                                       b.ValueAt(key_col).AsFuzzy());
            });
}

/// One joining pair found by the window scan of a partition: indexes into
/// the partition's loaded outer/inner tuple vectors.
struct MatchRef {
  size_t outer_index = 0;
  size_t inner_index = 0;
  double degree = 0.0;
};

/// Window scan within one loaded, sorted partition pair (the in-memory
/// extended merge-join of pass 3). Matches are appended to `matches`
/// instead of emitted so partitions can be probed concurrently and still
/// emit in partition order.
void ProbePartition(const std::vector<Tuple>& outer_tuples,
                    const std::vector<Tuple>& inner_tuples,
                    const FuzzyJoinSpec& spec, CpuStats* cpu,
                    std::vector<MatchRef>* matches) {
  size_t window_start = 0;
  for (size_t r = 0; r < outer_tuples.size(); ++r) {
    const Trapezoid& rk = outer_tuples[r].ValueAt(spec.outer_key).AsFuzzy();
    while (window_start < inner_tuples.size()) {
      const Trapezoid& sk =
          inner_tuples[window_start].ValueAt(spec.inner_key).AsFuzzy();
      if (cpu != nullptr) ++cpu->comparisons;
      if (sk.SupportEnd() < rk.SupportBegin()) {
        ++window_start;
      } else {
        break;
      }
    }
    for (size_t i = window_start; i < inner_tuples.size(); ++i) {
      const Trapezoid& sk = inner_tuples[i].ValueAt(spec.inner_key).AsFuzzy();
      if (cpu != nullptr) ++cpu->comparisons;
      if (sk.SupportBegin() > rk.SupportEnd()) break;
      if (cpu != nullptr) ++cpu->tuple_pairs;
      const double d = PairDegree(outer_tuples[r], inner_tuples[i], spec, cpu);
      if (d > 0.0) matches->push_back(MatchRef{r, i, d});
    }
  }
}

}  // namespace

Status FilePartitionedJoin(PageFile* outer, PageFile* inner, BufferPool* pool,
                           const FuzzyJoinSpec& spec, size_t num_partitions,
                           const std::string& temp_prefix, CpuStats* cpu,
                           const JoinEmit& emit,
                           PartitionedJoinStats* stats,
                           const ParallelContext* parallel,
                           ExecTrace* trace, QueryContext* query) {
  if (spec.key_op != CompareOp::kEq) {
    return Status::InvalidArgument("partitioned join requires an equijoin");
  }
  if (num_partitions == 0) num_partitions = 1;
  PartitionedJoinStats local;
  if (stats == nullptr) stats = &local;
  TraceScope span(trace, "partitioned-join", cpu,
                  pool == nullptr ? nullptr : &pool->stats());
  if (parallel != nullptr) span.SetThreads(WorkerSlots(*parallel));
  uint64_t emitted = 0;

  // ---- Pass 0: sample inner key supports ----------------------------
  std::vector<double> begins;
  double max_width = 0.0;
  {
    HeapFileScanner scan(inner, pool);
    Tuple t;
    bool has = false;
    uint64_t index = 0;
    while (true) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
      FUZZYDB_RETURN_IF_ERROR(scan.Next(&t, &has));
      if (!has) break;
      const Value& key = t.ValueAt(spec.inner_key);
      if (!key.is_fuzzy()) {
        return Status::InvalidArgument("partitioned join key must be fuzzy");
      }
      max_width = std::max(max_width, key.AsFuzzy().SupportWidth());
      if (index++ % 7 == 0) {  // deterministic ~1/7 sample
        begins.push_back(key.AsFuzzy().SupportBegin());
      }
    }
  }
  stats->max_inner_width = max_width;

  // Quantile boundaries from the sample.
  std::sort(begins.begin(), begins.end());
  std::vector<double> bounds;
  if (!begins.empty()) {
    for (size_t p = 1; p < num_partitions; ++p) {
      const size_t idx = p * begins.size() / num_partitions;
      const double b = begins[std::min(idx, begins.size() - 1)];
      if (bounds.empty() || b > bounds.back()) bounds.push_back(b);
    }
  }
  const size_t partitions = bounds.size() + 1;
  stats->partitions = partitions;

  // ---- Pass 1 & 2: partition both relations --------------------------
  struct Partition {
    std::string inner_path, outer_path;
    std::unique_ptr<PageFile> inner_file, outer_file;
    std::unique_ptr<HeapFileWriter> inner_writer, outer_writer;
  };
  // Declared before `parts` so it is destroyed after the Partition
  // PageFiles are closed: any early return between here and the explicit
  // cleanup at the end (I/O error, failpoint, cancellation, budget
  // denial) sweeps the partition temporaries.
  TempFileGuard temp_guard(pool);
  std::vector<Partition> parts(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    parts[p].inner_path =
        temp_prefix + ".p" + std::to_string(p) + ".inner";
    parts[p].outer_path =
        temp_prefix + ".p" + std::to_string(p) + ".outer";
    FUZZYDB_ASSIGN_OR_RETURN(parts[p].inner_file,
                             PageFile::Create(parts[p].inner_path));
    temp_guard.Track(parts[p].inner_path);
    FUZZYDB_ASSIGN_OR_RETURN(parts[p].outer_file,
                             PageFile::Create(parts[p].outer_path));
    temp_guard.Track(parts[p].outer_path);
    parts[p].inner_writer =
        std::make_unique<HeapFileWriter>(parts[p].inner_file.get(), pool);
    parts[p].outer_writer =
        std::make_unique<HeapFileWriter>(parts[p].outer_file.get(), pool);
  }

  {
    HeapFileScanner scan(inner, pool);
    Tuple t;
    bool has = false;
    while (true) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
      FUZZYDB_RETURN_IF_ERROR(scan.Next(&t, &has));
      if (!has) break;
      const size_t p = PartitionOf(
          bounds, t.ValueAt(spec.inner_key).AsFuzzy().SupportBegin());
      FUZZYDB_RETURN_IF_ERROR(parts[p].inner_writer->Append(t));
    }
  }
  {
    HeapFileScanner scan(outer, pool);
    Tuple t;
    bool has = false;
    while (true) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
      FUZZYDB_RETURN_IF_ERROR(scan.Next(&t, &has));
      if (!has) break;
      const Value& key = t.ValueAt(spec.outer_key);
      if (!key.is_fuzzy()) {
        return Status::InvalidArgument("partitioned join key must be fuzzy");
      }
      // An intersecting inner support begins in [b(r) - W, e(r)].
      const size_t p_lo =
          PartitionOf(bounds, key.AsFuzzy().SupportBegin() - max_width);
      const size_t p_hi = PartitionOf(bounds, key.AsFuzzy().SupportEnd());
      for (size_t p = p_lo; p <= p_hi; ++p) {
        FUZZYDB_RETURN_IF_ERROR(parts[p].outer_writer->Append(t));
        ++stats->outer_replicas;
      }
    }
  }
  EngineMetrics* metrics = EngineMetrics::IfEnabled();
  uint64_t partition_pages = 0;
  for (Partition& part : parts) {
    FUZZYDB_RETURN_IF_ERROR(part.inner_writer->Finish());
    FUZZYDB_RETURN_IF_ERROR(part.outer_writer->Finish());
    partition_pages +=
        part.inner_file->NumPages() + part.outer_file->NumPages();
  }
  if (metrics != nullptr) {
    metrics->partition_spill_bytes->Add(partition_pages * kPageSize);
  }

  // ---- Pass 3: join partition pairs in memory ------------------------
  // Every partition pair is sorted and probed independently; matches are
  // buffered per partition and emitted in partition order, and CPU
  // counters are tallied into per-partition slots folded in partition
  // order, so serial and parallel runs produce the same emit sequence
  // and the same totals.
  ParallelContext ctx = parallel != nullptr ? *parallel : ParallelContext{};
  if (ctx.query == nullptr) ctx.query = query;
  const bool concurrent =
      ctx.pool != nullptr && ctx.pool->size() > 1 && partitions > 1;
  Status status = Status::OK();
  std::vector<CpuStats> part_cpu(partitions);
  // Declared after `span`: a throwing sort/probe still folds the
  // per-partition tallies into *cpu before the span closes.
  CpuStatsFolder folder(cpu == nullptr ? nullptr : &part_cpu, cpu);
  // Concurrent pass 3 materializes every partition pair at once; the
  // tracker's peak is what a served workload would size join memory by.
  ScopedMemoryCharge memory(metrics == nullptr ? nullptr
                                               : metrics->join_memory);
  auto slot = [&](size_t p) {
    return cpu != nullptr ? &part_cpu[p] : nullptr;
  };
  auto emit_matches = [&](const std::vector<Tuple>& outer_tuples,
                          const std::vector<Tuple>& inner_tuples,
                          const std::vector<MatchRef>& matches) -> Status {
    for (const MatchRef& m : matches) {
      ++emitted;
      FUZZYDB_RETURN_IF_ERROR(emit(outer_tuples[m.outer_index],
                                   inner_tuples[m.inner_index], m.degree));
    }
    return Status::OK();
  };
  if (!concurrent) {
    // Streamed: one partition pair in memory at a time.
    for (size_t p = 0; p < partitions && status.ok(); ++p) {
      status = CheckQuery(query);
      if (!status.ok()) break;
      auto outer_tuples = LoadPartition(parts[p].outer_file.get(), pool);
      if (!outer_tuples.ok()) {
        status = outer_tuples.status();
        break;
      }
      auto inner_tuples = LoadPartition(parts[p].inner_file.get(), pool);
      if (!inner_tuples.ok()) {
        status = inner_tuples.status();
        break;
      }
      // Streamed: only one partition pair is live at a time, so the
      // charge is released at the end of each iteration.
      ScopedBudget pair_budget(query);
      status = pair_budget.Charge((parts[p].outer_file->NumPages() +
                                   parts[p].inner_file->NumPages()) *
                                  kPageSize);
      if (!status.ok()) break;
      ScopedMemoryCharge pair_memory(
          metrics == nullptr ? nullptr : metrics->join_memory);
      pair_memory.Charge((parts[p].outer_file->NumPages() +
                          parts[p].inner_file->NumPages()) *
                         kPageSize);
      SortPartition(&*outer_tuples, spec.outer_key, slot(p));
      SortPartition(&*inner_tuples, spec.inner_key, slot(p));
      std::vector<MatchRef> matches;
      ProbePartition(*outer_tuples, *inner_tuples, spec, slot(p), &matches);
      status = emit_matches(*outer_tuples, *inner_tuples, matches);
    }
  } else {
    // Concurrent: reads stay on this thread, then sort + probe run
    // one-partition-per-morsel on the pool.
    std::vector<std::vector<Tuple>> outer_tuples(partitions);
    std::vector<std::vector<Tuple>> inner_tuples(partitions);
    ScopedBudget pairs_budget(query);
    for (size_t p = 0; p < partitions && status.ok(); ++p) {
      status = CheckQuery(query);
      if (!status.ok()) break;
      auto o = LoadPartition(parts[p].outer_file.get(), pool);
      if (!o.ok()) {
        status = o.status();
        break;
      }
      auto i = LoadPartition(parts[p].inner_file.get(), pool);
      if (!i.ok()) {
        status = i.status();
        break;
      }
      outer_tuples[p] = *std::move(o);
      inner_tuples[p] = *std::move(i);
      status = pairs_budget.Charge((parts[p].outer_file->NumPages() +
                                    parts[p].inner_file->NumPages()) *
                                   kPageSize);
      if (!status.ok()) break;
      memory.Charge((parts[p].outer_file->NumPages() +
                     parts[p].inner_file->NumPages()) *
                    kPageSize);
    }
    if (status.ok()) {
      std::vector<std::vector<MatchRef>> matches(partitions);
      ParallelFor(ctx, partitions, /*morsel_size=*/1,
                  [&](size_t, size_t begin, size_t end) {
                    for (size_t p = begin; p < end; ++p) {
                      SortPartition(&outer_tuples[p], spec.outer_key, slot(p));
                      SortPartition(&inner_tuples[p], spec.inner_key, slot(p));
                      ProbePartition(outer_tuples[p], inner_tuples[p], spec,
                                     slot(p), &matches[p]);
                    }
                  });
      // A governed stop keeps ParallelFor from dispatching the remaining
      // partitions, so the buffered matches are incomplete: surface the
      // stop instead of emitting a partial result.
      status = CheckQuery(query);
      for (size_t p = 0; p < partitions && status.ok(); ++p) {
        status = emit_matches(outer_tuples[p], inner_tuples[p], matches[p]);
      }
    }
  }
  folder.Fold();
  if (metrics != nullptr) {
    metrics->partitioned_join_rows_in->Add(stats->outer_replicas);
    metrics->partitioned_join_rows_out->Add(emitted);
  }
  span.SetDetail("partitions=" + std::to_string(partitions) + " replicas=" +
                 std::to_string(stats->outer_replicas));
  span.SetInputRows(stats->outer_replicas);
  span.SetOutputRows(emitted);

  // Cleanup.
  for (Partition& part : parts) {
    pool->Invalidate(part.inner_file.get());
    pool->Invalidate(part.outer_file.get());
    part.inner_writer.reset();
    part.outer_writer.reset();
    part.inner_file.reset();
    part.outer_file.reset();
    RemoveFileIfExists(part.inner_path);
    RemoveFileIfExists(part.outer_path);
  }
  temp_guard.Dismiss();
  return status;
}

}  // namespace fuzzydb
