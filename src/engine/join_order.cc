#include "engine/join_order.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace fuzzydb {

double EstimateIntervalSize(const ChainStats& stats, size_t lo, size_t hi) {
  double size = 1.0;
  for (size_t k = lo; k <= hi; ++k) size *= stats.cardinality[k];
  for (size_t k = lo; k < hi; ++k) size *= stats.selectivity[k];
  return size;
}

ChainJoinOrder PlanChainJoinOrder(const ChainStats& stats) {
  const size_t k_levels = stats.cardinality.size();
  assert(k_levels >= 1);
  assert(stats.selectivity.size() + 1 == k_levels);

  ChainJoinOrder order;
  if (k_levels == 1) {
    order.levels = {0};
    return order;
  }

  // dp[lo][hi]: minimum summed intermediate size to have joined exactly
  // levels [lo, hi]; the interval is built by its last extension, from
  // [lo+1, hi] (new level lo) or [lo, hi-1] (new level hi). Producing an
  // interval costs its own estimated size (it is materialized as the
  // next step's build side) except for the final full interval, whose
  // size is the answer and is paid regardless -- including it uniformly
  // does not change the argmin.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(k_levels,
                                      std::vector<double>(k_levels, inf));
  // extended_from[lo][hi]: 0 = came from [lo+1, hi], 1 = from [lo, hi-1].
  std::vector<std::vector<int>> extended_from(
      k_levels, std::vector<int>(k_levels, -1));

  for (size_t i = 0; i < k_levels; ++i) dp[i][i] = 0.0;
  for (size_t span = 2; span <= k_levels; ++span) {
    for (size_t lo = 0; lo + span <= k_levels; ++lo) {
      const size_t hi = lo + span - 1;
      const double interval_size = EstimateIntervalSize(stats, lo, hi);
      const double from_left = dp[lo + 1][hi] + interval_size;
      const double from_right = dp[lo][hi - 1] + interval_size;
      if (from_left <= from_right) {
        dp[lo][hi] = from_left;
        extended_from[lo][hi] = 0;
      } else {
        dp[lo][hi] = from_right;
        extended_from[lo][hi] = 1;
      }
    }
  }

  // Reconstruct: walk back from the full interval, recording which level
  // was added last, then reverse.
  std::vector<size_t> reversed;
  size_t lo = 0, hi = k_levels - 1;
  while (lo < hi) {
    if (extended_from[lo][hi] == 0) {
      reversed.push_back(lo);
      ++lo;
    } else {
      reversed.push_back(hi);
      --hi;
    }
  }
  reversed.push_back(lo);  // the starting level
  order.levels.assign(reversed.rbegin(), reversed.rend());
  order.estimated_cost = dp[0][k_levels - 1];
  return order;
}

}  // namespace fuzzydb
