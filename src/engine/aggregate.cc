#include "engine/aggregate.h"

#include "fuzzy/arithmetic.h"

namespace fuzzydb {

Result<AggregateResult> ApplyAggregate(sql::AggFunc func,
                                       const Relation& set) {
  if (func == sql::AggFunc::kCount) {
    return AggregateResult{Value::Number(static_cast<double>(set.NumTuples())),
                           1.0};
  }
  if (set.Empty()) {
    return AggregateResult{Value::Null(), 1.0};
  }
  for (const Tuple& t : set.tuples()) {
    if (!t.ValueAt(0).is_fuzzy()) {
      return Status::InvalidArgument(
          "aggregate applied to non-numeric value " +
          t.ValueAt(0).ToString());
    }
  }

  switch (func) {
    case sql::AggFunc::kSum:
    case sql::AggFunc::kAvg: {
      Trapezoid sum = set.TupleAt(0).ValueAt(0).AsFuzzy();
      for (size_t i = 1; i < set.NumTuples(); ++i) {
        sum = FuzzyAdd(sum, set.TupleAt(i).ValueAt(0).AsFuzzy());
      }
      if (func == sql::AggFunc::kAvg) {
        sum = FuzzyScale(sum, static_cast<double>(set.NumTuples()));
      }
      return AggregateResult{Value::Fuzzy(sum), 1.0};
    }
    case sql::AggFunc::kMin:
    case sql::AggFunc::kMax: {
      const bool want_min = func == sql::AggFunc::kMin;
      size_t best = 0;
      for (size_t i = 1; i < set.NumTuples(); ++i) {
        const Trapezoid& candidate = set.TupleAt(i).ValueAt(0).AsFuzzy();
        const Trapezoid& current = set.TupleAt(best).ValueAt(0).AsFuzzy();
        double diff = candidate.CoreCenter() - current.CoreCenter();
        if (diff == 0.0) {
          // Deterministic tie-break on the representation.
          diff = set.TupleAt(i).ValueAt(0).TotalOrderCompare(
              set.TupleAt(best).ValueAt(0));
        }
        if ((want_min && diff < 0.0) || (!want_min && diff > 0.0)) {
          best = i;
        }
      }
      return AggregateResult{set.TupleAt(best).ValueAt(0), 1.0};
    }
    case sql::AggFunc::kCount:
    case sql::AggFunc::kNone:
      break;
  }
  return Status::InvalidArgument("not an aggregate function");
}

}  // namespace fuzzydb
