// File-based execution of the paper's experimental query.
//
// Section 9 runs type J queries
//
//   SELECT R.X FROM R
//   WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)
//
// over synthetic relations, comparing the naive nested-loop execution
// with the unnested extended merge-join execution. These runners evaluate
// that query directly against heap files, measuring response time, CPU
// time, the sort/join phase split (Table 3) and page I/O counts (Fig. 3).
#ifndef FUZZYDB_ENGINE_EXECUTOR_H_
#define FUZZYDB_ENGINE_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "engine/exec_options.h"
#include "engine/exec_stats.h"
#include "relational/relation.h"
#include "storage/heap_file.h"

namespace fuzzydb {

/// Column bindings of the experimental type J query.
struct TypeJQuerySpec {
  size_t r_x = 0;  // projected outer column
  size_t r_y = 1;  // linking column (IN)
  size_t r_u = 2;  // correlation column (outer side)
  size_t s_z = 0;  // inner projected column
  size_t s_v = 1;  // correlation column (inner side)
  double threshold = 0.0;  // WITH D >= threshold on the answer
};

/// Answer relation plus measurements of the run.
struct RunResult {
  Relation answer;
  ExecStats stats;
};

/// Naive evaluation: block nested loop (1 buffer page for S, the rest for
/// R), computing each answer degree by the nested semantics of Section 4.
/// `options` is only consulted for its trace (the join itself is serial).
Result<RunResult> RunTypeJNestedLoop(PageFile* r_file, PageFile* s_file,
                                     const TypeJQuerySpec& spec,
                                     size_t buffer_pages,
                                     const ExecOptions* options = nullptr);

/// Unnested evaluation: external sort of R on Y and S on Z by the
/// interval order, then the extended merge-join with the correlation
/// predicate U = V as a residual. Temporary sorted files are created
/// under `temp_prefix` and removed afterwards. `min_record_size` must
/// match the padding used when the input files were written so that
/// sorted files keep the same page counts.
///
/// `options` opts the CPU-bound phases into the worker pool (in-memory
/// run sorts during the external sorts; see sort/external_sort.h) and
/// supplies the trace sink. The default (nullptr) runs fully serially,
/// preserving the measured shape of the paper-reproduction benches;
/// options with ResolvedThreads() == 1 behave identically to nullptr
/// apart from tracing (the parallel run-sort path, whose comparison
/// count differs from std::sort's, only engages with > 1 thread).
Result<RunResult> RunTypeJMergeJoin(PageFile* r_file, PageFile* s_file,
                                    const TypeJQuerySpec& spec,
                                    size_t buffer_pages,
                                    const std::string& temp_prefix,
                                    size_t min_record_size = 0,
                                    const ExecOptions* options = nullptr);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_EXECUTOR_H_
