#include "engine/unnested_evaluator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <numeric>
#include <optional>

#include <array>
#include <memory>

#include "cache/cache_manager.h"
#include "cache/plan_fingerprint.h"
#include "common/query_context.h"
#include "engine/aggregate.h"
#include "engine/cost_model.h"
#include "engine/join_order.h"
#include "stats/column_stats.h"
#include "engine/naive_evaluator.h"
#include "engine/semantics.h"
#include "common/stopwatch.h"
#include "fuzzy/degree_batch.h"
#include "fuzzy/interval_order.h"
#include "fuzzy/trapezoid_batch.h"
#include "obs/metrics.h"
#include "obs/query_journal.h"
#include "obs/query_registry.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "relational/column_gather.h"

namespace fuzzydb {

namespace {

using sql::BoundOperand;
using sql::BoundPredicate;
using sql::BoundQuery;
using sql::Predicate;

/// A tuple surviving the local-predicate filter, with its adjusted degree
/// min(mu_R(r), d(p_local(r))).
struct FT {
  const Tuple* tuple = nullptr;
  double degree = 0.0;
};

/// True when the operator should consult the cross-query cache.
bool CacheOn(const ParallelContext& ctx) {
  return ctx.cache != nullptr && ctx.cache->enabled();
}

/// The QueryContext cache admission charges against. ParallelContext
/// holds the context const (operators only poll it); the underlying
/// object always comes from the non-const ExecOptions::context, so the
/// cast is well-defined.
QueryContext* CacheBudget(const ParallelContext& ctx) {
  return const_cast<QueryContext*>(ctx.query);
}

/// Degree of tuple `t` against the local predicates of a single-table
/// block (subquery and correlation predicates are skipped).
double LocalDegree(const BoundQuery& block, const Tuple& t, CpuStats* cpu) {
  Frames frames;
  frames.push_back({&t});
  double d = t.degree();
  for (const auto& pred : block.predicates) {
    if (d <= 0.0) break;
    if (pred.subquery != nullptr || !pred.IsLocal()) continue;
    d = std::min(d, ComparisonDegree(pred, frames, cpu));
  }
  return d;
}

// ---------------------------------------------------------------------
// Batch execution (docs/architecture.md, "Batch execution").
//
// The filter stage and the merge-window emit path gather their fuzzy
// operands into TrapezoidBatch SoA batches and evaluate whole batches
// through the kernels of fuzzy/degree_batch.h. The batch and scalar
// paths share one copy of the degree arithmetic
// (fuzzy/degree_kernels.h) and replicate each other's early-exit
// counting lane for lane, so results, CpuStats and trace counters are
// identical for every ExecOptions::batch_size -- only wall time
// changes. Batches are cut inside morsels and never span one, so the
// batch decomposition, like the morsel decomposition, is independent
// of thread count.
// ---------------------------------------------------------------------

/// Lanes per batch: the knob clamped to the SoA capacity; 0 = scalar.
size_t EffectiveBatchSize(const ParallelContext& ctx) {
  return std::min(ctx.batch_size, TrapezoidBatch::kCapacity);
}

/// Per-worker batch-path usage, summed at the barrier (sums are
/// permutation-invariant, so the totals are thread-count-invariant).
struct BatchTally {
  uint64_t batches = 0;  // batch-kernel invocations
  uint64_t rows = 0;     // lanes those invocations evaluated
};

/// Sums the per-worker tallies into the span annotation and the
/// fuzzydb_batch_* counters. Spans with zero batches stay unannotated
/// (scalar runs and batch runs without batchable work look identical).
void PublishBatchTally(const std::vector<BatchTally>& tallies,
                       TraceScope* span) {
  uint64_t batches = 0;
  uint64_t rows = 0;
  for (const BatchTally& t : tallies) {
    batches += t.batches;
    rows += t.rows;
  }
  if (batches == 0) return;
  span->SetBatches(batches, rows);
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->batch_batches->Add(batches);
    m->batch_rows->Add(rows);
  }
}

/// One side of a predicate resolved for batch evaluation: a column of
/// the local (innermost) frame, a column of the enclosing frame
/// (correlation predicates only), or a fuzzy constant. Mirrors the
/// frame shapes OperandValue resolves on the batched paths.
struct BatchOperand {
  enum class Kind { kLocalColumn, kOuterColumn, kConstant };
  Kind kind = Kind::kConstant;
  size_t column = 0;
  const Trapezoid* constant = nullptr;  // into the plan's BoundOperand

  bool is_column() const { return kind != Kind::kConstant; }
};

/// Resolves `op`, or nullopt when the operand forces the scalar
/// fallback (a disallowed outer reference, a multi-table frame, or a
/// non-fuzzy constant).
std::optional<BatchOperand> ResolveBatchOperand(const BoundOperand& op,
                                                bool allow_outer) {
  BatchOperand out;
  if (op.is_column) {
    if (op.column.table != 0) return std::nullopt;
    if (op.column.up == 0) {
      out.kind = BatchOperand::Kind::kLocalColumn;
    } else if (op.column.up == 1 && allow_outer) {
      out.kind = BatchOperand::Kind::kOuterColumn;
    } else {
      return std::nullopt;
    }
    out.column = op.column.column;
    return out;
  }
  if (!op.constant.is_fuzzy()) return std::nullopt;
  out.kind = BatchOperand::Kind::kConstant;
  out.constant = &op.constant.AsFuzzy();
  return out;
}

/// A gathered operand, ready for a kernel call: either a batch of
/// column lanes or a single scalar constant (exactly one is set;
/// constants stay scalar so nothing is splatted).
struct GatheredOperand {
  const TrapezoidBatch* batch = nullptr;
  const Trapezoid* scalar = nullptr;
};

/// One batch-kernel invocation over the gathered operand shapes.
void RunBatchCompare(const GatheredOperand& lhs, CompareOp op,
                     const GatheredOperand& rhs, double tolerance,
                     double* out) {
  if (lhs.batch != nullptr && rhs.batch != nullptr) {
    BatchSatisfactionDegree(*lhs.batch, op, *rhs.batch, tolerance, out);
  } else if (lhs.batch != nullptr) {
    BatchSatisfactionDegree(*lhs.batch, op, *rhs.scalar, tolerance, out);
  } else {
    BatchSatisfactionDegree(*lhs.scalar, op, *rhs.batch, tolerance, out);
  }
}

/// A predicate with its operands resolved once per operator. A plan
/// that is not batchable (an unresolved operand, or two constants)
/// runs its lanes through the per-tuple ComparisonDegree fallback.
struct BatchPredPlan {
  const BoundPredicate* pred = nullptr;
  std::optional<BatchOperand> lhs;
  std::optional<BatchOperand> rhs;

  bool batchable() const {
    return lhs.has_value() && rhs.has_value() &&
           (lhs->is_column() || rhs->is_column());
  }
};

/// Reusable per-worker scratch for the batched filter: two operand
/// batches plus degree/result/selection lanes (~90 KiB, heap-allocated
/// once per worker and reused across chunks).
struct FilterScratch {
  TrapezoidBatch lhs;
  TrapezoidBatch rhs;
  std::array<double, TrapezoidBatch::kCapacity> degree;
  std::array<double, TrapezoidBatch::kCapacity> result;
  std::array<uint32_t, TrapezoidBatch::kCapacity> active;
};

/// Gathers one filter operand for the chunk's active lanes. The dense
/// first-predicate case (every lane active) takes the contiguous
/// column gather; later predicates gather through the selection.
/// Returns false when a lane is non-fuzzy (scalar fallback).
bool GatherFilterOperand(const BatchOperand& op, const Tuple* tuples,
                         size_t count, const uint32_t* active, size_t live,
                         TrapezoidBatch* storage, GatheredOperand* out) {
  if (!op.is_column()) {
    out->scalar = op.constant;
    out->batch = nullptr;
    return true;
  }
  // kLocalColumn -- the filter frame has no enclosing frame.
  if (live == count) {
    if (!GatherFuzzyColumn(tuples, count, op.column, storage)) return false;
  } else {
    storage->Clear();
    for (size_t j = 0; j < live; ++j) {
      const Value& v = tuples[active[j]].ValueAt(op.column);
      if (!v.is_fuzzy()) return false;
      storage->PushBack(v.AsFuzzy());
    }
  }
  out->batch = storage;
  out->scalar = nullptr;
  return true;
}

/// Evaluates one chunk of `count` tuples of the filter's scan range
/// batch-at-a-time, appending survivors (in scan order) to *out.
/// Replicates LocalDegree's min-fold and early exit lane-wise: a lane
/// participates in a predicate only while its degree is still > 0, so
/// degree_evaluations matches the scalar path exactly.
void FilterChunkBatched(const std::vector<BatchPredPlan>& plans,
                        const Tuple* tuples, size_t count,
                        FilterScratch* scratch, CpuStats* slot,
                        BatchTally* tally, Histogram* fill_hist,
                        std::vector<FT>* out) {
  double* deg = scratch->degree.data();
  double* res = scratch->result.data();
  uint32_t* active = scratch->active.data();
  for (size_t k = 0; k < count; ++k) deg[k] = tuples[k].degree();
  for (const BatchPredPlan& plan : plans) {
    size_t live = 0;
    for (size_t k = 0; k < count; ++k) {
      active[live] = static_cast<uint32_t>(k);
      live += static_cast<size_t>(deg[k] > 0.0);
    }
    if (live == 0) break;
    bool batched = false;
    if (plan.batchable()) {
      GatheredOperand lhs, rhs;
      batched = GatherFilterOperand(*plan.lhs, tuples, count, active, live,
                                    &scratch->lhs, &lhs) &&
                GatherFilterOperand(*plan.rhs, tuples, count, active, live,
                                    &scratch->rhs, &rhs);
      if (batched) {
        RunBatchCompare(lhs, plan.pred->op, rhs, plan.pred->approx_tolerance,
                        res);
        if (slot != nullptr) slot->degree_evaluations += live;
        ++tally->batches;
        tally->rows += live;
        if (fill_hist != nullptr) fill_hist->Record(live);
        for (size_t j = 0; j < live; ++j) {
          const size_t k = active[j];
          deg[k] = std::min(deg[k], res[j]);
        }
      }
    }
    if (!batched) {
      for (size_t j = 0; j < live; ++j) {
        const size_t k = active[j];
        Frames frames;
        frames.push_back({&tuples[k]});
        deg[k] = std::min(deg[k], ComparisonDegree(*plan.pred, frames, slot));
      }
    }
  }
  for (size_t k = 0; k < count; ++k) {
    if (deg[k] > 0.0) out->push_back(FT{&tuples[k], deg[k]});
  }
}

// ---------------------------------------------------------------------
// Cost-based planning hooks (ExecOptions::cost_based).
//
// Estimates come from the support-corner summaries of
// stats/column_stats.h; algorithm decisions from engine/cost_model.h.
// Every input is a thread-count-invariant filtered vector and every
// estimator is a pure function, so planning decisions -- and therefore
// results -- are identical for every thread count, and identical to the
// fixed-rule plans in answer bits (only intermediate work differs).
// ---------------------------------------------------------------------

/// Builds the summary of fuzzy column `col` over a filtered vector.
ColumnStats BuildKeyStats(const std::vector<FT>& tuples, size_t col) {
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->planner_stats_builds->Add();
  }
  std::vector<Trapezoid> values;
  values.reserve(tuples.size());
  for (const FT& ft : tuples) {
    const Value& v = ft.tuple->ValueAt(col);
    if (v.is_fuzzy()) values.push_back(v.AsFuzzy());
  }
  ColumnStats stats = BuildColumnStats(values);
  stats.rows = tuples.size();
  return stats;
}

/// Rounds a fractional cardinality estimate to the uint64 a span carries.
uint64_t RoundEstimate(double est) {
  if (!(est > 0.0)) return 0;
  return static_cast<uint64_t>(std::llround(est));
}

/// Records one operator's q-error, max(est/act, act/est) with both
/// sides floored at one row, scaled by 100 (100 = perfect).
void RecordQError(uint64_t est, uint64_t act) {
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    const double e = static_cast<double>(std::max<uint64_t>(est, 1));
    const double a = static_cast<double>(std::max<uint64_t>(act, 1));
    m->planner_q_error->Record(
        static_cast<uint64_t>(std::llround(std::max(e / a, a / e) * 100.0)));
  }
}

/// `op` as seen from the other side of the comparison (column and
/// constant swapped).
CompareOp MirrorCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

/// Planner estimate of a filter block's survivors: relation rows times
/// the product of per-predicate selectivities. Only column-vs-fuzzy-
/// constant comparisons are estimable from the summaries; other local
/// predicates contribute selectivity 1 (keep everything).
uint64_t EstimateFilterRows(const BoundQuery& block, size_t n) {
  if (n == 0) return 0;
  const Relation& rel = *block.tables[0].relation;
  double selectivity = 1.0;
  for (const auto& pred : block.predicates) {
    if (pred.subquery != nullptr || !pred.IsLocal()) continue;
    if (pred.kind != Predicate::Kind::kCompare || pred.negated) continue;
    const BoundOperand* col_side = nullptr;
    const BoundOperand* const_side = nullptr;
    CompareOp op = pred.op;
    if (pred.lhs.is_column && !pred.rhs.is_column) {
      col_side = &pred.lhs;
      const_side = &pred.rhs;
    } else if (pred.rhs.is_column && !pred.lhs.is_column) {
      col_side = &pred.rhs;
      const_side = &pred.lhs;
      op = MirrorCompareOp(op);
    } else {
      continue;
    }
    if (!const_side->constant.is_fuzzy()) continue;
    const ColumnStats stats =
        BuildColumnStats(rel, col_side->column.column);
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->planner_stats_builds->Add();
    }
    selectivity *= EstimatePredicateSelectivity(
        stats, op, const_side->constant.AsFuzzy());
  }
  return RoundEstimate(selectivity * static_cast<double>(n));
}

/// Filters a single-table block by its local predicates; this is the
/// paper's "only those tuples that satisfy p positively should be sorted".
/// Morsels are filtered in parallel into per-morsel vectors concatenated
/// in morsel order, so the output (and, with per-worker stats folded at
/// the barrier, the counters) match the serial scan exactly.
std::vector<FT> FilterBlock(const BoundQuery& block,
                            const ParallelContext& ctx, CpuStats* cpu,
                            ExecTrace* trace) {
  TraceScope span(trace, "filter", cpu, nullptr,
                  block.tables[0].relation->name());
  span.SetThreads(WorkerSlots(ctx));
  PhaseScope phase(ctx.progress, QueryPhase::kFilter);
  const std::vector<Tuple>& tuples = block.tables[0].relation->tuples();
  const size_t n = tuples.size();
  // Cross-query reuse: the survivors depend only on the block plan and
  // the relation contents, and the fingerprint pins both (relations
  // appear as id@version). Cached filters replay as (index, degree)
  // pairs against the live tuple vector, skipping every LocalDegree call.
  std::string cache_key;
  std::vector<uint64_t> cache_deps;
  if (CacheOn(ctx)) {
    cache_key = "filt|" + PlanFingerprint(block, /*include_threshold=*/true,
                                          &cache_deps);
    if (auto cached = ctx.cache->LookupFiltered(cache_key)) {
      std::vector<FT> out;
      out.reserve(cached->size());
      for (const auto& [index, degree] : *cached) {
        out.push_back(FT{&tuples[index], degree});
      }
      span.SetDetail(block.tables[0].relation->name() + " (cached)");
      span.SetInputRows(n);
      span.SetOutputRows(out.size());
      if (span.enabled() && ctx.cost_based) {
        const uint64_t est = EstimateFilterRows(block, n);
        span.SetEstimatedRows(est);
        RecordQError(est, out.size());
      }
      if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
        m->filter_rows_in->Add(n);
        m->filter_rows_out->Add(out.size());
      }
      return out;
    }
  }
  const size_t morsel = ctx.morsel_size == 0 ? 1 : ctx.morsel_size;
  std::vector<std::vector<FT>> per_morsel((n + morsel - 1) / morsel);
  std::vector<CpuStats> worker_cpu(WorkerSlots(ctx));
  // Batch path: resolve each local predicate's operands once. The
  // chunked scan below evaluates the same predicates in the same order
  // with the same early exit as LocalDegree, so survivors, degrees and
  // counters are identical; batch_size = 0 keeps the scalar loop.
  const size_t batch = EffectiveBatchSize(ctx);
  std::vector<BatchPredPlan> plans;
  for (const auto& pred : block.predicates) {
    if (pred.subquery != nullptr || !pred.IsLocal()) continue;
    BatchPredPlan plan;
    plan.pred = &pred;
    plan.lhs = ResolveBatchOperand(pred.lhs, /*allow_outer=*/false);
    plan.rhs = ResolveBatchOperand(pred.rhs, /*allow_outer=*/false);
    plans.push_back(plan);
  }
  const bool use_batch = batch > 0 && !plans.empty();
  std::vector<std::unique_ptr<FilterScratch>> scratches(
      use_batch ? WorkerSlots(ctx) : 0);
  std::vector<BatchTally> tallies(WorkerSlots(ctx));
  EngineMetrics* metrics = EngineMetrics::IfEnabled();
  Histogram* fill_hist = metrics == nullptr ? nullptr : metrics->batch_fill;
  // Declared after `span`: if a morsel body throws, the folder's
  // destructor runs first during unwinding, so whatever the workers
  // tallied still lands in *cpu before the span snapshots its delta.
  CpuStatsFolder folder(cpu == nullptr ? nullptr : &worker_cpu, cpu);
  ParallelFor(ctx, n, [&](size_t worker, size_t begin, size_t end) {
    CpuStats* slot = cpu == nullptr ? nullptr : &worker_cpu[worker];
    std::vector<FT>& out = per_morsel[begin / morsel];
    if (use_batch) {
      std::unique_ptr<FilterScratch>& scratch = scratches[worker];
      if (scratch == nullptr) scratch = std::make_unique<FilterScratch>();
      for (size_t i = begin; i < end; i += batch) {
        FilterChunkBatched(plans, &tuples[i], std::min(batch, end - i),
                           scratch.get(), slot, &tallies[worker], fill_hist,
                           &out);
      }
      return;
    }
    for (size_t i = begin; i < end; ++i) {
      const double d = LocalDegree(block, tuples[i], slot);
      if (d > 0.0) out.push_back(FT{&tuples[i], d});
    }
  });
  size_t survivors = 0;
  for (const auto& part : per_morsel) survivors += part.size();
  std::vector<FT> out;
  out.reserve(survivors);
  for (const auto& part : per_morsel) {
    out.insert(out.end(), part.begin(), part.end());
  }
  folder.Fold();
  PublishBatchTally(tallies, &span);
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->filter_rows_in->Add(n);
    m->filter_rows_out->Add(out.size());
  }
  span.SetInputRows(n);
  span.SetOutputRows(out.size());
  if (span.enabled() && ctx.cost_based) {
    const uint64_t est = EstimateFilterRows(block, n);
    span.SetEstimatedRows(est);
    RecordQError(est, out.size());
  }
  if (!cache_key.empty()) {
    auto payload = std::make_shared<CacheManager::FilteredBlock>();
    payload->reserve(out.size());
    const Tuple* base = tuples.data();
    for (const FT& ft : out) {
      payload->emplace_back(static_cast<uint32_t>(ft.tuple - base),
                            ft.degree);
    }
    ctx.cache->InsertFiltered(cache_key, std::move(payload),
                              std::move(cache_deps), CacheBudget(ctx));
  }
  return out;
}

/// True when every tuple carries a fuzzy (numeric) value in column `col`.
bool ColumnIsFuzzy(const std::vector<FT>& tuples, size_t col) {
  for (const FT& ft : tuples) {
    if (!ft.tuple->ValueAt(col).is_fuzzy()) return false;
  }
  return true;
}

/// Sorts by the interval order (Definition 3.1) of fuzzy column `col`.
/// Parallel per-run sorts + merge tree; order and comparison count are
/// thread-count-invariant (see ParallelSort).
///
/// When `rel` (the relation the FT pointers reference) is given and the
/// cache is on, the full-relation interval-order permutation of `col` is
/// reused across queries: a hit reorders the survivors by one O(n + k)
/// walk of the cached permutation with zero key comparisons; a miss over
/// the *unfiltered* relation publishes the sorted order (a permutation is
/// only derivable when every tuple survived). Tie order may differ
/// between the cached and sorted paths, which is answer-neutral: every
/// consumer folds degrees with max/min and final answers are
/// duplicate-eliminated.
void SortByIntervalOrder(std::vector<FT>* tuples, size_t col,
                         const ParallelContext& ctx, CpuStats* cpu,
                         ExecTrace* trace, const Relation* rel = nullptr) {
  TraceScope span(trace, "interval-sort", cpu, nullptr,
                  "col" + std::to_string(col));
  span.SetInputRows(tuples->size());
  span.SetThreads(WorkerSlots(ctx));
  PhaseScope phase(ctx.progress, QueryPhase::kSort);
  std::string cache_key;
  if (rel != nullptr && CacheOn(ctx)) {
    cache_key = "perm|" + std::to_string(rel->id()) + "@" +
                std::to_string(rel->version()) + "|c" + std::to_string(col);
    if (auto perm = ctx.cache->LookupPermutation(cache_key)) {
      const Tuple* base = rel->tuples().data();
      constexpr uint32_t kAbsent = std::numeric_limits<uint32_t>::max();
      std::vector<uint32_t> slot_of(rel->tuples().size(), kAbsent);
      for (size_t i = 0; i < tuples->size(); ++i) {
        slot_of[static_cast<size_t>((*tuples)[i].tuple - base)] =
            static_cast<uint32_t>(i);
      }
      std::vector<FT> ordered;
      ordered.reserve(tuples->size());
      for (uint32_t index : *perm) {
        if (slot_of[index] != kAbsent) {
          ordered.push_back((*tuples)[slot_of[index]]);
        }
      }
      *tuples = std::move(ordered);
      span.SetDetail("col" + std::to_string(col) + " (cached)");
      if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
        m->sort_rows->Add(tuples->size());
      }
      return;
    }
  }
  uint64_t comparisons = 0;
  ParallelSort(ctx, tuples, cpu == nullptr ? nullptr : &comparisons,
               [col](uint64_t* count) {
                 return [col, count](const FT& x, const FT& y) {
                   ++*count;
                   return IntervalOrderLess(x.tuple->ValueAt(col).AsFuzzy(),
                                            y.tuple->ValueAt(col).AsFuzzy());
                 };
               });
  if (cpu != nullptr) cpu->comparisons += comparisons;
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->sort_rows->Add(tuples->size());
  }
  if (!cache_key.empty() && tuples->size() == rel->tuples().size()) {
    auto perm = std::make_shared<CacheManager::Permutation>();
    perm->reserve(tuples->size());
    const Tuple* base = rel->tuples().data();
    for (const FT& ft : *tuples) {
      perm->push_back(static_cast<uint32_t>(ft.tuple - base));
    }
    ctx.cache->InsertPermutation(cache_key, std::move(perm), {rel->id()},
                                 CacheBudget(ctx));
  }
}

/// The support interval of a sort-key value, hoisted out of the merge
/// window's inner loop: the window scan examines every pair, and
/// re-deriving ValueAt(col).AsFuzzy() bounds per pair dominated its cost.
struct SupportBounds {
  double begin = 0.0;
  double end = 0.0;
};

/// Precomputes the (SupportBegin, SupportEnd) array of `col`, once per
/// join input.
std::vector<SupportBounds> HoistSupportBounds(const std::vector<FT>& tuples,
                                              size_t col) {
  std::vector<SupportBounds> bounds(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    const Trapezoid& k = tuples[i].tuple->ValueAt(col).AsFuzzy();
    bounds[i] = SupportBounds{k.SupportBegin(), k.SupportEnd()};
  }
  return bounds;
}

/// The extended merge-join enumeration (Section 3): both inputs sorted on
/// their key columns; for each outer tuple, emits exactly the inner tuples
/// of Rng(r) (Definition 3.2).
///
/// Parallelization: the *outer* sorted input is cut into morsels; the
/// window logic is read-only over the inner side, so morsels are
/// independent and the enumeration is exactly degree-preserving. Each
/// morsel replays the serial scan for its range after replaying the scan
/// *state* at its entry: the serial window start before outer[begin] is
/// min{i : e(inner[i]) >= b(outer[begin - 1])}, which an (uncounted)
/// binary search finds on the monotone prefix-max of inner support ends
/// (the raw ends are not monotone under the interval order). Counted
/// comparisons therefore sum to the serial totals for every thread count.
///
/// `emit(worker, r, s)` may run concurrently for distinct workers; per-
/// worker stats go to worker_cpu (null = don't count, the serial
/// convention for cpu == nullptr). The worker slots -- including
/// whatever the emit callback tallied into them -- are folded into
/// `total_cpu` at the barrier, inside this operator's trace span.
///
/// A batching emit callback buffers pairs and needs a drain point that
/// keeps batches from spanning morsels: `morsel_flush(worker)`, when
/// set, runs at the end of every morsel body. `batch_tallies`, when
/// set, is published into this operator's span after the fold.
void MergeWindow(const std::vector<FT>& outer, size_t outer_col,
                 const std::vector<FT>& inner, size_t inner_col,
                 const ParallelContext& ctx,
                 std::vector<CpuStats>* worker_cpu, CpuStats* total_cpu,
                 ExecTrace* trace,
                 const std::function<void(size_t, const FT&, const FT&)>&
                     emit,
                 const std::function<void(size_t)>& morsel_flush = {},
                 const std::vector<BatchTally>* batch_tallies = nullptr,
                 uint64_t est_pairs = TraceNode::kNoCount) {
  TraceScope span(trace, "merge-window", total_cpu, nullptr,
                  "inner=" + std::to_string(inner.size()));
  span.SetInputRows(outer.size());
  span.SetThreads(WorkerSlots(ctx));
  PhaseScope phase(ctx.progress, QueryPhase::kWindow);
  // Declared after `span` so a throwing emit callback still folds the
  // worker tallies before the span records its delta (see CpuStatsFolder).
  CpuStatsFolder folder(worker_cpu, total_cpu);
  // Hoisted out of the scan: the enabled path per outer tuple is one
  // relaxed-atomic Record of |Rng(r)|, the disabled path one null test.
  EngineMetrics* metrics = EngineMetrics::IfEnabled();
  Histogram* window_hist =
      metrics == nullptr ? nullptr : metrics->merge_window_length;
  const std::vector<SupportBounds> outer_bounds =
      HoistSupportBounds(outer, outer_col);
  const std::vector<SupportBounds> inner_bounds =
      HoistSupportBounds(inner, inner_col);
  std::vector<double> inner_end_max(inner_bounds.size());
  double running = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < inner_bounds.size(); ++i) {
    running = std::max(running, inner_bounds[i].end);
    inner_end_max[i] = running;
  }

  // Windowed (= emitted) pairs per worker; the post-barrier sum is
  // permutation-invariant, so the span's rows_out -- the actual
  // cardinality the q-error gate compares est_pairs against -- is
  // thread-count-invariant like the counters.
  std::vector<uint64_t> worker_pairs(WorkerSlots(ctx), 0);

  ParallelFor(ctx, outer.size(), [&](size_t worker, size_t begin,
                                     size_t end) {
    CpuStats* cpu = worker_cpu == nullptr ? nullptr : &(*worker_cpu)[worker];
    size_t window_start = 0;
    if (begin > 0) {
      window_start = static_cast<size_t>(
          std::lower_bound(inner_end_max.begin(), inner_end_max.end(),
                           outer_bounds[begin - 1].begin) -
          inner_end_max.begin());
    }
    for (size_t r = begin; r < end; ++r) {
      const SupportBounds& rk = outer_bounds[r];
      while (window_start < inner.size()) {
        if (cpu != nullptr) ++cpu->comparisons;
        if (inner_bounds[window_start].end < rk.begin) {
          ++window_start;
        } else {
          break;
        }
      }
      uint64_t window_len = 0;
      for (size_t i = window_start; i < inner.size(); ++i) {
        if (cpu != nullptr) ++cpu->comparisons;
        if (inner_bounds[i].begin > rk.end) break;
        if (cpu != nullptr) ++cpu->tuple_pairs;
        ++window_len;
        emit(worker, outer[r], inner[i]);
      }
      if (window_hist != nullptr) window_hist->Record(window_len);
      worker_pairs[worker] += window_len;
    }
    if (morsel_flush) morsel_flush(worker);
  });
  folder.Fold();
  uint64_t emitted = 0;
  for (uint64_t p : worker_pairs) emitted += p;
  if (ctx.progress != nullptr) ctx.progress->AddPairs(emitted);
  if (span.enabled()) {
    span.SetOutputRows(emitted);
    if (est_pairs != TraceNode::kNoCount) {
      span.SetEstimatedRows(est_pairs);
      RecordQError(est_pairs, emitted);
    }
  }
  if (batch_tallies != nullptr) PublishBatchTally(*batch_tallies, &span);
}

/// The decomposed shape of one subquery predicate and its inner block.
struct LinkShape {
  const BoundPredicate* pred = nullptr;
  const BoundQuery* inner = nullptr;
  bool has_link_columns = true;  // false for EXISTS (no linking operand)
  size_t outer_link_col = 0;   // column of R referenced by the lhs
  size_t inner_link_col = 0;   // column of S projected by the inner block
  CompareOp link_op = CompareOp::kEq;
  std::vector<const BoundPredicate*> correlations;

  bool is_aggregate = false;   // kAggCompare
  bool negate_link = false;    // quantifier ALL: f(x) = 1 - x
  bool negate_result = false;  // NOT IN / NOT EXISTS / ALL: g(m) = 1 - m
};

/// Validates and decomposes one subquery predicate. Returns nullopt when
/// the shape is outside what the unnested plans handle (the caller then
/// falls back to the naive evaluator).
std::optional<LinkShape> DecomposeLink(const BoundPredicate& pred) {
  LinkShape shape;
  shape.pred = &pred;
  shape.inner = pred.subquery.get();
  if (shape.inner == nullptr || shape.inner->tables.size() != 1 ||
      !shape.inner->group_by.empty()) {
    return std::nullopt;
  }
  if (shape.inner->has_with && shape.inner->with_threshold > 0.0) {
    return std::nullopt;  // inner WITH: fall back to the naive semantics
  }
  if (pred.subquery->NestingDepth() != 1) return std::nullopt;

  shape.is_aggregate = pred.kind == Predicate::Kind::kAggCompare;
  shape.negate_link = pred.kind == Predicate::Kind::kQuantified &&
                      pred.quantifier == Predicate::Quantifier::kAll;
  shape.negate_result = shape.negate_link || pred.negated;

  if (pred.kind == Predicate::Kind::kExists) {
    shape.has_link_columns = false;
  } else {
    if (!pred.lhs.is_column || pred.lhs.column.up != 0) return std::nullopt;
    shape.outer_link_col = pred.lhs.column.column;
    shape.inner_link_col = shape.inner->select[0].column.column;
    shape.link_op =
        pred.kind == Predicate::Kind::kIn ? CompareOp::kEq : pred.op;
  }

  for (const BoundPredicate& inner_pred : shape.inner->predicates) {
    if (inner_pred.subquery != nullptr) return std::nullopt;
    if (inner_pred.IsLocal()) continue;
    const bool lhs_outer =
        inner_pred.lhs.is_column && inner_pred.lhs.column.up > 0;
    const bool rhs_outer =
        inner_pred.rhs.is_column && inner_pred.rhs.column.up > 0;
    if (lhs_outer == rhs_outer) return std::nullopt;
    const auto& outer_col =
        lhs_outer ? inner_pred.lhs.column : inner_pred.rhs.column;
    if (outer_col.up != 1) return std::nullopt;
    shape.correlations.push_back(&inner_pred);
  }
  return shape;
}

/// Degree of the correlation predicates for the pair (r, s).
double CorrelationDegree(const LinkShape& shape, const Tuple& r,
                         const Tuple& s, CpuStats* cpu) {
  if (shape.correlations.empty()) return 1.0;
  Frames frames;
  frames.push_back({&r});
  frames.push_back({&s});
  double d = 1.0;
  for (const BoundPredicate* pred : shape.correlations) {
    if (d <= 0.0) break;
    d = std::min(d, ComparisonDegree(*pred, frames, cpu));
  }
  return d;
}

/// One buffered (outer, inner) pair from the merge-window scan. The
/// pointers reference the window's stable sorted vectors; `index` is
/// the pair's slot in the caller's per-outer degree vector.
struct PairEntry {
  const FT* r = nullptr;
  const FT* s = nullptr;
  size_t index = 0;
};

/// Reusable per-worker scratch for the batched merge-window emit path:
/// the pending pairs of the current morsel plus operand/degree lanes.
struct PairScratch {
  std::vector<PairEntry> entries;
  TrapezoidBatch lhs;
  TrapezoidBatch rhs;
  std::array<double, TrapezoidBatch::kCapacity> corr;
  std::array<double, TrapezoidBatch::kCapacity> term;
  std::array<double, TrapezoidBatch::kCapacity> result;
  std::array<uint32_t, TrapezoidBatch::kCapacity> active;
};

/// Gathers one pair operand for the active entries: lanes come from
/// the outer tuple (up == 1), the inner tuple (up == 0), or the
/// constant. Returns false when a lane is non-fuzzy (scalar fallback).
bool GatherPairOperand(const BatchOperand& op, const PairEntry* entries,
                       const uint32_t* active, size_t live,
                       TrapezoidBatch* storage, GatheredOperand* out) {
  if (!op.is_column()) {
    out->scalar = op.constant;
    out->batch = nullptr;
    return true;
  }
  const bool from_outer = op.kind == BatchOperand::Kind::kOuterColumn;
  storage->Clear();
  for (size_t j = 0; j < live; ++j) {
    const PairEntry& e = entries[active[j]];
    const Tuple* t = from_outer ? e.r->tuple : e.s->tuple;
    const Value& v = t->ValueAt(op.column);
    if (!v.is_fuzzy()) return false;
    storage->PushBack(v.AsFuzzy());
  }
  out->batch = storage;
  out->scalar = nullptr;
  return true;
}

/// Evaluates and drains one worker's pending pairs: the correlation
/// min-fold, the linking comparison, then the max-fold into m[]. This
/// is `pair_term` (see InFamilyDegrees) lane for lane -- the same
/// early exits (correlation lanes drop out at degree 0; the link is
/// only evaluated for terms still > 0) and the same counting, so
/// CpuStats are identical to the scalar emit for every batch size.
/// Concurrent flushes write disjoint m[] slots: a morsel's sorted
/// positions belong to one worker and order[] is a permutation.
void FlushPairBatch(const LinkShape& shape,
                    const std::vector<BatchPredPlan>& corr_plans,
                    const BatchOperand& link_lhs,
                    const BatchOperand& link_rhs, PairScratch* ps,
                    CpuStats* slot, BatchTally* tally, Histogram* fill_hist,
                    std::vector<double>* m) {
  const size_t count = ps->entries.size();
  if (count == 0) return;
  const PairEntry* entries = ps->entries.data();
  double* corr = ps->corr.data();
  double* term = ps->term.data();
  double* res = ps->result.data();
  uint32_t* active = ps->active.data();

  for (size_t k = 0; k < count; ++k) corr[k] = 1.0;
  for (const BatchPredPlan& plan : corr_plans) {
    size_t live = 0;
    for (size_t k = 0; k < count; ++k) {
      active[live] = static_cast<uint32_t>(k);
      live += static_cast<size_t>(corr[k] > 0.0);
    }
    if (live == 0) break;
    bool batched = false;
    if (plan.batchable()) {
      GatheredOperand lhs, rhs;
      batched = GatherPairOperand(*plan.lhs, entries, active, live,
                                  &ps->lhs, &lhs) &&
                GatherPairOperand(*plan.rhs, entries, active, live,
                                  &ps->rhs, &rhs);
      if (batched) {
        RunBatchCompare(lhs, plan.pred->op, rhs, plan.pred->approx_tolerance,
                        res);
        if (slot != nullptr) slot->degree_evaluations += live;
        ++tally->batches;
        tally->rows += live;
        if (fill_hist != nullptr) fill_hist->Record(live);
        for (size_t j = 0; j < live; ++j) {
          const size_t k = active[j];
          corr[k] = std::min(corr[k], res[j]);
        }
      }
    }
    if (!batched) {
      for (size_t j = 0; j < live; ++j) {
        const size_t k = active[j];
        Frames frames;
        frames.push_back({entries[k].r->tuple});
        frames.push_back({entries[k].s->tuple});
        corr[k] = std::min(corr[k], ComparisonDegree(*plan.pred, frames, slot));
      }
    }
  }

  for (size_t k = 0; k < count; ++k) {
    term[k] = std::min(entries[k].s->degree, corr[k]);
  }

  if (shape.has_link_columns) {
    size_t live = 0;
    for (size_t k = 0; k < count; ++k) {
      active[live] = static_cast<uint32_t>(k);
      live += static_cast<size_t>(term[k] > 0.0);
    }
    if (live > 0) {
      GatheredOperand lhs, rhs;
      // The scalar path's link comparison is Value::Compare with the
      // *default* tolerance (the predicate's approx_tolerance applies
      // to its direct comparison, not the quantified link), so the
      // batch kernel must use 1.0 as well.
      const bool batched =
          GatherPairOperand(link_lhs, entries, active, live, &ps->lhs,
                            &lhs) &&
          GatherPairOperand(link_rhs, entries, active, live, &ps->rhs, &rhs);
      if (batched) {
        RunBatchCompare(lhs, shape.link_op, rhs, /*tolerance=*/1.0, res);
        if (slot != nullptr) slot->degree_evaluations += live;
        ++tally->batches;
        tally->rows += live;
        if (fill_hist != nullptr) fill_hist->Record(live);
        for (size_t j = 0; j < live; ++j) {
          const size_t k = active[j];
          const double link = res[j];
          term[k] =
              std::min(term[k], shape.negate_link ? 1.0 - link : link);
        }
      } else {
        for (size_t j = 0; j < live; ++j) {
          const size_t k = active[j];
          const PairEntry& e = entries[k];
          if (slot != nullptr) ++slot->degree_evaluations;
          const double link =
              e.r->tuple->ValueAt(shape.outer_link_col)
                  .Compare(shape.link_op,
                           e.s->tuple->ValueAt(shape.inner_link_col));
          term[k] =
              std::min(term[k], shape.negate_link ? 1.0 - link : link);
        }
      }
    }
  }

  for (size_t k = 0; k < count; ++k) {
    const PairEntry& e = entries[k];
    if (term[k] > (*m)[e.index]) (*m)[e.index] = term[k];
  }
  ps->entries.clear();
}

/// Picks an equality correlation predicate over fuzzy columns usable as
/// the merge-join key. Returns {outer_col, inner_col} or nullopt.
std::optional<std::pair<size_t, size_t>> FindEqualityCorrelationKey(
    const LinkShape& shape, const std::vector<FT>& outer,
    const std::vector<FT>& inner) {
  for (const BoundPredicate* pred : shape.correlations) {
    if (pred->op != CompareOp::kEq) continue;
    const bool lhs_outer = pred->lhs.is_column && pred->lhs.column.up > 0;
    const auto& outer_ref = lhs_outer ? pred->lhs.column : pred->rhs.column;
    const auto& inner_ref = lhs_outer ? pred->rhs.column : pred->lhs.column;
    if ((lhs_outer && (!pred->rhs.is_column || pred->rhs.column.up != 0)) ||
        (!lhs_outer && (!pred->lhs.is_column || pred->lhs.column.up != 0))) {
      continue;  // other side must be a local column
    }
    if (ColumnIsFuzzy(outer, outer_ref.column) &&
        ColumnIsFuzzy(inner, inner_ref.column)) {
      return std::make_pair(outer_ref.column, inner_ref.column);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------
// Per-outer-tuple degrees of one subquery predicate.
//
// For the IN/quantifier family (Sections 4, 5, 7) the degree of the
// predicate for outer tuple r is
//     g( max_s min(d_S(s), d(corr(r, s)), f(d(r.Y op s.Z))) )
// with f = identity or 1 - x (ALL) and g = identity or 1 - x (negations).
// For the aggregate family (Section 6) it is the T1/T2 pipeline.
// ---------------------------------------------------------------------

/// The human-readable kind of a decomposed subquery predicate, for
/// trace span annotations.
std::string LinkDetail(const LinkShape& shape) {
  const BoundPredicate& pred = *shape.pred;
  switch (pred.kind) {
    case Predicate::Kind::kIn:
      return pred.negated ? "NOT IN" : "IN";
    case Predicate::Kind::kQuantified:
      return pred.quantifier == Predicate::Quantifier::kAll ? "ALL" : "SOME";
    case Predicate::Kind::kExists:
      return pred.negated ? "NOT EXISTS" : "EXISTS";
    case Predicate::Kind::kAggCompare:
      return "AGG";
    case Predicate::Kind::kCompare:
      break;
  }
  return "compare";
}

/// IN / NOT IN / SOME / ALL / EXISTS / NOT EXISTS.
Result<std::vector<double>> InFamilyDegrees(const std::vector<FT>& outer,
                                            const LinkShape& shape,
                                            const ParallelContext& ctx,
                                            CpuStats* cpu,
                                            ExecTrace* trace) {
  TraceScope span(trace, "subquery", cpu, nullptr, LinkDetail(shape));
  span.SetInputRows(outer.size());
  std::vector<FT> inner = FilterBlock(*shape.inner, ctx, cpu, trace);
  // FilterBlock/MergeWindow stop dispatching morsels on a governed stop,
  // leaving partial output; surface the stop before using it.
  FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
  std::vector<double> m(outer.size(), 0.0);

  // `slot` is the caller's CpuStats in the serial branches and a
  // per-worker slot inside the parallel merge window.
  auto pair_term = [&](CpuStats* slot, const FT& r, const FT& s) -> double {
    double term =
        std::min(s.degree, CorrelationDegree(shape, *r.tuple, *s.tuple, slot));
    if (term <= 0.0 || !shape.has_link_columns) return term;
    if (slot != nullptr) ++slot->degree_evaluations;
    const double link =
        r.tuple->ValueAt(shape.outer_link_col)
            .Compare(shape.link_op, s.tuple->ValueAt(shape.inner_link_col));
    return std::min(term, shape.negate_link ? 1.0 - link : link);
  };

  const bool link_is_eq_fuzzy =
      shape.has_link_columns && shape.link_op == CompareOp::kEq &&
      ColumnIsFuzzy(outer, shape.outer_link_col) &&
      ColumnIsFuzzy(inner, shape.inner_link_col);
  // Windowing on the linking predicate is sound only when out-of-window
  // pairs contribute nothing, i.e. f(0) = 0 -- not for ALL, whose f(0)=1.
  const bool can_window_on_link = link_is_eq_fuzzy && !shape.negate_link;
  const auto corr_key = FindEqualityCorrelationKey(shape, outer, inner);

  if (can_window_on_link || corr_key.has_value()) {
    const size_t outer_key =
        can_window_on_link ? shape.outer_link_col : corr_key->first;
    const size_t inner_key =
        can_window_on_link ? shape.inner_link_col : corr_key->second;
    // Sort an index view of the outer so the caller's ordering (and the
    // degree vector's indexing) is untouched.
    std::vector<size_t> order(outer.size());
    std::iota(order.begin(), order.end(), 0);
    {
      TraceScope sort_span(trace, "interval-sort", cpu, nullptr,
                           "outer-view col" + std::to_string(outer_key));
      sort_span.SetInputRows(outer.size());
      sort_span.SetThreads(WorkerSlots(ctx));
      uint64_t order_comparisons = 0;
      ParallelSort(ctx, &order,
                   cpu == nullptr ? nullptr : &order_comparisons,
                   [&outer, outer_key](uint64_t* count) {
                     return [&outer, outer_key, count](size_t a, size_t b) {
                       ++*count;
                       return IntervalOrderLess(
                           outer[a].tuple->ValueAt(outer_key).AsFuzzy(),
                           outer[b].tuple->ValueAt(outer_key).AsFuzzy());
                     };
                   });
      if (cpu != nullptr) cpu->comparisons += order_comparisons;
    }
    std::vector<FT> sorted_outer(outer.size());
    for (size_t i = 0; i < order.size(); ++i) sorted_outer[i] = outer[order[i]];
    SortByIntervalOrder(&inner, inner_key, ctx, cpu, trace,
                        shape.inner->tables[0].relation);

    // Each sorted position belongs to exactly one morsel and order[] is a
    // permutation, so concurrent workers write disjoint m[idx] slots.
    std::vector<CpuStats> worker_cpu(WorkerSlots(ctx));
    const FT* base = sorted_outer.data();
    const size_t batch = EffectiveBatchSize(ctx);
    std::function<void(size_t, const FT&, const FT&)> emit;
    std::function<void(size_t)> morsel_flush;
    std::vector<BatchTally> tallies(WorkerSlots(ctx));
    std::vector<std::unique_ptr<PairScratch>> pair_scratch(
        batch > 0 ? WorkerSlots(ctx) : 0);
    std::vector<BatchPredPlan> corr_plans;
    BatchOperand link_lhs;
    BatchOperand link_rhs;
    if (batch > 0) {
      for (const BoundPredicate* pred : shape.correlations) {
        BatchPredPlan plan;
        plan.pred = pred;
        plan.lhs = ResolveBatchOperand(pred->lhs, /*allow_outer=*/true);
        plan.rhs = ResolveBatchOperand(pred->rhs, /*allow_outer=*/true);
        corr_plans.push_back(plan);
      }
      link_lhs.kind = BatchOperand::Kind::kOuterColumn;
      link_lhs.column = shape.outer_link_col;
      link_rhs.kind = BatchOperand::Kind::kLocalColumn;
      link_rhs.column = shape.inner_link_col;
      EngineMetrics* metrics = EngineMetrics::IfEnabled();
      Histogram* fill_hist =
          metrics == nullptr ? nullptr : metrics->batch_fill;
      // Buffer window pairs per worker and evaluate them batch-at-a-
      // time; the morsel flush drains remainders so batches never span
      // a morsel and the batch decomposition stays thread-invariant.
      emit = [&, fill_hist, batch](size_t worker, const FT& r, const FT& s) {
        std::unique_ptr<PairScratch>& ps = pair_scratch[worker];
        if (ps == nullptr) {
          ps = std::make_unique<PairScratch>();
          ps->entries.reserve(batch);
        }
        ps->entries.push_back(
            PairEntry{&r, &s, order[static_cast<size_t>(&r - base)]});
        if (ps->entries.size() >= batch) {
          FlushPairBatch(shape, corr_plans, link_lhs, link_rhs, ps.get(),
                         cpu == nullptr ? nullptr : &worker_cpu[worker],
                         &tallies[worker], fill_hist, &m);
        }
      };
      morsel_flush = [&, fill_hist](size_t worker) {
        if (pair_scratch[worker] != nullptr) {
          FlushPairBatch(shape, corr_plans, link_lhs, link_rhs,
                         pair_scratch[worker].get(),
                         cpu == nullptr ? nullptr : &worker_cpu[worker],
                         &tallies[worker], fill_hist, &m);
        }
      };
    } else {
      emit = [&](size_t worker, const FT& r, const FT& s) {
        const size_t idx = order[static_cast<size_t>(&r - base)];
        CpuStats* slot = cpu == nullptr ? nullptr : &worker_cpu[worker];
        const double term = pair_term(slot, r, s);
        if (term > m[idx]) m[idx] = term;
      };
    }
    // Planner estimate for the window: |outer| times the overlap
    // fanout predicted by the key columns' support-corner summaries --
    // the statistics replacement for the paper's "known" C.
    uint64_t est_pairs = TraceNode::kNoCount;
    if (trace != nullptr && ctx.cost_based) {
      const ColumnStats outer_stats = BuildKeyStats(sorted_outer, outer_key);
      const ColumnStats inner_stats = BuildKeyStats(inner, inner_key);
      est_pairs = RoundEstimate(
          static_cast<double>(sorted_outer.size()) *
          EstimateOverlapFanout(outer_stats, inner_stats));
    }
    MergeWindow(sorted_outer, outer_key, inner, inner_key, ctx,
                cpu == nullptr ? nullptr : &worker_cpu, cpu, trace, emit,
                morsel_flush, batch > 0 ? &tallies : nullptr, est_pairs);
    FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
  } else if (shape.correlations.empty() && !shape.has_link_columns) {
    // Uncorrelated EXISTS: a constant -- the possibility that the inner
    // block is non-empty.
    double m_const = 0.0;
    for (const FT& s : inner) m_const = std::max(m_const, s.degree);
    std::fill(m.begin(), m.end(), m_const);
  } else if (shape.correlations.empty()) {
    // Uncorrelated, non-mergeable link (e.g. op ALL without correlation):
    // materialize the inner fuzzy set once -- the paper's intermediate
    // relation optimization for type N -- and probe it per outer tuple.
    TraceScope probe_span(trace, "probe-materialized", cpu, nullptr);
    probe_span.SetInputRows(outer.size());
    PhaseScope phase(ctx.progress, QueryPhase::kJoin);
    Relation t("", shape.inner->output_schema);
    for (const FT& s : inner) {
      FUZZYDB_RETURN_IF_ERROR(t.AppendOrMax(
          Tuple({s.tuple->ValueAt(shape.inner_link_col)}, s.degree)));
    }
    for (size_t i = 0; i < outer.size(); ++i) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
      const Value& v = outer[i].tuple->ValueAt(shape.outer_link_col);
      double m_r = 0.0;
      for (const Tuple& z : t.tuples()) {
        if (cpu != nullptr) {
          ++cpu->tuple_pairs;
          ++cpu->degree_evaluations;
        }
        const double link = v.Compare(shape.link_op, z.ValueAt(0));
        m_r = std::max(m_r, std::min(z.degree(),
                                     shape.negate_link ? 1.0 - link : link));
      }
      m[i] = m_r;
    }
  } else {
    // Correlated but no usable merge key: unnested full pairing.
    TraceScope pairing_span(trace, "nested-pairing", cpu, nullptr,
                            "inner=" + std::to_string(inner.size()));
    pairing_span.SetInputRows(outer.size());
    PhaseScope phase(ctx.progress, QueryPhase::kJoin);
    for (size_t i = 0; i < outer.size(); ++i) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
      for (const FT& s : inner) {
        if (cpu != nullptr) ++cpu->tuple_pairs;
        const double term = pair_term(cpu, outer[i], s);
        if (term > m[i]) m[i] = term;
      }
    }
  }

  std::vector<double> degrees(outer.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    degrees[i] = shape.negate_result ? 1.0 - m[i] : m[i];
  }
  return degrees;
}

/// Aggregate subqueries (Section 6): types A and JA, COUNT included.
Result<std::vector<double>> AggregateFamilyDegrees(
    const std::vector<FT>& outer, const LinkShape& shape,
    const ParallelContext& ctx, CpuStats* cpu, ExecTrace* trace) {
  const sql::AggFunc agg = shape.inner->select[0].agg;
  TraceScope span(trace, "subquery", cpu, nullptr,
                  std::string("AGG ") + sql::AggFuncName(agg));
  span.SetInputRows(outer.size());
  std::vector<double> degrees(outer.size(), 0.0);

  if (shape.correlations.empty()) {
    // Type A: the inner block is a constant scalar; evaluate it once --
    // and, being uncorrelated, it is the ideal inner-block cache entry:
    // the same scalar serves every future query over the same relation
    // version.
    Relation t2;
    std::string cache_key;
    std::vector<uint64_t> cache_deps;
    bool from_cache = false;
    if (CacheOn(ctx)) {
      cache_key = "ares|" + PlanFingerprint(*shape.inner,
                                            /*include_threshold=*/true,
                                            &cache_deps);
      if (auto cached = ctx.cache->LookupResult(cache_key, 0.0)) {
        t2 = *cached;
        from_cache = true;
        span.SetDetail(std::string("AGG ") + sql::AggFuncName(agg) +
                       " (cached)");
      }
    }
    if (!from_cache) {
      NaiveEvaluator naive(cpu, trace, ctx.query);
      FUZZYDB_ASSIGN_OR_RETURN(t2, naive.Evaluate(*shape.inner));
      if (!cache_key.empty()) {
        ctx.cache->InsertResult(cache_key, 0.0,
                                std::make_shared<Relation>(t2),
                                std::move(cache_deps), CacheBudget(ctx));
      }
    }
    for (size_t i = 0; i < outer.size(); ++i) {
      if (t2.Empty()) continue;
      if (cpu != nullptr) ++cpu->degree_evaluations;
      degrees[i] =
          std::min(t2.TupleAt(0).degree(),
                   outer[i].tuple->ValueAt(shape.outer_link_col)
                       .Compare(shape.link_op, t2.TupleAt(0).ValueAt(0)));
    }
    return degrees;
  }

  // Type JA: exactly one correlation predicate S.V op2 R.U.
  if (shape.correlations.size() != 1) {
    return Status::Unsupported("JA plan requires one correlation predicate");
  }
  const BoundPredicate& corr = *shape.correlations[0];
  const bool lhs_outer = corr.lhs.is_column && corr.lhs.column.up > 0;
  const size_t u_col = (lhs_outer ? corr.lhs.column : corr.rhs.column).column;
  const size_t v_col = (lhs_outer ? corr.rhs.column : corr.lhs.column).column;

  auto corr_degree = [&](const Value& u, const Value& v) {
    if (cpu != nullptr) ++cpu->degree_evaluations;
    return lhs_outer ? u.Compare(corr.op, v) : v.Compare(corr.op, u);
  };

  // T1: the distinct R.U values (binary value identity), degree 1.
  std::map<Value, char, ValueLess> t1;
  for (const FT& r : outer) t1.emplace(r.tuple->ValueAt(u_col), 0);

  std::vector<FT> inner = FilterBlock(*shape.inner, ctx, cpu, trace);
  FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));

  // T2: u -> A'(u) with degree D(A'(u)), built by grouping T1 |x| S on u
  // and applying AGG per group (pipelined in the paper).
  std::map<Value, AggregateResult, ValueLess> t2;
  const bool mergeable = corr.op == CompareOp::kEq &&
                         ColumnIsFuzzy(inner, v_col) && [&] {
                           for (const auto& [u, unused] : t1) {
                             if (!u.is_fuzzy()) return false;
                           }
                           return true;
                         }();

  auto aggregate_group = [&](const Value& u, const Relation& group) -> Status {
    if (group.Empty()) return Status::OK();
    FUZZYDB_ASSIGN_OR_RETURN(AggregateResult a, ApplyAggregate(agg, group));
    if (!a.value.is_null()) t2.emplace(u, std::move(a));
    return Status::OK();
  };

  if (mergeable) {
    TraceScope group_span(trace, "group-aggregate", cpu, nullptr,
                          "merge t1=" + std::to_string(t1.size()));
    group_span.SetInputRows(inner.size());
    PhaseScope phase(ctx.progress, QueryPhase::kJoin);
    std::vector<Value> t1_sorted;
    t1_sorted.reserve(t1.size());
    for (const auto& [u, unused] : t1) t1_sorted.push_back(u);
    std::sort(t1_sorted.begin(), t1_sorted.end(),
              [cpu](const Value& x, const Value& y) {
                if (cpu != nullptr) ++cpu->comparisons;
                return IntervalOrderLess(x.AsFuzzy(), y.AsFuzzy());
              });
    SortByIntervalOrder(&inner, v_col, ctx, cpu, trace,
                        shape.inner->tables[0].relation);
    size_t window_start = 0;
    for (const Value& u : t1_sorted) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
      const Trapezoid& uk = u.AsFuzzy();
      while (window_start < inner.size()) {
        const Trapezoid& vk =
            inner[window_start].tuple->ValueAt(v_col).AsFuzzy();
        if (cpu != nullptr) ++cpu->comparisons;
        if (vk.SupportEnd() < uk.SupportBegin()) {
          ++window_start;
        } else {
          break;
        }
      }
      Relation group("", Schema{Column{"Z", ValueType::kFuzzy}});
      for (size_t i = window_start; i < inner.size(); ++i) {
        const Trapezoid& vk = inner[i].tuple->ValueAt(v_col).AsFuzzy();
        if (cpu != nullptr) ++cpu->comparisons;
        if (vk.SupportBegin() > uk.SupportEnd()) break;
        if (cpu != nullptr) ++cpu->tuple_pairs;
        const double d = std::min(
            inner[i].degree, corr_degree(u, inner[i].tuple->ValueAt(v_col)));
        if (d > 0.0) {
          FUZZYDB_RETURN_IF_ERROR(group.AppendOrMax(
              Tuple({inner[i].tuple->ValueAt(shape.inner_link_col)}, d)));
        }
      }
      FUZZYDB_RETURN_IF_ERROR(aggregate_group(u, group));
    }
    group_span.SetOutputRows(t2.size());
  } else {
    TraceScope group_span(trace, "group-aggregate", cpu, nullptr,
                          "nested t1=" + std::to_string(t1.size()));
    group_span.SetInputRows(inner.size());
    PhaseScope phase(ctx.progress, QueryPhase::kJoin);
    for (const auto& [u, unused] : t1) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
      Relation group("", Schema{Column{"Z", ValueType::kFuzzy}});
      for (const FT& s : inner) {
        if (cpu != nullptr) ++cpu->tuple_pairs;
        const double d =
            std::min(s.degree, corr_degree(u, s.tuple->ValueAt(v_col)));
        if (d > 0.0) {
          FUZZYDB_RETURN_IF_ERROR(group.AppendOrMax(
              Tuple({s.tuple->ValueAt(shape.inner_link_col)}, d)));
        }
      }
      FUZZYDB_RETURN_IF_ERROR(aggregate_group(u, group));
    }
  }

  // Back-join R with T2 on binary value identity; for COUNT the left
  // outer join's else-arm compares against 0 (Query COUNT').
  const Value zero = Value::Number(0.0);
  for (size_t i = 0; i < outer.size(); ++i) {
    const Value& u = outer[i].tuple->ValueAt(u_col);
    const Value& y = outer[i].tuple->ValueAt(shape.outer_link_col);
    auto it = t2.find(u);
    if (it != t2.end()) {
      if (cpu != nullptr) ++cpu->degree_evaluations;
      degrees[i] = std::min(it->second.degree,
                            y.Compare(shape.link_op, it->second.value));
    } else if (agg == sql::AggFunc::kCount) {
      if (cpu != nullptr) ++cpu->degree_evaluations;
      degrees[i] = y.Compare(shape.link_op, zero);
    }
  }
  return degrees;
}

/// Degrees of one subquery predicate for every outer tuple.
Result<std::vector<double>> SubqueryPredicateDegrees(
    const std::vector<FT>& outer, const BoundPredicate& pred,
    const ParallelContext& ctx, CpuStats* cpu, ExecTrace* trace) {
  auto shape = DecomposeLink(pred);
  if (!shape.has_value()) {
    return Status::Unsupported("subquery shape outside the unnested plans");
  }
  return shape->is_aggregate
             ? AggregateFamilyDegrees(outer, *shape, ctx, cpu, trace)
             : InFamilyDegrees(outer, *shape, ctx, cpu, trace);
}

/// Projects the outer block's SELECT columns of tuple r with degree d.
Status EmitAnswer(const BoundQuery& query, const Tuple& r, double d,
                  Relation* out) {
  if (d <= 0.0) return Status::OK();
  std::vector<Value> values;
  values.reserve(query.select.size());
  for (const auto& item : query.select) {
    values.push_back(r.ValueAt(item.column.column));
  }
  return out->Append(Tuple(std::move(values), d));
}

/// All 2-level types plus queries with several independent subquery
/// predicates: filter the outer block once, evaluate each subquery
/// predicate to a per-tuple degree vector, fold by min.
Result<Relation> RunTwoLevel(const BoundQuery& query,
                             const ParallelContext& ctx, CpuStats* cpu,
                             ExecTrace* trace) {
  if (query.tables.size() != 1 || !query.group_by.empty()) {
    return Status::Unsupported("outer block shape outside the unnested plan");
  }
  std::vector<FT> outer = FilterBlock(query, ctx, cpu, trace);
  FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
  std::vector<double> combined(outer.size(), 1.0);
  for (const BoundPredicate& pred : query.predicates) {
    if (pred.subquery == nullptr) {
      if (!pred.IsLocal()) {
        return Status::Unsupported("non-local outer predicate");
      }
      continue;  // already folded by FilterBlock
    }
    FUZZYDB_ASSIGN_OR_RETURN(
        std::vector<double> degrees,
        SubqueryPredicateDegrees(outer, pred, ctx, cpu, trace));
    for (size_t i = 0; i < outer.size(); ++i) {
      combined[i] = std::min(combined[i], degrees[i]);
    }
  }

  TraceScope emit_span(trace, "emit", cpu, nullptr);
  emit_span.SetInputRows(outer.size());
  PhaseScope phase(ctx.progress, QueryPhase::kEmit);
  Relation answer("", query.output_schema);
  for (size_t i = 0; i < outer.size(); ++i) {
    FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
    FUZZYDB_RETURN_IF_ERROR(
        EmitAnswer(query, *outer[i].tuple,
                   std::min(outer[i].degree, combined[i]), &answer));
  }
  answer.EliminateDuplicates(query.with_threshold);
  emit_span.SetOutputRows(answer.NumTuples());
  if (ctx.progress != nullptr) ctx.progress->AddRows(answer.NumTuples());
  return answer;
}

/// Degree of `pred`, which lives in chain block `block_of_pred`, against
/// the per-level tuple slots (single-table blocks, so the table index is
/// always 0). Both endpoints must already be joined (non-null).
double ChainPredicateDegree(const BoundPredicate& pred, size_t block_of_pred,
                            const std::vector<const Tuple*>& tuples,
                            CpuStats* cpu) {
  auto value_of = [&](const BoundOperand& operand) -> const Value& {
    if (!operand.is_column) return operand.constant;
    return tuples[block_of_pred - static_cast<size_t>(operand.column.up)]
        ->ValueAt(operand.column.column);
  };
  if (cpu != nullptr) ++cpu->degree_evaluations;
  return value_of(pred.lhs).Compare(pred.op, value_of(pred.rhs),
                                    pred.approx_tolerance);
}

/// K-level chain queries (Section 8): flat K-way join, with the join
/// order chosen by the interval DP of join_order.h over sampled link
/// selectivities (the paper's "optimal join order ... determined by a
/// dynamic programming method").
Result<Relation> RunChain(const BoundQuery& query, const ParallelContext& ctx,
                          CpuStats* cpu, ExecTrace* trace, bool use_planner,
                          std::vector<size_t>* chosen_order) {
  std::vector<const BoundQuery*> blocks;
  std::vector<const BoundPredicate*> links;  // links[k]: block k -> k+1
  const BoundQuery* block = &query;
  while (true) {
    if (block->tables.size() != 1 || !block->group_by.empty()) {
      return Status::Unsupported("chain block shape");
    }
    if (block->has_with && block != &query && block->with_threshold > 0.0) {
      return Status::Unsupported("inner WITH threshold in chain");
    }
    blocks.push_back(block);
    const BoundPredicate* link = nullptr;
    for (const BoundPredicate& pred : block->predicates) {
      if (pred.subquery != nullptr) {
        if (link != nullptr) return Status::Unsupported("multiple subqueries");
        link = &pred;
      }
    }
    if (link == nullptr) break;
    if (link->kind != Predicate::Kind::kIn || link->negated ||
        !link->lhs.is_column || link->lhs.column.up != 0) {
      return Status::Unsupported("chain link shape");
    }
    links.push_back(link);
    block = link->subquery.get();
  }
  const size_t k_levels = blocks.size();

  // Filtered inputs per level.
  std::vector<std::vector<FT>> filtered(k_levels);
  for (size_t k = 0; k < k_levels; ++k) {
    filtered[k] = FilterBlock(*blocks[k], ctx, cpu, trace);
    FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
    if (filtered[k].empty()) {
      // An empty level zeroes every chain of links below the outermost
      // block; the answer is empty.
      Relation answer("", query.output_schema);
      return answer;
    }
  }

  // Key columns of link edge e (between levels e and e+1).
  auto edge_outer_col = [&](size_t e) { return links[e]->lhs.column.column; };
  auto edge_inner_col = [&](size_t e) {
    return blocks[e + 1]->select[0].column.column;
  };

  // Correlation predicates per block (non-local, non-subquery).
  std::vector<std::vector<const BoundPredicate*>> correlations(k_levels);
  for (size_t k = 0; k < k_levels; ++k) {
    for (const BoundPredicate& pred : blocks[k]->predicates) {
      if (pred.subquery == nullptr && !pred.IsLocal()) {
        correlations[k].push_back(&pred);
      }
    }
  }

  // ---- Join-order planning ------------------------------------------
  // cost_based: per-edge column summaries feed the DP's selectivities,
  // the per-step cardinality estimates, and the merge-vs-nested cost
  // decisions. Otherwise (--no-cbo) the legacy pair-sampling path runs
  // unchanged. Either way any order yields the same fuzzy answer (see
  // join_order.h); the knob trades planning signal only.
  std::vector<size_t> order(k_levels);
  std::iota(order.begin(), order.end(), 0);

  std::vector<ColumnStats> edge_outer_stats;  // filtered[e] at its link col
  std::vector<ColumnStats> edge_inner_stats;  // filtered[e+1] at its key col
  ChainStats est_stats;
  if (ctx.cost_based && k_levels > 1) {
    for (size_t k = 0; k < k_levels; ++k) {
      est_stats.cardinality.push_back(static_cast<double>(filtered[k].size()));
    }
    for (size_t e = 0; e + 1 < k_levels; ++e) {
      edge_outer_stats.push_back(
          BuildKeyStats(filtered[e], edge_outer_col(e)));
      edge_inner_stats.push_back(
          BuildKeyStats(filtered[e + 1], edge_inner_col(e)));
      est_stats.selectivity.push_back(std::max(
          1e-6,
          EstimateJoinSelectivity(edge_outer_stats[e], edge_inner_stats[e])));
    }
  }

  if (use_planner && k_levels > 2 && ctx.cost_based) {
    TraceScope plan_span(trace, "plan-join-order", cpu, nullptr,
                         "levels=" + std::to_string(k_levels));
    order = PlanChainJoinOrder(est_stats).levels;
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->planner_plans->Add();
    }
  } else if (use_planner && k_levels > 2) {
    TraceScope plan_span(trace, "plan-join-order", cpu, nullptr,
                         "levels=" + std::to_string(k_levels));
    ChainStats stats;
    for (size_t k = 0; k < k_levels; ++k) {
      stats.cardinality.push_back(static_cast<double>(filtered[k].size()));
    }
    for (size_t e = 0; e + 1 < k_levels; ++e) {
      // Deterministic stride sample of pairs; count positive link (and
      // adjacent correlation) degrees.
      const auto& left = filtered[e];
      const auto& right = filtered[e + 1];
      const size_t samples = 24;
      const size_t lstep = std::max<size_t>(1, left.size() / samples);
      const size_t rstep = std::max<size_t>(1, right.size() / samples);
      size_t total = 0, positive = 0;
      for (size_t i = 0; i < left.size(); i += lstep) {
        for (size_t j = 0; j < right.size(); j += rstep) {
          ++total;
          double d = left[i].tuple->ValueAt(edge_outer_col(e))
                         .Compare(CompareOp::kEq,
                                  right[j].tuple->ValueAt(edge_inner_col(e)));
          for (const BoundPredicate* pred : correlations[e + 1]) {
            if (d <= 0.0) break;
            if (pred->lhs.column.up > 1 ||
                (pred->rhs.is_column && pred->rhs.column.up > 1)) {
              continue;  // skip-level correlation: not estimable pairwise
            }
            std::vector<const Tuple*> slots(e + 2, nullptr);
            slots[e] = left[i].tuple;
            slots[e + 1] = right[j].tuple;
            d = std::min(d, ChainPredicateDegree(*pred, e + 1, slots, nullptr));
          }
          positive += d > 0.0;
        }
      }
      stats.selectivity.push_back(
          std::max(1e-6, static_cast<double>(positive) /
                             static_cast<double>(std::max<size_t>(1, total))));
    }
    order = PlanChainJoinOrder(stats).levels;
  }
  if (chosen_order != nullptr) *chosen_order = order;

  // ---- Execution in the chosen contiguous order ----------------------
  struct Row {
    std::vector<const Tuple*> tuples;  // one slot per level; null = unjoined
    double degree;
  };

  std::vector<Row> rows;
  size_t joined_lo = order[0], joined_hi = order[0];
  for (const FT& ft : filtered[order[0]]) {
    Row row{std::vector<const Tuple*>(k_levels, nullptr), ft.degree};
    row.tuples[order[0]] = ft.tuple;
    rows.push_back(std::move(row));
  }

  for (size_t step = 1; step < k_levels; ++step) {
    const size_t level = order[step];
    TraceScope step_span(trace, "chain-join", cpu, nullptr,
                         "level=" + std::to_string(level));
    step_span.SetInputRows(rows.size());
    PhaseScope step_phase(ctx.progress, QueryPhase::kJoin);
    const bool extend_left = level + 1 == joined_lo;
    if (!extend_left && level != joined_hi + 1) {
      return Status::Internal("non-contiguous chain join order");
    }
    const size_t edge = extend_left ? level : joined_hi;
    // Row-side and new-side key columns for this edge.
    const size_t row_level = extend_left ? edge + 1 : edge;
    const size_t row_col =
        extend_left ? edge_inner_col(edge) : edge_outer_col(edge);
    const size_t new_col =
        extend_left ? edge_outer_col(edge) : edge_inner_col(edge);

    std::vector<FT> incoming = filtered[level];

    // Predicates becoming evaluable with this level joined: those of
    // block b referencing block b-up, where one endpoint is `level` and
    // the other is already joined.
    std::vector<std::pair<const BoundPredicate*, size_t>> newly_applicable;
    for (size_t b = 0; b < k_levels; ++b) {
      for (const BoundPredicate* pred : correlations[b]) {
        const int up = pred->lhs.is_column && pred->lhs.column.up > 0
                           ? pred->lhs.column.up
                           : pred->rhs.column.up;
        const size_t other = b - static_cast<size_t>(up);
        const bool involves_level = b == level || other == level;
        if (!involves_level) continue;
        const size_t partner = b == level ? other : b;
        if (partner >= joined_lo && partner <= joined_hi) {
          newly_applicable.emplace_back(pred, b);
        }
      }
    }

    std::vector<Row> joined;
    auto join_pair = [&](const Row& row, const FT& s) -> Status {
      double d = std::min(row.degree, s.degree);
      if (d <= 0.0) return Status::OK();
      if (cpu != nullptr) ++cpu->degree_evaluations;
      d = std::min(d, row.tuples[row_level]->ValueAt(row_col).Compare(
                          CompareOp::kEq, s.tuple->ValueAt(new_col)));
      if (d <= 0.0) return Status::OK();
      Row next = row;
      next.tuples[level] = s.tuple;
      for (const auto& [pred, b] : newly_applicable) {
        if (d <= 0.0) break;
        d = std::min(d, ChainPredicateDegree(*pred, b, next.tuples, cpu));
      }
      if (d <= 0.0) return Status::OK();
      next.degree = d;
      joined.push_back(std::move(next));
      return Status::OK();
    };

    auto rows_key_fuzzy = [&]() {
      for (const Row& row : rows) {
        if (!row.tuples[row_level]->ValueAt(row_col).is_fuzzy()) return false;
      }
      return true;
    };

    // Step planning. Fixed rule: merge whenever both key columns are
    // fuzzy. Cost-based: among the legal algorithms, the cheaper one
    // under the cost model, with the expected windowed pairs predicted
    // from the edge's column summaries; the span gets the interval's
    // estimated output cardinality for the q-error loop.
    const bool merge_legal =
        rows_key_fuzzy() && ColumnIsFuzzy(incoming, new_col);
    bool use_merge = merge_legal;
    uint64_t step_est = TraceNode::kNoCount;
    if (ctx.cost_based && !edge_outer_stats.empty()) {
      const ColumnStats& from_stats =
          extend_left ? edge_inner_stats[edge] : edge_outer_stats[edge];
      const ColumnStats& to_stats =
          extend_left ? edge_outer_stats[edge] : edge_inner_stats[edge];
      const double est_pairs =
          static_cast<double>(rows.size()) *
          EstimateOverlapFanout(from_stats, to_stats);
      if (merge_legal) {
        use_merge = ChooseChainStepAlgorithm(rows.size(), incoming.size(),
                                             est_pairs, true) ==
                    JoinAlgorithm::kMergeWindow;
      }
      if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
        (use_merge ? m->planner_merge_steps : m->planner_nested_steps)->Add();
      }
      if (step_span.enabled()) {
        step_est = RoundEstimate(EstimateIntervalSize(
            est_stats, std::min(joined_lo, level),
            std::max(joined_hi, level)));
        step_span.SetEstimatedRows(step_est);
        step_span.SetDetail("level=" + std::to_string(level) +
                            (use_merge ? " alg=merge" : " alg=nested"));
      }
    }

    if (use_merge) {
      std::sort(rows.begin(), rows.end(), [&](const Row& x, const Row& y) {
        if (cpu != nullptr) ++cpu->comparisons;
        return IntervalOrderLess(
            x.tuples[row_level]->ValueAt(row_col).AsFuzzy(),
            y.tuples[row_level]->ValueAt(row_col).AsFuzzy());
      });
      SortByIntervalOrder(&incoming, new_col, ctx, cpu, trace,
                          blocks[level]->tables[0].relation);
      size_t window_start = 0;
      for (const Row& row : rows) {
        FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
        const Trapezoid& rk =
            row.tuples[row_level]->ValueAt(row_col).AsFuzzy();
        while (window_start < incoming.size()) {
          const Trapezoid& sk =
              incoming[window_start].tuple->ValueAt(new_col).AsFuzzy();
          if (cpu != nullptr) ++cpu->comparisons;
          if (sk.SupportEnd() < rk.SupportBegin()) {
            ++window_start;
          } else {
            break;
          }
        }
        for (size_t i = window_start; i < incoming.size(); ++i) {
          const Trapezoid& sk = incoming[i].tuple->ValueAt(new_col).AsFuzzy();
          if (cpu != nullptr) ++cpu->comparisons;
          if (sk.SupportBegin() > rk.SupportEnd()) break;
          if (cpu != nullptr) ++cpu->tuple_pairs;
          FUZZYDB_RETURN_IF_ERROR(join_pair(row, incoming[i]));
        }
      }
    } else {
      for (const Row& row : rows) {
        FUZZYDB_RETURN_IF_ERROR(CheckQuery(ctx.query));
        for (const FT& s : incoming) {
          if (cpu != nullptr) ++cpu->tuple_pairs;
          FUZZYDB_RETURN_IF_ERROR(join_pair(row, s));
        }
      }
    }
    rows = std::move(joined);
    step_span.SetOutputRows(rows.size());
    if (step_est != TraceNode::kNoCount) RecordQError(step_est, rows.size());
    joined_lo = std::min(joined_lo, level);
    joined_hi = std::max(joined_hi, level);
  }

  TraceScope emit_span(trace, "emit", cpu, nullptr);
  emit_span.SetInputRows(rows.size());
  PhaseScope emit_phase(ctx.progress, QueryPhase::kEmit);
  Relation answer("", query.output_schema);
  for (const Row& row : rows) {
    FUZZYDB_RETURN_IF_ERROR(
        EmitAnswer(query, *row.tuples[0], row.degree, &answer));
  }
  answer.EliminateDuplicates(query.with_threshold);
  emit_span.SetOutputRows(answer.NumTuples());
  if (ctx.progress != nullptr) ctx.progress->AddRows(answer.NumTuples());
  return answer;
}

}  // namespace

UnnestingEvaluator::UnnestingEvaluator(CpuStats* cpu) : cpu_(cpu) {}

UnnestingEvaluator::UnnestingEvaluator(const ExecOptions& options,
                                       CpuStats* cpu)
    : cpu_(cpu), options_(options) {}

UnnestingEvaluator::~UnnestingEvaluator() = default;

ParallelContext UnnestingEvaluator::MakeContext() {
  ParallelContext ctx;
  ctx.query = options_.context;
  ctx.cache = options_.cache;
  ctx.morsel_size = options_.morsel_size == 0 ? 1 : options_.morsel_size;
  ctx.batch_size = options_.batch_size;
  ctx.cost_based = options_.cost_based;
  ctx.progress = options_.progress;
  const size_t threads = options_.ResolvedThreads();
  if (threads > 1) {
    if (pool_ == nullptr || pool_->size() != threads) {
      pool_ = std::make_unique<ThreadPool>(threads);
    }
    ctx.pool = pool_.get();
  } else {
    pool_.reset();
  }
  return ctx;
}

Result<Relation> UnnestingEvaluator::Evaluate(const sql::BoundQuery& query) {
  // When the slow-query log or the query journal is armed but the caller
  // didn't ask for a trace, attach a private one for the duration of the
  // query so the EXPLAIN ANALYZE tree (slow log) and the planner's
  // est_rows (journal) are still captured.
  ExecTrace local_trace;
  ExecTrace* const saved_trace = options_.trace;
  const bool slow_log_armed = options_.slow_query_ms > 0.0;
  const bool journal_armed = QueryJournal::Global().enabled();
  if ((slow_log_armed || journal_armed) && options_.trace == nullptr) {
    options_.trace = &local_trace;
  }
  // The journal reports the query's own CpuStats delta; when the caller
  // supplied no accumulator, tally into a private one for the duration.
  CpuStats local_cpu;
  CpuStats* const saved_cpu = cpu_;
  if (journal_armed && cpu_ == nullptr) cpu_ = &local_cpu;
  const CpuStats cpu_before = cpu_ == nullptr ? CpuStats{} : *cpu_;
  uint64_t cache_hits_before = 0;
  uint64_t cache_misses_before = 0;
  if (journal_armed) {
    EngineMetrics* m = EngineMetrics::Instance();
    cache_hits_before = m->cache_hits->Value();
    cache_misses_before = m->cache_misses->Value();
  }
  Stopwatch watch;
  Result<Relation> result = [&] {
    // kPlan is the residual phase: everything EvaluateTraced does
    // outside an operator's own PhaseScope (classification, planning,
    // cache lookups) is charged here, so the phases sum to wall time.
    PhaseScope plan_phase(options_.progress, QueryPhase::kPlan);
    return EvaluateTraced(query);
  }();
  const double elapsed_ms = watch.ElapsedSeconds() * 1e3;

  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->queries_total->Add();
    m->query_latency_us->Record(static_cast<uint64_t>(elapsed_ms * 1e3));
    if (!last_was_unnested_) m->queries_naive_fallback->Add();
    if (!result.ok()) {
      m->queries_failed->Add();
      switch (result.status().code()) {
        case StatusCode::kCancelled:
          m->queries_cancelled->Add();
          break;
        case StatusCode::kDeadlineExceeded:
          m->queries_deadline_exceeded->Add();
          break;
        case StatusCode::kResourceExhausted:
          m->queries_resource_exhausted->Add();
          break;
        default:
          break;
      }
    }
    if (options_.context != nullptr) {
      const uint64_t denied = options_.context->memory().denied_bytes();
      if (denied > 0) m->budget_denied_bytes->Add(denied);
    }
  }
  if (slow_log_armed && elapsed_ms >= options_.slow_query_ms) {
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->slow_queries->Add();
    }
    SlowQueryLog::Entry entry;
    entry.query_text = options_.query_text;
    entry.elapsed_ms = elapsed_ms;
    // All spans are closed here (EvaluateTraced returned), so the
    // rendered tree is complete even for failed queries.
    entry.trace_text = options_.trace->ToString();
    SlowQueryLog::Global().Add(std::move(entry));
  }
  if (journal_armed) {
    QueryJournalRecord rec;
    rec.query_id =
        options_.progress == nullptr ? 0 : options_.progress->query_id();
    rec.sql = options_.query_text;
    rec.fingerprint =
        PlanFingerprint(query, /*include_threshold=*/true, nullptr);
    rec.type = QueryTypeName(last_type_);
    rec.engine = last_was_unnested_ ? "unnested" : "naive-fallback";
    switch (result.status().code()) {
      case StatusCode::kOk:
        rec.status = "OK";
        break;
      case StatusCode::kCancelled:
        rec.status = "CANCELLED";
        break;
      case StatusCode::kDeadlineExceeded:
        rec.status = "DEADLINE_EXCEEDED";
        break;
      case StatusCode::kResourceExhausted:
        rec.status = "RESOURCE_EXHAUSTED";
        break;
      default:
        rec.status = "FAILED";
        break;
    }
    if (result.ok()) rec.rows = result.value().NumTuples();
    // The planner's top-most cardinality estimate: the first estimated
    // span in preorder (nodes() append in open order).
    if (options_.trace != nullptr) {
      for (const TraceNode& node : options_.trace->nodes()) {
        if (node.est_rows != TraceNode::kNoCount) {
          rec.has_est_rows = true;
          rec.est_rows = node.est_rows;
          break;
        }
      }
    }
    rec.elapsed_ms = elapsed_ms;
    rec.threads = options_.ResolvedThreads();
    if (options_.progress != nullptr) {
      rec.queue_wait_ms = options_.progress->queue_wait_micros() / 1e3;
      for (size_t i = 0; i < kNumQueryPhases; ++i) {
        rec.phase_micros[i] =
            options_.progress->PhaseMicros(static_cast<QueryPhase>(i));
      }
    }
    if (cpu_ != nullptr) rec.cpu = cpu_->CheckedDelta(cpu_before);
    if (options_.context != nullptr) {
      rec.mem_peak_bytes =
          static_cast<int64_t>(options_.context->memory().peak());
    }
    EngineMetrics* m = EngineMetrics::Instance();
    rec.cache_hits = m->cache_hits->Value() - cache_hits_before;
    rec.cache_misses = m->cache_misses->Value() - cache_misses_before;
    QueryJournal::Global().Append(rec);
  }
  cpu_ = saved_cpu;
  options_.trace = saved_trace;
  return result;
}

Result<Relation> UnnestingEvaluator::EvaluateTraced(
    const sql::BoundQuery& query) {
  // A pre-cancelled or already-expired context never starts executing.
  FUZZYDB_RETURN_IF_ERROR(CheckQuery(options_.context));
  last_type_ = Classify(query);
  last_was_unnested_ = true;
  TraceScope span(options_.trace, "evaluate", cpu_, nullptr,
                  QueryTypeName(last_type_));
  // Whole-query result cache with theta-subsumption: the key excludes the
  // WITH threshold, so one entry (stored at the threshold it was computed
  // at) answers any repeat of the query at an equal or higher threshold
  // by re-filtering. Filtering a deduplicated answer upward is exact:
  // EliminateDuplicates keeps max degrees independently of the threshold,
  // and ApplyThreshold preserves order, so the filtered copy is
  // tuple-for-tuple what a fresh evaluation would produce.
  std::string cache_key;
  std::vector<uint64_t> cache_deps;
  const double theta = query.has_with ? query.with_threshold : 0.0;
  if (options_.cache != nullptr && options_.cache->enabled()) {
    cache_key = "qres|" + PlanFingerprint(query, /*include_threshold=*/false,
                                          &cache_deps);
    if (auto cached = options_.cache->LookupResult(cache_key, theta)) {
      Relation answer = *cached;
      answer.ApplyThreshold(theta);
      last_chain_order_.clear();
      span.SetDetail(std::string(QueryTypeName(last_type_)) + " (cached)");
      span.SetOutputRows(answer.NumTuples());
      return answer;
    }
  }
  Result<Relation> result = EvaluateInType(query, last_type_);
  // Only kUnsupported falls back to the naive evaluator; governance
  // statuses (CANCELLED / DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED) and
  // I/O errors surface as-is.
  if (!result.ok() && result.status().code() == StatusCode::kUnsupported) {
    last_was_unnested_ = false;
    NaiveEvaluator naive(cpu_, options_.trace, options_.context);
    Result<Relation> fallback = naive.Evaluate(query);  // applies ORDER BY
    if (fallback.ok()) span.SetOutputRows(fallback.value().NumTuples());
    return fallback;
  }
  if (result.ok()) {
    ApplyOrderBy(query.order_by, &result.value());
    span.SetOutputRows(result.value().NumTuples());
    // Only unnested successes are cached: the fallback already has its
    // own cost profile and re-classification is deterministic, so a
    // future hit can only occur for a query this evaluator answered.
    if (!cache_key.empty() && last_was_unnested_) {
      options_.cache->InsertResult(cache_key, theta,
                                   std::make_shared<Relation>(result.value()),
                                   std::move(cache_deps), options_.context);
    }
  }
  return result;
}

Result<Relation> UnnestingEvaluator::EvaluateInType(
    const sql::BoundQuery& query, QueryType type) {
  switch (type) {
    case QueryType::kFlat:
    case QueryType::kGeneral:
      return Status::Unsupported("no unnested plan for this type");
    case QueryType::kTypeN:
    case QueryType::kTypeJ:
    case QueryType::kTypeNX:
    case QueryType::kTypeJX:
    case QueryType::kTypeSOME:
    case QueryType::kTypeJSOME:
    case QueryType::kTypeALL:
    case QueryType::kTypeJALL:
    case QueryType::kTypeEXISTS:
    case QueryType::kTypeJEXISTS:
    case QueryType::kTypeA:
    case QueryType::kTypeJA:
    case QueryType::kTypeMulti:
      return RunTwoLevel(query, MakeContext(), cpu_, options_.trace);
    case QueryType::kChain:
      last_chain_order_.clear();
      return RunChain(query, MakeContext(), cpu_, options_.trace,
                      use_join_order_planner_, &last_chain_order_);
  }
  return Status::Internal("unhandled query type");
}

}  // namespace fuzzydb
