#include "engine/exec_stats.h"

#include <cstdio>

namespace fuzzydb {

std::string ExecStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "time=%.3fs (sort=%.3fs join=%.3fs cpu=%.3fs) io={reads=%llu "
      "writes=%llu hits=%llu} cpu={pairs=%llu degrees=%llu cmp=%llu "
      "subq=%llu}",
      total_seconds, sort_seconds, join_seconds, cpu_seconds,
      static_cast<unsigned long long>(io.page_reads),
      static_cast<unsigned long long>(io.page_writes),
      static_cast<unsigned long long>(io.buffer_hits),
      static_cast<unsigned long long>(cpu.tuple_pairs),
      static_cast<unsigned long long>(cpu.degree_evaluations),
      static_cast<unsigned long long>(cpu.comparisons),
      static_cast<unsigned long long>(cpu.subquery_evaluations));
  return buf;
}

}  // namespace fuzzydb
