#include "engine/cost_model.h"

#include <algorithm>
#include <cmath>

#include "storage/page.h"

namespace fuzzydb {

namespace {

/// n log2 n with the degenerate cases pinned at zero.
double NLogN(uint64_t n) {
  if (n < 2) return 0.0;
  const double d = static_cast<double>(n);
  return d * std::log2(d);
}

double Pages(uint64_t pages) { return static_cast<double>(pages); }

}  // namespace

double CostExternalSort(uint64_t rows, uint64_t pages, size_t buffer_pages,
                        const CostWeights& w) {
  if (rows == 0 || pages == 0) return 0.0;
  const double m = static_cast<double>(std::max<size_t>(2, buffer_pages));
  // Run generation reads and writes every page once; each k-way merge
  // pass (fan-in M - 1) does the same until one run remains.
  const double runs = std::ceil(Pages(pages) / m);
  double passes = 1.0;  // run generation
  for (double r = runs; r > 1.0; r = std::ceil(r / (m - 1.0))) passes += 1.0;
  const double io = 2.0 * Pages(pages) * passes * w.page_io_us;
  const double cmp = NLogN(rows) * w.comparison_us;
  // Every pass but the last materializes intermediate runs on disk.
  const double spill = std::max(0.0, passes - 1.0) * Pages(pages) *
                       static_cast<double>(kPageSize) * w.spill_byte_us;
  return io + cmp + spill;
}

double CostFileNestedLoop(uint64_t outer_rows, uint64_t outer_pages,
                          uint64_t inner_rows, uint64_t inner_pages,
                          size_t buffer_pages, const CostWeights& w) {
  const double m = static_cast<double>(std::max<size_t>(2, buffer_pages));
  // b_R + ceil(b_R / (M - 1)) * b_S page reads (block nested loop).
  const double blocks = std::ceil(Pages(outer_pages) / (m - 1.0));
  const double io =
      (Pages(outer_pages) + blocks * Pages(inner_pages)) * w.page_io_us;
  const double degrees = static_cast<double>(outer_rows) *
                         static_cast<double>(inner_rows) * w.degree_eval_us;
  return io + degrees;
}

double CostFileMergeJoin(uint64_t outer_rows, uint64_t outer_pages,
                         uint64_t inner_rows, uint64_t inner_pages,
                         size_t buffer_pages, double fanout,
                         const CostWeights& w) {
  const double sorts =
      CostExternalSort(outer_rows, outer_pages, buffer_pages, w) +
      CostExternalSort(inner_rows, inner_pages, buffer_pages, w);
  // One sequential scan of each sorted file; when the largest window
  // fits in the buffer every inner page is fetched at most once.
  const double io =
      (Pages(outer_pages) + Pages(inner_pages)) * w.page_io_us;
  const double degrees =
      static_cast<double>(outer_rows) * std::max(0.0, fanout) *
      w.degree_eval_us;
  return sorts + io + degrees;
}

double CostFilePartitionedJoin(uint64_t outer_rows, uint64_t outer_pages,
                               uint64_t inner_rows, uint64_t inner_pages,
                               double fanout, double replication,
                               const CostWeights& w) {
  const double repl = std::max(1.0, replication);
  // Read both inputs, write both partitioned (replicated) copies, read
  // them back for the per-partition joins: ~3x the page traffic.
  const double base = Pages(outer_pages) + Pages(inner_pages);
  const double io = (base + 2.0 * repl * base) * w.page_io_us;
  const double spill = repl * base * static_cast<double>(kPageSize) *
                       w.spill_byte_us;
  // Within matched partitions the pairs examined shrink to roughly the
  // windowed pairs, inflated by boundary replication.
  const double degrees = static_cast<double>(outer_rows) *
                         std::max(0.0, fanout) * repl * w.degree_eval_us;
  (void)inner_rows;
  return io + spill + degrees;
}

JoinAlgorithm ChooseFileJoinAlgorithm(uint64_t outer_rows,
                                      uint64_t outer_pages,
                                      uint64_t inner_rows,
                                      uint64_t inner_pages,
                                      size_t buffer_pages, double fanout,
                                      double replication,
                                      const CostWeights& w) {
  const double nested = CostFileNestedLoop(outer_rows, outer_pages,
                                           inner_rows, inner_pages,
                                           buffer_pages, w);
  const double merge = CostFileMergeJoin(outer_rows, outer_pages, inner_rows,
                                         inner_pages, buffer_pages, fanout, w);
  const double part =
      CostFilePartitionedJoin(outer_rows, outer_pages, inner_rows,
                              inner_pages, fanout, replication, w);
  // Deterministic tie-break: merge, then partitioned, then nested loop
  // (the order of increasing implementation restrictions).
  if (merge <= part && merge <= nested) return JoinAlgorithm::kMergeWindow;
  if (part <= nested) return JoinAlgorithm::kPartitioned;
  return JoinAlgorithm::kNestedLoop;
}

double CostChainNestedStep(uint64_t rows, uint64_t incoming,
                           const CostWeights& w) {
  return static_cast<double>(rows) * static_cast<double>(incoming) *
         w.degree_eval_us;
}

double CostChainMergeStep(uint64_t rows, uint64_t incoming, double est_pairs,
                          const CostWeights& w) {
  // Both sides are sorted by interval order in memory (no IO), then the
  // window replay touches only the estimated overlapping pairs.
  const double sort_cmp = (NLogN(rows) + NLogN(incoming)) * w.comparison_us;
  return sort_cmp + std::max(0.0, est_pairs) * w.degree_eval_us;
}

JoinAlgorithm ChooseChainStepAlgorithm(uint64_t rows, uint64_t incoming,
                                       double est_pairs, bool merge_legal,
                                       const CostWeights& w) {
  if (!merge_legal) return JoinAlgorithm::kNestedLoop;
  const double merge = CostChainMergeStep(rows, incoming, est_pairs, w);
  const double nested = CostChainNestedStep(rows, incoming, w);
  return merge <= nested ? JoinAlgorithm::kMergeWindow
                         : JoinAlgorithm::kNestedLoop;
}

}  // namespace fuzzydb
