// Classification of nested Fuzzy SQL queries into the paper's types.
//
// Section 4: type N (uncorrelated IN) and type J (correlated IN);
// Section 5: type JX (correlated NOT IN; NX is its uncorrelated version);
// Section 6: type JA (correlated aggregate subquery; type A uncorrelated);
// Section 7: type JALL (correlated op ALL; JSOME for op SOME);
// Section 8: K-level chain queries (nested INs with correlation
// predicates referencing enclosing blocks).
#ifndef FUZZYDB_ENGINE_CLASSIFIER_H_
#define FUZZYDB_ENGINE_CLASSIFIER_H_

#include <string>

#include "sql/binder.h"

namespace fuzzydb {

enum class QueryType {
  kFlat,     // no subquery
  kTypeN,    // IN, inner block uncorrelated
  kTypeJ,    // IN, inner block correlated
  kTypeNX,   // NOT IN, uncorrelated
  kTypeJX,   // NOT IN, correlated
  kTypeA,    // aggregate subquery, uncorrelated
  kTypeJA,   // aggregate subquery, correlated
  kTypeALL,  // op ALL, uncorrelated
  kTypeJALL, // op ALL, correlated
  kTypeSOME, // op SOME, uncorrelated
  kTypeJSOME,// op SOME, correlated
  kTypeEXISTS,  // [NOT] EXISTS, uncorrelated
  kTypeJEXISTS, // [NOT] EXISTS, correlated
  kTypeMulti,   // several independent subquery predicates, each of a
                // 2-level type (an extension beyond the paper's catalog)
  kChain,    // K-level chain query (Section 8)
  kGeneral,  // anything else (evaluated naively)
};

const char* QueryTypeName(QueryType type);

/// Classifies a bound query.
///
/// The specific 2-level types require: exactly one subquery predicate in
/// the outer block, a subquery with no further nesting, and correlation
/// predicates (if any) that are simple comparisons referencing the
/// immediately enclosing block. kChain covers nesting depth >= 2 composed
/// purely of IN subqueries whose correlation predicates may reference any
/// enclosing block. Everything else classifies as kGeneral.
QueryType Classify(const sql::BoundQuery& query);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_CLASSIFIER_H_
