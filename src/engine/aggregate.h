// Fuzzy SQL aggregate functions (Section 6 of the paper).
//
// Aggregates apply to a *fuzzy set* of values (a single-column relation
// with membership degrees):
//  - COUNT returns the number of (distinct) values in the fuzzy set;
//  - SUM / AVG use fuzzy interval arithmetic on the 0-cuts and 1-cuts;
//  - MIN / MAX rank fuzzy values by the defuzzified center of their 1-cut
//    and return the extremal fuzzy value itself;
//  - over an empty set, COUNT yields 0 and the others yield NULL.
// The result's membership degree D(A) is 1, as in Fuzzy SQL [23].
#ifndef FUZZYDB_ENGINE_AGGREGATE_H_
#define FUZZYDB_ENGINE_AGGREGATE_H_

#include "common/status.h"
#include "relational/relation.h"
#include "sql/ast.h"

namespace fuzzydb {

/// The result of applying an aggregate: a value plus its degree D(A).
struct AggregateResult {
  Value value;         // NULL for non-COUNT aggregates over empty sets
  double degree = 1.0; // D(A(r)); 1.0 in Fuzzy SQL
};

/// Applies `func` to the fuzzy set held in the single-column relation
/// `set` (degrees are the set memberships; duplicates should have been
/// eliminated by the caller). Fails on non-numeric values.
Result<AggregateResult> ApplyAggregate(sql::AggFunc func,
                                       const Relation& set);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_AGGREGATE_H_
