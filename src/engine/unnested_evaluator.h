// The unnesting evaluator: the paper's contribution.
//
// Nested Fuzzy SQL queries of the types catalogued in Sections 4-8 are
// transformed into flat plans evaluated with the extended merge-join of
// Section 3 (inputs sorted on the interval order of Definition 3.1; for
// each outer tuple only the window Rng(r) of Definition 3.2 is scanned):
//
//   type N  (Sec. 4, Thm 4.1): flat equijoin R'.Y = S'.Z
//   type J  (Sec. 4, Thm 4.2): flat join on the linking predicate with
//            the correlation predicate(s) as residuals
//   type JX (Sec. 5, Thm 5.1): group-by-minimum antijoin
//            d_r = min(mu_R(r), 1 - max_s min(mu_S(s), d(corr), d(Y=Z)))
//   type JA (Sec. 6, Thm 6.1): T1 (distinct R.U) |x| S grouped+aggregated
//            into T2, back-joined to R by binary value identity; the
//            COUNT variant left-outer-joins with the IF-THEN-ELSE arm
//            d(r.Y op 0) for unmatched tuples
//   type JALL (Sec. 7, Thm 7.1): group-by-minimum with the negated
//            comparison, d_r = min(mu_R(r), 1 - max_s min(mu_S(s),
//            d(corr), 1 - d(Y op Z)))
//   chain queries (Sec. 8, Thm 8.1): left-deep K-way flat join over the
//            linking predicates with all correlation predicates as
//            residuals
//
// Queries outside these classes (QueryType::kGeneral), and inner blocks
// using WITH thresholds, fall back to the naive evaluator -- results are
// always correct; only the strategy differs.
#ifndef FUZZYDB_ENGINE_UNNESTED_EVALUATOR_H_
#define FUZZYDB_ENGINE_UNNESTED_EVALUATOR_H_

#include <memory>

#include "common/status.h"
#include "engine/classifier.h"
#include "engine/exec_options.h"
#include "engine/exec_stats.h"
#include "relational/relation.h"
#include "sql/binder.h"

namespace fuzzydb {

class ThreadPool;
struct ParallelContext;

/// Evaluates bound queries by unnesting.
class UnnestingEvaluator {
 public:
  explicit UnnestingEvaluator(CpuStats* cpu = nullptr);
  explicit UnnestingEvaluator(const ExecOptions& options,
                              CpuStats* cpu = nullptr);
  ~UnnestingEvaluator();

  /// Classifies `query` and runs the matching unnested plan. Falls back
  /// to the naive evaluator for kGeneral (and for shapes a handler cannot
  /// accelerate, e.g. inner WITH thresholds).
  Result<Relation> Evaluate(const sql::BoundQuery& query);

  /// The strategy chosen by the last Evaluate() call.
  QueryType last_type() const { return last_type_; }
  /// True when the last call was answered by an unnested plan (not the
  /// naive fallback).
  bool last_was_unnested() const { return last_was_unnested_; }

  /// Chain queries: whether to pick the join order with the sampled-
  /// selectivity dynamic program (Section 8's suggestion; default on) or
  /// to join levels outermost-to-innermost.
  void set_use_join_order_planner(bool on) { use_join_order_planner_ = on; }
  /// The level order used by the last chain evaluation (empty otherwise).
  const std::vector<size_t>& last_chain_order() const {
    return last_chain_order_;
  }

  /// Parallelism knobs. Results and CpuStats are identical for every
  /// thread count (the morsel decomposition is fixed; see
  /// parallel/parallel_for.h); num_threads = 1 runs serially.
  void set_exec_options(const ExecOptions& options) { options_ = options; }
  const ExecOptions& exec_options() const { return options_; }

 private:
  /// Evaluate() minus the cross-query accounting: runs under the
  /// "evaluate" trace span; Evaluate() wraps it with the metrics-registry
  /// counters, the latency histogram, and the slow-query log.
  Result<Relation> EvaluateTraced(const sql::BoundQuery& query);
  Result<Relation> EvaluateInType(const sql::BoundQuery& query,
                                  QueryType type);

  /// The ParallelContext for one evaluation; lazily builds the worker
  /// pool when options_ asks for more than one thread.
  ParallelContext MakeContext();

  CpuStats* cpu_;
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  bool use_join_order_planner_ = true;
  QueryType last_type_ = QueryType::kGeneral;
  bool last_was_unnested_ = false;
  std::vector<size_t> last_chain_order_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_UNNESTED_EVALUATOR_H_
