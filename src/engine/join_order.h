// Join-order selection for unnested chain queries.
//
// Section 8 of the paper: "To evaluate Query Q'_K, an optimal join order
// may be determined by using, say, a dynamic programming [35] method, to
// minimize the sizes of the intermediate relations."
//
// The flat form of a chain query joins R_1 - R_2 - ... - R_K along
// linking predicates between adjacent levels only, so the join graph is a
// path. Left-deep orders that avoid cross products are exactly the
// *contiguous extension* orders: start at some level, then repeatedly
// extend the joined interval one level to the left or right. This module
//
//   1. estimates each link's selectivity by sampling tuple pairs, and
//   2. runs an interval dynamic program minimizing the summed sizes of
//      the intermediate relations,
//
// returning the sequence of levels to join. Any order yields the same
// fuzzy answer (min is commutative/associative and dedup is max); only
// the intermediate sizes differ.
#ifndef FUZZYDB_ENGINE_JOIN_ORDER_H_
#define FUZZYDB_ENGINE_JOIN_ORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fuzzydb {

/// Estimated statistics of a chain query's flat join.
struct ChainStats {
  /// Filtered cardinality of each level, |R'_k|.
  std::vector<double> cardinality;
  /// selectivity[k]: fraction of (R'_k, R'_{k+1}) pairs with a positive
  /// combined link + adjacent-correlation degree. Size K-1.
  std::vector<double> selectivity;
};

/// The chosen order: levels[0] is the starting level; every subsequent
/// entry is adjacent to the interval joined so far. `estimated_cost` is
/// the DP's sum of intermediate sizes.
struct ChainJoinOrder {
  std::vector<size_t> levels;
  double estimated_cost = 0.0;
};

/// Interval DP over contiguous extension orders. `stats.cardinality`
/// must be non-empty and `stats.selectivity` one element shorter.
ChainJoinOrder PlanChainJoinOrder(const ChainStats& stats);

/// Estimated number of tuples of the join of levels [lo, hi]:
/// prod(card) * prod(selectivity of internal links).
double EstimateIntervalSize(const ChainStats& stats, size_t lo, size_t hi);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_JOIN_ORDER_H_
