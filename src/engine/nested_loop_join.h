// The (block) nested-loop join over heap files: the paper's baseline.
//
// Buffer policy from Section 9: "one buffer page is allocated to the
// inner relation and the rest to the outer relation in order to minimize
// I/O cost" -- the outer file is read once in blocks of (M - 1) pages and
// the inner file is re-scanned once per outer block, giving the
// b_R + ceil(b_R / (M-1)) * b_S I/O cost of Section 3.
#ifndef FUZZYDB_ENGINE_NESTED_LOOP_JOIN_H_
#define FUZZYDB_ENGINE_NESTED_LOOP_JOIN_H_

#include "common/status.h"
#include "engine/merge_join.h"  // FuzzyJoinSpec, JoinEmit

namespace fuzzydb {

/// Runs the block nested-loop join of `spec` with `buffer_pages` total
/// buffer pages (>= 2). Emits every pair with positive combined degree.
/// Page traffic is charged to `io`. With `trace` set, records a
/// "nested-loop-join" span. With `query` set, cancellation/deadline are
/// polled once per inner tuple and each resident outer block is charged
/// against the memory budget.
Status FileNestedLoopJoin(PageFile* outer, PageFile* inner, IoStats* io,
                          size_t buffer_pages, const FuzzyJoinSpec& spec,
                          CpuStats* cpu, const JoinEmit& emit,
                          ExecTrace* trace = nullptr,
                          QueryContext* query = nullptr);

}  // namespace fuzzydb

#endif  // FUZZYDB_ENGINE_NESTED_LOOP_JOIN_H_
