#include "relational/schema.h"

#include "common/string_util.h"

namespace fuzzydb {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::Has(const std::string& name) const {
  return IndexOf(name).ok();
}

Status Schema::AddColumn(Column column) {
  if (Has(column.name)) {
    return Status::AlreadyExists("column '" + column.name +
                                 "' already exists");
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace fuzzydb
