// Relation schemas.
#ifndef FUZZYDB_RELATIONAL_SCHEMA_H_
#define FUZZYDB_RELATIONAL_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace fuzzydb {

/// One attribute of a relation.
struct Column {
  std::string name;
  ValueType type = ValueType::kFuzzy;
};

/// An ordered list of named, typed attributes. Every fuzzy relation
/// additionally carries the system-supplied membership-degree attribute D
/// (Section 2.2), which lives on the Tuple, not in the Schema.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> columns) : columns_(columns) {}
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& ColumnAt(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given (case-insensitive) name.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if a column with this name exists.
  bool Has(const std::string& name) const;

  /// Appends a column; fails if the name already exists.
  Status AddColumn(Column column);

  /// "(<name> <TYPE>, ...)".
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_SCHEMA_H_
