// Attribute values of the fuzzy relational model.
//
// An attribute value is either a character string (always crisp; used for
// names and identifiers) or a numeric possibility distribution
// (a Trapezoid; crisp numbers are degenerate trapezoids). NULL values
// arise from aggregates over empty sets (Section 6).
#ifndef FUZZYDB_RELATIONAL_VALUE_H_
#define FUZZYDB_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"
#include "fuzzy/degree.h"
#include "fuzzy/trapezoid.h"

namespace fuzzydb {

/// Static type of an attribute.
enum class ValueType : uint8_t {
  kNull = 0,
  kString = 1,
  kFuzzy = 2,  // numeric possibility distribution (crisp numbers included)
};

const char* ValueTypeName(ValueType type);

/// A single attribute value.
class Value {
 public:
  /// NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value String(std::string s) {
    Value v;
    v.data_ = std::move(s);
    return v;
  }
  static Value Fuzzy(const Trapezoid& t) {
    Value v;
    v.data_ = t;
    return v;
  }
  /// A crisp number, stored as a degenerate trapezoid.
  static Value Number(double x) { return Fuzzy(Trapezoid::Crisp(x)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_fuzzy() const { return type() == ValueType::kFuzzy; }

  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Trapezoid& AsFuzzy() const { return std::get<Trapezoid>(data_); }

  /// Exact representation identity (same type and same payload). This is
  /// the notion of "same value" used for duplicate elimination, GROUPBY
  /// keys, and the binary d(r.U = u) of Section 6 -- it is *not* the fuzzy
  /// equality possibility.
  bool Identical(const Value& other) const;

  /// Satisfaction degree of `*this op other` (Section 2.2):
  ///  - two fuzzy values: possibility via sup-min (degree.h);
  ///  - two strings: crisp comparison, degree 0 or 1 (only = and <> and
  ///    the order comparators via lexicographic order);
  ///  - NULL compared with anything: degree 0.
  /// Type-mismatched comparisons (string vs fuzzy) have degree 0.
  double Compare(CompareOp op, const Value& other,
                 double approx_tolerance = 1.0) const;

  /// Total order for sorting / map keys across types:
  /// NULL < strings (lexicographic) < fuzzy (interval order, then corners).
  /// Consistent with Identical (returns 0 iff Identical).
  int TotalOrderCompare(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, std::string, Trapezoid> data_;
};

/// Comparator usable with std::map / std::sort over Values.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.TotalOrderCompare(b) < 0;
  }
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_VALUE_H_
