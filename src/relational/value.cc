#include "relational/value.h"

#include "fuzzy/interval_order.h"

namespace fuzzydb {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kString:
      return "STRING";
    case ValueType::kFuzzy:
      return "FUZZY";
  }
  return "?";
}

bool Value::Identical(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kString:
      return AsString() == other.AsString();
    case ValueType::kFuzzy:
      return AsFuzzy() == other.AsFuzzy();
  }
  return false;
}

double Value::Compare(CompareOp op, const Value& other,
                      double approx_tolerance) const {
  if (is_null() || other.is_null()) return 0.0;
  if (is_fuzzy() && other.is_fuzzy()) {
    return SatisfactionDegree(AsFuzzy(), op, other.AsFuzzy(),
                              approx_tolerance);
  }
  if (is_string() && other.is_string()) {
    const int cmp = AsString().compare(other.AsString());
    bool holds = false;
    switch (op) {
      case CompareOp::kEq:
      case CompareOp::kApproxEq:
        holds = cmp == 0;
        break;
      case CompareOp::kNe:
        holds = cmp != 0;
        break;
      case CompareOp::kLt:
        holds = cmp < 0;
        break;
      case CompareOp::kLe:
        holds = cmp <= 0;
        break;
      case CompareOp::kGt:
        holds = cmp > 0;
        break;
      case CompareOp::kGe:
        holds = cmp >= 0;
        break;
    }
    return holds ? 1.0 : 0.0;
  }
  return 0.0;  // type mismatch
}

int Value::TotalOrderCompare(const Value& other) const {
  const int t1 = static_cast<int>(type());
  const int t2 = static_cast<int>(other.type());
  if (t1 != t2) return t1 < t2 ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString: {
      const int cmp = AsString().compare(other.AsString());
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case ValueType::kFuzzy: {
      const Trapezoid& x = AsFuzzy();
      const Trapezoid& y = other.AsFuzzy();
      const int cmp = CompareIntervalOrder(x, y);
      if (cmp != 0) return cmp;
      // Refine by the inner corners so the order is consistent with
      // Identical (Definition 3.1 only orders by the support interval).
      if (x.b() != y.b()) return x.b() < y.b() ? -1 : 1;
      if (x.c() != y.c()) return x.c() < y.c() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kFuzzy:
      return AsFuzzy().ToString();
  }
  return "?";
}

}  // namespace fuzzydb
