// Fuzzy tuples: attribute values plus a membership degree.
#ifndef FUZZYDB_RELATIONAL_TUPLE_H_
#define FUZZYDB_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/value.h"

namespace fuzzydb {

/// A tuple of a fuzzy relation. `degree` is the system-supplied membership
/// attribute D in (0, 1]: the possibility that the tuple belongs to the
/// concept the relation represents (Section 2.2). A tuple is "in" a
/// relation iff degree > 0.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::vector<Value> values, double degree)
      : values_(std::move(values)), degree_(degree) {}

  size_t NumValues() const { return values_.size(); }
  const Value& ValueAt(size_t i) const { return values_[i]; }
  Value& MutableValueAt(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  double degree() const { return degree_; }
  void set_degree(double d) { degree_ = d; }

  /// Identical attribute values (degree ignored); the duplicate criterion.
  bool SameValues(const Tuple& other) const;

  /// Concatenation of this tuple's values with another's; the degree of
  /// the result is min(degree, other.degree) (fuzzy AND of memberships).
  Tuple Concat(const Tuple& other) const;

  /// The sub-tuple with the given column indexes, keeping the degree.
  Tuple Project(const std::vector<size_t>& indexes) const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
  double degree_ = 1.0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_TUPLE_H_
