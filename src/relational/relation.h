// In-memory fuzzy relations.
//
// A fuzzy relation is a fuzzy set of tuples (Section 2.2). Tuples with
// identical attribute values are duplicates; when duplicates are
// eliminated, the surviving tuple keeps the *maximum* membership degree
// (fuzzy OR over the ways the tuple can arise).
#ifndef FUZZYDB_RELATIONAL_RELATION_H_
#define FUZZYDB_RELATIONAL_RELATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace fuzzydb {

/// A named, in-memory fuzzy relation.
///
/// Every relation object carries a process-unique `id` and a `version`
/// drawn from a process-wide monotonic counter. The pair identifies the
/// *contents* of a relation at a point in time: every mutation (Append,
/// duplicate elimination, threshold, sort, handing out mutable_tuples())
/// stamps a fresh version, and a copied relation gets a fresh id. The
/// cross-query caches (src/cache/) key cached artifacts by (id, version),
/// so a cached entry can never be served after its source relation
/// changed -- invalidation-on-write is structural, not advisory.
///
/// Versions are process-unique (not per-object sequential) so that two
/// divergent copies of the same relation -- e.g. an MVCC copy-on-write
/// (CopyForWrite) racing a legacy deep copy -- can never both reach the
/// same (id, version) with different contents.
class Relation {
 public:
  Relation() : id_(NextId()) {}
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)), id_(NextId()) {}

  /// Copies get a fresh identity: the copy is a distinct object whose
  /// future mutations must not collide with cache entries keyed to the
  /// source. Moves transfer the identity (same contents, same object).
  Relation(const Relation& other)
      : name_(other.name_),
        schema_(other.schema_),
        tuples_(other.tuples_),
        id_(NextId()) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      name_ = other.name_;
      schema_ = other.schema_;
      tuples_ = other.tuples_;
      id_ = NextId();
      version_ = 0;
    }
    return *this;
  }
  Relation(Relation&& other) noexcept
      : name_(std::move(other.name_)),
        schema_(std::move(other.schema_)),
        tuples_(std::move(other.tuples_)),
        id_(other.id_),
        version_(other.version_) {
    // The moved-from shell must not keep the identity: if it were mutated
    // afterwards it could reach the same (id, version) as this object
    // while holding different contents.
    other.id_ = NextId();
    other.version_ = 0;
  }
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      name_ = std::move(other.name_);
      schema_ = std::move(other.schema_);
      tuples_ = std::move(other.tuples_);
      id_ = other.id_;
      version_ = other.version_;
      other.id_ = NextId();
      other.version_ = 0;
    }
    return *this;
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  /// Process-unique identity of this relation object (fresh per copy).
  uint64_t id() const { return id_; }
  /// Stamped fresh on every mutation; (id, version) identifies the
  /// contents.
  uint64_t version() const { return version_; }

  /// A copy that *keeps* this relation's id (the MVCC version chain:
  /// same logical relation, next version) but stamps a fresh
  /// process-unique version. The snapshot catalog (relational/catalog.h)
  /// installs such copies on write while in-flight readers keep pinning
  /// the old version; cache entries keyed (id, old version) become
  /// unreachable through the new version for free, and id-keyed explicit
  /// invalidation still reaches every version of the chain.
  Relation CopyForWrite() const;

  size_t NumTuples() const { return tuples_.size(); }
  bool Empty() const { return tuples_.empty(); }
  const Tuple& TupleAt(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() {
    // Conservative: the caller may mutate through the reference, so any
    // cached artifact derived from the old contents must stop matching.
    version_ = NextVersion();
    return tuples_;
  }

  /// Appends a tuple. Tuples with degree <= 0 are not members of a fuzzy
  /// relation and are silently dropped. Fails when the arity mismatches.
  Status Append(Tuple tuple);

  /// Appends, combining with an existing duplicate by max degree
  /// (fuzzy OR). O(n) per call; used for small answer relations.
  Status AppendOrMax(Tuple tuple);

  /// Removes duplicates keeping the maximum degree per distinct value
  /// combination, and drops tuples below `min_degree` (the WITH clause:
  /// WITH D >= z). Order of survivors is unspecified but deterministic.
  void EliminateDuplicates(double min_degree = 0.0);

  /// Drops tuples whose degree is < min_degree.
  void ApplyThreshold(double min_degree);

  /// Sorts tuples with `less`.
  void Sort(const std::function<bool(const Tuple&, const Tuple&)>& less);

  /// Two relations are equivalent fuzzy sets: same distinct tuples with
  /// the same degrees within `tolerance`. Duplicate handling: both sides
  /// are compared after max-degree duplicate elimination.
  bool EquivalentTo(const Relation& other, double tolerance = 1e-9) const;

  /// Pretty table, for examples and debugging.
  std::string ToString(size_t max_rows = 50) const;

 private:
  /// Hands out process-unique relation ids (thread-safe).
  static uint64_t NextId();
  /// Hands out process-unique content versions (thread-safe).
  static uint64_t NextVersion();

  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
  uint64_t id_ = 0;
  uint64_t version_ = 0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_RELATION_H_
