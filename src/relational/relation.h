// In-memory fuzzy relations.
//
// A fuzzy relation is a fuzzy set of tuples (Section 2.2). Tuples with
// identical attribute values are duplicates; when duplicates are
// eliminated, the surviving tuple keeps the *maximum* membership degree
// (fuzzy OR over the ways the tuple can arise).
#ifndef FUZZYDB_RELATIONAL_RELATION_H_
#define FUZZYDB_RELATIONAL_RELATION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace fuzzydb {

/// A named, in-memory fuzzy relation.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t NumTuples() const { return tuples_.size(); }
  bool Empty() const { return tuples_.empty(); }
  const Tuple& TupleAt(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

  /// Appends a tuple. Tuples with degree <= 0 are not members of a fuzzy
  /// relation and are silently dropped. Fails when the arity mismatches.
  Status Append(Tuple tuple);

  /// Appends, combining with an existing duplicate by max degree
  /// (fuzzy OR). O(n) per call; used for small answer relations.
  Status AppendOrMax(Tuple tuple);

  /// Removes duplicates keeping the maximum degree per distinct value
  /// combination, and drops tuples below `min_degree` (the WITH clause:
  /// WITH D >= z). Order of survivors is unspecified but deterministic.
  void EliminateDuplicates(double min_degree = 0.0);

  /// Drops tuples whose degree is < min_degree.
  void ApplyThreshold(double min_degree);

  /// Sorts tuples with `less`.
  void Sort(const std::function<bool(const Tuple&, const Tuple&)>& less);

  /// Two relations are equivalent fuzzy sets: same distinct tuples with
  /// the same degrees within `tolerance`. Duplicate handling: both sides
  /// are compared after max-degree duplicate elimination.
  bool EquivalentTo(const Relation& other, double tolerance = 1e-9) const;

  /// Pretty table, for examples and debugging.
  std::string ToString(size_t max_rows = 50) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_RELATION_H_
