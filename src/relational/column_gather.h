// Gathering tuple columns into columnar trapezoid batches.
//
// The batch execution path (docs/architecture.md, "Batch execution")
// turns row-at-a-time operator state into SoA batches: a gather walks
// a span of tuples, pulls one column's fuzzy values out and appends
// their corners to a TrapezoidBatch. Gathers are all-or-nothing: a
// single non-fuzzy (or null) value makes the whole batch unusable and
// the caller falls back to the scalar path for those rows, which keeps
// the batch kernels free of per-lane type tests.
#ifndef FUZZYDB_RELATIONAL_COLUMN_GATHER_H_
#define FUZZYDB_RELATIONAL_COLUMN_GATHER_H_

#include <cstddef>

#include "fuzzy/trapezoid_batch.h"
#include "relational/tuple.h"

namespace fuzzydb {

/// Appends column `col` of tuples[0, count) to `out` (cleared first).
/// Returns true when every value was fuzzy; on false the gather stops
/// at the offending tuple and `out` must not be used.
/// count must not exceed TrapezoidBatch::kCapacity.
bool GatherFuzzyColumn(const Tuple* const* tuples, size_t count, size_t col,
                       TrapezoidBatch* out);

/// As above for a contiguous run of tuples (the filter stage iterates
/// materialized vectors, not pointer arrays).
bool GatherFuzzyColumn(const Tuple* tuples, size_t count, size_t col,
                       TrapezoidBatch* out);

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_COLUMN_GATHER_H_
