// The catalog: named relations plus the linguistic term dictionary.
//
// Relations are stored as shared, immutable-once-published versions
// (std::shared_ptr<Relation>), which is what gives the system MVCC
// snapshot reads (docs/durability.md, "MVCC snapshots"):
//
//  - Readers call Snapshot() and get a catalog whose map shares the
//    current relation versions. The snapshot *pins* those versions: a
//    concurrent INSERT or DROP installs a new version (or erases the
//    name) in the source catalog, while the snapshot keeps serving the
//    pinned contents until it is destroyed. Readers therefore never
//    block on writers and never see a half-applied write.
//  - Writers go through MutateRelation / DefineTerm / AddRelation /
//    DropRelation, which update the map under an internal mutex. When
//    the targeted version is pinned by a snapshot, MutateRelation
//    copies on write (Relation::CopyForWrite: same id, fresh
//    process-unique version) so cache entries keyed (id, version)
//    invalidate for free; when it is unpinned, it mutates in place
//    under the lock (O(1) appends stay O(1), e.g. WAL replay).
//
// Writer/writer serialization is the caller's job (the shell holds the
// WAL commit lock around mutating statements); this class only
// guarantees reader/writer safety. Catalog copies share relation
// versions (snapshot semantics) -- mutating either side afterwards
// installs fresh versions and never disturbs the other.
#ifndef FUZZYDB_RELATIONAL_CATALOG_H_
#define FUZZYDB_RELATIONAL_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzzy/term_dictionary.h"
#include "relational/relation.h"

namespace fuzzydb {

/// Owns the database's relations and the vocabulary used to resolve
/// linguistic constants in queries. Relation names are case-insensitive.
class Catalog {
 public:
  Catalog() : terms_(TermDictionary::BuiltIn()) {}

  /// Copies share relation versions with the source (MVCC snapshot
  /// semantics); the term dictionary is copied by value.
  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other);
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;

  /// A pinned read view of the catalog as of now: shares the current
  /// relation versions, so concurrent writers cannot disturb it and it
  /// cannot block them. Bind queries against the snapshot and keep it
  /// alive for the duration of execution.
  Catalog Snapshot() const { return Catalog(*this); }

  /// Registers a relation; fails if the name is taken.
  Status AddRelation(Relation relation);

  /// Replaces or registers a relation.
  void PutRelation(Relation relation);

  /// Looks up a relation by name. The pointer stays valid while this
  /// catalog (or any snapshot of it) still holds the version; on a
  /// shared catalog, take a Snapshot() first and look up through it.
  Result<const Relation*> GetRelation(const std::string& name) const;

  /// A pinning reference to the current version of `name`.
  Result<std::shared_ptr<const Relation>> GetRelationRef(
      const std::string& name) const;

  /// Mutable access for single-threaded callers (tests, benches). When
  /// the current version is pinned by a snapshot the catalog installs a
  /// copy-on-write version first, so the returned pointer is exclusively
  /// owned by this catalog; it stays valid until the next catalog call
  /// for the same name.
  Result<Relation*> GetMutableRelation(const std::string& name);

  /// Applies `fn` to the relation as one atomic write: in place (under
  /// the catalog lock) when the current version is unpinned, or on a
  /// CopyForWrite copy installed after `fn` succeeds when a snapshot
  /// pins it. On failure the catalog is unchanged. Concurrent readers
  /// observe either the pre-write or the post-write version, never an
  /// intermediate state. Writers must be serialized externally.
  Status MutateRelation(const std::string& name,
                        const std::function<Status(Relation*)>& fn);

  bool HasRelation(const std::string& name) const;

  /// Removes a relation if present. Snapshots taken earlier keep
  /// serving the dropped version.
  void DropRelation(const std::string& name);

  std::vector<std::string> RelationNames() const;

  const TermDictionary& terms() const { return terms_; }
  TermDictionary& mutable_terms() { return terms_; }

  /// Thread-safe term definition (the WAL-logged DEFINE TERM path):
  /// readers resolve terms through a Snapshot(), whose dictionary was
  /// copied under the same lock.
  void DefineTerm(const std::string& name, const Trapezoid& value);

 private:
  mutable std::mutex mu_;
  // Values are shared with snapshots; an entry is replaced (never
  // mutated) while shared. Keys lower-cased.
  std::map<std::string, std::shared_ptr<Relation>> relations_;
  TermDictionary terms_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_CATALOG_H_
