// The catalog: named relations plus the linguistic term dictionary.
#ifndef FUZZYDB_RELATIONAL_CATALOG_H_
#define FUZZYDB_RELATIONAL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzzy/term_dictionary.h"
#include "relational/relation.h"

namespace fuzzydb {

/// Owns the database's relations and the vocabulary used to resolve
/// linguistic constants in queries. Relation names are case-insensitive.
class Catalog {
 public:
  Catalog() : terms_(TermDictionary::BuiltIn()) {}

  /// Registers a relation; fails if the name is taken.
  Status AddRelation(Relation relation);

  /// Replaces or registers a relation.
  void PutRelation(Relation relation);

  /// Looks up a relation by name.
  Result<const Relation*> GetRelation(const std::string& name) const;
  Result<Relation*> GetMutableRelation(const std::string& name);

  bool HasRelation(const std::string& name) const;

  /// Removes a relation if present.
  void DropRelation(const std::string& name);

  std::vector<std::string> RelationNames() const;

  const TermDictionary& terms() const { return terms_; }
  TermDictionary& mutable_terms() { return terms_; }

 private:
  std::map<std::string, Relation> relations_;  // keys lower-cased
  TermDictionary terms_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_RELATIONAL_CATALOG_H_
