#include "relational/catalog.h"

#include <utility>

#include "common/string_util.h"

namespace fuzzydb {

Catalog::Catalog(const Catalog& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  relations_ = other.relations_;  // shares versions (snapshot semantics)
  terms_ = other.terms_;
}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this != &other) {
    std::map<std::string, std::shared_ptr<Relation>> relations;
    TermDictionary terms;
    {
      std::lock_guard<std::mutex> lock(other.mu_);
      relations = other.relations_;
      terms = other.terms_;
    }
    std::lock_guard<std::mutex> lock(mu_);
    relations_ = std::move(relations);
    terms_ = std::move(terms);
  }
  return *this;
}

Catalog::Catalog(Catalog&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  relations_ = std::move(other.relations_);
  terms_ = std::move(other.terms_);
}

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this != &other) {
    std::map<std::string, std::shared_ptr<Relation>> relations;
    TermDictionary terms;
    {
      std::lock_guard<std::mutex> lock(other.mu_);
      relations = std::move(other.relations_);
      terms = std::move(other.terms_);
    }
    std::lock_guard<std::mutex> lock(mu_);
    relations_ = std::move(relations);
    terms_ = std::move(terms);
  }
  return *this;
}

Status Catalog::AddRelation(Relation relation) {
  const std::string key = ToLower(relation.name());
  std::lock_guard<std::mutex> lock(mu_);
  if (relations_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already exists");
  }
  relations_.emplace(key, std::make_shared<Relation>(std::move(relation)));
  return Status::OK();
}

void Catalog::PutRelation(Relation relation) {
  const std::string key = ToLower(relation.name());
  std::lock_guard<std::mutex> lock(mu_);
  relations_[key] = std::make_shared<Relation>(std::move(relation));
}

Result<const Relation*> Catalog::GetRelation(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return static_cast<const Relation*>(it->second.get());
}

Result<std::shared_ptr<const Relation>> Catalog::GetRelationRef(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return std::shared_ptr<const Relation>(it->second);
}

Result<Relation*> Catalog::GetMutableRelation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  if (it->second.use_count() > 1) {
    // A snapshot pins the current version: keep it intact and hand the
    // caller an exclusively-owned copy-on-write successor.
    it->second = std::make_shared<Relation>(it->second->CopyForWrite());
  }
  return it->second.get();
}

Status Catalog::MutateRelation(
    const std::string& name, const std::function<Status(Relation*)>& fn) {
  const std::string key = ToLower(name);
  std::shared_ptr<Relation> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = relations_.find(key);
    if (it == relations_.end()) {
      return Status::NotFound("no relation named '" + name + "'");
    }
    if (it->second.use_count() == 1) {
      // Unpinned: no snapshot can pin it without this lock, so an
      // in-place write is invisible to readers until we return. Keeps
      // O(1) appends O(1) -- WAL replay of N inserts stays linear.
      return fn(it->second.get());
    }
    pinned = it->second;
  }
  // Pinned by a snapshot: copy-on-write outside the lock so in-flight
  // readers are never blocked on the copy, then publish atomically.
  // External writer serialization guarantees `pinned` is still current.
  auto successor = std::make_shared<Relation>(pinned->CopyForWrite());
  FUZZYDB_RETURN_IF_ERROR(fn(successor.get()));
  std::lock_guard<std::mutex> lock(mu_);
  relations_[key] = std::move(successor);
  return Status::OK();
}

bool Catalog::HasRelation(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return relations_.count(ToLower(name)) > 0;
}

void Catalog::DropRelation(const std::string& name) {
  std::shared_ptr<Relation> doomed;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = relations_.find(ToLower(name));
  if (it != relations_.end()) {
    // Move the ref out before erasing so a version pinned by snapshots
    // is destroyed by the last snapshot, not under our lock.
    doomed = std::move(it->second);
    relations_.erase(it);
  }
}

std::vector<std::string> Catalog::RelationNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [key, rel] : relations_) names.push_back(rel->name());
  return names;
}

void Catalog::DefineTerm(const std::string& name, const Trapezoid& value) {
  std::lock_guard<std::mutex> lock(mu_);
  terms_.Define(name, value);
}

}  // namespace fuzzydb
