#include "relational/catalog.h"

#include "common/string_util.h"

namespace fuzzydb {

Status Catalog::AddRelation(Relation relation) {
  const std::string key = ToLower(relation.name());
  if (relations_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already exists");
  }
  relations_.emplace(key, std::move(relation));
  return Status::OK();
}

void Catalog::PutRelation(Relation relation) {
  relations_[ToLower(relation.name())] = std::move(relation);
}

Result<const Relation*> Catalog::GetRelation(const std::string& name) const {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return &it->second;
}

Result<Relation*> Catalog::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return &it->second;
}

bool Catalog::HasRelation(const std::string& name) const {
  return relations_.count(ToLower(name)) > 0;
}

void Catalog::DropRelation(const std::string& name) {
  relations_.erase(ToLower(name));
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [key, rel] : relations_) names.push_back(rel.name());
  return names;
}

}  // namespace fuzzydb
