#include "relational/tuple.h"

#include <algorithm>

#include "common/string_util.h"

namespace fuzzydb {

bool Tuple::SameValues(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!values_[i].Identical(other.values_[i])) return false;
  }
  return true;
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> combined = values_;
  combined.insert(combined.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(combined), std::min(degree_, other.degree_));
}

Tuple Tuple::Project(const std::vector<size_t>& indexes) const {
  std::vector<Value> projected;
  projected.reserve(indexes.size());
  for (size_t i : indexes) projected.push_back(values_[i]);
  return Tuple(std::move(projected), degree_);
}

std::string Tuple::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += " | D=" + FormatDouble(degree_, 4) + "]";
  return out;
}

}  // namespace fuzzydb
