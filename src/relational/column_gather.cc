#include "relational/column_gather.h"

#include <cassert>

namespace fuzzydb {

bool GatherFuzzyColumn(const Tuple* const* tuples, size_t count, size_t col,
                       TrapezoidBatch* out) {
  assert(count <= TrapezoidBatch::kCapacity);
  out->Clear();
  for (size_t i = 0; i < count; ++i) {
    const Value& v = tuples[i]->ValueAt(col);
    if (!v.is_fuzzy()) return false;
    out->PushBack(v.AsFuzzy());
  }
  return true;
}

bool GatherFuzzyColumn(const Tuple* tuples, size_t count, size_t col,
                       TrapezoidBatch* out) {
  assert(count <= TrapezoidBatch::kCapacity);
  out->Clear();
  for (size_t i = 0; i < count; ++i) {
    const Value& v = tuples[i].ValueAt(col);
    if (!v.is_fuzzy()) return false;
    out->PushBack(v.AsFuzzy());
  }
  return true;
}

}  // namespace fuzzydb
