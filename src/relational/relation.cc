#include "relational/relation.h"

#include <algorithm>
#include <atomic>
#include <map>

#include "common/string_util.h"

namespace fuzzydb {

uint64_t Relation::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Relation::NextVersion() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Relation Relation::CopyForWrite() const {
  Relation copy(*this);       // deep content copy (fresh id, version 0)
  copy.id_ = id_;             // ...but keep the chain identity
  copy.version_ = NextVersion();
  return copy;
}

namespace {

/// Orders tuples by value content (total order), used to group duplicates.
struct TupleValueLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    const size_t n = std::min(a.NumValues(), b.NumValues());
    for (size_t i = 0; i < n; ++i) {
      const int cmp = a.ValueAt(i).TotalOrderCompare(b.ValueAt(i));
      if (cmp != 0) return cmp < 0;
    }
    return a.NumValues() < b.NumValues();
  }
};

}  // namespace

Status Relation::Append(Tuple tuple) {
  if (schema_.NumColumns() != 0 && tuple.NumValues() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.NumValues()) +
        " does not match schema arity " +
        std::to_string(schema_.NumColumns()) + " of relation '" + name_ + "'");
  }
  if (tuple.degree() <= 0.0) return Status::OK();
  tuples_.push_back(std::move(tuple));
  version_ = NextVersion();
  return Status::OK();
}

Status Relation::AppendOrMax(Tuple tuple) {
  if (tuple.degree() <= 0.0) return Status::OK();
  for (Tuple& existing : tuples_) {
    if (existing.SameValues(tuple)) {
      existing.set_degree(std::max(existing.degree(), tuple.degree()));
      version_ = NextVersion();
      return Status::OK();
    }
  }
  return Append(std::move(tuple));
}

void Relation::EliminateDuplicates(double min_degree) {
  std::map<Tuple, double, TupleValueLess> best;
  for (const Tuple& t : tuples_) {
    auto [it, inserted] = best.emplace(t, t.degree());
    if (!inserted) it->second = std::max(it->second, t.degree());
  }
  tuples_.clear();
  for (auto& [tuple, degree] : best) {
    if (degree >= min_degree && degree > 0.0) {
      Tuple copy = tuple;
      copy.set_degree(degree);
      tuples_.push_back(std::move(copy));
    }
  }
  version_ = NextVersion();
}

void Relation::ApplyThreshold(double min_degree) {
  tuples_.erase(std::remove_if(tuples_.begin(), tuples_.end(),
                               [min_degree](const Tuple& t) {
                                 return t.degree() < min_degree;
                               }),
                tuples_.end());
  version_ = NextVersion();
}

void Relation::Sort(
    const std::function<bool(const Tuple&, const Tuple&)>& less) {
  std::stable_sort(tuples_.begin(), tuples_.end(), less);
  version_ = NextVersion();
}

bool Relation::EquivalentTo(const Relation& other, double tolerance) const {
  Relation a = *this;
  Relation b = other;
  a.EliminateDuplicates();
  b.EliminateDuplicates();
  if (a.NumTuples() != b.NumTuples()) return false;
  // EliminateDuplicates leaves both sides sorted by TupleValueLess.
  for (size_t i = 0; i < a.NumTuples(); ++i) {
    if (!a.TupleAt(i).SameValues(b.TupleAt(i))) return false;
    if (std::abs(a.TupleAt(i).degree() - b.TupleAt(i).degree()) > tolerance) {
      return false;
    }
  }
  return true;
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out = name_.empty() ? "(anonymous)" : name_;
  out += " " + schema_.ToString() + " [" + std::to_string(tuples_.size()) +
         " tuples]\n";
  size_t shown = 0;
  for (const Tuple& t : tuples_) {
    if (shown++ >= max_rows) {
      out += "  ... (" + std::to_string(tuples_.size() - max_rows) +
             " more)\n";
      break;
    }
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

}  // namespace fuzzydb
