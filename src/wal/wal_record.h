// The write-ahead log's on-disk record format (docs/durability.md).
//
// A WAL segment is a sequence of framed records:
//
//   [u32 magic "FWAL"][u32 payload_length][u32 crc32(payload)]
//   payload = [u64 lsn][u8 type][type-specific body]
//
// All integers are little-endian fixed-width; doubles are raw IEEE-754
// bytes, so a replayed degree or trapezoid corner is bit-identical to
// what the writer logged. Records are *logical redo* records: they name
// the catalog mutation (CREATE TABLE / INSERT / DROP TABLE / DEFINE
// TERM), not page images -- replaying them through the same catalog code
// reproduces the uncrashed in-memory state exactly.
//
// Bodies:
//   kCreateTable: [str table][u32 ncols]{[str col_name][u8 ValueType]}*
//   kInsert:      [str table][u32 len][SerializeTuple blob]
//   kDropTable:   [str table]
//   kDefineTerm:  [str term][f64 a][f64 b][f64 c][f64 d]
//   kCheckpoint:  [u64 checkpoint_lsn]   (informational; replay no-op)
//   where [str s] = [u32 length][bytes]
//
// Decoding classifies the tail precisely: kEnd (clean end of segment),
// kRecord (one valid record), or kCorrupt (short frame, bad magic,
// bad CRC, or malformed body -- a torn tail to recovery).
#ifndef FUZZYDB_WAL_WAL_RECORD_H_
#define FUZZYDB_WAL_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzzy/trapezoid.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace fuzzydb {
namespace wal {

enum class WalRecordType : uint8_t {
  kCreateTable = 1,
  kInsert = 2,
  kDropTable = 3,
  kDefineTerm = 4,
  kCheckpoint = 5,
};

const char* WalRecordTypeName(WalRecordType type);

/// One logical redo record; the active fields depend on `type`.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;

  std::string table;   // kCreateTable / kInsert / kDropTable
  Schema schema;       // kCreateTable
  Tuple tuple;         // kInsert (degree included)
  std::string term;    // kDefineTerm
  Trapezoid shape;     // kDefineTerm
  uint64_t checkpoint_lsn = 0;  // kCheckpoint
};

/// Appends the framed encoding of `record` to `*out`.
void EncodeWalRecord(const WalRecord& record, std::vector<uint8_t>* out);

enum class WalDecodeOutcome {
  kRecord,   // *record holds the next record; *consumed advanced
  kEnd,      // clean end of input (size == 0)
  kCorrupt,  // torn or damaged frame: valid prefix ends here
};

/// Decodes the record starting at `data`. On kRecord, `*consumed` is the
/// total frame size. kCorrupt covers every malformation (short header,
/// bad magic, CRC mismatch, truncated or undecodable body).
WalDecodeOutcome DecodeWalRecord(const uint8_t* data, size_t size,
                                 WalRecord* record, size_t* consumed);

/// CRC-32 (IEEE, reflected) of `data`; the checksum in every WAL frame.
uint32_t WalCrc32(const uint8_t* data, size_t size);

}  // namespace wal
}  // namespace fuzzydb

#endif  // FUZZYDB_WAL_WAL_RECORD_H_
