#include "wal/wal_metrics.h"

namespace fuzzydb {
namespace wal {

WalMetrics* WalMetrics::Instance() {
  static WalMetrics* metrics = [] {
    auto* m = new WalMetrics();
    MetricsRegistry& reg = MetricsRegistry::Global();
    m->appends_total = reg.GetCounter("fuzzydb_wal_appends_total");
    m->append_bytes_total =
        reg.GetCounter("fuzzydb_wal_append_bytes_total");
    m->fsyncs_total = reg.GetCounter("fuzzydb_wal_fsyncs_total");
    m->rotations_total = reg.GetCounter("fuzzydb_wal_rotations_total");
    m->checkpoints_total = reg.GetCounter("fuzzydb_wal_checkpoints_total");
    m->replayed_records_total =
        reg.GetCounter("fuzzydb_wal_replayed_records_total");
    m->torn_tail_truncations_total =
        reg.GetCounter("fuzzydb_wal_torn_tail_truncations_total");
    m->recoveries_total = reg.GetCounter("fuzzydb_wal_recoveries_total");
    m->segments = reg.GetGauge("fuzzydb_wal_segments");
    m->last_lsn = reg.GetGauge("fuzzydb_wal_last_lsn");
    return m;
  }();
  return metrics;
}

}  // namespace wal
}  // namespace fuzzydb
