// The write-ahead log proper: append-only segment files under one
// directory, with group fsync, size-based rotation, and checkpointing
// (docs/durability.md).
//
// Layout of a WAL directory:
//   wal_<seq>.log    -- framed records (wal_record.h), seq zero-padded
//                       so lexical order is log order
//   checkpoint.meta  -- text manifest naming the live checkpoint image;
//                       its atomic rename IS the checkpoint commit point
//   ckpt_<lsn>/      -- a SaveDatabase image of the catalog as of <lsn>
//
// Durability contract: Append returns OK only after the record is in the
// segment file (and fsynced, in `always` mode). On *any* append-path
// failure -- injected or real, write, fsync, or rotation -- the segment
// is truncated back to its pre-append length, so a failed statement
// leaves no trace and recovery replays exactly the acknowledged prefix.
//
// Writer serialization: callers must hold the commit lock
// (AcquireCommitLock) across "append to WAL, then apply to catalog" so
// the log order equals the apply order -- that equality is what makes
// replay reproduce the uncrashed catalog bit-for-bit.
#ifndef FUZZYDB_WAL_WAL_MANAGER_H_
#define FUZZYDB_WAL_WAL_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "storage/buffer_pool.h"
#include "wal/wal_record.h"

namespace fuzzydb {
namespace wal {

/// When appends reach the disk platter.
enum class FsyncMode {
  kAlways,  // fsync every append: no acknowledged write is ever lost
  kBatch,   // fsync every batch_records appends: bounded loss window
  kOff,     // never fsync (tests / throwaway databases)
};

/// Parses "always" | "batch" | "off".
Result<FsyncMode> ParseFsyncMode(const std::string& text);
const char* FsyncModeName(FsyncMode mode);

struct WalOptions {
  FsyncMode fsync = FsyncMode::kAlways;
  /// Rotate to a fresh segment once the active one reaches this size.
  uint64_t segment_bytes = 4ull << 20;
  /// In kBatch mode, fsync after this many unsynced appends.
  uint64_t batch_records = 32;
};

/// Path of segment `seq` under `dir` (wal_<seq, zero-padded>.log).
std::string WalSegmentPath(const std::string& dir, uint64_t seq);

/// Segment sequence numbers present in `dir`, ascending. An empty
/// directory yields an empty list, not an error.
Result<std::vector<uint64_t>> ListWalSegments(const std::string& dir);

/// The live checkpoint named by dir/checkpoint.meta.
struct CheckpointMeta {
  uint64_t lsn = 0;
  std::string image_dir;  // relative to the WAL dir, e.g. "ckpt_42"
};

/// Reads dir/checkpoint.meta; NotFound when no checkpoint was ever
/// committed, IoError when the manifest is damaged.
Result<CheckpointMeta> ReadCheckpointMeta(const std::string& dir);

/// Deletes checkpoint image directory `image` (a name like "ckpt_42")
/// under `dir`, best effort. Used when pruning superseded images and
/// when recovery sweeps images no manifest names.
void RemoveCheckpointImage(const std::string& dir, const std::string& image);

/// One open WAL. Thread-safe for Append/Sync/Checkpoint vs ToRelation
/// and the read accessors; writers must additionally serialize through
/// AcquireCommitLock (see file comment).
class WalManager {
 public:
  /// Opens the WAL in `dir`, continuing after the highest existing
  /// segment (recovery has already truncated any torn tail) or creating
  /// wal_00000001.log in an empty directory. `next_lsn` is the LSN the
  /// next Append will stamp (last replayed LSN + 1); `checkpoint_lsn`
  /// is the live checkpoint's covered LSN (0 if none).
  static Result<std::unique_ptr<WalManager>> Open(const std::string& dir,
                                                  const WalOptions& options,
                                                  uint64_t next_lsn,
                                                  uint64_t checkpoint_lsn);

  ~WalManager();
  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Stamps `record->lsn`, frames and writes it, rotating and syncing
  /// per the options. OK means the record will survive recovery (modulo
  /// the fsync mode's loss window); any error means the log is exactly
  /// as if the call never happened.
  Status Append(WalRecord* record);

  /// Forces everything appended so far to disk (any fsync mode).
  Status Sync();

  /// Checkpoints `catalog`: sync, rotate, save a full image under
  /// ckpt_<lsn>/, commit it by atomically renaming checkpoint.meta, then
  /// prune segments and images the new checkpoint supersedes. On success
  /// `*checkpoint_lsn` is the covered LSN. On failure the previous
  /// checkpoint (if any) is still the live one; leftover temp files are
  /// swept by the next recovery.
  Status Checkpoint(const Catalog& catalog, BufferPool* pool,
                    uint64_t* checkpoint_lsn);

  /// The writers' commit lock: hold it across append + catalog apply.
  std::unique_lock<std::mutex> AcquireCommitLock() {
    return std::unique_lock<std::mutex>(commit_mu_);
  }

  /// LSN of the last appended record (0 if none yet).
  uint64_t LastLsn() const;
  /// LSN covered by the live checkpoint (0 if none).
  uint64_t CheckpointLsn() const;
  uint64_t SegmentCount() const;
  const std::string& dir() const { return dir_; }
  const WalOptions& options() const { return options_; }

  /// The sys.wal relation: one row per segment file
  /// (segment, bytes, active, first_lsn).
  Relation ToRelation() const;

 private:
  struct Segment {
    uint64_t seq = 0;
    uint64_t first_lsn = 0;  // 0 when unknown (pre-existing segment)
  };

  WalManager(std::string dir, WalOptions options, uint64_t next_lsn)
      : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn) {}

  /// Opens (creating) segment `seq` for appending; updates fd_/offset_.
  Status OpenSegment(uint64_t seq, bool create);
  /// Closes the active segment and opens seq+1. Caller holds mu_.
  Status RotateLocked();
  Status SyncLocked();
  std::string SegmentPath(uint64_t seq) const;

  const std::string dir_;
  const WalOptions options_;

  std::mutex commit_mu_;  // writers' append+apply critical section

  mutable std::mutex mu_;  // guards everything below
  std::vector<Segment> segments_;  // ascending seq; back() is active
  int fd_ = -1;                    // active segment
  uint64_t offset_ = 0;            // append position in active segment
  uint64_t next_lsn_ = 1;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t unsynced_records_ = 0;  // kBatch bookkeeping
};

}  // namespace wal
}  // namespace fuzzydb

#endif  // FUZZYDB_WAL_WAL_MANAGER_H_
