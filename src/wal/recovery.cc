#include "wal/recovery.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <vector>

#include "storage/database.h"
#include "wal/wal_metrics.h"

namespace fuzzydb {
namespace wal {

namespace {

Status EnsureDirectory(const std::string& dir) {
  struct stat st;
  if (stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::IoError("'" + dir + "' exists and is not a directory");
    }
    return Status::OK();
  }
  if (mkdir(dir.c_str(), 0755) != 0) {
    return Status::IoError("cannot create WAL directory '" + dir +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// Deletes interrupted-checkpoint debris: *.tmp files anywhere in the
/// directory and ckpt_* images the manifest does not name. Returns how
/// many entries were removed.
uint64_t SweepOrphans(const std::string& dir, const std::string& live_image) {
  uint64_t swept = 0;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::vector<std::string> tmp_files;
  std::vector<std::string> dead_images;
  while (struct dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (HasSuffix(name, ".tmp")) {
      tmp_files.push_back(name);
    } else if (HasPrefix(name, "ckpt_") && name != live_image) {
      dead_images.push_back(name);
    }
  }
  closedir(d);
  for (const std::string& name : tmp_files) {
    if (unlink((dir + "/" + name).c_str()) == 0) ++swept;
  }
  for (const std::string& name : dead_images) {
    RemoveCheckpointImage(dir, name);
    ++swept;
  }
  return swept;
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot read WAL segment '" + path + "'");
  const std::streamsize size = in.tellg();
  std::vector<uint8_t> data(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0 && !in.read(reinterpret_cast<char*>(data.data()), size)) {
    return Status::IoError("cannot read WAL segment '" + path + "'");
  }
  return data;
}

}  // namespace

Status ApplyWalRecord(const WalRecord& record, Catalog* catalog) {
  switch (record.type) {
    case WalRecordType::kCreateTable:
      return catalog->AddRelation(Relation(record.table, record.schema));
    case WalRecordType::kInsert:
      return catalog->MutateRelation(record.table, [&](Relation* relation) {
        return relation->Append(record.tuple);
      });
    case WalRecordType::kDropTable:
      if (!catalog->HasRelation(record.table)) {
        return Status::NotFound("no relation named '" + record.table + "'");
      }
      catalog->DropRelation(record.table);
      return Status::OK();
    case WalRecordType::kDefineTerm:
      catalog->DefineTerm(record.term, record.shape);
      return Status::OK();
    case WalRecordType::kCheckpoint:
      return Status::OK();  // informational marker
  }
  return Status::Internal("unhandled WAL record type");
}

Result<RecoveredDatabase> OpenWalDatabase(const std::string& dir,
                                          const WalOptions& options,
                                          BufferPool* pool) {
  FUZZYDB_RETURN_IF_ERROR(EnsureDirectory(dir));

  RecoveredDatabase out;
  std::string live_image;
  auto meta = ReadCheckpointMeta(dir);
  if (meta.ok()) {
    out.checkpoint_lsn = meta->lsn;
    live_image = meta->image_dir;
  } else if (meta.status().code() != StatusCode::kNotFound) {
    return meta.status();
  }

  out.orphans_swept = SweepOrphans(dir, live_image);

  if (!live_image.empty()) {
    auto loaded = LoadDatabase(dir + "/" + live_image, pool);
    FUZZYDB_RETURN_IF_ERROR(loaded.status());
    out.catalog = std::move(loaded).value();
  }

  auto seqs = ListWalSegments(dir);
  FUZZYDB_RETURN_IF_ERROR(seqs.status());

  uint64_t max_lsn = out.checkpoint_lsn;
  for (size_t i = 0; i < seqs->size(); ++i) {
    const bool last_segment = i + 1 == seqs->size();
    const std::string path = WalSegmentPath(dir, (*seqs)[i]);
    auto data = ReadWholeFile(path);
    FUZZYDB_RETURN_IF_ERROR(data.status());
    size_t pos = 0;
    while (pos < data->size()) {
      WalRecord record;
      size_t consumed = 0;
      const WalDecodeOutcome outcome = DecodeWalRecord(
          data->data() + pos, data->size() - pos, &record, &consumed);
      if (outcome == WalDecodeOutcome::kCorrupt) {
        if (!last_segment) {
          // Not a crash artifact: a torn write can only be at the very
          // end of the log. Refuse to guess at damaged history.
          return Status::IoError("corrupt WAL record at byte " +
                                 std::to_string(pos) + " of sealed segment '" +
                                 path + "'");
        }
        // Torn tail: the crash interrupted the last append. Keep the
        // valid prefix -- every record in it was acknowledged or is an
        // un-acknowledged complete record, both safe to keep -- and cut
        // the rest so future appends start from a clean frame boundary.
        out.torn_tail_bytes += data->size() - pos;
        if (truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
          return Status::IoError("cannot truncate torn WAL tail of '" + path +
                                 "': " + std::strerror(errno));
        }
        WalMetrics::Instance()->torn_tail_truncations_total->Add(1);
        break;
      }
      if (record.lsn > out.checkpoint_lsn) {
        FUZZYDB_RETURN_IF_ERROR(ApplyWalRecord(record, &out.catalog));
        ++out.records_replayed;
      }
      max_lsn = std::max(max_lsn, record.lsn);
      pos += consumed;
    }
  }

  auto manager =
      WalManager::Open(dir, options, max_lsn + 1, out.checkpoint_lsn);
  FUZZYDB_RETURN_IF_ERROR(manager.status());
  out.manager = std::move(manager).value();

  WalMetrics* m = WalMetrics::Instance();
  m->recoveries_total->Add(1);
  m->replayed_records_total->Add(out.records_replayed);
  return out;
}

}  // namespace wal
}  // namespace fuzzydb
