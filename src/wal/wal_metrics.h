// The WAL's aggregate metric set, resolved once from the global
// MetricsRegistry (same idiom as server/server_metrics.h). Durability
// accounting is part of the recovery contract -- an operator comparing
// fuzzydb_wal_appends_total against replayed_records_total after a crash
// is measuring the contract directly -- so these record unconditionally,
// outside the EngineMetrics enable tap. Every series here has a catalog
// row in docs/operations.md.
#ifndef FUZZYDB_WAL_WAL_METRICS_H_
#define FUZZYDB_WAL_WAL_METRICS_H_

#include "obs/metrics.h"

namespace fuzzydb {
namespace wal {

struct WalMetrics {
  Counter* appends_total;        // fuzzydb_wal_appends_total
  Counter* append_bytes_total;   // fuzzydb_wal_append_bytes_total
  Counter* fsyncs_total;         // fuzzydb_wal_fsyncs_total
  Counter* rotations_total;      // fuzzydb_wal_rotations_total
  Counter* checkpoints_total;    // fuzzydb_wal_checkpoints_total
  Counter* replayed_records_total;      // fuzzydb_wal_replayed_records_total
  Counter* torn_tail_truncations_total; // fuzzydb_wal_torn_tail_truncations_total
  Counter* recoveries_total;     // fuzzydb_wal_recoveries_total
  Gauge* segments;               // fuzzydb_wal_segments
  Gauge* last_lsn;               // fuzzydb_wal_last_lsn

  /// Always non-null; registers the series on first use.
  static WalMetrics* Instance();
};

}  // namespace wal
}  // namespace fuzzydb

#endif  // FUZZYDB_WAL_WAL_METRICS_H_
