// Crash recovery: rebuilding the catalog from a WAL directory.
//
// ARIES-lite, redo only: uncommitted state never reaches the checkpoint
// image or the log (statements are the unit of atomicity and a record is
// only acknowledged once logged), so recovery is
//
//   1. sweep orphans: *.tmp files and ckpt_* images checkpoint.meta
//      does not name (debris of an interrupted checkpoint);
//   2. load the checkpoint image (empty catalog when none);
//   3. replay every segment in order, applying records with
//      lsn > checkpoint_lsn through ApplyWalRecord -- the same function
//      the live write path uses, which is what makes the recovered
//      catalog bit-identical to the uncrashed one;
//   4. a corrupt record in the LAST segment is a torn tail from the
//      crash: truncate the segment at the end of its valid prefix and
//      continue. A corrupt record anywhere else is damage the crash
//      cannot explain: recovery fails rather than guess;
//   5. reopen the WAL for appending at LSN = last replayed + 1.
//
// docs/durability.md walks through the full contract.
#ifndef FUZZYDB_WAL_RECOVERY_H_
#define FUZZYDB_WAL_RECOVERY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "relational/catalog.h"
#include "storage/buffer_pool.h"
#include "wal/wal_manager.h"
#include "wal/wal_record.h"

namespace fuzzydb {
namespace wal {

/// The outcome of OpenWalDatabase.
struct RecoveredDatabase {
  Catalog catalog;
  std::unique_ptr<WalManager> manager;
  uint64_t checkpoint_lsn = 0;    // covered by the loaded image (0: none)
  uint64_t records_replayed = 0;  // applied from segments past the image
  uint64_t torn_tail_bytes = 0;   // dropped from the last segment's tail
  uint64_t orphans_swept = 0;     // tmp files / unnamed images removed
};

/// Recovers the database in WAL directory `dir` (created if missing;
/// missing or empty directory yields an empty catalog) and reopens the
/// log for appending. All heap-file traffic for checkpoint images flows
/// through `pool`.
Result<RecoveredDatabase> OpenWalDatabase(const std::string& dir,
                                          const WalOptions& options,
                                          BufferPool* pool);

/// Applies one logical redo record to `catalog`. The live write path
/// calls this after WalManager::Append succeeds; recovery calls it for
/// every replayed record. One shared apply path is the bit-identity
/// guarantee. kCheckpoint records are informational no-ops.
Status ApplyWalRecord(const WalRecord& record, Catalog* catalog);

}  // namespace wal
}  // namespace fuzzydb

#endif  // FUZZYDB_WAL_RECOVERY_H_
