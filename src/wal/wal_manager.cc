#include "wal/wal_manager.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "storage/database.h"
#include "wal/wal_metrics.h"

namespace fuzzydb {
namespace wal {

namespace {

constexpr char kSegmentPrefix[] = "wal_";
constexpr char kSegmentSuffix[] = ".log";
constexpr char kMetaName[] = "checkpoint.meta";
constexpr char kMetaMagic[] = "fuzzydb-wal-checkpoint";

Status ErrnoError(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status EnsureDirectory(const std::string& dir) {
  struct stat st;
  if (stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::IoError("'" + dir + "' exists and is not a directory");
    }
    return Status::OK();
  }
  if (mkdir(dir.c_str(), 0755) != 0) {
    return ErrnoError("cannot create WAL directory '" + dir + "'");
  }
  return Status::OK();
}

// fsync of the directory itself, so entry creations/renames survive a
// crash. Best effort: some filesystems reject directory fsync.
void SyncDirectory(const std::string& dir) {
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)fsync(fd);
  close(fd);
}

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("WAL write failed");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

Result<FsyncMode> ParseFsyncMode(const std::string& text) {
  if (text == "always") return FsyncMode::kAlways;
  if (text == "batch") return FsyncMode::kBatch;
  if (text == "off") return FsyncMode::kOff;
  return Status::InvalidArgument("unknown fsync mode '" + text +
                                 "' (expected always, batch, or off)");
}

const char* FsyncModeName(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kAlways: return "always";
    case FsyncMode::kBatch: return "batch";
    case FsyncMode::kOff: return "off";
  }
  return "unknown";
}

std::string WalSegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return dir + "/" + name;
}

Result<std::vector<uint64_t>> ListWalSegments(const std::string& dir) {
  std::vector<uint64_t> seqs;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return seqs;
    return ErrnoError("cannot list WAL directory '" + dir + "'");
  }
  const size_t prefix_len = std::strlen(kSegmentPrefix);
  const size_t suffix_len = std::strlen(kSegmentSuffix);
  while (struct dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix_len + suffix_len ||
        name.compare(0, prefix_len, kSegmentPrefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len,
                     kSegmentSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    seqs.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

Result<CheckpointMeta> ReadCheckpointMeta(const std::string& dir) {
  const std::string path = dir + "/" + kMetaName;
  std::ifstream in(path);
  if (!in) return Status::NotFound("no checkpoint in '" + dir + "'");
  std::string line;
  std::getline(in, line);
  std::istringstream fields(line);
  std::string magic, lsn_text, image;
  if (!std::getline(fields, magic, '\t') ||
      !std::getline(fields, lsn_text, '\t') ||
      !std::getline(fields, image, '\t') || magic != kMetaMagic ||
      lsn_text.empty() ||
      lsn_text.find_first_not_of("0123456789") != std::string::npos ||
      image.empty() || image.find('/') != std::string::npos) {
    return Status::IoError("damaged checkpoint manifest '" + path + "'");
  }
  CheckpointMeta meta;
  meta.lsn = std::strtoull(lsn_text.c_str(), nullptr, 10);
  meta.image_dir = image;
  return meta;
}

Result<std::unique_ptr<WalManager>> WalManager::Open(
    const std::string& dir, const WalOptions& options, uint64_t next_lsn,
    uint64_t checkpoint_lsn) {
  FUZZYDB_RETURN_IF_ERROR(EnsureDirectory(dir));
  auto seqs = ListWalSegments(dir);
  FUZZYDB_RETURN_IF_ERROR(seqs.status());

  std::unique_ptr<WalManager> wal(new WalManager(dir, options, next_lsn));
  wal->checkpoint_lsn_ = checkpoint_lsn;
  for (uint64_t seq : seqs.value()) {
    wal->segments_.push_back(Segment{seq, /*first_lsn=*/0});
  }
  if (wal->segments_.empty()) {
    wal->segments_.push_back(Segment{1, 0});
    FUZZYDB_RETURN_IF_ERROR(wal->OpenSegment(1, /*create=*/true));
    SyncDirectory(dir);
  } else {
    FUZZYDB_RETURN_IF_ERROR(
        wal->OpenSegment(wal->segments_.back().seq, /*create=*/false));
  }
  WalMetrics::Instance()->segments->Set(
      static_cast<int64_t>(wal->segments_.size()));
  WalMetrics::Instance()->last_lsn->Set(
      static_cast<int64_t>(next_lsn == 0 ? 0 : next_lsn - 1));
  return wal;
}

WalManager::~WalManager() {
  if (fd_ >= 0) {
    if (options_.fsync != FsyncMode::kOff) (void)fsync(fd_);
    close(fd_);
  }
}

Status WalManager::OpenSegment(uint64_t seq, bool create) {
  const std::string path = SegmentPath(seq);
  int flags = O_WRONLY | O_CLOEXEC;
  if (create) flags |= O_CREAT | O_EXCL;
  const int fd = open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoError("cannot open WAL segment '" + path + "'");
  const off_t end = lseek(fd, 0, SEEK_END);
  if (end < 0) {
    close(fd);
    return ErrnoError("cannot seek WAL segment '" + path + "'");
  }
  if (fd_ >= 0) close(fd_);
  fd_ = fd;
  offset_ = static_cast<uint64_t>(end);
  return Status::OK();
}

std::string WalManager::SegmentPath(uint64_t seq) const {
  return WalSegmentPath(dir_, seq);
}

Status WalManager::RotateLocked() {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("wal/rotate"));
  // Make the outgoing segment durable before the log moves on; a crash
  // between rotation and the next sync must not lose its tail.
  FUZZYDB_RETURN_IF_ERROR(SyncLocked());
  const uint64_t seq = segments_.back().seq + 1;
  segments_.push_back(Segment{seq, 0});
  const Status opened = OpenSegment(seq, /*create=*/true);
  if (!opened.ok()) {
    segments_.pop_back();
    return opened;
  }
  SyncDirectory(dir_);
  WalMetrics* m = WalMetrics::Instance();
  m->rotations_total->Add(1);
  m->segments->Set(static_cast<int64_t>(segments_.size()));
  return Status::OK();
}

Status WalManager::SyncLocked() {
  if (unsynced_records_ == 0 && options_.fsync == FsyncMode::kBatch) {
    return Status::OK();
  }
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("wal/fsync"));
  if (fsync(fd_) != 0) return ErrnoError("WAL fsync failed");
  unsynced_records_ = 0;
  WalMetrics::Instance()->fsyncs_total->Add(1);
  return Status::OK();
}

Status WalManager::Append(WalRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  record->lsn = next_lsn_;
  std::vector<uint8_t> frame;
  EncodeWalRecord(*record, &frame);

  if (offset_ > 0 && offset_ + frame.size() > options_.segment_bytes) {
    FUZZYDB_RETURN_IF_ERROR(RotateLocked());
  }
  if (offset_ == 0 && segments_.back().first_lsn == 0) {
    segments_.back().first_lsn = record->lsn;
  }

  const uint64_t pre_offset = offset_;
  Status appended = FailPoints::Check("wal/append");
  if (appended.ok()) appended = WriteAll(fd_, frame.data(), frame.size());
  if (appended.ok()) {
    offset_ = pre_offset + frame.size();
    ++unsynced_records_;
    switch (options_.fsync) {
      case FsyncMode::kAlways:
        appended = SyncLocked();
        break;
      case FsyncMode::kBatch:
        if (unsynced_records_ >= options_.batch_records) {
          appended = SyncLocked();
        }
        break;
      case FsyncMode::kOff:
        unsynced_records_ = 0;
        break;
    }
  }
  if (!appended.ok()) {
    // Scrub the failed record (and nothing else: earlier records stay,
    // synced or not) so the durable log holds exactly the acknowledged
    // prefix -- the failed statement never happened.
    (void)ftruncate(fd_, static_cast<off_t>(pre_offset));
    (void)lseek(fd_, static_cast<off_t>(pre_offset), SEEK_SET);
    offset_ = pre_offset;
    return appended;
  }
  ++next_lsn_;
  WalMetrics* m = WalMetrics::Instance();
  m->appends_total->Add(1);
  m->append_bytes_total->Add(frame.size());
  m->last_lsn->Set(static_cast<int64_t>(record->lsn));
  return Status::OK();
}

Status WalManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.fsync == FsyncMode::kOff) return Status::OK();
  return SyncLocked();
}

Status WalManager::Checkpoint(const Catalog& catalog, BufferPool* pool,
                              uint64_t* checkpoint_lsn) {
  FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("wal/checkpoint"));
  uint64_t durable_lsn = 0;
  uint64_t active_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FUZZYDB_RETURN_IF_ERROR(SyncLocked());
    durable_lsn = next_lsn_ - 1;
    // A fresh segment makes pruning exact: every earlier segment holds
    // only records the image below covers.
    FUZZYDB_RETURN_IF_ERROR(RotateLocked());
    active_seq = segments_.back().seq;
  }

  // 1. Save the image. Not yet the live checkpoint: recovery ignores
  //    ckpt_* directories checkpoint.meta does not name.
  const std::string image = "ckpt_" + std::to_string(durable_lsn);
  FUZZYDB_RETURN_IF_ERROR(SaveDatabase(catalog, dir_ + "/" + image, pool));

  // 2. Commit it: write the manifest to the side, fsync, then atomically
  //    rename over checkpoint.meta. The rename is the commit point.
  const std::string meta_path = dir_ + "/" + kMetaName;
  const std::string tmp_path = meta_path + ".tmp";
  {
    const int fd =
        open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoError("cannot write '" + tmp_path + "'");
    const std::string line = std::string(kMetaMagic) + "\t" +
                             std::to_string(durable_lsn) + "\t" + image + "\n";
    Status wrote =
        WriteAll(fd, reinterpret_cast<const uint8_t*>(line.data()),
                 line.size());
    if (wrote.ok() && fsync(fd) != 0) {
      wrote = ErrnoError("cannot sync '" + tmp_path + "'");
    }
    close(fd);
    if (!wrote.ok()) {
      (void)unlink(tmp_path.c_str());
      return wrote;
    }
  }
  if (std::rename(tmp_path.c_str(), meta_path.c_str()) != 0) {
    const Status failed = ErrnoError("cannot commit '" + meta_path + "'");
    (void)unlink(tmp_path.c_str());
    return failed;
  }
  SyncDirectory(dir_);

  // 3. Prune what the new checkpoint supersedes: every sealed segment
  //    and every other image. Best effort -- recovery sweeps leftovers.
  std::string old_image;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Segment> live;
    for (const Segment& seg : segments_) {
      if (seg.seq >= active_seq) {
        live.push_back(seg);
      } else {
        (void)unlink(SegmentPath(seg.seq).c_str());
      }
    }
    segments_ = std::move(live);
    if (checkpoint_lsn_ != durable_lsn) {
      old_image = "ckpt_" + std::to_string(checkpoint_lsn_);
    }
    checkpoint_lsn_ = durable_lsn;
    WalMetrics::Instance()->segments->Set(
        static_cast<int64_t>(segments_.size()));
  }
  if (!old_image.empty()) {
    RemoveCheckpointImage(dir_, old_image);
  }
  WalMetrics::Instance()->checkpoints_total->Add(1);

  // 4. An informational marker in the fresh segment, so the log itself
  //    records when checkpoints happened (sys.wal, debugging).
  WalRecord marker;
  marker.type = WalRecordType::kCheckpoint;
  marker.checkpoint_lsn = durable_lsn;
  FUZZYDB_RETURN_IF_ERROR(Append(&marker));

  if (checkpoint_lsn != nullptr) *checkpoint_lsn = durable_lsn;
  return Status::OK();
}

uint64_t WalManager::LastLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

uint64_t WalManager::CheckpointLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_lsn_;
}

uint64_t WalManager::SegmentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

Relation WalManager::ToRelation() const {
  Relation rel("sys.wal", Schema{{"segment", ValueType::kString},
                                 {"bytes", ValueType::kFuzzy},
                                 {"active", ValueType::kFuzzy},
                                 {"first_lsn", ValueType::kFuzzy}});
  std::lock_guard<std::mutex> lock(mu_);
  for (const Segment& seg : segments_) {
    const bool active = seg.seq == segments_.back().seq;
    const std::string path = SegmentPath(seg.seq);
    const uint64_t bytes = active ? offset_ : FileBytes(path);
    const size_t slash = path.find_last_of('/');
    (void)rel.Append(Tuple(
        {Value::String(slash == std::string::npos ? path
                                                  : path.substr(slash + 1)),
         Value::Number(static_cast<double>(bytes)),
         Value::Number(active ? 1.0 : 0.0),
         Value::Number(static_cast<double>(seg.first_lsn))},
        /*degree=*/1.0));
  }
  return rel;
}

void RemoveCheckpointImage(const std::string& dir, const std::string& image) {
  const std::string path = dir + "/" + image;
  DIR* d = opendir(path.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      (void)unlink((path + "/" + name).c_str());
    }
    closedir(d);
  }
  (void)rmdir(path.c_str());
}

}  // namespace wal
}  // namespace fuzzydb
