#include "wal/wal_record.h"

#include <cstring>

#include "storage/serializer.h"

namespace fuzzydb {
namespace wal {

namespace {

constexpr uint32_t kMagic = 0x4C415746;  // "FWAL" little-endian
constexpr size_t kHeaderSize = 12;       // magic + length + crc
// Sanity bound on one record: a tuple fits a 4 KiB page, names are
// short; anything claiming more than this is a damaged length field.
constexpr uint32_t kMaxPayload = 1 << 20;

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t pos = out->size();
  out->resize(pos + sizeof(v));
  std::memcpy(out->data() + pos, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t pos = out->size();
  out->resize(pos + sizeof(v));
  std::memcpy(out->data() + pos, &v, sizeof(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  const size_t pos = out->size();
  out->resize(pos + sizeof(v));
  std::memcpy(out->data() + pos, &v, sizeof(v));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), end_(size) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > end_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool U32(uint32_t* v) { return Fixed(v); }
  bool U64(uint64_t* v) { return Fixed(v); }
  bool F64(double* v) { return Fixed(v); }
  bool String(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || pos_ + n > end_) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool Bytes(size_t n, const uint8_t** out) {
    if (pos_ + n > end_) return false;
    *out = data_ + pos_;
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == end_; }

 private:
  template <typename T>
  bool Fixed(T* v) {
    if (pos_ + sizeof(T) > end_) return false;
    std::memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  const uint8_t* data_;
  size_t pos_ = 0;
  size_t end_;
};

bool DecodeBody(Reader* in, WalRecord* record) {
  switch (record->type) {
    case WalRecordType::kCreateTable: {
      if (!in->String(&record->table)) return false;
      uint32_t ncols = 0;
      if (!in->U32(&ncols)) return false;
      Schema schema;
      for (uint32_t i = 0; i < ncols; ++i) {
        std::string name;
        uint8_t tag = 0;
        if (!in->String(&name) || !in->U8(&tag) || tag > 2) return false;
        if (!schema.AddColumn(Column{name, static_cast<ValueType>(tag)})
                 .ok()) {
          return false;
        }
      }
      record->schema = std::move(schema);
      return true;
    }
    case WalRecordType::kInsert: {
      if (!in->String(&record->table)) return false;
      uint32_t len = 0;
      const uint8_t* blob = nullptr;
      if (!in->U32(&len) || !in->Bytes(len, &blob)) return false;
      auto tuple = DeserializeTuple(blob, len);
      if (!tuple.ok()) return false;
      record->tuple = std::move(tuple).value();
      return true;
    }
    case WalRecordType::kDropTable:
      return in->String(&record->table);
    case WalRecordType::kDefineTerm: {
      double a = 0, b = 0, c = 0, d = 0;
      if (!in->String(&record->term) || !in->F64(&a) || !in->F64(&b) ||
          !in->F64(&c) || !in->F64(&d)) {
        return false;
      }
      record->shape = Trapezoid(a, b, c, d);
      return true;
    }
    case WalRecordType::kCheckpoint:
      return in->U64(&record->checkpoint_lsn);
  }
  return false;
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCreateTable: return "create";
    case WalRecordType::kInsert: return "insert";
    case WalRecordType::kDropTable: return "drop";
    case WalRecordType::kDefineTerm: return "define";
    case WalRecordType::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

void EncodeWalRecord(const WalRecord& record, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  PutU64(&payload, record.lsn);
  PutU8(&payload, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kCreateTable: {
      PutString(&payload, record.table);
      PutU32(&payload, static_cast<uint32_t>(record.schema.NumColumns()));
      for (const Column& column : record.schema.columns()) {
        PutString(&payload, column.name);
        PutU8(&payload, static_cast<uint8_t>(column.type));
      }
      break;
    }
    case WalRecordType::kInsert: {
      PutString(&payload, record.table);
      std::vector<uint8_t> blob;
      SerializeTuple(record.tuple, &blob);
      PutU32(&payload, static_cast<uint32_t>(blob.size()));
      payload.insert(payload.end(), blob.begin(), blob.end());
      break;
    }
    case WalRecordType::kDropTable:
      PutString(&payload, record.table);
      break;
    case WalRecordType::kDefineTerm:
      PutString(&payload, record.term);
      PutF64(&payload, record.shape.a());
      PutF64(&payload, record.shape.b());
      PutF64(&payload, record.shape.c());
      PutF64(&payload, record.shape.d());
      break;
    case WalRecordType::kCheckpoint:
      PutU64(&payload, record.checkpoint_lsn);
      break;
  }
  PutU32(out, kMagic);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, WalCrc32(payload.data(), payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

WalDecodeOutcome DecodeWalRecord(const uint8_t* data, size_t size,
                                 WalRecord* record, size_t* consumed) {
  if (size == 0) return WalDecodeOutcome::kEnd;
  if (size < kHeaderSize) return WalDecodeOutcome::kCorrupt;
  uint32_t magic = 0, length = 0, crc = 0;
  std::memcpy(&magic, data, 4);
  std::memcpy(&length, data + 4, 4);
  std::memcpy(&crc, data + 8, 4);
  if (magic != kMagic || length > kMaxPayload ||
      size < kHeaderSize + length) {
    return WalDecodeOutcome::kCorrupt;
  }
  const uint8_t* payload = data + kHeaderSize;
  if (WalCrc32(payload, length) != crc) return WalDecodeOutcome::kCorrupt;
  Reader in(payload, length);
  uint8_t type = 0;
  if (!in.U64(&record->lsn) || !in.U8(&type) || type < 1 || type > 5) {
    return WalDecodeOutcome::kCorrupt;
  }
  record->type = static_cast<WalRecordType>(type);
  if (!DecodeBody(&in, record) || !in.AtEnd()) {
    return WalDecodeOutcome::kCorrupt;
  }
  *consumed = kHeaderSize + length;
  return WalDecodeOutcome::kRecord;
}

uint32_t WalCrc32(const uint8_t* data, size_t size) {
  // Table-driven reflected CRC-32 (IEEE 802.3 polynomial), the classic
  // zlib-compatible checksum; built once, thread-safe since C++11.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace wal
}  // namespace fuzzydb
