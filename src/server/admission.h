// Admission control for the multi-session server: a bounded request
// queue in front of a fixed worker pool, with fair-share memory
// budgeting and clean overload shedding.
//
// Every request line a connection reads is submitted here; workers pop
// requests in FIFO order and run them (one Session never has more than
// one request in flight, so per-session ordering is the connection
// loop's, not the scheduler's). When the queue is full, Submit refuses
// immediately -- the server answers that frame RESOURCE_EXHAUSTED
// without blocking the connection or touching the engine, so an
// overloaded server stays responsive and never deadlocks on its own
// backlog.
//
// Fair-share memory: the server's total budget divided by the worker
// count bounds what any single admitted query may charge against its
// QueryContext memory budget (sessions SET a smaller budget if they
// want; they cannot SET a larger one). Since at most `workers` queries
// execute concurrently, the process-wide budget holds without any
// global accounting.
//
// Queue waits are recorded per request into
// fuzzydb_server_queue_wait_seconds_total / _us and surfaced in each
// reply frame's queue_wait_ms.
#ifndef FUZZYDB_SERVER_ADMISSION_H_
#define FUZZYDB_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fuzzydb {
namespace server {

struct AdmissionConfig {
  size_t workers = 2;
  size_t queue_depth = 16;         // pending requests beyond the workers
  uint64_t memory_budget_total = 0;  // bytes; 0 = unconstrained
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);
  ~AdmissionController();
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Enqueues a request. The job receives its queue wait in
  /// milliseconds. Returns false without running anything when the
  /// queue is at capacity or the controller is shutting down -- the
  /// caller sheds the request as RESOURCE_EXHAUSTED.
  bool Submit(std::function<void(double queue_wait_ms)> job);

  /// Stops admitting, runs every queued job to completion, and joins
  /// the workers. Idempotent.
  void Shutdown();

  /// The per-query fair-share memory budget (total / workers); 0 when
  /// the server is unconstrained.
  uint64_t fair_share_budget() const { return fair_share_budget_; }

  size_t workers() const { return threads_.size(); }

 private:
  struct Queued {
    std::function<void(double)> job;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  const size_t queue_depth_;
  const uint64_t fair_share_budget_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Queued> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace server
}  // namespace fuzzydb

#endif  // FUZZYDB_SERVER_ADMISSION_H_
