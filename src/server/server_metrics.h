// The server's aggregate metric set, resolved once from the global
// MetricsRegistry (the per-session view lives in sys.sessions, which
// would explode the series space as labels). These are direct metric
// holders, not routed through the EngineMetrics enable tap: server
// accounting is part of the protocol contract (shed counts back the
// RESOURCE_EXHAUSTED frames), so it records even when engine metrics
// are disabled. Every series here has a catalog row in
// docs/operations.md.
#ifndef FUZZYDB_SERVER_SERVER_METRICS_H_
#define FUZZYDB_SERVER_SERVER_METRICS_H_

#include "obs/metrics.h"

namespace fuzzydb {
namespace server {

struct ServerMetrics {
  Counter* connections_total;    // fuzzydb_server_connections_total
  Gauge* sessions_active;        // fuzzydb_server_sessions_active
  Counter* requests_total;       // fuzzydb_server_requests_total
  Counter* errors_total;         // fuzzydb_server_errors_total
  Counter* shed_total;           // fuzzydb_server_shed_total
  Gauge* queue_depth;            // fuzzydb_server_queue_depth
  Counter* queue_wait_seconds;   // fuzzydb_server_queue_wait_seconds_total
  Histogram* queue_wait_us;      // fuzzydb_server_queue_wait_us

  /// Always non-null; registers the series on first use.
  static ServerMetrics* Instance();
};

}  // namespace server
}  // namespace fuzzydb

#endif  // FUZZYDB_SERVER_SERVER_METRICS_H_
