#include "server/admission.h"

#include "server/server_metrics.h"

namespace fuzzydb {
namespace server {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : queue_depth_(config.queue_depth == 0 ? 1 : config.queue_depth),
      fair_share_budget_(
          config.memory_budget_total == 0
              ? 0
              : config.memory_budget_total /
                    (config.workers == 0 ? 1 : config.workers)) {
  const size_t workers = config.workers == 0 ? 1 : config.workers;
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionController::~AdmissionController() { Shutdown(); }

bool AdmissionController::Submit(
    std::function<void(double queue_wait_ms)> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= queue_depth_) return false;
    queue_.push_back(
        Queued{std::move(job), std::chrono::steady_clock::now()});
    ServerMetrics::Instance()->queue_depth->Set(
        static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void AdmissionController::WorkerLoop() {
  while (true) {
    Queued item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      item = std::move(queue_.front());
      queue_.pop_front();
      ServerMetrics::Instance()->queue_depth->Set(
          static_cast<int64_t>(queue_.size()));
    }
    const auto waited = std::chrono::steady_clock::now() - item.enqueued;
    const uint64_t wait_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(waited)
            .count());
    ServerMetrics* metrics = ServerMetrics::Instance();
    metrics->queue_wait_seconds->Add(wait_us);
    metrics->queue_wait_us->Record(wait_us);
    item.job(static_cast<double>(wait_us) / 1e3);
  }
}

}  // namespace server
}  // namespace fuzzydb
