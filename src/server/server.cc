#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <utility>

#include "obs/query_registry.h"
#include "server/server_metrics.h"
#include "server/wire.h"
#include "wal/recovery.h"

namespace fuzzydb {
namespace server {

namespace {

// The server whose sessions the process-wide sys.sessions provider
// renders. The provider itself is registered once per process (the
// shell-layer registry is append-only), so it indirects through this
// slot instead of capturing a Server*.
std::mutex g_sessions_mu;
Server* g_sessions_server = nullptr;

Relation EmptySessionsRelation() {
  return Relation("sys.sessions", Schema{{"id", ValueType::kFuzzy},
                                         {"state", ValueType::kString},
                                         {"statements", ValueType::kFuzzy},
                                         {"errors", ValueType::kFuzzy},
                                         {"age_ms", ValueType::kFuzzy},
                                         {"peer", ValueType::kString}});
}

void RegisterSessionsProvider() {
  static std::once_flag once;
  std::call_once(once, [] {
    Shell::RegisterSystemRelationProvider("sys.sessions", [] {
      std::lock_guard<std::mutex> lock(g_sessions_mu);
      if (g_sessions_server == nullptr) return EmptySessionsRelation();
      return g_sessions_server->SessionsRelation();
    });
  });
}

/// Writes the whole buffer, riding out partial writes; MSG_NOSIGNAL so
/// a client that hung up yields an error, not SIGPIPE.
bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return false;
    written += static_cast<size_t>(n);
  }
  return true;
}

std::string PeerName(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "?";
  }
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Server::Server(const ServerConfig& config)
    : config_(config),
      admission_({config.workers, config.queue_depth,
                  config.memory_budget_total}) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (!config_.wal_dir.empty()) {
    // Recover the shared durable database before accepting anyone:
    // every session attaches to this catalog + WAL pair.
    BufferPool pool(64);
    auto recovered =
        wal::OpenWalDatabase(config_.wal_dir, config_.wal_options, &pool);
    FUZZYDB_RETURN_IF_ERROR(recovered.status());
    shared_catalog_ = std::move(recovered->catalog);
    wal_ = std::move(recovered->manager);
  }
  RegisterSessionsProvider();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("cannot bind port " +
                           std::to_string(config_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  running_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_sessions_mu);
    g_sessions_server = this;
  }
  // The accept loop works on its own copy of the fd: Stop() writing
  // listen_fd_ = -1 must not race the loop's reads.
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  // 1. Stop admitting connections: closing the listener pops the accept
  //    loop out of accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Cancel every in-flight query: each lands as a CANCELLED frame on
  //    its own connection within one morsel of work.
  ActiveQueryRegistry::Global().CancelAll();
  // 3. Unblock readers and join every connection thread; replies still
  //    in flight are written before each thread exits.
  // A connection's fd is written once (before its thread starts) and
  // closed only after its thread is joined (ReapConnections), so this
  // shutdown never races a close or a reused descriptor.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& [id, connection] : connections_) {
      ::shutdown(connection->fd, SHUT_RD);
    }
  }
  ReapConnections(/*all=*/true);
  // 4. Drain the admission queue and join the workers.
  admission_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(g_sessions_mu);
    if (g_sessions_server == this) g_sessions_server = nullptr;
  }
}

size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(connections_mu_);
  size_t live = 0;
  for (const auto& [id, connection] : connections_) {
    if (!connection->done.load(std::memory_order_relaxed)) ++live;
  }
  return live;
}

Relation Server::SessionsRelation() const {
  Relation rel = EmptySessionsRelation();
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (const auto& [id, connection] : connections_) {
    const bool done = connection->done.load(std::memory_order_relaxed);
    const double age_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - connection->connected)
                .count()) /
        1e3;
    (void)rel.Append(Tuple(
        {Value::Number(static_cast<double>(id)),
         Value::String(done ? "closing" : "open"),
         Value::Number(static_cast<double>(connection->session->statements())),
         Value::Number(static_cast<double>(connection->session->errors())),
         Value::Number(age_ms), Value::String(connection->peer)},
        /*degree=*/1.0));
  }
  return rel;
}

void Server::AcceptLoop(int listen_fd) {
  while (running_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed: Stop() is running
    }
    ReapConnections(/*all=*/false);
    ServerMetrics* metrics = ServerMetrics::Instance();
    metrics->connections_total->Add();
    metrics->sessions_active->Add(1);
    const uint64_t id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    connection->connected = std::chrono::steady_clock::now();
    connection->peer = PeerName(fd);
    connection->session = std::make_unique<Session>(
        id, config_.session_defaults, admission_.fair_share_budget(),
        shared_catalog(), wal_.get());
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.emplace(id, std::move(connection));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void Server::ServeConnection(Connection* connection) {
  ServerMetrics* metrics = ServerMetrics::Instance();
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or reset (or Stop()'s SHUT_RD)
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      metrics->requests_total->Add();
      Session* session = connection->session.get();
      std::promise<ReplyFrame> promise;
      std::future<ReplyFrame> future = promise.get_future();
      const bool admitted = admission_.Submit(
          [session, &line, &promise](double queue_wait_ms) {
            ReplyFrame frame = session->Execute(line);
            frame.queue_wait_ms = queue_wait_ms;
            promise.set_value(std::move(frame));
          });
      ReplyFrame frame;
      if (admitted) {
        frame = future.get();
      } else {
        // Overload shedding: a full queue answers immediately instead
        // of stacking the connection behind an unbounded backlog.
        metrics->shed_total->Add();
        frame.session_id = session->id();
        frame.seq = session->statements() + 1;
        frame.status = "RESOURCE_EXHAUSTED";
        frame.error = "admission queue full (depth " +
                      std::to_string(config_.queue_depth) +
                      "); retry later";
      }
      if (frame.status != "OK") metrics->errors_total->Add();
      if (!WriteAll(connection->fd, RenderReplyFrame(frame) + "\n")) {
        open = false;
      }
      if (frame.goodbye) open = false;
    }
  }
  // Shut down (peer sees the close promptly) but do NOT close: the fd
  // number stays allocated until ReapConnections closes it after the
  // join, so Stop()'s shutdown can never hit a reused descriptor.
  ::shutdown(connection->fd, SHUT_RDWR);
  metrics->sessions_active->Add(-1);
  connection->done.store(true, std::memory_order_relaxed);
}

void Server::ReapConnections(bool all) {
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || it->second->done.load(std::memory_order_relaxed)) {
        to_join.push_back(std::move(it->second));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : to_join) {
    if (connection->thread.joinable()) connection->thread.join();
    if (connection->fd >= 0) ::close(connection->fd);
  }
}

}  // namespace server
}  // namespace fuzzydb
