// One client connection's execution state: a Session wraps its own
// Shell (own catalog, own terms, own options), so concurrent clients
// are isolated the way two fuzzydb_shell processes would be, while
// sharing the process-wide services (metrics, cache, registry, journal)
// through the same code paths the serial shell uses -- which is what
// makes server answers bit-identical to a serial baseline by
// construction.
//
// Per-session execution options are SET-able over the wire:
//
//   SET batch_size N        lanes per batch (0 = scalar path)
//   SET cache on|off        consult the process-wide cross-query cache
//   SET slow_query_ms X     slow-query-log threshold (0 = off)
//   SET timeout_ms X        per-query deadline (0 = none)
//   SET memory_budget N[kmg] per-query memory budget, clamped to the
//                           admission controller's fair share
//   SET threads N           engine worker threads (0 = hardware)
//
// Everything else on a request line -- SQL statements ending in ';',
// shell dot-commands -- is fed to the wrapped Shell verbatim.
#ifndef FUZZYDB_SERVER_SESSION_H_
#define FUZZYDB_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "server/wire.h"
#include "shell/shell.h"

namespace fuzzydb {
namespace server {

/// Session-wide defaults inherited from the server configuration; each
/// session may override its own copies via SET.
struct SessionDefaults {
  size_t batch_size = 1024;
  bool cache = true;
  double slow_query_ms = 0.0;
  double timeout_ms = 0.0;
  uint64_t memory_budget = 0;  // 0 = unlimited (before fair-share clamp)
  size_t threads = 0;          // 0 = hardware concurrency
};

class Session : public ShellResultSink {
 public:
  /// `fair_share_budget` is the admission controller's per-query memory
  /// share (0 = unconstrained): the effective per-query budget is the
  /// session's SET value clamped to it. When `shared_catalog` is
  /// non-null, statements execute against it (the server's durable WAL
  /// database) instead of a private per-session catalog; MVCC snapshot
  /// reads and the WAL commit lock make the sharing safe.
  Session(uint64_t id, const SessionDefaults& defaults,
          uint64_t fair_share_budget, Catalog* shared_catalog = nullptr,
          wal::WalManager* wal = nullptr);

  /// Executes one request line (a SET, a dot-command, or SQL) and
  /// returns its reply frame. Not thread-safe: the server serializes
  /// requests per session (one in flight per connection).
  ReplyFrame Execute(const std::string& line);

  uint64_t id() const { return id_; }
  /// Requests completed so far (readable from any thread).
  uint64_t statements() const {
    return statements_.load(std::memory_order_relaxed);
  }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }

  /// The per-query memory budget actually in force: the session's SET
  /// value clamped to the admission fair share (0 = unconstrained).
  uint64_t effective_memory_budget() const {
    return shell_.memory_budget();
  }

  // ShellResultSink: captures the answer relation into the frame being
  // built by the current Execute call.
  void OnAnswer(const Relation& answer) override;

 private:
  /// Handles "SET key value"; returns false when the line is not a SET.
  bool ExecuteSet(const std::string& line, ReplyFrame* frame);
  void ApplyOptions();

  const uint64_t id_;
  const uint64_t fair_share_budget_;
  SessionDefaults options_;
  Shell shell_;
  ReplyFrame* current_frame_ = nullptr;  // non-null inside Execute
  std::atomic<uint64_t> statements_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace server
}  // namespace fuzzydb

#endif  // FUZZYDB_SERVER_SESSION_H_
