#include "server/wire.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace fuzzydb {
namespace server {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Shortest decimal form that parses back to exactly the same double:
/// answer degrees cross the wire bit-identical (the multi-session
/// determinism matrix compares them against an in-process baseline),
/// while common values still render compactly ("0.5", not 17 digits).
std::string RoundTripDouble(double value) {
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace

std::string RenderReplyFrame(const ReplyFrame& frame) {
  std::ostringstream out;
  out << "{\"session\":" << frame.session_id << ",\"seq\":" << frame.seq
      << ",\"status\":\"" << JsonEscape(frame.status) << "\",\"error\":\""
      << JsonEscape(frame.error) << "\",\"text\":\""
      << JsonEscape(frame.text)
      << "\",\"elapsed_ms\":" << RoundTripDouble(frame.elapsed_ms)
      << ",\"queue_wait_ms\":" << RoundTripDouble(frame.queue_wait_ms);
  if (frame.has_answer) {
    out << ",\"columns\":[";
    for (size_t i = 0; i < frame.columns.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << JsonEscape(frame.columns[i]) << "\"";
    }
    out << "],\"rows\":[";
    for (size_t i = 0; i < frame.rows.size(); ++i) {
      if (i > 0) out << ",";
      out << "[";
      for (size_t j = 0; j < frame.rows[i].size(); ++j) {
        if (j > 0) out << ",";
        out << "\"" << JsonEscape(frame.rows[i][j]) << "\"";
      }
      out << "]";
    }
    out << "],\"degrees\":[";
    for (size_t i = 0; i < frame.degrees.size(); ++i) {
      if (i > 0) out << ",";
      out << RoundTripDouble(frame.degrees[i]);
    }
    out << "]";
  }
  if (frame.goodbye) out << ",\"goodbye\":true";
  out << "}";
  return out.str();
}

namespace {

// A pocket parser for exactly the JSON this codec emits: objects with
// string/number/bool values plus the columns/rows/degrees arrays. No
// nesting beyond rows' array-of-arrays, no unicode surrogate pairs
// (JsonEscape never emits them for the byte strings we carry).
class FrameParser {
 public:
  explicit FrameParser(const std::string& text) : text_(text) {}

  bool Parse(ReplyFrame* frame) {
    SkipSpace();
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return AtEnd();
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      SkipSpace();
      if (!ParseValue(key, frame)) return false;
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) return AtEnd();
      return false;
    }
  }

 private:
  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4 || code < 0 || code > 0xff) {
            return false;  // the emitter only escapes control bytes
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool ParseNumber(double* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  bool ParseValue(const std::string& key, ReplyFrame* frame) {
    if (key == "session" || key == "seq" || key == "elapsed_ms" ||
        key == "queue_wait_ms") {
      double number = 0;
      if (!ParseNumber(&number)) return false;
      if (key == "session") {
        frame->session_id = static_cast<uint64_t>(number);
      } else if (key == "seq") {
        frame->seq = static_cast<uint64_t>(number);
      } else if (key == "elapsed_ms") {
        frame->elapsed_ms = number;
      } else {
        frame->queue_wait_ms = number;
      }
      return true;
    }
    if (key == "status") return ParseString(&frame->status);
    if (key == "error") return ParseString(&frame->error);
    if (key == "text") return ParseString(&frame->text);
    if (key == "goodbye") {
      if (text_.compare(pos_, 4, "true") == 0) {
        pos_ += 4;
        frame->goodbye = true;
        return true;
      }
      if (text_.compare(pos_, 5, "false") == 0) {
        pos_ += 5;
        return true;
      }
      return false;
    }
    if (key == "columns") {
      frame->has_answer = true;
      return ParseStringArray(&frame->columns);
    }
    if (key == "degrees") {
      frame->has_answer = true;
      return ParseNumberArray(&frame->degrees);
    }
    if (key == "rows") {
      frame->has_answer = true;
      if (!Consume('[')) return false;
      SkipSpace();
      frame->rows.clear();
      if (Consume(']')) return true;
      while (true) {
        std::vector<std::string> row;
        if (!ParseStringArray(&row)) return false;
        frame->rows.push_back(std::move(row));
        SkipSpace();
        if (Consume(',')) {
          SkipSpace();
          continue;
        }
        return Consume(']');
      }
    }
    return false;  // unknown key: not this codec's schema
  }

  bool ParseStringArray(std::vector<std::string>* out) {
    if (!Consume('[')) return false;
    SkipSpace();
    out->clear();
    if (Consume(']')) return true;
    while (true) {
      std::string value;
      if (!ParseString(&value)) return false;
      out->push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseNumberArray(std::vector<double>* out) {
    if (!Consume('[')) return false;
    SkipSpace();
    out->clear();
    if (Consume(']')) return true;
    while (true) {
      double value = 0;
      if (!ParseNumber(&value)) return false;
      out->push_back(value);
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseReplyFrame(const std::string& line, ReplyFrame* frame) {
  *frame = ReplyFrame();
  return FrameParser(line).Parse(frame);
}

}  // namespace server
}  // namespace fuzzydb
