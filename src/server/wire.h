// The line-protocol frame codec shared by the server, the client tool,
// and the tests.
//
// Requests are one statement per line of plain text (SQL ending in ';',
// a shell dot-command, or a session-level SET); replies are exactly one
// JSON object per line (JSONL), so a client can pair every request with
// its reply by reading one line back. A reply frame carries the
// statement's machine-readable outcome (status code + error text), the
// shell's rendered text output, and -- for successful SELECTs -- the
// answer relation as structured columns/rows/degrees, captured through
// ShellResultSink without re-running anything.
//
// The codec is deliberately self-contained (no third-party JSON): the
// emitter writes the fixed schema below, and the parser reads exactly
// that schema back, so fuzzydb_client and the bench harness round-trip
// frames without guessing.
#ifndef FUZZYDB_SERVER_WIRE_H_
#define FUZZYDB_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fuzzydb {
namespace server {

/// One reply frame: everything the server says about one request line.
struct ReplyFrame {
  uint64_t session_id = 0;
  uint64_t seq = 0;            // per-session request counter, from 1
  std::string status = "OK";   // StatusCodeName(): OK, CANCELLED, ...
  std::string error;           // rendered error text; empty when OK
  std::string text;            // the shell's rendered output
  bool has_answer = false;     // SELECT answered: columns/rows/degrees set
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;  // rendered values
  std::vector<double> degrees;                 // one per row
  double elapsed_ms = 0.0;     // execution wall time
  double queue_wait_ms = 0.0;  // admission-queue wait
  bool goodbye = false;        // .quit: the server closes after this
};

/// Serializes one frame as a single JSON line (no trailing newline).
std::string RenderReplyFrame(const ReplyFrame& frame);

/// Parses a frame rendered by RenderReplyFrame. Returns false (leaving
/// `frame` default-initialized fields unspecified) when the line is not
/// a well-formed frame of this codec's schema.
bool ParseReplyFrame(const std::string& line, ReplyFrame* frame);

/// JSON string escaping used by the codec (exposed for tests).
std::string JsonEscape(const std::string& s);

}  // namespace server
}  // namespace fuzzydb

#endif  // FUZZYDB_SERVER_WIRE_H_
