#include "server/server_metrics.h"

namespace fuzzydb {
namespace server {

ServerMetrics* ServerMetrics::Instance() {
  static ServerMetrics* metrics = [] {
    auto* m = new ServerMetrics();
    MetricsRegistry& reg = MetricsRegistry::Global();
    m->connections_total =
        reg.GetCounter("fuzzydb_server_connections_total");
    m->sessions_active = reg.GetGauge("fuzzydb_server_sessions_active");
    m->requests_total = reg.GetCounter("fuzzydb_server_requests_total");
    m->errors_total = reg.GetCounter("fuzzydb_server_errors_total");
    m->shed_total = reg.GetCounter("fuzzydb_server_shed_total");
    m->queue_depth = reg.GetGauge("fuzzydb_server_queue_depth");
    m->queue_wait_seconds =
        reg.GetTimeCounter("fuzzydb_server_queue_wait_seconds_total");
    m->queue_wait_us = reg.GetHistogram("fuzzydb_server_queue_wait_us");
    return m;
  }();
  return metrics;
}

}  // namespace server
}  // namespace fuzzydb
