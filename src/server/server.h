// The multi-session TCP front end: concurrent clients over a line
// protocol (docs/operations.md, "Server mode").
//
// Life of a request: a connection thread reads one line, submits it to
// the AdmissionController's bounded queue, and blocks until a worker
// has executed it against the connection's Session (its own Shell +
// catalog) and produced a ReplyFrame; the connection thread then writes
// the frame back as one JSON line. A full queue is answered
// RESOURCE_EXHAUSTED immediately -- the connection itself never blocks
// on someone else's backlog. At most one request per session is in
// flight, so per-session ordering is by construction and sessions never
// contend on their own state.
//
// Shutdown is graceful: Stop() closes the listener, cancels every
// in-flight query through ActiveQueryRegistry::CancelAll() (each lands
// as a well-formed CANCELLED frame), drains the queue, and joins every
// connection thread. SIGINT in server mode routes here (see
// tools/fuzzydb_server.cc).
//
// Observability: aggregate fuzzydb_server_* metrics (server_metrics.h)
// and the sys.sessions system relation (one row per live session,
// registered through Shell::RegisterSystemRelationProvider so any
// session can SELECT it).
#ifndef FUZZYDB_SERVER_SERVER_H_
#define FUZZYDB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"
#include "server/admission.h"
#include "server/session.h"

namespace fuzzydb {
namespace server {

struct ServerConfig {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port,
  /// readable from port() after Start().
  int port = 0;
  size_t workers = 2;
  size_t queue_depth = 16;
  uint64_t memory_budget_total = 0;  // bytes; 0 = unconstrained
  SessionDefaults session_defaults;
  /// When non-empty, Start() recovers the WAL database in this
  /// directory and every session shares it: writes are logged and
  /// durable, reads are MVCC snapshots. When empty (the default), each
  /// session keeps its own private in-memory catalog.
  std::string wal_dir;
  wal::WalOptions wal_options;
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Fails (IoError) when
  /// the port is taken.
  Status Start();

  /// The bound port (after Start()).
  int port() const { return port_; }

  /// Graceful stop: close the listener, cancel in-flight queries, drain
  /// the admission queue, join every connection. Idempotent; also runs
  /// on destruction.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  size_t active_sessions() const;

  /// The shared durable catalog (WAL mode only; null otherwise). Test
  /// hooks: production access goes through the sessions.
  Catalog* shared_catalog() {
    return config_.wal_dir.empty() ? nullptr : &shared_catalog_;
  }
  wal::WalManager* wal() { return wal_.get(); }

  /// The sys.sessions relation over every live session: (id, state,
  /// statements, errors, age_ms, peer), degree 1 per row. The provider
  /// registered with the shell layer serves this for whichever server
  /// instance is currently running.
  Relation SessionsRelation() const;

 private:
  struct Connection {
    std::thread thread;
    int fd = -1;
    std::unique_ptr<Session> session;
    std::chrono::steady_clock::time_point connected;
    std::string peer;
    std::atomic<bool> done{false};
  };

  void AcceptLoop(int listen_fd);
  void ServeConnection(Connection* connection);
  /// Joins and erases finished connections; with `all`, joins every
  /// connection (Stop()).
  void ReapConnections(bool all);

  const ServerConfig config_;
  AdmissionController admission_;
  Catalog shared_catalog_;  // WAL mode: every session's database
  std::unique_ptr<wal::WalManager> wal_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_session_id_{1};
  std::thread accept_thread_;
  mutable std::mutex connections_mu_;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
};

}  // namespace server
}  // namespace fuzzydb

#endif  // FUZZYDB_SERVER_SERVER_H_
