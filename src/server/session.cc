#include "server/session.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace fuzzydb {
namespace server {

namespace {

std::vector<std::string> Words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream stream(line);
  std::string word;
  while (stream >> word) words.push_back(word);
  return words;
}

/// "64m" -> 64 MiB; bare numbers are bytes. Mirrors the fuzzydb_shell
/// --memory-budget flag syntax. Returns false on malformed input.
bool ParseByteSize(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str()) return false;
  uint64_t multiplier = 1;
  if (*end != '\0') {
    if (end[1] != '\0') return false;
    switch (*end | 0x20) {
      case 'k':
        multiplier = 1024;
        break;
      case 'm':
        multiplier = 1024 * 1024;
        break;
      case 'g':
        multiplier = 1024ull * 1024 * 1024;
        break;
      default:
        return false;
    }
  }
  *out = static_cast<uint64_t>(value) * multiplier;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty() && *out >= 0;
}

bool ParseCount(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(text.c_str(), &end, 10);
  return errno == 0 && end == text.c_str() + text.size() && !text.empty();
}

/// Wire status strings use the journal's UPPER_SNAKE convention
/// (RESOURCE_EXHAUSTED, not ResourceExhausted), so clients match one
/// vocabulary across frames, journals, and docs.
const char* WireStatusName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kBindError:
      return "BIND_ERROR";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "FAILED";
}

}  // namespace

Session::Session(uint64_t id, const SessionDefaults& defaults,
                 uint64_t fair_share_budget, Catalog* shared_catalog,
                 wal::WalManager* wal)
    : id_(id), fair_share_budget_(fair_share_budget), options_(defaults) {
  shell_.set_quiet(true);
  shell_.set_result_sink(this);
  if (shared_catalog != nullptr) {
    shell_.AttachSharedDatabase(shared_catalog, wal);
  }
  ApplyOptions();
}

void Session::ApplyOptions() {
  shell_.set_batch_size(options_.batch_size);
  shell_.set_cache_enabled(options_.cache);
  shell_.set_slow_query_ms(options_.slow_query_ms);
  shell_.set_timeout_ms(options_.timeout_ms);
  shell_.set_num_threads(options_.threads);
  // Fair-share admission: the session's budget never exceeds the
  // controller's per-query share, so one greedy session cannot claim
  // the whole process budget (0 = unconstrained on either side).
  uint64_t budget = options_.memory_budget;
  if (fair_share_budget_ > 0 &&
      (budget == 0 || budget > fair_share_budget_)) {
    budget = fair_share_budget_;
  }
  shell_.set_memory_budget(budget);
}

void Session::OnAnswer(const Relation& answer) {
  if (current_frame_ == nullptr) return;
  ReplyFrame& frame = *current_frame_;
  frame.has_answer = true;
  frame.columns.clear();
  frame.rows.clear();
  frame.degrees.clear();
  for (const Column& column : answer.schema().columns()) {
    frame.columns.push_back(column.name);
  }
  frame.rows.reserve(answer.NumTuples());
  frame.degrees.reserve(answer.NumTuples());
  for (const Tuple& tuple : answer.tuples()) {
    std::vector<std::string> row;
    row.reserve(tuple.values().size());
    for (const Value& value : tuple.values()) {
      row.push_back(value.ToString());
    }
    frame.rows.push_back(std::move(row));
    frame.degrees.push_back(tuple.degree());
  }
}

bool Session::ExecuteSet(const std::string& line, ReplyFrame* frame) {
  std::string stripped = line;
  // Tolerate a statement-style trailing ';'.
  while (!stripped.empty() &&
         (stripped.back() == ';' || stripped.back() == ' ' ||
          stripped.back() == '\t')) {
    stripped.pop_back();
  }
  const std::vector<std::string> words = Words(stripped);
  if (words.size() < 1 || !EqualsIgnoreCase(words[0], "SET")) return false;
  auto fail = [frame](const std::string& message) {
    frame->status = "INVALID_ARGUMENT";
    frame->error = message;
    return true;
  };
  if (words.size() != 3) {
    return fail(
        "usage: SET batch_size|cache|slow_query_ms|timeout_ms|"
        "memory_budget|threads <value>");
  }
  const std::string key = ToLower(words[1]);
  const std::string& value = words[2];
  if (key == "batch_size") {
    uint64_t lanes = 0;
    if (!ParseCount(value, &lanes)) return fail("bad batch_size: " + value);
    options_.batch_size = static_cast<size_t>(lanes);
  } else if (key == "cache") {
    if (EqualsIgnoreCase(value, "on")) {
      options_.cache = true;
    } else if (EqualsIgnoreCase(value, "off")) {
      options_.cache = false;
    } else {
      return fail("bad cache value (want on|off): " + value);
    }
  } else if (key == "slow_query_ms") {
    double ms = 0;
    if (!ParseDouble(value, &ms)) return fail("bad slow_query_ms: " + value);
    options_.slow_query_ms = ms;
  } else if (key == "timeout_ms") {
    double ms = 0;
    if (!ParseDouble(value, &ms)) return fail("bad timeout_ms: " + value);
    options_.timeout_ms = ms;
  } else if (key == "memory_budget") {
    uint64_t bytes = 0;
    if (!ParseByteSize(value, &bytes)) {
      return fail("bad memory_budget (want N[k|m|g]): " + value);
    }
    options_.memory_budget = bytes;
  } else if (key == "threads") {
    uint64_t threads = 0;
    if (!ParseCount(value, &threads)) return fail("bad threads: " + value);
    options_.threads = static_cast<size_t>(threads);
  } else {
    return fail("unknown session option: " + key);
  }
  ApplyOptions();
  frame->text = "-- set " + key + "=" + value + "\n";
  return true;
}

ReplyFrame Session::Execute(const std::string& line) {
  ReplyFrame frame;
  frame.session_id = id_;
  frame.seq = statements_.load(std::memory_order_relaxed) + 1;
  Stopwatch watch;
  if (!ExecuteSet(line, &frame)) {
    std::ostringstream out;
    shell_.clear_error();
    current_frame_ = &frame;
    const bool keep_going = shell_.FeedLine(line, out);
    current_frame_ = nullptr;
    frame.text = out.str();
    if (shell_.had_error()) {
      const Status& status = shell_.last_status();
      frame.status = status.ok() ? "FAILED" : WireStatusName(status.code());
      frame.error = status.ok() ? frame.text : status.ToString();
    }
    if (!keep_going) frame.goodbye = true;
  }
  frame.elapsed_ms = watch.ElapsedSeconds() * 1e3;
  if (frame.status != "OK") errors_.fetch_add(1, std::memory_order_relaxed);
  statements_.fetch_add(1, std::memory_order_relaxed);
  return frame;
}

}  // namespace server
}  // namespace fuzzydb
