// External merge sort over heap files.
//
// The paper sorts both join inputs on the interval order of Definition 3.1
// before the extended merge-join, using a commercial external sorter with
// a user-specified amount of memory [26]. This module plays that role:
// run generation bounded by `buffer_pages` of memory followed by k-way
// merging, all through the BufferPool so sort I/O is accounted (Table 3
// breaks response time into sorting vs merging/joining).
#ifndef FUZZYDB_SORT_EXTERNAL_SORT_H_
#define FUZZYDB_SORT_EXTERNAL_SORT_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "parallel/parallel_for.h"
#include "relational/tuple.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace fuzzydb {

class ExecTrace;

/// Strict weak ordering over tuples.
using TupleLess = std::function<bool(const Tuple&, const Tuple&)>;

/// Instrumentation of one external sort.
struct SortStats {
  uint64_t input_tuples = 0;
  uint64_t runs_created = 0;
  uint64_t merge_passes = 0;
  uint64_t comparisons = 0;  // CPU-cost proxy reported by the benches
};

/// Sorts the tuples of `input` by `less` using at most `buffer_pages`
/// pages of main memory. Temporary run files are created as
/// `temp_prefix + ".runN"` and removed before returning. The sorted
/// output is written to a fresh file at `output_path`.
///
/// `min_record_size` pads records as in HeapFileWriter so that sorted
/// files keep the same page counts as their inputs.
///
/// With `parallel` set, each in-memory run is sorted with ParallelSort
/// (per-morsel runs + fixed merge tree) instead of one std::sort; run
/// contents, run boundaries, and all I/O are unchanged, and the
/// comparison count is identical for every thread count (though it may
/// differ from the plain-std::sort count of the serial default). Merge
/// passes stay on the calling thread: they are I/O-bound through the
/// BufferPool, which is not thread-safe.
///
/// With `trace` set, records an "external-sort" span whose comparison
/// count mirrors SortStats::comparisons and whose I/O delta is read from
/// the pool's local counters.
///
/// With `query` set, the sort is governed: cancellation/deadline are
/// polled once per scanned/merged tuple and the in-memory sort buffer is
/// charged against the query's memory budget, so a stop request surfaces
/// within one tuple/page of work. Every early return -- governance or
/// I/O error -- removes all `.runN` temporaries before returning
/// (balanced budget, no leaked files).
Result<std::unique_ptr<PageFile>> ExternalSort(
    PageFile* input, BufferPool* pool, const TupleLess& less,
    const std::string& temp_prefix, const std::string& output_path,
    size_t buffer_pages, size_t min_record_size = 0,
    SortStats* stats = nullptr, const ParallelContext* parallel = nullptr,
    ExecTrace* trace = nullptr, QueryContext* query = nullptr);

}  // namespace fuzzydb

#endif  // FUZZYDB_SORT_EXTERNAL_SORT_H_
