#include "sort/external_sort.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/temp_file_guard.h"

namespace fuzzydb {

namespace {

/// A run being merged: a scanner plus its buffered head tuple.
struct RunCursor {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<HeapFileScanner> scanner;
  Tuple head;
  bool has_head = false;

  Status Advance() {
    return scanner->Next(&head, &has_head);
  }
};

/// Counts comparisons made through `less`.
class CountingLess {
 public:
  CountingLess(const TupleLess& less, SortStats* stats)
      : less_(less), stats_(stats) {}
  bool operator()(const Tuple& a, const Tuple& b) const {
    if (stats_ != nullptr) ++stats_->comparisons;
    return less_(a, b);
  }

 private:
  const TupleLess& less_;
  SortStats* stats_;
};

}  // namespace

Result<std::unique_ptr<PageFile>> ExternalSort(
    PageFile* input, BufferPool* pool, const TupleLess& less,
    const std::string& temp_prefix, const std::string& output_path,
    size_t buffer_pages, size_t min_record_size, SortStats* stats,
    const ParallelContext* parallel, ExecTrace* trace, QueryContext* query) {
  if (buffer_pages < 3) {
    return Status::InvalidArgument("external sort needs >= 3 buffer pages");
  }
  // Any early return below (I/O error, failpoint, cancellation, budget
  // denial) sweeps the temporary runs created so far.
  TempFileGuard temp_guard(pool);
  SortStats local;
  if (stats == nullptr) stats = &local;
  const CountingLess counting_less(less, stats);

  // The span's comparison count mirrors SortStats::comparisons (the
  // caller may fold it into a CpuStats later; see executor.cc). `stats`
  // may be shared across sorts, so record deltas against entry.
  CpuStats span_cpu;
  TraceScope span(trace, "external-sort", &span_cpu,
                  pool == nullptr ? nullptr : &pool->stats());
  if (parallel != nullptr) span.SetThreads(WorkerSlots(*parallel));
  const SortStats entry = *stats;
  // RAII rather than explicit calls on the success paths: an early error
  // return (or a throwing comparator) must still publish the counter
  // deltas before `span` closes. Declared after `span`, so it runs first
  // during unwinding.
  struct SpanFinisher {
    TraceScope* span;
    CpuStats* span_cpu;
    const SortStats* stats;
    const SortStats* entry;
    ~SpanFinisher() {
      if (!span->enabled()) return;
      span_cpu->comparisons = stats->comparisons - entry->comparisons;
      span->SetInputRows(stats->input_tuples - entry->input_tuples);
      span->SetDetail(
          "runs=" + std::to_string(stats->runs_created - entry->runs_created) +
          " passes=" +
          std::to_string(stats->merge_passes - entry->merge_passes));
    }
  } finisher{&span, &span_cpu, stats, &entry};
  EngineMetrics* metrics = EngineMetrics::IfEnabled();

  // ---- Phase 1: run generation -------------------------------------
  const size_t memory_budget = buffer_pages * kPageSize;
  std::vector<std::string> run_paths;
  {
    HeapFileScanner scanner(input, pool);
    std::vector<Tuple> batch;
    size_t batch_bytes = 0;
    Tuple tuple;
    bool has = false;

    auto flush_batch = [&]() -> Status {
      if (batch.empty()) return Status::OK();
      FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("sort/spill-write"));
      // The sort buffer is the operator's peak memory; charged for the
      // duration of the sort + write, released when the run is on disk.
      ScopedBudget batch_budget(query);
      FUZZYDB_RETURN_IF_ERROR(batch_budget.Charge(batch_bytes));
      ScopedMemoryCharge batch_memory(
          metrics == nullptr ? nullptr : metrics->sort_memory);
      batch_memory.Charge(batch_bytes);
      if (metrics != nullptr) {
        metrics->sort_spill_bytes->Add(batch_bytes);
        metrics->sort_rows->Add(batch.size());
      }
      if (parallel != nullptr) {
        ParallelSort(*parallel, &batch, &stats->comparisons,
                     [&less](uint64_t* count) {
                       return [&less, count](const Tuple& a, const Tuple& b) {
                         ++*count;
                         return less(a, b);
                       };
                     });
      } else {
        std::sort(batch.begin(), batch.end(), counting_less);
      }
      // A stop mid-ParallelSort leaves the batch partially sorted; do not
      // write it out as a run.
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
      const std::string path =
          temp_prefix + ".run" + std::to_string(run_paths.size());
      FUZZYDB_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> run,
                               PageFile::Create(path));
      temp_guard.Track(path);
      HeapFileWriter writer(run.get(), pool, min_record_size);
      for (const Tuple& t : batch) {
        FUZZYDB_RETURN_IF_ERROR(writer.Append(t));
      }
      FUZZYDB_RETURN_IF_ERROR(writer.Finish());
      pool->Invalidate(run.get());
      run_paths.push_back(path);
      ++stats->runs_created;
      batch.clear();
      batch_bytes = 0;
      return Status::OK();
    };

    while (true) {
      FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
      FUZZYDB_RETURN_IF_ERROR(scanner.Next(&tuple, &has));
      if (!has) break;
      ++stats->input_tuples;
      batch_bytes += std::max(SerializedTupleSize(tuple), min_record_size);
      batch.push_back(std::move(tuple));
      tuple = Tuple();
      if (batch_bytes >= memory_budget) {
        FUZZYDB_RETURN_IF_ERROR(flush_batch());
      }
    }
    FUZZYDB_RETURN_IF_ERROR(flush_batch());
  }

  if (run_paths.empty()) {
    // Empty input: produce an empty output file.
    return PageFile::Create(output_path);
  }

  // ---- Phase 2: k-way merge passes ----------------------------------
  // Written underflow-proof: buffer_pages - 1 would wrap at 0 before
  // std::max could clamp it (the >= 3 guard above makes 0 unreachable
  // today, but keep the expression safe on its own).
  const size_t fan_in = buffer_pages < 3 ? 2 : buffer_pages - 1;
  size_t temp_counter = run_paths.size();

  while (run_paths.size() > 1) {
    ++stats->merge_passes;
    std::vector<std::string> next_round;
    for (size_t group = 0; group < run_paths.size(); group += fan_in) {
      const size_t group_end = std::min(group + fan_in, run_paths.size());
      // Open cursors for this group.
      std::vector<std::unique_ptr<RunCursor>> cursors;
      for (size_t i = group; i < group_end; ++i) {
        auto cursor = std::make_unique<RunCursor>();
        FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("sort/run-open"));
        FUZZYDB_ASSIGN_OR_RETURN(cursor->file, PageFile::Open(run_paths[i]));
        cursor->scanner =
            std::make_unique<HeapFileScanner>(cursor->file.get(), pool);
        FUZZYDB_RETURN_IF_ERROR(cursor->Advance());
        cursors.push_back(std::move(cursor));
      }

      const bool final_round =
          run_paths.size() <= fan_in;  // this merge produces the result
      const std::string out_path =
          final_round ? output_path
                      : temp_prefix + ".run" + std::to_string(temp_counter++);
      FUZZYDB_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> out,
                               PageFile::Create(out_path));
      temp_guard.Track(out_path);
      HeapFileWriter writer(out.get(), pool, min_record_size);

      // Tournament by linear scan over the (small) fan-in; a loser tree
      // is unnecessary at these fan-ins and keeps comparisons countable.
      while (true) {
        FUZZYDB_RETURN_IF_ERROR(CheckQuery(query));
        RunCursor* best = nullptr;
        for (auto& cursor : cursors) {
          if (!cursor->has_head) continue;
          if (best == nullptr || counting_less(cursor->head, best->head)) {
            best = cursor.get();
          }
        }
        if (best == nullptr) break;
        FUZZYDB_RETURN_IF_ERROR(writer.Append(best->head));
        FUZZYDB_RETURN_IF_ERROR(best->Advance());
      }
      FUZZYDB_RETURN_IF_ERROR(writer.Finish());
      if (metrics != nullptr && !final_round) {
        metrics->sort_spill_bytes->Add(out->NumPages() * kPageSize);
      }

      // Drop the merged runs.
      for (size_t i = group; i < group_end; ++i) {
        pool->Invalidate(cursors[i - group]->file.get());
      }
      cursors.clear();
      for (size_t i = group; i < group_end; ++i) {
        RemoveFileIfExists(run_paths[i]);
        temp_guard.Untrack(run_paths[i]);
      }
      pool->Invalidate(out.get());
      next_round.push_back(out_path);
      out.reset();
    }
    run_paths = std::move(next_round);
  }

  // run_paths[0] is output_path when a merge happened; otherwise a single
  // run that needs renaming to the requested output.
  if (run_paths[0] != output_path) {
    RemoveFileIfExists(output_path);
    if (std::rename(run_paths[0].c_str(), output_path.c_str()) != 0) {
      return Status::IoError("cannot rename sorted run to '" + output_path +
                             "'");
    }
  }
  temp_guard.Dismiss();
  return PageFile::Open(output_path);
}

}  // namespace fuzzydb
