// Tokenizer for Fuzzy SQL.
#ifndef FUZZYDB_SQL_LEXER_H_
#define FUZZYDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fuzzydb {
namespace sql {

enum class TokenType {
  kIdentifier,   // SELECT, relation names, column names (keywords resolved
                 // by the parser, case-insensitively)
  kNumber,       // 42, 3.5, -7 handled as unary minus by parser
  kString,       // '...' quoted character string literal
  kTerm,         // "..." quoted linguistic term
  kComma,
  kDot,
  kLParen,
  kRParen,
  kEq,           // =
  kNe,           // <> or !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kApprox,       // ~=
  kPlus,
  kMinus,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/string/term content
  double number = 0;  // kNumber value
  size_t position = 0;  // byte offset, for diagnostics

  std::string Describe() const;
};

/// Splits `input` into tokens. Fails on unterminated strings or unexpected
/// characters, reporting the byte offset.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_LEXER_H_
