#include "sql/ast.h"

#include "common/string_util.h"

namespace fuzzydb {
namespace sql {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

std::string Operand::ToString() const {
  if (kind == Kind::kColumn) return column.ToString();
  if (!literal.term.empty()) return "\"" + literal.term + "\"";
  return literal.value.ToString();
}

std::string SelectItem::ToString() const {
  if (agg == AggFunc::kNone) return column.ToString();
  return std::string(AggFuncName(agg)) + "(" + column.ToString() + ")";
}

std::string HavingItem::ToString() const {
  std::string lhs = agg == AggFunc::kNone
                        ? column.ToString()
                        : std::string(AggFuncName(agg)) + "(" +
                              column.ToString() + ")";
  std::string out = lhs + " " + CompareOpName(op) + " " +
                    (!rhs.term.empty() ? "\"" + rhs.term + "\""
                                       : rhs.value.ToString());
  if (op == CompareOp::kApproxEq && approx_tolerance != 1.0) {
    out += " WITHIN " + FormatDouble(approx_tolerance, 6);
  }
  return out;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kCompare: {
      std::string out =
          lhs.ToString() + " " + CompareOpName(op) + " " + rhs.ToString();
      if (op == CompareOp::kApproxEq && approx_tolerance != 1.0) {
        out += " WITHIN " + FormatDouble(approx_tolerance, 6);
      }
      return out;
    }
    case Kind::kIn:
      return lhs.ToString() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToString() + ")";
    case Kind::kQuantified:
      return lhs.ToString() + " " + CompareOpName(op) +
             (quantifier == Quantifier::kAll ? " ALL (" : " SOME (") +
             subquery->ToString() + ")";
    case Kind::kAggCompare:
      return lhs.ToString() + " " + CompareOpName(op) + " (" +
             subquery->ToString() + ")";
    case Kind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" +
             subquery->ToString() + ")";
  }
  return "?";
}

std::string Query::ToString() const {
  std::vector<std::string> parts;
  std::vector<std::string> items;
  for (const auto& item : select) items.push_back(item.ToString());
  parts.push_back("SELECT " + Join(items, ", "));
  items.clear();
  for (const auto& table : from) items.push_back(table.ToString());
  parts.push_back("FROM " + Join(items, ", "));
  if (!where.empty()) {
    items.clear();
    for (const auto& pred : where) items.push_back(pred.ToString());
    parts.push_back("WHERE " + Join(items, " AND "));
  }
  if (!group_by.empty()) {
    items.clear();
    for (const auto& col : group_by) items.push_back(col.ToString());
    parts.push_back("GROUPBY " + Join(items, ", "));
  }
  if (!having.empty()) {
    items.clear();
    for (const auto& item : having) items.push_back(item.ToString());
    parts.push_back("HAVING " + Join(items, " AND "));
  }
  if (!order_by.empty()) {
    items.clear();
    for (const auto& item : order_by) items.push_back(item.ToString());
    parts.push_back("ORDER BY " + Join(items, ", "));
  }
  if (has_with) {
    parts.push_back("WITH D >= " + FormatDouble(with_threshold, 4));
  }
  return Join(parts, " ");
}

}  // namespace sql
}  // namespace fuzzydb
