// Statement-level Fuzzy SQL: queries plus the DDL/DML used by the shell
// and by applications that build databases textually.
//
//   SELECT ...                                   (ast.h)
//   EXPLAIN [ANALYZE] SELECT ...                 plan / executed trace
//   CREATE TABLE name (col TYPE, ...)            TYPE: STRING | FUZZY
//   INSERT INTO name VALUES (v, ...) [DEGREE d]  d in (0, 1], default 1
//   DEFINE TERM "name" AS TRAP(a,b,c,d)          (or ABOUT(v, spread))
//   DROP TABLE name
//   SHOW METRICS [RESET]                         metrics registry dump
//   SHOW QUERIES                                 active-query registry
//   KILL id                                      cancel a running query
//   CACHE CLEAR                                  drop all cache entries
//   CHECKPOINT                                   WAL checkpoint (durability)
//
// INSERT values are literals: numbers, 'strings', "linguistic terms"
// (resolved against the catalog at execution time), TRAP(a,b,c,d),
// ABOUT(v, spread), or NULL.
#ifndef FUZZYDB_SQL_STATEMENT_H_
#define FUZZYDB_SQL_STATEMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzzy/trapezoid.h"
#include "relational/schema.h"
#include "sql/ast.h"

namespace fuzzydb {
namespace sql {

struct CreateTableStatement {
  std::string name;
  Schema schema;
};

struct InsertStatement {
  std::string table;
  std::vector<Literal> values;  // term literals resolved at execution
  double degree = 1.0;
};

struct DefineTermStatement {
  std::string name;
  Trapezoid value;
};

struct DropTableStatement {
  std::string name;
};

/// One parsed statement; exactly one member is active per `kind`.
struct Statement {
  enum class Kind {
    kSelect,
    kExplain,  // EXPLAIN [ANALYZE] SELECT ...; `select` holds the query
    kCreateTable,
    kInsert,
    kDefineTerm,
    kDropTable,
    kShowMetrics,  // SHOW METRICS [RESET]
    kShowQueries,  // SHOW QUERIES
    kKill,         // KILL <query id>
    kCacheClear,   // CACHE CLEAR
    kCheckpoint    // CHECKPOINT (WAL-attached shells only)
  };
  Kind kind = Kind::kSelect;
  bool analyze = false;  // kExplain only: EXPLAIN ANALYZE executes
  bool metrics_reset = false;  // kShowMetrics only: RESET after rendering
  uint64_t kill_id = 0;        // kKill only: the registry id to cancel
  std::unique_ptr<Query> select;
  CreateTableStatement create_table;
  InsertStatement insert;
  DefineTermStatement define_term;
  DropTableStatement drop_table;
};

/// Parses a single statement (no trailing ';').
Result<Statement> ParseStatement(const std::string& text);

}  // namespace sql
}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_STATEMENT_H_
