// Abstract syntax of Fuzzy SQL queries.
//
// The language implemented here is the fragment of Fuzzy SQL [25], [23]
// used throughout the paper:
//
//   SELECT [AGG(]R.A[)] {, ...}
//   FROM   R [alias] {, ...}
//   WHERE  conjunction of predicates
//   [GROUPBY R.A {, ...}]
//   [WITH D >= z]
//
// Predicates are:
//   X op Y                 -- fuzzy comparison, op in {=, <>, <, <=, >, >=, ~=}
//   X [NOT] IN (subquery)
//   X op ALL (subquery) / X op SOME (subquery)
//   X op (subquery)        -- scalar subquery whose SELECT is an aggregate
// where X is a column and Y a column or constant (number, string, fuzzy
// linguistic term in double quotes, or TRAP(a,b,c,d) / ABOUT(v, spread)).
#ifndef FUZZYDB_SQL_AST_H_
#define FUZZYDB_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "fuzzy/degree.h"
#include "relational/value.h"

namespace fuzzydb {
namespace sql {

/// `table` may be empty when the column name is unqualified.
struct ColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// A literal constant. When `term` is non-empty the constant is a
/// linguistic term ("medium young") resolved by the binder through the
/// catalog's TermDictionary; otherwise `value` holds the constant.
struct Literal {
  Value value;
  std::string term;
};

/// A column reference or a literal.
struct Operand {
  enum class Kind { kColumn, kLiteral };
  Kind kind = Kind::kLiteral;
  ColumnRef column;
  Literal literal;

  static Operand Column(ColumnRef ref) {
    Operand o;
    o.kind = Kind::kColumn;
    o.column = std::move(ref);
    return o;
  }
  static Operand Constant(Literal lit) {
    Operand o;
    o.kind = Kind::kLiteral;
    o.literal = std::move(lit);
    return o;
  }

  std::string ToString() const;
};

/// Aggregate functions of Fuzzy SQL (Section 6).
enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// One item of the SELECT clause.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  ColumnRef column;

  std::string ToString() const;
};

struct Query;

/// One conjunct of a WHERE clause.
struct Predicate {
  enum class Kind {
    kCompare,     // lhs op rhs
    kIn,          // lhs [NOT] IN (subquery)
    kQuantified,  // lhs op ALL/SOME (subquery)
    kAggCompare,  // lhs op (subquery with aggregate SELECT)
    kExists,      // [NOT] EXISTS (subquery); no lhs
  };
  /// Quantifier for kQuantified.
  enum class Quantifier { kNone, kAll, kSome };

  Kind kind = Kind::kCompare;
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  bool negated = false;  // NOT IN
  Quantifier quantifier = Quantifier::kNone;
  Operand rhs;                      // kCompare only
  /// Similarity tolerance for kApproxEq comparisons ("X ~= Y WITHIN t"):
  /// mu(x, y) = max(0, 1 - |x - y| / tolerance). Default 1.
  double approx_tolerance = 1.0;
  std::unique_ptr<Query> subquery;  // other kinds

  std::string ToString() const;
};

/// An entry of the FROM clause.
struct TableRef {
  std::string name;
  std::string alias;  // defaults to name

  std::string ToString() const {
    return alias.empty() || alias == name ? name : name + " " + alias;
  }
};

/// One HAVING conjunct: "AGG(col) op constant" or "group-col op constant".
struct HavingItem {
  AggFunc agg = AggFunc::kNone;
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  Literal rhs;
  double approx_tolerance = 1.0;

  std::string ToString() const;
};

/// One ORDER BY item: a projected column (ordered by its defuzzified
/// value / string order) or the membership degree D.
struct OrderItem {
  ColumnRef column;        // ignored when by_degree
  bool by_degree = false;  // ORDER BY D
  bool descending = false;

  std::string ToString() const {
    return (by_degree ? std::string("D") : column.ToString()) +
           (descending ? " DESC" : "");
  }
};

/// A (possibly nested) query block.
struct Query {
  std::vector<SelectItem> select;
  std::vector<TableRef> from;
  std::vector<Predicate> where;  // conjunction
  std::vector<ColumnRef> group_by;
  std::vector<HavingItem> having;  // requires group_by
  std::vector<OrderItem> order_by;  // top-level blocks only
  bool has_with = false;
  double with_threshold = 0.0;

  std::string ToString() const;
};

}  // namespace sql
}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_AST_H_
