#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"
#include "sql/statement.h"

namespace fuzzydb {
namespace sql {

namespace {

/// Keywords that terminate a table alias or clause.
bool IsKeyword(const std::string& ident) {
  static const char* kKeywords[] = {
      "select", "from", "where",  "and",  "in",   "not", "is",  "groupby",
      "group",  "by",   "having", "with", "all",  "some", "any", "count",
      "sum",    "avg",  "min",    "max",  "trap", "about", "distinct",
      "exists", "create", "table", "insert", "into", "values", "degree",
      "define", "term", "as", "drop", "null", "order", "asc", "desc",
      "within", "explain", "analyze",
  };
  const std::string lower = ToLower(ident);
  for (const char* kw : kKeywords) {
    if (lower == kw) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Query>> Parse() {
    FUZZYDB_ASSIGN_OR_RETURN(std::unique_ptr<Query> query, ParseSelect());
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after query");
    }
    return query;
  }

  Result<Statement> ParseStatementTop() {
    Statement statement;
    if (PeekIsKeyword("select")) {
      statement.kind = Statement::Kind::kSelect;
      FUZZYDB_ASSIGN_OR_RETURN(statement.select, ParseSelect());
    } else if (MatchKeyword("explain")) {
      statement.kind = Statement::Kind::kExplain;
      statement.analyze = MatchKeyword("analyze");
      if (!PeekIsKeyword("select")) {
        return Error("expected SELECT after EXPLAIN");
      }
      FUZZYDB_ASSIGN_OR_RETURN(statement.select, ParseSelect());
    } else if (PeekIsKeyword("create")) {
      statement.kind = Statement::Kind::kCreateTable;
      FUZZYDB_ASSIGN_OR_RETURN(statement.create_table, ParseCreateTable());
    } else if (PeekIsKeyword("insert")) {
      statement.kind = Statement::Kind::kInsert;
      FUZZYDB_ASSIGN_OR_RETURN(statement.insert, ParseInsert());
    } else if (PeekIsKeyword("define")) {
      statement.kind = Statement::Kind::kDefineTerm;
      FUZZYDB_ASSIGN_OR_RETURN(statement.define_term, ParseDefineTerm());
    } else if (PeekIsKeyword("drop")) {
      statement.kind = Statement::Kind::kDropTable;
      FUZZYDB_ASSIGN_OR_RETURN(statement.drop_table, ParseDropTable());
    } else if (MatchKeyword("show")) {
      // SHOW, METRICS, and QUERIES are contextual (non-reserved) words:
      // they only act as keywords at statement position, so relations or
      // columns named "show" keep working.
      if (MatchKeyword("queries")) {
        statement.kind = Statement::Kind::kShowQueries;
      } else {
        FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("metrics"));
        statement.kind = Statement::Kind::kShowMetrics;
        statement.metrics_reset = MatchKeyword("reset");
      }
    } else if (MatchKeyword("kill")) {
      // KILL is contextual like SHOW: only a keyword at statement
      // position. The operand is the sys.queries / SHOW QUERIES id.
      if (Peek().type != TokenType::kNumber) {
        return Error("expected query id after KILL");
      }
      const double id = Advance().number;
      if (id < 1 || id != static_cast<double>(static_cast<uint64_t>(id))) {
        return Error("KILL requires a positive integer query id");
      }
      statement.kind = Statement::Kind::kKill;
      statement.kill_id = static_cast<uint64_t>(id);
    } else if (MatchKeyword("cache")) {
      // CACHE is contextual like SHOW: only a keyword at statement
      // position.
      FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("clear"));
      statement.kind = Statement::Kind::kCacheClear;
    } else if (MatchKeyword("checkpoint")) {
      // CHECKPOINT is contextual like SHOW: only a keyword at statement
      // position.
      statement.kind = Statement::Kind::kCheckpoint;
    } else {
      return Error(
          "expected SELECT, CREATE, INSERT, DEFINE, DROP, SHOW, KILL, "
          "CACHE, or CHECKPOINT");
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after statement");
    }
    return statement;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekIsKeyword(const std::string& word, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, word);
  }

  bool MatchKeyword(const std::string& word) {
    if (PeekIsKeyword(word)) {
      Advance();
      return true;
    }
    return false;
  }

  bool Match(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at " + Peek().Describe() +
                              ", offset " + std::to_string(Peek().position) +
                              ")");
  }

  Status ExpectKeyword(const std::string& word) {
    if (!MatchKeyword(word)) return Error("expected '" + word + "'");
    return Status::OK();
  }

  Status Expect(TokenType type, const std::string& what) {
    if (!Match(type)) return Error("expected " + what);
    return Status::OK();
  }

  /// Parses a comparison operator token if present.
  bool MatchCompareOp(CompareOp* op) {
    switch (Peek().type) {
      case TokenType::kEq:
        *op = CompareOp::kEq;
        break;
      case TokenType::kNe:
        *op = CompareOp::kNe;
        break;
      case TokenType::kLt:
        *op = CompareOp::kLt;
        break;
      case TokenType::kLe:
        *op = CompareOp::kLe;
        break;
      case TokenType::kGt:
        *op = CompareOp::kGt;
        break;
      case TokenType::kGe:
        *op = CompareOp::kGe;
        break;
      case TokenType::kApprox:
        *op = CompareOp::kApproxEq;
        break;
      default:
        return false;
    }
    Advance();
    return true;
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected column name");
    }
    ColumnRef ref;
    ref.column = Advance().text;
    if (Match(TokenType::kDot)) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name after '.'");
      }
      ref.table = ref.column;
      ref.column = Advance().text;
    }
    return ref;
  }

  Result<double> ParseNumber() {
    double sign = 1.0;
    if (Match(TokenType::kMinus)) {
      sign = -1.0;
    } else {
      Match(TokenType::kPlus);
    }
    if (Peek().type != TokenType::kNumber) return Error("expected number");
    return sign * Advance().number;
  }

  Result<Operand> ParseOperand() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kNumber:
      case TokenType::kMinus:
      case TokenType::kPlus: {
        FUZZYDB_ASSIGN_OR_RETURN(double v, ParseNumber());
        return Operand::Constant(Literal{Value::Number(v), ""});
      }
      case TokenType::kString: {
        Literal lit{Value::String(Advance().text), ""};
        return Operand::Constant(std::move(lit));
      }
      case TokenType::kTerm: {
        Literal lit{Value::Null(), Advance().text};
        return Operand::Constant(std::move(lit));
      }
      case TokenType::kIdentifier: {
        if (EqualsIgnoreCase(t.text, "trap")) {
          Advance();
          FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          double corners[4];
          for (int i = 0; i < 4; ++i) {
            if (i > 0) FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
            FUZZYDB_ASSIGN_OR_RETURN(corners[i], ParseNumber());
          }
          FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          if (!(corners[0] <= corners[1] && corners[1] <= corners[2] &&
                corners[2] <= corners[3])) {
            return Error("TRAP corners must be nondecreasing");
          }
          return Operand::Constant(
              Literal{Value::Fuzzy(Trapezoid(corners[0], corners[1],
                                             corners[2], corners[3])),
                      ""});
        }
        if (EqualsIgnoreCase(t.text, "about")) {
          Advance();
          FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          FUZZYDB_ASSIGN_OR_RETURN(double v, ParseNumber());
          FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
          FUZZYDB_ASSIGN_OR_RETURN(double spread, ParseNumber());
          FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          if (spread <= 0) return Error("ABOUT spread must be positive");
          return Operand::Constant(
              Literal{Value::Fuzzy(Trapezoid::About(v, spread)), ""});
        }
        FUZZYDB_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        return Operand::Column(std::move(ref));
      }
      default:
        return Error("expected operand");
    }
  }

  Result<std::string> ParseIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier || IsKeyword(Peek().text)) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  /// A constant literal (no column references): for INSERT values.
  Result<Literal> ParseLiteral() {
    if (PeekIsKeyword("null")) {
      Advance();
      return Literal{Value::Null(), ""};
    }
    FUZZYDB_ASSIGN_OR_RETURN(Operand operand, ParseOperand());
    if (operand.kind != Operand::Kind::kLiteral) {
      return Error("expected a literal value");
    }
    return operand.literal;
  }

  Result<CreateTableStatement> ParseCreateTable() {
    CreateTableStatement statement;
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("create"));
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("table"));
    FUZZYDB_ASSIGN_OR_RETURN(statement.name, ParseIdentifier("table name"));
    FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    do {
      FUZZYDB_ASSIGN_OR_RETURN(std::string column,
                               ParseIdentifier("column name"));
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column type (STRING or FUZZY)");
      }
      const std::string type_name = Advance().text;
      ValueType type;
      if (EqualsIgnoreCase(type_name, "string")) {
        type = ValueType::kString;
      } else if (EqualsIgnoreCase(type_name, "fuzzy") ||
                 EqualsIgnoreCase(type_name, "number") ||
                 EqualsIgnoreCase(type_name, "numeric")) {
        type = ValueType::kFuzzy;
      } else {
        return Error("unknown column type '" + type_name + "'");
      }
      FUZZYDB_RETURN_IF_ERROR(
          statement.schema.AddColumn(Column{column, type}));
    } while (Match(TokenType::kComma));
    FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return statement;
  }

  Result<InsertStatement> ParseInsert() {
    InsertStatement statement;
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("insert"));
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("into"));
    FUZZYDB_ASSIGN_OR_RETURN(statement.table, ParseIdentifier("table name"));
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("values"));
    FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    do {
      FUZZYDB_ASSIGN_OR_RETURN(Literal literal, ParseLiteral());
      statement.values.push_back(std::move(literal));
    } while (Match(TokenType::kComma));
    FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (MatchKeyword("degree")) {
      FUZZYDB_ASSIGN_OR_RETURN(statement.degree, ParseNumber());
      if (statement.degree <= 0.0 || statement.degree > 1.0) {
        return Error("DEGREE must be in (0, 1]");
      }
    }
    return statement;
  }

  Result<DefineTermStatement> ParseDefineTerm() {
    DefineTermStatement statement;
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("define"));
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("term"));
    if (Peek().type != TokenType::kTerm &&
        Peek().type != TokenType::kString) {
      return Error("expected quoted term name");
    }
    statement.name = Advance().text;
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("as"));
    FUZZYDB_ASSIGN_OR_RETURN(Literal literal, ParseLiteral());
    if (!literal.value.is_fuzzy()) {
      return Error("term definition must be numeric (TRAP/ABOUT/number)");
    }
    statement.value = literal.value.AsFuzzy();
    return statement;
  }

  Result<DropTableStatement> ParseDropTable() {
    DropTableStatement statement;
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("drop"));
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("table"));
    FUZZYDB_ASSIGN_OR_RETURN(statement.name, ParseIdentifier("table name"));
    return statement;
  }

  Result<std::unique_ptr<Query>> ParseSubquery() {
    FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    FUZZYDB_ASSIGN_OR_RETURN(std::unique_ptr<Query> sub, ParseSelect());
    FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return sub;
  }

  Result<Predicate> ParsePredicate() {
    Predicate pred;

    // [NOT] EXISTS (subquery)
    {
      const bool exists_negated =
          PeekIsKeyword("not") && PeekIsKeyword("exists", 1);
      if (exists_negated) Advance();
      if (MatchKeyword("exists")) {
        pred.kind = Predicate::Kind::kExists;
        pred.negated = exists_negated;
        FUZZYDB_ASSIGN_OR_RETURN(pred.subquery, ParseSubquery());
        return pred;
      }
      if (exists_negated) {
        return Error("expected EXISTS after NOT");
      }
    }

    FUZZYDB_ASSIGN_OR_RETURN(pred.lhs, ParseOperand());

    // "is [not] in" / "[not] in"
    const bool saw_is = MatchKeyword("is");
    bool negated = MatchKeyword("not");
    if (MatchKeyword("in")) {
      pred.kind = Predicate::Kind::kIn;
      pred.negated = negated;
      FUZZYDB_ASSIGN_OR_RETURN(pred.subquery, ParseSubquery());
      return pred;
    }
    if (saw_is || negated) {
      return Error("expected IN after IS/NOT");
    }

    CompareOp op;
    if (!MatchCompareOp(&op)) return Error("expected comparison operator");
    pred.op = op;

    if (MatchKeyword("all")) {
      pred.kind = Predicate::Kind::kQuantified;
      pred.quantifier = Predicate::Quantifier::kAll;
      FUZZYDB_ASSIGN_OR_RETURN(pred.subquery, ParseSubquery());
      return pred;
    }
    if (MatchKeyword("some") || MatchKeyword("any")) {
      pred.kind = Predicate::Kind::kQuantified;
      pred.quantifier = Predicate::Quantifier::kSome;
      FUZZYDB_ASSIGN_OR_RETURN(pred.subquery, ParseSubquery());
      return pred;
    }
    if (Peek().type == TokenType::kLParen &&
        PeekIsKeyword("select", 1)) {
      pred.kind = Predicate::Kind::kAggCompare;
      FUZZYDB_ASSIGN_OR_RETURN(pred.subquery, ParseSubquery());
      return pred;
    }
    pred.kind = Predicate::Kind::kCompare;
    FUZZYDB_ASSIGN_OR_RETURN(pred.rhs, ParseOperand());
    if (MatchKeyword("within")) {
      if (pred.op != CompareOp::kApproxEq) {
        return Error("WITHIN requires the ~= comparator");
      }
      FUZZYDB_ASSIGN_OR_RETURN(pred.approx_tolerance, ParseNumber());
      if (pred.approx_tolerance <= 0.0) {
        return Error("WITHIN tolerance must be positive");
      }
    }
    return pred;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    const Token& t = Peek();
    if (t.type == TokenType::kIdentifier) {
      AggFunc agg = AggFunc::kNone;
      if (EqualsIgnoreCase(t.text, "count")) agg = AggFunc::kCount;
      else if (EqualsIgnoreCase(t.text, "sum")) agg = AggFunc::kSum;
      else if (EqualsIgnoreCase(t.text, "avg")) agg = AggFunc::kAvg;
      else if (EqualsIgnoreCase(t.text, "min")) agg = AggFunc::kMin;
      else if (EqualsIgnoreCase(t.text, "max")) agg = AggFunc::kMax;
      if (agg != AggFunc::kNone && Peek(1).type == TokenType::kLParen) {
        Advance();  // aggregate name
        Advance();  // '('
        MatchKeyword("distinct");  // COUNT(DISTINCT x): Fuzzy-set COUNT is
                                   // inherently distinct; accepted, no-op.
        FUZZYDB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        FUZZYDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        item.agg = agg;
        return item;
      }
    }
    FUZZYDB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
    return item;
  }

  Result<std::unique_ptr<Query>> ParseSelect() {
    auto query = std::make_unique<Query>();
    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("select"));
    MatchKeyword("distinct");  // duplicates always eliminated (fuzzy sets)
    do {
      FUZZYDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      query->select.push_back(std::move(item));
    } while (Match(TokenType::kComma));

    FUZZYDB_RETURN_IF_ERROR(ExpectKeyword("from"));
    do {
      if (Peek().type != TokenType::kIdentifier || IsKeyword(Peek().text)) {
        return Error("expected relation name");
      }
      TableRef table;
      table.name = Advance().text;
      // Dotted relation names (system relations like sys.metrics). The
      // dot joins the parts into one catalog name; the default alias is
      // the last part so columns bind as `metrics.name`.
      table.alias = table.name;
      while (Peek().type == TokenType::kDot) {
        Advance();
        if (Peek().type != TokenType::kIdentifier || IsKeyword(Peek().text)) {
          return Error("expected name after '.' in relation name");
        }
        table.alias = Peek().text;
        table.name += "." + Advance().text;
      }
      if (Peek().type == TokenType::kIdentifier && !IsKeyword(Peek().text)) {
        table.alias = Advance().text;
      }
      query->from.push_back(std::move(table));
    } while (Match(TokenType::kComma));

    if (MatchKeyword("where")) {
      do {
        FUZZYDB_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
        query->where.push_back(std::move(pred));
      } while (MatchKeyword("and"));
    }

    // Optional tail clauses, each at most once, in any order.
    while (true) {
      bool saw_groupby = MatchKeyword("groupby");
      if (!saw_groupby && PeekIsKeyword("group") && PeekIsKeyword("by", 1)) {
        Advance();
        Advance();
        saw_groupby = true;
      }
      if (saw_groupby) {
        if (!query->group_by.empty()) return Error("duplicate GROUPBY");
        do {
          FUZZYDB_ASSIGN_OR_RETURN(ColumnRef col, ParseColumnRef());
          query->group_by.push_back(std::move(col));
        } while (Match(TokenType::kComma));
        continue;
      }

      if (MatchKeyword("having")) {
        if (!query->having.empty()) return Error("duplicate HAVING");
        do {
          HavingItem item;
          // AGG(col) or a plain column on the left.
          FUZZYDB_ASSIGN_OR_RETURN(SelectItem lhs, ParseSelectItem());
          item.agg = lhs.agg;
          item.column = lhs.column;
          if (!MatchCompareOp(&item.op)) {
            return Error("expected comparison operator in HAVING");
          }
          FUZZYDB_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
          if (rhs.kind != Operand::Kind::kLiteral) {
            return Error("HAVING right-hand side must be a constant");
          }
          item.rhs = rhs.literal;
          if (MatchKeyword("within")) {
            if (item.op != CompareOp::kApproxEq) {
              return Error("WITHIN requires the ~= comparator");
            }
            FUZZYDB_ASSIGN_OR_RETURN(item.approx_tolerance, ParseNumber());
            if (item.approx_tolerance <= 0.0) {
              return Error("WITHIN tolerance must be positive");
            }
          }
          query->having.push_back(std::move(item));
        } while (MatchKeyword("and"));
        continue;
      }

      if (PeekIsKeyword("order") && PeekIsKeyword("by", 1)) {
        Advance();
        Advance();
        if (!query->order_by.empty()) return Error("duplicate ORDER BY");
        do {
          OrderItem item;
          if (PeekIsKeyword("d") && Peek(1).type != TokenType::kDot) {
            Advance();
            item.by_degree = true;
          } else {
            FUZZYDB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
          }
          if (MatchKeyword("desc")) {
            item.descending = true;
          } else {
            MatchKeyword("asc");
          }
          query->order_by.push_back(std::move(item));
        } while (Match(TokenType::kComma));
        continue;
      }

      if (MatchKeyword("with")) {
        // WITH D >= z   (also accepts > for compatibility)
        if (query->has_with) return Error("duplicate WITH");
        if (!MatchKeyword("d")) return Error("expected D after WITH");
        CompareOp op;
        if (!MatchCompareOp(&op) ||
            (op != CompareOp::kGe && op != CompareOp::kGt)) {
          return Error("expected >= in WITH clause");
        }
        FUZZYDB_ASSIGN_OR_RETURN(double threshold, ParseNumber());
        if (threshold < 0.0 || threshold > 1.0) {
          return Error("WITH threshold must be in [0, 1]");
        }
        query->has_with = true;
        query->with_threshold = threshold;
        continue;
      }
      break;
    }
    return query;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Query>> ParseQuery(const std::string& text) {
  FUZZYDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<Statement> ParseStatement(const std::string& text) {
  FUZZYDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatementTop();
}

}  // namespace sql
}  // namespace fuzzydb
