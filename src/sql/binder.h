// Semantic analysis: resolves a parsed Query against a Catalog.
//
// Binding resolves relation names, column references (including
// correlated references to enclosing blocks), and linguistic terms, and
// validates subquery shapes (IN subqueries project one column; aggregate
// subqueries project exactly one aggregate; ...). The evaluators consume
// only bound queries.
#ifndef FUZZYDB_SQL_BINDER_H_
#define FUZZYDB_SQL_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/catalog.h"
#include "sql/ast.h"

namespace fuzzydb {
namespace sql {

/// A resolved column: `up` blocks outward, table `table` of that block's
/// FROM list, column `column` of the table's schema. up > 0 means a
/// correlated reference.
struct BoundColumnRef {
  int up = 0;
  size_t table = 0;
  size_t column = 0;
};

/// A resolved operand: a column or a constant value.
struct BoundOperand {
  bool is_column = false;
  BoundColumnRef column;
  Value constant;
};

struct BoundSelectItem {
  AggFunc agg = AggFunc::kNone;
  BoundColumnRef column;
  std::string name;  // output column name
};

struct BoundQuery;

struct BoundTable {
  const Relation* relation = nullptr;
  std::string alias;
};

struct BoundPredicate {
  Predicate::Kind kind = Predicate::Kind::kCompare;
  BoundOperand lhs;
  CompareOp op = CompareOp::kEq;
  bool negated = false;
  Predicate::Quantifier quantifier = Predicate::Quantifier::kNone;
  BoundOperand rhs;
  double approx_tolerance = 1.0;  // for kApproxEq comparisons
  std::unique_ptr<BoundQuery> subquery;

  /// True when the predicate references only this block's tables
  /// (up == 0 everywhere and no subquery).
  bool IsLocal() const;
};

/// A resolved HAVING conjunct.
struct BoundHavingItem {
  AggFunc agg = AggFunc::kNone;
  BoundColumnRef column;
  CompareOp op = CompareOp::kEq;
  Value constant;
  double approx_tolerance = 1.0;
};

/// A resolved ORDER BY item: an output column position or the degree.
struct BoundOrderItem {
  bool by_degree = false;
  size_t output_column = 0;  // index into output_schema when !by_degree
  bool descending = false;
};

struct BoundQuery {
  std::vector<BoundTable> tables;
  std::vector<BoundSelectItem> select;
  std::vector<BoundPredicate> predicates;
  std::vector<BoundColumnRef> group_by;
  std::vector<BoundHavingItem> having;
  std::vector<BoundOrderItem> order_by;
  bool has_with = false;
  double with_threshold = 0.0;
  Schema output_schema;

  /// Maximum nesting depth: 1 for a flat query, 2 for one subquery
  /// level, etc.
  int NestingDepth() const;
};

/// Binds `query` against `catalog`. The returned BoundQuery holds
/// pointers into the catalog's relations; the catalog must outlive it.
Result<std::unique_ptr<BoundQuery>> Bind(const Query& query,
                                         const Catalog& catalog);

/// Convenience: parse + bind.
Result<std::unique_ptr<BoundQuery>> ParseAndBind(const std::string& text,
                                                 const Catalog& catalog);

}  // namespace sql
}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_BINDER_H_
