#include "sql/binder.h"

#include <algorithm>

#include "common/string_util.h"
#include "sql/parser.h"

namespace fuzzydb {
namespace sql {

bool BoundPredicate::IsLocal() const {
  if (subquery != nullptr) return false;
  if (lhs.is_column && lhs.column.up != 0) return false;
  if (kind == Predicate::Kind::kCompare && rhs.is_column &&
      rhs.column.up != 0) {
    return false;
  }
  return true;
}

int BoundQuery::NestingDepth() const {
  int depth = 1;
  for (const BoundPredicate& p : predicates) {
    if (p.subquery != nullptr) {
      depth = std::max(depth, 1 + p.subquery->NestingDepth());
    }
  }
  return depth;
}

namespace {

class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}

  Result<std::unique_ptr<BoundQuery>> BindBlock(const Query& query) {
    auto bound = std::make_unique<BoundQuery>();

    // FROM: resolve relations, check alias uniqueness.
    for (const TableRef& table : query.from) {
      FUZZYDB_ASSIGN_OR_RETURN(const Relation* relation,
                               catalog_.GetRelation(table.name));
      const std::string alias = table.alias.empty() ? table.name : table.alias;
      for (const BoundTable& existing : bound->tables) {
        if (EqualsIgnoreCase(existing.alias, alias)) {
          return Status::BindError("duplicate table alias '" + alias + "'");
        }
      }
      bound->tables.push_back(BoundTable{relation, alias});
    }
    scopes_.push_back(bound.get());

    // SELECT.
    for (const SelectItem& item : query.select) {
      BoundSelectItem bound_item;
      bound_item.agg = item.agg;
      FUZZYDB_ASSIGN_OR_RETURN(bound_item.column,
                               ResolveColumn(item.column,
                                             /*allow_correlated=*/false));
      bound_item.name = item.agg == AggFunc::kNone
                            ? item.column.column
                            : std::string(AggFuncName(item.agg)) + "(" +
                                  item.column.ToString() + ")";
      bound->select.push_back(std::move(bound_item));
    }

    // WHERE.
    for (const Predicate& pred : query.where) {
      FUZZYDB_ASSIGN_OR_RETURN(BoundPredicate bound_pred,
                               BindPredicate(pred));
      bound->predicates.push_back(std::move(bound_pred));
    }

    // GROUPBY.
    for (const ColumnRef& col : query.group_by) {
      FUZZYDB_ASSIGN_OR_RETURN(
          BoundColumnRef ref,
          ResolveColumn(col, /*allow_correlated=*/false));
      bound->group_by.push_back(ref);
    }
    auto in_group_by = [&](const BoundColumnRef& ref) {
      for (const BoundColumnRef& g : bound->group_by) {
        if (g.table == ref.table && g.column == ref.column) return true;
      }
      return false;
    };
    if (!bound->group_by.empty()) {
      // Grouped query: every plain SELECT item must be a grouping column.
      for (const BoundSelectItem& item : bound->select) {
        if (item.agg == AggFunc::kNone && !in_group_by(item.column)) {
          return Status::BindError("column '" + item.name +
                                   "' must appear in GROUPBY or inside an "
                                   "aggregate");
        }
      }
    }

    // HAVING.
    if (!query.having.empty() && bound->group_by.empty()) {
      return Status::BindError("HAVING requires a GROUPBY clause");
    }
    for (const HavingItem& item : query.having) {
      BoundHavingItem bound_item;
      bound_item.agg = item.agg;
      bound_item.op = item.op;
      bound_item.approx_tolerance = item.approx_tolerance;
      FUZZYDB_ASSIGN_OR_RETURN(
          bound_item.column,
          ResolveColumn(item.column, /*allow_correlated=*/false));
      if (item.agg == AggFunc::kNone && !in_group_by(bound_item.column)) {
        return Status::BindError(
            "HAVING column must be aggregated or appear in GROUPBY");
      }
      if (item.agg != AggFunc::kNone && item.agg != AggFunc::kCount) {
        const auto& schema =
            bound->tables[bound_item.column.table].relation->schema();
        if (schema.ColumnAt(bound_item.column.column).type !=
            ValueType::kFuzzy) {
          return Status::BindError("aggregate over non-numeric HAVING column");
        }
      }
      if (!item.rhs.term.empty()) {
        FUZZYDB_ASSIGN_OR_RETURN(Trapezoid t,
                                 catalog_.terms().Lookup(item.rhs.term));
        bound_item.constant = Value::Fuzzy(t);
      } else {
        bound_item.constant = item.rhs.value;
      }
      bound->having.push_back(std::move(bound_item));
    }

    bound->has_with = query.has_with;
    bound->with_threshold = query.has_with ? query.with_threshold : 0.0;

    // Output schema.
    for (const BoundSelectItem& item : bound->select) {
      const Schema& schema = bound->tables[item.column.table].relation->schema();
      ValueType type = schema.ColumnAt(item.column.column).type;
      if (item.agg == AggFunc::kCount) type = ValueType::kFuzzy;
      if (item.agg != AggFunc::kNone && type != ValueType::kFuzzy) {
        return Status::BindError("aggregate over non-numeric column '" +
                                 item.name + "'");
      }
      // Disambiguate colliding output names (SELECT F.NAME, M.NAME) by
      // qualifying with the table alias, then numbering.
      std::string name = item.name;
      if (bound->output_schema.Has(name)) {
        name = bound->tables[item.column.table].alias + "." + item.name;
      }
      for (int n = 2; bound->output_schema.Has(name); ++n) {
        name = item.name + "_" + std::to_string(n);
      }
      FUZZYDB_RETURN_IF_ERROR(
          bound->output_schema.AddColumn(Column{name, type}));
    }

    // ORDER BY: resolves against the projected columns (or the degree).
    // Only meaningful on the outermost block: an inner block's result is
    // a fuzzy *set*, which has no order.
    if (!query.order_by.empty() && scopes_.size() > 1) {
      return Status::BindError("ORDER BY is not allowed in a subquery");
    }
    for (const OrderItem& item : query.order_by) {
      BoundOrderItem bound_item;
      bound_item.descending = item.descending;
      if (item.by_degree) {
        bound_item.by_degree = true;
      } else {
        FUZZYDB_ASSIGN_OR_RETURN(
            bound_item.output_column,
            bound->output_schema.IndexOf(item.column.column));
      }
      bound->order_by.push_back(bound_item);
    }

    scopes_.pop_back();
    return bound;
  }

 private:
  Result<BoundColumnRef> ResolveColumn(const ColumnRef& ref,
                                       bool allow_correlated) {
    for (int up = 0; up < static_cast<int>(scopes_.size()); ++up) {
      const BoundQuery* scope = scopes_[scopes_.size() - 1 - up];
      int match_table = -1;
      size_t match_column = 0;
      for (size_t t = 0; t < scope->tables.size(); ++t) {
        const BoundTable& table = scope->tables[t];
        if (!ref.table.empty() && !EqualsIgnoreCase(ref.table, table.alias)) {
          continue;
        }
        auto idx = table.relation->schema().IndexOf(ref.column);
        if (!idx.ok()) continue;
        if (match_table >= 0) {
          return Status::BindError("ambiguous column reference '" +
                                   ref.ToString() + "'");
        }
        match_table = static_cast<int>(t);
        match_column = idx.value();
      }
      if (match_table >= 0) {
        if (up > 0 && !allow_correlated) {
          return Status::BindError("correlated reference '" + ref.ToString() +
                                   "' is not allowed here");
        }
        BoundColumnRef bound;
        bound.up = up;
        bound.table = static_cast<size_t>(match_table);
        bound.column = match_column;
        return bound;
      }
    }
    return Status::BindError("cannot resolve column '" + ref.ToString() +
                             "'");
  }

  Result<BoundOperand> BindOperand(const Operand& operand) {
    BoundOperand bound;
    if (operand.kind == Operand::Kind::kColumn) {
      bound.is_column = true;
      FUZZYDB_ASSIGN_OR_RETURN(
          bound.column,
          ResolveColumn(operand.column, /*allow_correlated=*/true));
      return bound;
    }
    bound.is_column = false;
    if (!operand.literal.term.empty()) {
      FUZZYDB_ASSIGN_OR_RETURN(Trapezoid t,
                               catalog_.terms().Lookup(operand.literal.term));
      bound.constant = Value::Fuzzy(t);
    } else {
      bound.constant = operand.literal.value;
    }
    return bound;
  }

  Result<BoundPredicate> BindPredicate(const Predicate& pred) {
    BoundPredicate bound;
    bound.kind = pred.kind;
    bound.op = pred.op;
    bound.negated = pred.negated;
    bound.quantifier = pred.quantifier;
    bound.approx_tolerance = pred.approx_tolerance;
    if (pred.kind != Predicate::Kind::kExists) {
      FUZZYDB_ASSIGN_OR_RETURN(bound.lhs, BindOperand(pred.lhs));
    }

    if (pred.kind == Predicate::Kind::kCompare) {
      FUZZYDB_ASSIGN_OR_RETURN(bound.rhs, BindOperand(pred.rhs));
      return bound;
    }

    FUZZYDB_ASSIGN_OR_RETURN(bound.subquery, BindBlock(*pred.subquery));
    const auto& sub_select = bound.subquery->select;
    bool has_agg = false;
    for (const auto& item : sub_select) {
      has_agg = has_agg || item.agg != AggFunc::kNone;
    }
    if (pred.kind == Predicate::Kind::kExists) {
      if (has_agg) {
        return Status::BindError(
            "EXISTS subquery must not select an aggregate");
      }
      return bound;
    }
    if (sub_select.size() != 1) {
      return Status::BindError(
          "subquery must project exactly one column");
    }
    if (pred.kind == Predicate::Kind::kAggCompare && !has_agg) {
      return Status::BindError(
          "scalar subquery must select an aggregate function");
    }
    if (pred.kind == Predicate::Kind::kAggCompare &&
        !bound.subquery->group_by.empty()) {
      return Status::BindError(
          "scalar subquery must not use GROUPBY (it would return one row "
          "per group)");
    }
    if (pred.kind != Predicate::Kind::kAggCompare && has_agg) {
      return Status::BindError(
          "IN/quantified subquery must not select an aggregate");
    }
    return bound;
  }

  const Catalog& catalog_;
  std::vector<const BoundQuery*> scopes_;
};

}  // namespace

Result<std::unique_ptr<BoundQuery>> Bind(const Query& query,
                                         const Catalog& catalog) {
  Binder binder(catalog);
  return binder.BindBlock(query);
}

Result<std::unique_ptr<BoundQuery>> ParseAndBind(const std::string& text,
                                                 const Catalog& catalog) {
  FUZZYDB_ASSIGN_OR_RETURN(std::unique_ptr<Query> query, ParseQuery(text));
  return Bind(*query, catalog);
}

}  // namespace sql
}  // namespace fuzzydb
