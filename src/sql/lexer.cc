#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <version>
#if defined(__cpp_lib_to_chars)
#include <charconv>
#endif

namespace fuzzydb {
namespace sql {

std::string Token::Describe() const {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier '" + text + "'";
    case TokenType::kNumber:
      return "number";
    case TokenType::kString:
      return "string literal";
    case TokenType::kTerm:
      return "term \"" + text + "\"";
    case TokenType::kEnd:
      return "end of input";
    default:
      return "'" + text + "'";
  }
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenType type, std::string text, size_t pos) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      push(TokenType::kIdentifier, input.substr(i, j - i), start);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      // Delimit the literal explicitly (digits [. digits] [e[+-]digits])
      // so parsing is locale-independent and never swallows trailing
      // text the way strtod's hex/inf extensions could.
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.') {
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          ++k;
          while (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
            ++k;
          }
          j = k;
        }
      }
      double v = 0.0;
      bool out_of_range = false;
#if defined(__cpp_lib_to_chars)
      const auto [ptr, ec] =
          std::from_chars(input.data() + i, input.data() + j, v);
      out_of_range = ec == std::errc::result_out_of_range;
      if (ec != std::errc() && !out_of_range) {
        return Status::ParseError("malformed numeric literal at offset " +
                                  std::to_string(start));
      }
#else
      // Fallback: ERANGE-checked strtod on the delimited slice (the
      // slice contains no locale-dependent characters).
      const std::string slice = input.substr(i, j - i);
      errno = 0;
      char* end = nullptr;
      v = std::strtod(slice.c_str(), &end);
      out_of_range = errno == ERANGE;
      if (end != slice.c_str() + slice.size()) {
        return Status::ParseError("malformed numeric literal at offset " +
                                  std::to_string(start));
      }
#endif
      if (out_of_range) {
        return Status::ParseError("numeric literal out of range at offset " +
                                  std::to_string(start));
      }
      Token t;
      t.type = TokenType::kNumber;
      t.number = v;
      t.position = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      size_t j = i + 1;
      std::string text;
      while (j < n && input[j] != quote) text += input[j++];
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(quote == '"' ? TokenType::kTerm : TokenType::kString, text, start);
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenType::kComma, ",", start);
        ++i;
        continue;
      case '.':
        push(TokenType::kDot, ".", start);
        ++i;
        continue;
      case '(':
        push(TokenType::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenType::kRParen, ")", start);
        ++i;
        continue;
      case '+':
        push(TokenType::kPlus, "+", start);
        ++i;
        continue;
      case '-':
        push(TokenType::kMinus, "-", start);
        ++i;
        continue;
      case '=':
        push(TokenType::kEq, "=", start);
        ++i;
        continue;
      case '~':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kApprox, "~=", start);
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected '~' at offset " +
                                  std::to_string(start));
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, "!=", start);
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected '!' at offset " +
                                  std::to_string(start));
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenType::kLt, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenType::kGt, ">", start);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenType::kEnd, "", n);
  return tokens;
}

}  // namespace sql
}  // namespace fuzzydb
