// Recursive-descent parser for Fuzzy SQL.
#ifndef FUZZYDB_SQL_PARSER_H_
#define FUZZYDB_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace fuzzydb {
namespace sql {

/// Parses one Fuzzy SQL SELECT statement. See ast.h for the grammar.
/// Keywords are case-insensitive; "GROUP BY" and "GROUPBY" (the paper's
/// spelling) are both accepted, as are "is in" / "is not in" / "in" /
/// "not in" for set membership.
Result<std::unique_ptr<Query>> ParseQuery(const std::string& text);

}  // namespace sql
}  // namespace fuzzydb

#endif  // FUZZYDB_SQL_PARSER_H_
