#include "common/rng.h"

#include <cassert>

namespace fuzzydb {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the full state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

}  // namespace fuzzydb
