// Small string helpers shared across modules.
#ifndef FUZZYDB_COMMON_STRING_UTIL_H_
#define FUZZYDB_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace fuzzydb {

/// Lower-cases ASCII characters; other bytes pass through unchanged.
std::string ToLower(const std::string& s);

/// Upper-cases ASCII characters; other bytes pass through unchanged.
std::string ToUpper(const std::string& s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Formats a double compactly: integers without trailing ".0", otherwise up
/// to `precision` significant digits.
std::string FormatDouble(double v, int precision = 6);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_STRING_UTIL_H_
