// Deterministic pseudo-random number generation for workloads and tests.
#ifndef FUZZYDB_COMMON_RNG_H_
#define FUZZYDB_COMMON_RNG_H_

#include <cstdint>

namespace fuzzydb {

/// A small, fast, deterministic RNG (xoshiro256**). Identical sequences on
/// every platform, which keeps workload generation and property tests
/// reproducible independent of the standard library implementation.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
};

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_RNG_H_
