// Query-lifecycle governance: cooperative cancellation, deadlines, and
// per-query memory budgets.
//
// One QueryContext accompanies one query execution. Operators poll
// StopRequested() at morsel/page/tuple boundaries (an atomic load when no
// deadline is set; one steady_clock read otherwise) and return Check()
// when it fires, so a cancelled, timed-out, or over-budget query
// terminates with a well-formed CANCELLED / DEADLINE_EXCEEDED /
// RESOURCE_EXHAUSTED Status within one unit of work of the trigger --
// at any thread count, because ParallelFor also stops handing out
// morsels (see parallel/parallel_for.h).
//
// Everything here is thread-safe: Cancel() may be called from any thread
// (it is async-signal-safe -- a single relaxed atomic store -- so the
// shell's Ctrl-C handler can use it), and MemoryBudget charges may race
// from concurrent workers.
#ifndef FUZZYDB_COMMON_QUERY_CONTEXT_H_
#define FUZZYDB_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace fuzzydb {

/// Process-wide interrupt epoch backing "cancel everything in flight"
/// (SIGINT in the shell, graceful drain in the server). Raise() is a
/// single relaxed fetch_add -- async-signal-safe -- and touches no
/// QueryContext memory, so there is no lifetime race with queries
/// finishing concurrently: each QueryContext captures the epoch at
/// construction and treats a later epoch as a cancel request. Queries
/// started after the interrupt see the new epoch at construction and
/// are unaffected.
class GlobalInterrupt {
 public:
  /// Requests cancellation of every query in flight. Async-signal-safe.
  static void Raise() { epoch_.fetch_add(1, std::memory_order_relaxed); }
  static uint64_t Epoch() { return epoch_.load(std::memory_order_relaxed); }

 private:
  static std::atomic<uint64_t> epoch_;
};

/// A per-query memory ceiling with checked accounting. Limit 0 (the
/// default) means unlimited; Charge still tracks usage so tests can
/// assert balanced accounting (used() == 0 after the query finishes,
/// success or failure).
class MemoryBudget {
 public:
  MemoryBudget() = default;
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Sets the ceiling in bytes (0 = unlimited). Call before the query
  /// starts; not synchronized against in-flight charges.
  void set_limit(uint64_t bytes) { limit_ = bytes; }
  uint64_t limit() const { return limit_; }

  /// Reserves `bytes` against the budget. On denial nothing is charged,
  /// the denied bytes are recorded, and RESOURCE_EXHAUSTED is returned.
  Status Charge(uint64_t bytes);

  /// Returns bytes previously charged. Every successful Charge must be
  /// paired with a Release (RAII: ScopedBudget below).
  void Release(uint64_t bytes) {
    used_.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  }

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t denied_bytes() const {
    return denied_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t limit_ = 0;  // 0 = unlimited
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<uint64_t> denied_{0};
};

/// The governance handle threaded through ExecOptions into every
/// operator. Null pointers mean "ungoverned": all helpers below accept
/// nullptr and cost one pointer test.
class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Requests cooperative cancellation. Async-signal-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms a deadline `ms` milliseconds from now (monotonic clock).
  /// Call before the query starts.
  void set_deadline_after_ms(double ms) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
  }
  bool has_deadline() const { return has_deadline_; }

  /// True when the query should stop (cancel, expired deadline, or a
  /// denied memory charge). The fast path is one relaxed load; with a
  /// deadline armed it adds one steady_clock read until the deadline
  /// fires, after which the result is latched.
  bool StopRequested() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (GlobalInterrupt::Epoch() != interrupt_epoch_) {
      // A process-wide interrupt raised after this query started:
      // latch it as a plain cancel so Check() reports CANCELLED.
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (exhausted_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (deadline_hit_.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() >= deadline_) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// The Status to surface when StopRequested(): CANCELLED wins over
  /// DEADLINE_EXCEEDED wins over RESOURCE_EXHAUSTED; OK otherwise.
  Status Check() const;

  /// Charges the memory budget and, on denial, latches the stop flag so
  /// every worker winds down within one morsel.
  Status ChargeMemory(uint64_t bytes) {
    Status s = memory_.Charge(bytes);
    if (!s.ok()) exhausted_.store(true, std::memory_order_relaxed);
    return s;
  }
  void ReleaseMemory(uint64_t bytes) { memory_.Release(bytes); }

  MemoryBudget& memory() { return memory_; }
  const MemoryBudget& memory() const { return memory_; }

 private:
  // mutable: StopRequested() (const) latches a global interrupt here.
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<bool> exhausted_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  const uint64_t interrupt_epoch_ = GlobalInterrupt::Epoch();
  bool has_deadline_ = false;  // set before execution, read-only after
  std::chrono::steady_clock::time_point deadline_{};
  MemoryBudget memory_;
};

/// Null-tolerant helpers so operators don't branch on governance being
/// present.
inline bool QueryStopRequested(const QueryContext* ctx) {
  return ctx != nullptr && ctx->StopRequested();
}

inline Status CheckQuery(const QueryContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->Check();
}

/// RAII budget reservation: releases whatever was successfully charged
/// when the scope closes, so error paths keep the accounting balanced.
class ScopedBudget {
 public:
  explicit ScopedBudget(QueryContext* ctx) : ctx_(ctx) {}
  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;
  ~ScopedBudget() { Reset(); }

  /// Charges `bytes` more; returns RESOURCE_EXHAUSTED (charging nothing)
  /// on denial. A null context charges nothing and always succeeds.
  Status Charge(uint64_t bytes) {
    if (ctx_ == nullptr) return Status::OK();
    FUZZYDB_RETURN_IF_ERROR(ctx_->ChargeMemory(bytes));
    bytes_ += bytes;
    return Status::OK();
  }

  /// Releases `bytes` of the earlier charges ahead of scope exit (e.g. a
  /// retiring merge-window tuple); clamped to what is still charged.
  void Release(uint64_t bytes) {
    if (ctx_ == nullptr || bytes == 0) return;
    if (bytes > bytes_) bytes = bytes_;
    ctx_->ReleaseMemory(bytes);
    bytes_ -= bytes;
  }

  /// Releases everything charged so far (idempotent).
  void Reset() {
    if (ctx_ != nullptr && bytes_ > 0) ctx_->ReleaseMemory(bytes_);
    bytes_ = 0;
  }

  uint64_t charged() const { return bytes_; }

 private:
  QueryContext* ctx_;
  uint64_t bytes_ = 0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_QUERY_CONTEXT_H_
