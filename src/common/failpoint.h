// A process-wide fail-point registry for fault-injection testing.
//
// IO sites declare a named point:
//
//   FUZZYDB_RETURN_IF_ERROR(FailPoints::Check("storage/page-read"));
//
// Tests (or the FUZZYDB_FAILPOINTS environment variable) arm points by
// name; an armed point fails its next `failures` hits (after optionally
// skipping the first `skip`) with an injected IoError. The disarmed hot
// path is one relaxed atomic load of the global armed count -- no lookup,
// no lock -- so the checks stay in production builds.
//
// Environment syntax, parsed once on first use:
//   FUZZYDB_FAILPOINTS="name[=failures[:skip]][,name...]"
// e.g. FUZZYDB_FAILPOINTS="sort/spill-write,storage/page-read=1:3"
// arms sort/spill-write for one failure and storage/page-read to fail
// once after three successful hits.
#ifndef FUZZYDB_COMMON_FAILPOINT_H_
#define FUZZYDB_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fuzzydb {

class FailPoints {
 public:
  /// Returns an injected IoError if `name` is armed and due, OK
  /// otherwise. Cost when nothing is armed anywhere: one relaxed load.
  static Status Check(const char* name);

  /// Arms `name` to fail `failures` times (-1 = every hit) after letting
  /// the first `skip` hits pass. Re-arming an existing point replaces
  /// its state and resets its hit counter.
  static void Arm(const std::string& name, int64_t failures = 1,
                  int64_t skip = 0);
  static void Disarm(const std::string& name);
  static void DisarmAll();

  /// Hits observed while the point was armed (skipped hits included).
  /// Zero for never-armed points.
  static uint64_t Hits(const std::string& name);

  /// Names of currently armed points (for diagnostics).
  static std::vector<std::string> ArmedNames();

  /// Parses one FUZZYDB_FAILPOINTS-style spec and arms the points it
  /// names. Returns false (arming nothing further) on a malformed entry.
  static bool ArmFromSpec(const std::string& spec);

 private:
  friend struct FailPointsEnvInit;
  static void ArmFromEnvOnce();
};

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_FAILPOINT_H_
