#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace fuzzydb {

namespace {

struct PointState {
  int64_t skip = 0;       // hits to let pass before failing
  int64_t failures = 0;   // remaining injected failures; -1 = unlimited
  uint64_t hits = 0;      // hits observed while armed
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState> points;
  size_t armed = 0;  // points with failures != 0 or skip pending
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// The hot-path tap: number of points currently armed. Check() returns
// immediately when zero, so un-instrumented runs never take the lock.
std::atomic<size_t> g_armed_count{0};

std::once_flag g_env_once;

}  // namespace

void FailPoints::ArmFromEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* spec = std::getenv("FUZZYDB_FAILPOINTS");
    if (spec != nullptr && spec[0] != '\0') ArmFromSpec(spec);
  });
}

Status FailPoints::Check(const char* name) {
  ArmFromEnvOnce();
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) return Status::OK();
  PointState& state = it->second;
  if (state.failures == 0) return Status::OK();  // already spent
  ++state.hits;
  if (state.skip > 0) {
    --state.skip;
    return Status::OK();
  }
  if (state.failures > 0 && --state.failures == 0) {
    --reg.armed;
    g_armed_count.store(reg.armed, std::memory_order_relaxed);
  }
  return Status::IoError(std::string("injected failure at failpoint '") +
                         name + "'");
}

void FailPoints::Arm(const std::string& name, int64_t failures,
                     int64_t skip) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState& state = reg.points[name];
  const bool was_armed = state.failures != 0;
  state.skip = skip;
  state.failures = failures;
  state.hits = 0;
  const bool now_armed = state.failures != 0;
  if (now_armed && !was_armed) ++reg.armed;
  if (!now_armed && was_armed) --reg.armed;
  g_armed_count.store(reg.armed, std::memory_order_relaxed);
}

void FailPoints::Disarm(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) return;
  if (it->second.failures != 0) {
    --reg.armed;
    g_armed_count.store(reg.armed, std::memory_order_relaxed);
  }
  it->second.failures = 0;
  it->second.skip = 0;
}

void FailPoints::DisarmAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, state] : reg.points) {
    state.failures = 0;
    state.skip = 0;
  }
  reg.armed = 0;
  g_armed_count.store(0, std::memory_order_relaxed);
}

uint64_t FailPoints::Hits(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> FailPoints::ArmedNames() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  for (const auto& [name, state] : reg.points) {
    if (state.failures != 0) names.push_back(name);
  }
  return names;
}

bool FailPoints::ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    std::string name = entry;
    int64_t failures = 1;
    int64_t skip = 0;
    const size_t eq = entry.find('=');
    if (eq != std::string::npos) {
      name = entry.substr(0, eq);
      std::string counts = entry.substr(eq + 1);
      const size_t colon = counts.find(':');
      std::string fail_str =
          colon == std::string::npos ? counts : counts.substr(0, colon);
      try {
        failures = std::stoll(fail_str);
        if (colon != std::string::npos) {
          skip = std::stoll(counts.substr(colon + 1));
        }
      } catch (...) {
        return false;
      }
      if (skip < 0) return false;
    }
    if (name.empty()) return false;
    Arm(name, failures, skip);
  }
  return true;
}

}  // namespace fuzzydb
