// Status and Result<T>: lightweight error propagation without exceptions.
//
// The library's core paths (query evaluation, storage) never throw; fallible
// functions return Status or Result<T> in the style of Arrow / RocksDB.
#ifndef FUZZYDB_COMMON_STATUS_H_
#define FUZZYDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fuzzydb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kParseError,
  kBindError,
  kUnsupported,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error. Holds T on success, a non-OK Status on failure.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fuzzydb

/// Propagates a non-OK Status from an expression to the caller.
#define FUZZYDB_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::fuzzydb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error to the caller.
#define FUZZYDB_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                  \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value()

#define FUZZYDB_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define FUZZYDB_ASSIGN_OR_RETURN_NAME(x, y) \
  FUZZYDB_ASSIGN_OR_RETURN_CONCAT(x, y)

#define FUZZYDB_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  FUZZYDB_ASSIGN_OR_RETURN_IMPL(                                           \
      FUZZYDB_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

#endif  // FUZZYDB_COMMON_STATUS_H_
