#include "common/query_context.h"

namespace fuzzydb {

std::atomic<uint64_t> GlobalInterrupt::epoch_{0};

Status MemoryBudget::Charge(uint64_t bytes) {
  const int64_t now = used_.fetch_add(static_cast<int64_t>(bytes),
                                      std::memory_order_relaxed) +
                      static_cast<int64_t>(bytes);
  if (limit_ > 0 && now > static_cast<int64_t>(limit_)) {
    used_.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
    denied_.fetch_add(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "memory budget exceeded: request of " + std::to_string(bytes) +
        " bytes over limit of " + std::to_string(limit_) + " bytes");
  }
  int64_t prev = peak_.load(std::memory_order_relaxed);
  while (prev < now &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status QueryContext::Check() const {
  if (cancelled_.load(std::memory_order_relaxed) ||
      GlobalInterrupt::Epoch() != interrupt_epoch_) {
    cancelled_.store(true, std::memory_order_relaxed);
    return Status::Cancelled("query cancelled");
  }
  if (has_deadline_ &&
      (deadline_hit_.load(std::memory_order_relaxed) ||
       std::chrono::steady_clock::now() >= deadline_)) {
    deadline_hit_.store(true, std::memory_order_relaxed);
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  if (exhausted_.load(std::memory_order_relaxed)) {
    return Status::ResourceExhausted(
        "query memory budget exceeded (" +
        std::to_string(memory_.denied_bytes()) + " bytes denied)");
  }
  return Status::OK();
}

}  // namespace fuzzydb
