// Wall-clock and CPU-time stopwatches used by the benchmark harness.
#ifndef FUZZYDB_COMMON_STOPWATCH_H_
#define FUZZYDB_COMMON_STOPWATCH_H_

#include <chrono>
#include <ctime>

namespace fuzzydb {

/// Measures elapsed wall-clock time in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Measures CPU time consumed by this process in seconds.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_COMMON_STOPWATCH_H_
