#include "stats/column_stats.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace fuzzydb {

namespace {

/// Clamps to [0, 1]; the CDFs interpolate and may drift a hair outside.
double Unit(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Linear position of `x` inside [lo, hi]; 0.5 for a degenerate range
/// (all members equal: half the bucket is <= x when x lands on it).
double Frac(double x, double lo, double hi) {
  if (hi <= lo) return 0.5;
  return Unit((x - lo) / (hi - lo));
}

}  // namespace

double ColumnStats::CdfBeginLeq(double x) const {
  if (fuzzy_rows == 0) return 0.0;
  uint64_t below = 0;
  for (const StatsBucket& b : begin_buckets) {
    if (x >= b.begin_hi) {
      below += b.count;
    } else if (x >= b.begin_lo) {
      below += static_cast<uint64_t>(
          Frac(x, b.begin_lo, b.begin_hi) * static_cast<double>(b.count));
      break;
    } else {
      break;
    }
  }
  return Unit(static_cast<double>(below) / static_cast<double>(fuzzy_rows));
}

double ColumnStats::CdfEndLt(double x) const {
  if (fuzzy_rows == 0 || end_edges.size() < 2) return 0.0;
  const size_t segments = end_edges.size() - 1;
  if (x <= end_edges.front()) return 0.0;
  if (x > end_edges.back()) return 1.0;
  double cdf = 0.0;
  for (size_t j = 0; j < segments; ++j) {
    if (x > end_edges[j + 1]) continue;
    cdf = (static_cast<double>(j) + Frac(x, end_edges[j], end_edges[j + 1])) /
          static_cast<double>(segments);
    break;
  }
  return Unit(cdf);
}

double ColumnStats::OverlapFraction(double lo, double hi) const {
  if (fuzzy_rows == 0) return 0.0;
  // overlap([b, e], [lo, hi]) <=> b <= hi and e >= lo; and e < lo forces
  // b <= hi, so the two counts subtract without inclusion-exclusion.
  return Unit(CdfBeginLeq(hi) - CdfEndLt(lo));
}

ColumnStats BuildColumnStats(const std::vector<Trapezoid>& values,
                             size_t buckets) {
  ColumnStats stats;
  stats.rows = values.size();
  stats.fuzzy_rows = values.size();
  if (values.empty()) return stats;

  // Sort the corner pairs by (begin, end): the build is a pure function
  // of the value multiset, so shuffled inputs yield identical summaries.
  std::vector<std::pair<double, double>> corners;
  corners.reserve(values.size());
  for (const Trapezoid& t : values) {
    corners.emplace_back(t.SupportBegin(), t.SupportEnd());
  }
  std::sort(corners.begin(), corners.end());
  stats.min_begin = corners.front().first;
  // Accumulated over the *sorted* corners: floating-point addition is
  // order-sensitive, and the build promises bit-identical output for
  // shuffled input.
  double width_sum = 0.0;
  for (const auto& [begin, end] : corners) width_sum += end - begin;
  stats.avg_support_width = width_sum / static_cast<double>(corners.size());

  stats.distinct_estimate = 1;
  for (size_t i = 1; i < corners.size(); ++i) {
    if (corners[i].first - corners[i - 1].first > kDistinctEpsilon) {
      ++stats.distinct_estimate;
    }
  }

  const size_t n = corners.size();
  const size_t b = std::max<size_t>(1, std::min(buckets, n));
  stats.begin_buckets.reserve(b);
  for (size_t i = 0; i < b; ++i) {
    // Equi-depth split: bucket i covers sorted ranks [i*n/b, (i+1)*n/b).
    const size_t from = i * n / b;
    const size_t to = (i + 1) * n / b;
    StatsBucket bucket;
    bucket.count = to - from;
    bucket.begin_lo = corners[from].first;
    bucket.begin_hi = corners[to - 1].first;
    double begin_sum = 0.0, end_sum = 0.0;
    for (size_t k = from; k < to; ++k) {
      begin_sum += corners[k].first;
      end_sum += corners[k].second;
    }
    bucket.mean_begin = begin_sum / static_cast<double>(bucket.count);
    bucket.mean_end = end_sum / static_cast<double>(bucket.count);
    stats.begin_buckets.push_back(bucket);
  }

  std::vector<double> ends;
  ends.reserve(n);
  for (const auto& [begin, end] : corners) ends.push_back(end);
  std::sort(ends.begin(), ends.end());
  stats.max_end = ends.back();
  stats.end_edges.reserve(b + 1);
  for (size_t i = 0; i <= b; ++i) {
    // The i/b quantile of the sorted ends (edge 0 = min, edge b = max).
    const size_t rank = i == b ? n - 1 : i * n / b;
    stats.end_edges.push_back(ends[rank]);
  }
  return stats;
}

ColumnStats BuildColumnStats(const Relation& relation, size_t col,
                             size_t buckets) {
  std::vector<Trapezoid> values;
  values.reserve(relation.NumTuples());
  uint64_t rows = 0;
  for (const Tuple& t : relation.tuples()) {
    ++rows;
    const Value& v = t.ValueAt(col);
    if (v.is_fuzzy()) values.push_back(v.AsFuzzy());
  }
  ColumnStats stats = BuildColumnStats(values, buckets);
  stats.rows = rows;
  return stats;
}

double EstimateOverlapFanout(const ColumnStats& from, const ColumnStats& to) {
  if (from.empty() || to.empty()) {
    return static_cast<double>(to.fuzzy_rows);
  }
  // Average the overlap count over `from`'s equi-depth buckets. Each
  // bucket is sampled at three supports -- its begin range's endpoints
  // shifted by the bucket's mean width, and its mean support -- so the
  // in-bucket spread of begins contributes instead of collapsing to one
  // representative interval (Simpson weights 1:4:1).
  double weighted = 0.0;
  for (const StatsBucket& b : from.begin_buckets) {
    const double width = std::max(0.0, b.mean_end - b.mean_begin);
    const double lo_sample = to.OverlapFraction(b.begin_lo, b.begin_lo + width);
    const double mid_sample = to.OverlapFraction(b.mean_begin, b.mean_end);
    const double hi_sample = to.OverlapFraction(b.begin_hi, b.begin_hi + width);
    const double mean_fraction =
        (lo_sample + 4.0 * mid_sample + hi_sample) / 6.0;
    weighted += static_cast<double>(b.count) * mean_fraction;
  }
  return weighted / static_cast<double>(from.fuzzy_rows) *
         static_cast<double>(to.fuzzy_rows);
}

double EstimateJoinSelectivity(const ColumnStats& from,
                               const ColumnStats& to) {
  if (from.empty() || to.empty()) return 1.0;
  return Unit(EstimateOverlapFanout(from, to) /
              static_cast<double>(to.fuzzy_rows));
}

double EstimatePredicateSelectivity(const ColumnStats& stats, CompareOp op,
                                    const Trapezoid& constant) {
  if (stats.empty()) return 1.0;
  switch (op) {
    case CompareOp::kEq:
    case CompareOp::kApproxEq:
      // Positive equality possibility <=> support overlap.
      return stats.OverlapFraction(constant.SupportBegin(),
                                   constant.SupportEnd());
    case CompareOp::kLt:
    case CompareOp::kLe:
      // v < c possible <=> inf supp(v) below sup supp(c).
      return stats.CdfBeginLeq(constant.SupportEnd());
    case CompareOp::kGt:
    case CompareOp::kGe:
      // v > c possible <=> sup supp(v) above inf supp(c).
      return Unit(1.0 - stats.CdfEndLt(constant.SupportBegin()));
    case CompareOp::kNe:
      break;  // NOT (v = c) is almost always positive; keep everything.
  }
  return 1.0;
}

TableStats BuildTableStats(const Relation& relation, size_t buckets) {
  TableStats stats;
  stats.rows = relation.NumTuples();
  const size_t cols = relation.schema().NumColumns();
  // One pass over the tuples gathers every column's corners and the
  // record bytes; the per-column sorts then run over the gathered
  // arrays, never re-touching the relation.
  std::vector<std::vector<Trapezoid>> per_column(cols);
  for (auto& column : per_column) column.reserve(stats.rows);
  uint64_t bytes = 0;
  for (const Tuple& t : relation.tuples()) {
    bytes += sizeof(double);  // membership degree
    for (size_t c = 0; c < cols; ++c) {
      const Value& v = t.ValueAt(c);
      if (v.is_fuzzy()) {
        per_column[c].push_back(v.AsFuzzy());
        bytes += 4 * sizeof(double);
      } else if (v.is_string()) {
        bytes += v.AsString().size() + 1;
      } else {
        bytes += 1;  // null tag
      }
    }
  }
  stats.avg_record_bytes =
      stats.rows == 0 ? 0.0
                      : static_cast<double>(bytes) /
                            static_cast<double>(stats.rows);
  stats.columns.reserve(cols);
  for (size_t c = 0; c < cols; ++c) {
    ColumnStats column = BuildColumnStats(per_column[c], buckets);
    column.rows = stats.rows;
    stats.columns.push_back(std::move(column));
  }
  return stats;
}

}  // namespace fuzzydb
