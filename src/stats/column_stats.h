// Per-column fuzzy statistics for cost-based planning.
//
// Section 8 of the paper assumes the overlap fan-out C ("a tuple of one
// relation joins, on the average, C tuples of the other relation") is
// known. This module estimates it -- and link/predicate selectivities --
// from summaries instead of tuple-pair sampling: a trapezoid's support
// interval [SupportBegin, SupportEnd] is the complete positivity
// information of a fuzzy equality (two values have a positive equality
// degree exactly when their support interiors intersect), so per-column
// distributions of the support *corners* are sufficient statistics for
// join positivity.
//
// A ColumnStats holds two paired equi-depth summaries built in one sorted
// pass over the column:
//
//   - begin histogram: buckets of equal tuple count over the sorted
//     support begins, each keeping its begin range, mean begin, and the
//     mean support end of its members;
//   - end quantiles: the equi-depth edges of the sorted support ends.
//
// Their interpolated CDFs answer count(begin <= x) and count(end < x),
// and since end < lo implies begin <= hi (begin <= end always), the
// number of values whose support overlaps [lo, hi] is exactly
//   n * (CdfBeginLeq(hi) - CdfEndLt(lo))
// under exact CDFs -- the summaries only add interpolation error.
//
// Everything here is deterministic: builds sort by (begin, end), so the
// statistics are a pure function of the multiset of values (permutation
// invariant, thread-count invariant).
#ifndef FUZZYDB_STATS_COLUMN_STATS_H_
#define FUZZYDB_STATS_COLUMN_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fuzzy/degree.h"
#include "fuzzy/trapezoid.h"
#include "relational/relation.h"

namespace fuzzydb {

/// One equi-depth bucket over the sorted support begins.
struct StatsBucket {
  double begin_lo = 0.0;    // smallest support begin in the bucket
  double begin_hi = 0.0;    // largest support begin in the bucket
  double mean_begin = 0.0;  // mean support begin of the members
  double mean_end = 0.0;    // mean support end of the members
  uint64_t count = 0;
};

/// Summary of one fuzzy column, built by BuildColumnStats.
struct ColumnStats {
  uint64_t rows = 0;        // values the column was built over
  uint64_t fuzzy_rows = 0;  // of those, fuzzy-typed (summarized) values
  /// Distinct-ish support count: 1 + the number of begin jumps wider
  /// than kDistinctEpsilon on the sorted pass. Exact for well-separated
  /// values; a lower bound under heavy overlap.
  uint64_t distinct_estimate = 0;
  double min_begin = 0.0;  // smallest support begin seen
  double max_end = 0.0;    // largest support end seen
  double avg_support_width = 0.0;

  std::vector<StatsBucket> begin_buckets;  // equi-depth over begins
  /// Equi-depth quantile edges over the sorted support ends:
  /// end_edges[i] is the i/B quantile, i in [0, B]; size B + 1.
  std::vector<double> end_edges;

  bool empty() const { return fuzzy_rows == 0; }

  /// Interpolated fraction of summarized values with SupportBegin <= x.
  double CdfBeginLeq(double x) const;
  /// Interpolated fraction of summarized values with SupportEnd < x.
  double CdfEndLt(double x) const;
  /// Estimated fraction of summarized values whose support overlaps
  /// [lo, hi]; clamped to [0, 1]. Requires lo <= hi.
  double OverlapFraction(double lo, double hi) const;
};

/// Gap below which two adjacent sorted begins count as one distinct
/// value for ColumnStats::distinct_estimate.
inline constexpr double kDistinctEpsilon = 1e-9;

/// Default equi-depth bucket count. Resolution matters more than build
/// cost here: the sort dominates the build either way, and estimation
/// walks are O(buckets). 128 buckets resolve the clustered key columns
/// the workload generator produces (dozens of value groups) where 16
/// would smear several groups into one bucket and underestimate
/// overlap fan-out severely.
inline constexpr size_t kDefaultStatsBuckets = 128;

/// Builds the summary of a value multiset with `buckets` equi-depth
/// buckets (clamped to [1, fuzzy values]). One sort, one pass.
ColumnStats BuildColumnStats(const std::vector<Trapezoid>& values,
                             size_t buckets = kDefaultStatsBuckets);

/// As above over column `col` of a relation; non-fuzzy values count in
/// `rows` but are not summarized.
ColumnStats BuildColumnStats(const Relation& relation, size_t col,
                             size_t buckets = kDefaultStatsBuckets);

/// Expected number of `to` values whose support overlaps one value drawn
/// from `from` -- the paper's C for the link from -> to. Averages the
/// overlap count over `from`'s buckets, sampling each bucket at its
/// begin range's endpoints and mean (a 3-point quadrature that keeps
/// in-bucket spread from collapsing to one representative). Returns
/// `to.fuzzy_rows` (join everything: the conservative upper bound) when
/// either side has no fuzzy summary.
double EstimateOverlapFanout(const ColumnStats& from, const ColumnStats& to);

/// Fraction of (from, to) pairs with overlapping supports:
/// EstimateOverlapFanout / to.fuzzy_rows. 1.0 when unestimable.
double EstimateJoinSelectivity(const ColumnStats& from,
                               const ColumnStats& to);

/// Fraction of column values expected to compare positively against a
/// constant under `op`. Falls back to 1.0 (keep everything) for shapes
/// the summaries cannot bound (non-fuzzy columns, kNe).
double EstimatePredicateSelectivity(const ColumnStats& stats, CompareOp op,
                                    const Trapezoid& constant);

/// Whole-relation statistics: per-column summaries plus the average
/// serialized record size, collected in one pass over the tuples.
struct TableStats {
  uint64_t rows = 0;
  double avg_record_bytes = 0.0;
  std::vector<ColumnStats> columns;
};

TableStats BuildTableStats(const Relation& relation,
                           size_t buckets = kDefaultStatsBuckets);

}  // namespace fuzzydb

#endif  // FUZZYDB_STATS_COLUMN_STATS_H_
