// An embeddable command interpreter for FuzzyDB.
//
// Executes Fuzzy SQL statements (SELECT / CREATE TABLE / INSERT /
// DEFINE TERM / DROP TABLE) against an in-memory catalog, plus
// dot-commands for introspection and persistence:
//
//   .help                this summary
//   .tables              list relations
//   .schema <table>      show a relation's schema and size
//   .terms               list linguistic terms with their shapes
//   .explain on|off      print classification/plan info with answers
//   .engine naive|unnested   choose the evaluator (default unnested)
//   .slowlog             show the slow-query log (see set_slow_query_ms)
//   .save <dir> / .open <dir>   persist / load the whole database
//   .gen typej|rand ...  generate synthetic relations (src/workload/)
//   .quit
//
// SHOW METRICS renders the process-wide metrics registry, and the
// system relation sys.metrics (refreshed on reference) exposes the same
// values to Fuzzy SQL itself.
//
// The shell is a library class (driven by the fuzzydb_shell tool and by
// the test suite); statements end at ';' and may span lines.
#ifndef FUZZYDB_SHELL_SHELL_H_
#define FUZZYDB_SHELL_SHELL_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "relational/catalog.h"
#include "wal/recovery.h"
#include "wal/wal_manager.h"

namespace fuzzydb {

/// Receives the answer relation of each successful SELECT executed by a
/// Shell, before it is rendered as text. The server's session layer
/// installs one to serialize rows and degrees into structured reply
/// frames without re-running or re-parsing anything; the text output is
/// unchanged whether or not a sink is installed.
class ShellResultSink {
 public:
  virtual ~ShellResultSink() = default;
  virtual void OnAnswer(const Relation& answer) = 0;
};

/// Interprets statements against an owned catalog.
class Shell {
 public:
  Shell();

  /// Feeds one input line (without trailing newline). Statements execute
  /// when their terminating ';' arrives; dot-commands execute
  /// immediately. Output and errors go to `out`. Returns false when the
  /// session should end (.quit).
  bool FeedLine(const std::string& line, std::ostream& out);

  /// Runs a complete session: reads `in` line by line until EOF or
  /// .quit. When `interactive`, prints prompts to `out`.
  void Run(std::istream& in, std::ostream& out, bool interactive);

  /// The catalog statements execute against: the shell's own unless a
  /// shared database was attached (AttachSharedDatabase).
  Catalog& catalog() { return db(); }

  /// Attaches write-ahead durability: recovers the database in `dir`
  /// (creating it when empty), replaces this shell's catalog with the
  /// recovered one, and routes every subsequent mutating statement
  /// through the log. Prints a recovery summary line to `out`. While a
  /// WAL is attached, .save/.open/.gen are refused (their mutations
  /// would bypass the log) and CHECKPOINT becomes available.
  Status EnableWal(const std::string& dir, const wal::WalOptions& options,
                   std::ostream& out);

  /// Routes this shell's statements to a catalog + WAL owned by someone
  /// else (the server's shared durable database). Neither pointer is
  /// owned; both must outlive the shell. Pass a null `manager` to share
  /// a catalog without durability.
  void AttachSharedDatabase(Catalog* catalog, wal::WalManager* manager) {
    external_catalog_ = catalog;
    external_wal_ = manager;
  }

  /// The attached WAL (owned or shared); null when none.
  wal::WalManager* wal() {
    return external_wal_ != nullptr ? external_wal_ : owned_wal_.get();
  }

  /// When set, every EXPLAIN ANALYZE additionally writes its trace as
  /// Chrome trace_event JSON (chrome://tracing, Perfetto) to this path,
  /// overwriting the previous dump.
  void set_trace_json_path(std::string path) {
    trace_json_path_ = std::move(path);
  }

  /// Suppresses the interactive banner and prompts so piped sessions
  /// (fuzzydb_shell --quiet -c "SHOW METRICS") emit only results.
  void set_quiet(bool quiet) { quiet_ = quiet; }

  /// Queries at or over this wall-time threshold (milliseconds) are
  /// recorded in the process-wide slow-query log with their EXPLAIN
  /// ANALYZE tree; 0 (the default) disables the log. See .slowlog.
  void set_slow_query_ms(double ms) { slow_query_ms_ = ms; }

  /// Every SELECT / EXPLAIN ANALYZE runs under a deadline this many
  /// milliseconds from its start; 0 (the default) means no deadline.
  void set_timeout_ms(double ms) { timeout_ms_ = ms; }

  /// Per-query memory budget in bytes for budget-tracked operator state
  /// (sort batches, join windows/blocks/partitions); 0 = unlimited.
  void set_memory_budget(uint64_t bytes) { memory_budget_ = bytes; }
  uint64_t memory_budget() const { return memory_budget_; }

  /// Lanes per batch for the batch-at-a-time degree kernels
  /// (ExecOptions::batch_size): 0 forces the scalar tuple-at-a-time
  /// path, values above the SoA capacity (1024) are clamped. Answers
  /// and counters are identical for every setting.
  void set_batch_size(size_t lanes) { batch_size_ = lanes; }

  /// Cost-based physical planning (ExecOptions::cost_based; tool flag
  /// --no-cbo clears it). Off reproduces the legacy fixed-rule plans
  /// exactly; answers are bit-identical either way.
  void set_cost_based(bool on) { cost_based_ = on; }

  /// Worker threads for the parallel operators (ExecOptions::
  /// num_threads): 0 (the default) resolves to hardware_concurrency().
  /// Answers are bit-identical at every setting; server sessions SET
  /// this per session so the determinism matrix can pin thread counts.
  void set_num_threads(size_t n) { num_threads_ = n; }

  /// Whether this shell's queries consult the process-wide cross-query
  /// cache (default true; capacity 0 keeps the cache inert regardless).
  /// Off, queries behave exactly as if the cache layer did not exist --
  /// the per-session `SET cache off` A/B switch in server mode.
  void set_cache_enabled(bool on) { cache_enabled_ = on; }

  /// When set, every EXPLAIN ANALYZE also prints its per-operator
  /// summary as a JSON array between "-- trace json begin" and
  /// "-- trace json end" marker lines, for tools (estimate_check.py)
  /// that parse estimates and actuals out of shell sessions.
  void set_explain_json(bool on) { explain_json_ = on; }

  /// True once any statement has failed (parse, bind, or execution
  /// error). The fuzzydb_shell tool maps this to a non-zero exit code
  /// in -c mode.
  bool had_error() const { return had_error_; }

  /// Resets the error latch; server sessions clear it between
  /// statements so each reply frame reports its own statement's outcome.
  void clear_error() {
    had_error_ = false;
    last_status_ = Status::OK();
  }

  /// The most recent statement's outcome: OK, or the Status whose
  /// rendered text went to the output stream. The server's session
  /// layer maps this to the machine-readable status code of each reply
  /// frame (CANCELLED, RESOURCE_EXHAUSTED, ...) without parsing text.
  const Status& last_status() const { return last_status_; }

  /// When set, every successful SELECT also hands its answer relation
  /// to `sink` (see ShellResultSink). Not owned; null disables.
  void set_result_sink(ShellResultSink* sink) { result_sink_ = sink; }

  /// Cancels every query in flight in this process, routed through
  /// ActiveQueryRegistry: the registry's lock-free size gate decides
  /// whether anything is running, and GlobalInterrupt::Raise() lands as
  /// CANCELLED in each registered query's QueryContext. Returns false
  /// when no query is in flight. Async-signal-safe (one atomic load +
  /// one atomic add, no locks, no context pointers): the SIGINT handler
  /// calls this so Ctrl-C cancels in-flight queries instead of killing
  /// the session -- with concurrent sessions, ALL of them, not just the
  /// last one registered (the old single-slot design missed the rest
  /// and could be nulled out by a racing unregister).
  static bool CancelActiveQuery();

  /// Registers a lazily materialized system relation: any statement
  /// whose text references `name` (case-insensitive, e.g.
  /// "sys.sessions") gets `provider()` put into the catalog first, the
  /// same refresh discipline as the built-in sys.metrics/sys.queries.
  /// Process-wide; later registrations for the same name win. The
  /// server uses this to expose sys.sessions without the shell layer
  /// depending on the server layer.
  static void RegisterSystemRelationProvider(
      const std::string& name, std::function<Relation()> provider);

 private:
  void ExecuteDotCommand(const std::string& line, std::ostream& out);
  void ExecuteStatement(const std::string& text, std::ostream& out);

  Catalog& db() {
    return external_catalog_ != nullptr ? *external_catalog_ : catalog_;
  }

  /// The WAL commit protocol for one mutating statement: under the
  /// commit lock, validate against the current catalog, append to the
  /// log, then apply through wal::ApplyWalRecord -- the same function
  /// recovery replays with. Validation runs first so a statement that
  /// would fail (duplicate CREATE, arity mismatch, missing table) is
  /// never logged: the durable log holds exactly the acknowledged
  /// mutations.
  Status CommitMutation(wal::WalRecord* record);

  /// Latches a statement failure (had_error_, last_status_) and prints
  /// the rendered status.
  void FailStatement(const Status& status, std::ostream& out);

  /// Re-materializes the sys.metrics relation from the registry when the
  /// statement text references it, so queries read current values.
  void RefreshSystemRelations(const std::string& statement_text);

  Catalog catalog_;
  Catalog* external_catalog_ = nullptr;      // not owned (server mode)
  wal::WalManager* external_wal_ = nullptr;  // not owned (server mode)
  std::unique_ptr<wal::WalManager> owned_wal_;
  std::string pending_;   // partial statement across lines
  std::string trace_json_path_;
  bool explain_ = false;
  bool use_naive_ = false;
  bool done_ = false;
  bool quiet_ = false;
  bool had_error_ = false;
  Status last_status_;
  double slow_query_ms_ = 0.0;
  double timeout_ms_ = 0.0;
  uint64_t memory_budget_ = 0;
  size_t batch_size_ = 1024;
  size_t num_threads_ = 0;
  bool cost_based_ = true;
  bool cache_enabled_ = true;
  bool explain_json_ = false;
  ShellResultSink* result_sink_ = nullptr;  // not owned
};

}  // namespace fuzzydb

#endif  // FUZZYDB_SHELL_SHELL_H_
