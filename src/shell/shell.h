// An embeddable command interpreter for FuzzyDB.
//
// Executes Fuzzy SQL statements (SELECT / CREATE TABLE / INSERT /
// DEFINE TERM / DROP TABLE) against an in-memory catalog, plus
// dot-commands for introspection and persistence:
//
//   .help                this summary
//   .tables              list relations
//   .schema <table>      show a relation's schema and size
//   .terms               list linguistic terms with their shapes
//   .explain on|off      print classification/plan info with answers
//   .engine naive|unnested   choose the evaluator (default unnested)
//   .slowlog             show the slow-query log (see set_slow_query_ms)
//   .save <dir> / .open <dir>   persist / load the whole database
//   .gen typej|rand ...  generate synthetic relations (src/workload/)
//   .quit
//
// SHOW METRICS renders the process-wide metrics registry, and the
// system relation sys.metrics (refreshed on reference) exposes the same
// values to Fuzzy SQL itself.
//
// The shell is a library class (driven by the fuzzydb_shell tool and by
// the test suite); statements end at ';' and may span lines.
#ifndef FUZZYDB_SHELL_SHELL_H_
#define FUZZYDB_SHELL_SHELL_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "relational/catalog.h"

namespace fuzzydb {

/// Interprets statements against an owned catalog.
class Shell {
 public:
  Shell();

  /// Feeds one input line (without trailing newline). Statements execute
  /// when their terminating ';' arrives; dot-commands execute
  /// immediately. Output and errors go to `out`. Returns false when the
  /// session should end (.quit).
  bool FeedLine(const std::string& line, std::ostream& out);

  /// Runs a complete session: reads `in` line by line until EOF or
  /// .quit. When `interactive`, prints prompts to `out`.
  void Run(std::istream& in, std::ostream& out, bool interactive);

  Catalog& catalog() { return catalog_; }

  /// When set, every EXPLAIN ANALYZE additionally writes its trace as
  /// Chrome trace_event JSON (chrome://tracing, Perfetto) to this path,
  /// overwriting the previous dump.
  void set_trace_json_path(std::string path) {
    trace_json_path_ = std::move(path);
  }

  /// Suppresses the interactive banner and prompts so piped sessions
  /// (fuzzydb_shell --quiet -c "SHOW METRICS") emit only results.
  void set_quiet(bool quiet) { quiet_ = quiet; }

  /// Queries at or over this wall-time threshold (milliseconds) are
  /// recorded in the process-wide slow-query log with their EXPLAIN
  /// ANALYZE tree; 0 (the default) disables the log. See .slowlog.
  void set_slow_query_ms(double ms) { slow_query_ms_ = ms; }

  /// Every SELECT / EXPLAIN ANALYZE runs under a deadline this many
  /// milliseconds from its start; 0 (the default) means no deadline.
  void set_timeout_ms(double ms) { timeout_ms_ = ms; }

  /// Per-query memory budget in bytes for budget-tracked operator state
  /// (sort batches, join windows/blocks/partitions); 0 = unlimited.
  void set_memory_budget(uint64_t bytes) { memory_budget_ = bytes; }

  /// Lanes per batch for the batch-at-a-time degree kernels
  /// (ExecOptions::batch_size): 0 forces the scalar tuple-at-a-time
  /// path, values above the SoA capacity (1024) are clamped. Answers
  /// and counters are identical for every setting.
  void set_batch_size(size_t lanes) { batch_size_ = lanes; }

  /// Cost-based physical planning (ExecOptions::cost_based; tool flag
  /// --no-cbo clears it). Off reproduces the legacy fixed-rule plans
  /// exactly; answers are bit-identical either way.
  void set_cost_based(bool on) { cost_based_ = on; }

  /// When set, every EXPLAIN ANALYZE also prints its per-operator
  /// summary as a JSON array between "-- trace json begin" and
  /// "-- trace json end" marker lines, for tools (estimate_check.py)
  /// that parse estimates and actuals out of shell sessions.
  void set_explain_json(bool on) { explain_json_ = on; }

  /// True once any statement has failed (parse, bind, or execution
  /// error). The fuzzydb_shell tool maps this to a non-zero exit code
  /// in -c mode.
  bool had_error() const { return had_error_; }

  /// Cancels the query currently executing in any Shell in this process
  /// (cooperatively, via its QueryContext). Returns false when no query
  /// is in flight. Async-signal-safe: the SIGINT handler calls this so
  /// Ctrl-C cancels the query instead of killing the session.
  static bool CancelActiveQuery();

 private:
  void ExecuteDotCommand(const std::string& line, std::ostream& out);
  void ExecuteStatement(const std::string& text, std::ostream& out);

  /// Re-materializes the sys.metrics relation from the registry when the
  /// statement text references it, so queries read current values.
  void RefreshSystemRelations(const std::string& statement_text);

  Catalog catalog_;
  std::string pending_;   // partial statement across lines
  std::string trace_json_path_;
  bool explain_ = false;
  bool use_naive_ = false;
  bool done_ = false;
  bool quiet_ = false;
  bool had_error_ = false;
  double slow_query_ms_ = 0.0;
  double timeout_ms_ = 0.0;
  uint64_t memory_budget_ = 0;
  size_t batch_size_ = 1024;
  bool cost_based_ = true;
  bool explain_json_ = false;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_SHELL_SHELL_H_
