#include "shell/shell.h"

#include <fstream>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "cache/cache_manager.h"
#include "common/query_context.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "engine/classifier.h"
#include "engine/explain.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/trace.h"
#include "sql/binder.h"
#include "sql/statement.h"
#include "storage/database.h"
#include "workload/generator.h"

namespace fuzzydb {

namespace {

/// Splits a command line into whitespace-separated words.
std::vector<std::string> Words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream stream(line);
  std::string word;
  while (stream >> word) words.push_back(word);
  return words;
}

// Extra sys.* relations contributed by higher layers (the server's
// sys.sessions). Guarded by a mutex for registration; reads copy the
// provider under the lock, then materialize outside it.
struct SystemRelationProviders {
  std::mutex mu;
  std::map<std::string, std::function<Relation()>> providers;
};

SystemRelationProviders& Providers() {
  static SystemRelationProviders* providers = new SystemRelationProviders();
  return *providers;
}

}  // namespace

bool Shell::CancelActiveQuery() {
  // Registered queries only: the lock-free gate keeps this
  // async-signal-safe, and every shell/server statement registers. The
  // interrupt epoch reaches each in-flight QueryContext without touching
  // any context pointer, so a racing unregister cannot null out or free
  // anything under us.
  if (ActiveQueryRegistry::Global().ApproxSize() == 0) return false;
  GlobalInterrupt::Raise();
  return true;
}

void Shell::RegisterSystemRelationProvider(
    const std::string& name, std::function<Relation()> provider) {
  SystemRelationProviders& reg = Providers();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.providers[ToLower(name)] = std::move(provider);
}

Shell::Shell() {
  // Materialize the engine metric families up front so SHOW METRICS and
  // sys.metrics list every series (at zero) even before the first query.
  EngineMetrics::Instance();
}

void Shell::Run(std::istream& in, std::ostream& out, bool interactive) {
  std::string line;
  if (interactive && !quiet_) {
    out << "FuzzyDB shell -- .help for help, .quit to exit\n";
  }
  while (!done_) {
    if (interactive && !quiet_) {
      out << (pending_.empty() ? "fuzzydb> " : "    ...> ");
    }
    if (!std::getline(in, line)) break;
    if (!FeedLine(line, out)) break;
  }
}

bool Shell::FeedLine(const std::string& line, std::ostream& out) {
  if (pending_.empty()) {
    // Skip blank lines and comments between statements.
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) return !done_;
    if (line[first] == '#' || line.compare(first, 2, "--") == 0) {
      return !done_;
    }
    if (line[first] == '.') {
      ExecuteDotCommand(line.substr(first), out);
      return !done_;
    }
  }
  // Accumulate until ';'.
  pending_ += line;
  pending_ += ' ';
  size_t semicolon;
  while ((semicolon = pending_.find(';')) != std::string::npos) {
    const std::string statement = pending_.substr(0, semicolon);
    pending_.erase(0, semicolon + 1);
    if (statement.find_first_not_of(" \t") != std::string::npos) {
      ExecuteStatement(statement, out);
    }
  }
  // An all-whitespace remainder is no pending statement.
  if (pending_.find_first_not_of(" \t") == std::string::npos) {
    pending_.clear();
  }
  return !done_;
}

void Shell::ExecuteDotCommand(const std::string& line, std::ostream& out) {
  const std::vector<std::string> words = Words(line);
  const std::string& command = words[0];

  if (command == ".quit" || command == ".exit") {
    done_ = true;
    return;
  }
  if (command == ".help") {
    out << "statements (end with ';'):\n"
           "  SELECT ... FROM ... [WHERE ...] [GROUPBY ... [HAVING ...]]\n"
           "         [ORDER BY col|D [DESC]] [WITH D >= z];\n"
           "  EXPLAIN [ANALYZE] SELECT ...;  (plan; ANALYZE also runs it)\n"
           "  CREATE TABLE name (col STRING|FUZZY, ...);\n"
           "  INSERT INTO name VALUES (v, ...) [DEGREE d];\n"
           "  DEFINE TERM \"name\" AS TRAP(a,b,c,d);\n"
           "  DROP TABLE name;\n"
           "  SHOW METRICS [RESET];  (also queryable as sys.metrics)\n"
           "  SHOW QUERIES;  (in-flight queries; also sys.queries)\n"
           "  KILL <id>;  (cancel a running query by sys.queries id)\n"
           "  CACHE CLEAR;  (drop cache entries; contents: sys.cache)\n"
           "  CHECKPOINT;  (WAL shells: durable image; segments: sys.wal)\n"
           "commands:\n"
           "  .tables .schema <t> .terms .explain on|off\n"
           "  .engine naive|unnested .slowlog .save <dir> .open <dir>\n"
           "  .gen typej <seed> <nr> <ns> <fanout>  (relations R and S)\n"
           "  .gen rand <name> <seed> <cols> <rows>\n"
           "  .quit\n";
    return;
  }
  if (command == ".slowlog") {
    const auto entries = SlowQueryLog::Global().Entries();
    if (entries.empty()) {
      out << "slow-query log is empty\n";
      return;
    }
    for (const auto& entry : entries) {
      out << "-- " << FormatDouble(entry.elapsed_ms, 3) << " ms: "
          << (entry.query_text.empty() ? "<no query text>"
                                       : entry.query_text)
          << "\n";
      if (!entry.trace_text.empty()) out << entry.trace_text;
    }
    return;
  }
  if (command == ".tables") {
    for (const std::string& name : db().RelationNames()) {
      auto relation = db().GetRelation(name);
      out << name << " (" << (*relation)->NumTuples() << " tuples)\n";
    }
    return;
  }
  if (command == ".schema") {
    if (words.size() != 2) {
      out << "usage: .schema <table>\n";
      return;
    }
    auto relation = db().GetRelation(words[1]);
    if (!relation.ok()) {
      out << relation.status().ToString() << "\n";
      return;
    }
    out << (*relation)->name() << " " << (*relation)->schema().ToString()
        << " [" << (*relation)->NumTuples() << " tuples]\n";
    return;
  }
  if (command == ".terms") {
    for (const std::string& name : db().terms().Names()) {
      auto term = db().terms().Lookup(name);
      out << "\"" << name << "\" = " << term->ToString() << "\n";
    }
    return;
  }
  if (command == ".explain") {
    explain_ = words.size() > 1 && EqualsIgnoreCase(words[1], "on");
    out << "explain " << (explain_ ? "on" : "off") << "\n";
    return;
  }
  if (command == ".engine") {
    if (words.size() != 2 || (!EqualsIgnoreCase(words[1], "naive") &&
                              !EqualsIgnoreCase(words[1], "unnested"))) {
      out << "usage: .engine naive|unnested\n";
      return;
    }
    use_naive_ = EqualsIgnoreCase(words[1], "naive");
    out << "engine: " << (use_naive_ ? "naive" : "unnested") << "\n";
    return;
  }
  if (command == ".gen" || command == ".save" || command == ".open") {
    if (wal() != nullptr) {
      // These mutate or replace the catalog without writing the log;
      // allowing them would desynchronize the durable history from the
      // in-memory state.
      out << command
          << " is unavailable while a WAL is attached; use CHECKPOINT "
             "for durable images\n";
      had_error_ = true;
      last_status_ = Status::Unsupported(
          command + " is unavailable while a WAL is attached");
      return;
    }
  }
  if (command == ".gen") {
    // Deterministic synthetic datasets (src/workload/generator.h) so
    // scripted sessions -- the estimator-accuracy gate in particular --
    // can build workloads without shipping data files.
    auto parse_u64 = [](const std::string& word, uint64_t* value) {
      std::istringstream stream(word);
      return static_cast<bool>(stream >> *value) && stream.eof();
    };
    if (words.size() == 6 && EqualsIgnoreCase(words[1], "typej")) {
      uint64_t seed = 0, nr = 0, ns = 0, fanout = 0;
      if (!parse_u64(words[2], &seed) || !parse_u64(words[3], &nr) ||
          !parse_u64(words[4], &ns) || !parse_u64(words[5], &fanout) ||
          fanout == 0) {
        out << "usage: .gen typej <seed> <nr> <ns> <fanout>\n";
        return;
      }
      WorkloadConfig config;
      config.seed = seed;
      config.num_r = nr;
      config.num_s = ns;
      config.join_fanout = static_cast<double>(fanout);
      TypeJDataset dataset = GenerateTypeJDataset(config);
      for (const char* name : {"R", "S"}) {
        if (db().HasRelation(name)) {
          if (auto old = db().GetRelation(name); old.ok()) {
            CacheManager::Global().InvalidateRelation((*old)->id());
          }
          db().DropRelation(name);
        }
      }
      const Status status_r = db().AddRelation(std::move(dataset.r));
      const Status status_s = db().AddRelation(std::move(dataset.s));
      if (!status_r.ok() || !status_s.ok()) {
        out << (status_r.ok() ? status_s : status_r).ToString() << "\n";
        return;
      }
      out << "generated R (" << nr << " tuples), S (" << ns
          << " tuples), fanout " << fanout << "\n";
      return;
    }
    if (words.size() == 6 && EqualsIgnoreCase(words[1], "rand")) {
      const std::string& name = words[2];
      uint64_t seed = 0, cols = 0, rows = 0;
      if (!parse_u64(words[3], &seed) || !parse_u64(words[4], &cols) ||
          !parse_u64(words[5], &rows) || cols == 0) {
        out << "usage: .gen rand <name> <seed> <cols> <rows>\n";
        return;
      }
      if (db().HasRelation(name)) {
        if (auto old = db().GetRelation(name); old.ok()) {
          CacheManager::Global().InvalidateRelation((*old)->id());
        }
        db().DropRelation(name);
      }
      const Status status = db().AddRelation(
          GenerateRandomRelation(seed, name, cols, rows));
      if (!status.ok()) {
        out << status.ToString() << "\n";
        return;
      }
      out << "generated " << name << " (" << rows << " tuples, " << cols
          << " columns)\n";
      return;
    }
    out << "usage: .gen typej <seed> <nr> <ns> <fanout>\n"
           "       .gen rand <name> <seed> <cols> <rows>\n";
    return;
  }
  if (command == ".save" || command == ".open") {
    if (words.size() != 2) {
      out << "usage: " << command << " <directory>\n";
      return;
    }
    BufferPool pool(64);
    if (command == ".save") {
      const Status status = SaveDatabase(db(), words[1], &pool);
      out << (status.ok() ? "saved " + words[1] : status.ToString()) << "\n";
    } else {
      auto loaded = LoadDatabase(words[1], &pool);
      if (!loaded.ok()) {
        out << loaded.status().ToString() << "\n";
      } else {
        db() = std::move(loaded).value();
        out << "opened " << words[1] << "\n";
      }
    }
    return;
  }
  out << "unknown command '" << command << "' (.help for help)\n";
}

void Shell::RefreshSystemRelations(const std::string& statement_text) {
  // Case-insensitive scan for "sys.metrics"; materializing the registry
  // only on reference keeps .tables / .save free of system relations
  // unless the session actually queried them.
  const std::string lowered = ToLower(statement_text);
  if (lowered.find("sys.metrics") != std::string::npos) {
    db().PutRelation(MetricsRegistry::Global().ToRelation());
  }
  if (lowered.find("sys.cache") != std::string::npos) {
    db().PutRelation(CacheManager::Global().ToRelation());
  }
  if (lowered.find("sys.queries") != std::string::npos) {
    db().PutRelation(ActiveQueryRegistry::Global().ToRelation());
  }
  if (lowered.find("sys.slowlog") != std::string::npos) {
    db().PutRelation(SlowQueryLog::Global().ToRelation());
  }
  if (lowered.find("sys.wal") != std::string::npos && wal() != nullptr) {
    db().PutRelation(wal()->ToRelation());
  }
  SystemRelationProviders& reg = Providers();
  std::vector<std::function<Relation()>> to_refresh;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& [name, provider] : reg.providers) {
      if (lowered.find(name) != std::string::npos) {
        to_refresh.push_back(provider);
      }
    }
  }
  // Materialize outside the lock: a provider may itself take locks
  // (e.g. the server's session registry).
  for (const auto& provider : to_refresh) {
    db().PutRelation(provider());
  }
}

void Shell::FailStatement(const Status& status, std::ostream& out) {
  had_error_ = true;
  last_status_ = status;
  out << status.ToString() << "\n";
}

void Shell::ExecuteStatement(const std::string& text, std::ostream& out) {
  last_status_ = Status::OK();
  auto parsed = sql::ParseStatement(text);
  if (!parsed.ok()) {
    FailStatement(parsed.status(), out);
    return;
  }
  sql::Statement& statement = *parsed;
  RefreshSystemRelations(text);

  switch (statement.kind) {
    case sql::Statement::Kind::kShowMetrics: {
      if (statement.metrics_reset) {
        // Snapshot-then-reset as one atomic drain: concurrent updates
        // land either in the rendered text or in the fresh epoch, so
        // consecutive RESET dumps sum exactly (no histogram-shard skew).
        out << MetricsRegistry::Global().ToTextAndReset();
        SlowQueryLog::Global().Clear();
        // build_info is a constant-1 series; restore it after the drain.
        EngineMetrics::Instance()->build_info->Set(1);
        out << "-- metrics reset\n";
      } else {
        out << MetricsRegistry::Global().ToText();
      }
      return;
    }
    case sql::Statement::Kind::kShowQueries: {
      const std::string text_dump = ActiveQueryRegistry::Global().ToText();
      out << text_dump;
      out << "-- " << ActiveQueryRegistry::Global().Size()
          << " active queries\n";
      return;
    }
    case sql::Statement::Kind::kKill: {
      if (ActiveQueryRegistry::Global().Kill(statement.kill_id)) {
        out << "-- kill requested for query " << statement.kill_id << "\n";
      } else {
        had_error_ = true;
        last_status_ = Status::NotFound(
            "no active query with id " + std::to_string(statement.kill_id));
        out << "no active query with id " << statement.kill_id << "\n";
      }
      return;
    }
    case sql::Statement::Kind::kCacheClear: {
      CacheManager::Global().Clear();
      out << "-- cache cleared\n";
      return;
    }
    case sql::Statement::Kind::kExplain: {
      // Bind against a snapshot and keep it alive for the whole
      // execution: the snapshot pins the relation versions it resolved,
      // so a concurrent writer (server mode) can never mutate or drop
      // them under the running query (MVCC reader-pinning rule,
      // docs/durability.md).
      const Catalog snapshot = db().Snapshot();
      auto bound = sql::Bind(*statement.select, snapshot);
      if (!bound.ok()) {
        FailStatement(bound.status(), out);
        return;
      }
      out << "-- type " << QueryTypeName(Classify(**bound)) << "\n"
          << DescribePlan(**bound);
      if (!statement.analyze) return;
      ExecTrace trace;
      CpuStats cpu;
      QueryContext qctx;
      if (timeout_ms_ > 0) qctx.set_deadline_after_ms(timeout_ms_);
      if (memory_budget_ > 0) qctx.memory().set_limit(memory_budget_);
      QueryProgress progress;
      Result<Relation> answer = Status::Internal("unset");
      if (use_naive_) {
        ActiveQueryRegistration registration(text, &qctx, &progress, 1);
        NaiveEvaluator naive(&cpu, &trace, &qctx);
        answer = naive.Evaluate(**bound);
      } else {
        ExecOptions options;
        options.trace = &trace;
        options.num_threads = num_threads_;
        options.batch_size = batch_size_;
        options.slow_query_ms = slow_query_ms_;
        options.query_text = text;
        options.context = &qctx;
        options.cache = cache_enabled_ ? &CacheManager::Global() : nullptr;
        options.cost_based = cost_based_;
        options.progress = &progress;
        ActiveQueryRegistration registration(text, &qctx, &progress,
                                             options.ResolvedThreads());
        UnnestingEvaluator engine(options, &cpu);
        answer = engine.Evaluate(**bound);
      }
      if (!answer.ok()) {
        FailStatement(answer.status(), out);
        return;
      }
      out << "execution trace:\n"
          << trace.ToString()
          << "-- " << answer->NumTuples() << " answer tuple"
          << (answer->NumTuples() == 1 ? "" : "s") << "\n";
      const std::string phases = progress.PhasesText();
      if (!phases.empty()) out << "-- phases=" << phases << "\n";
      if (explain_json_) {
        out << "-- trace json begin\n"
            << trace.ToJsonSummary() << "\n"
            << "-- trace json end\n";
      }
      if (!trace_json_path_.empty()) {
        std::ofstream file(trace_json_path_);
        if (file) {
          file << trace.ToChromeTraceJson();
          out << "-- wrote " << trace_json_path_ << "\n";
        } else {
          out << "-- cannot write " << trace_json_path_ << "\n";
        }
      }
      return;
    }
    case sql::Statement::Kind::kSelect: {
      // Snapshot-bound like kExplain: the read pins its versions and
      // never blocks writers.
      const Catalog snapshot = db().Snapshot();
      auto bound = sql::Bind(*statement.select, snapshot);
      if (!bound.ok()) {
        FailStatement(bound.status(), out);
        return;
      }
      Stopwatch watch;
      QueryContext qctx;
      if (timeout_ms_ > 0) qctx.set_deadline_after_ms(timeout_ms_);
      if (memory_budget_ > 0) qctx.memory().set_limit(memory_budget_);
      QueryProgress progress;
      Result<Relation> answer = Status::Internal("unset");
      QueryType type = Classify(**bound);
      bool unnested = false;
      if (use_naive_) {
        ActiveQueryRegistration registration(text, &qctx, &progress, 1);
        NaiveEvaluator naive(nullptr, nullptr, &qctx);
        answer = naive.Evaluate(**bound);
      } else {
        ExecOptions options;
        options.num_threads = num_threads_;
        options.batch_size = batch_size_;
        options.slow_query_ms = slow_query_ms_;
        options.query_text = text;
        options.context = &qctx;
        options.cache = cache_enabled_ ? &CacheManager::Global() : nullptr;
        options.cost_based = cost_based_;
        options.progress = &progress;
        ActiveQueryRegistration registration(text, &qctx, &progress,
                                             options.ResolvedThreads());
        UnnestingEvaluator engine(options);
        answer = engine.Evaluate(**bound);
        unnested = engine.last_was_unnested();
      }
      if (!answer.ok()) {
        FailStatement(answer.status(), out);
        return;
      }
      if (explain_) {
        out << "-- type " << QueryTypeName(type) << ", "
            << (use_naive_ ? "naive nested-loop"
                           : (unnested ? "unnested plan" : "naive fallback"))
            << ", " << FormatDouble(watch.ElapsedSeconds() * 1000, 4)
            << " ms\n"
            << DescribePlan(**bound);
      }
      if (result_sink_ != nullptr) result_sink_->OnAnswer(*answer);
      out << answer->ToString(100);
      return;
    }
    case sql::Statement::Kind::kCreateTable: {
      Status status;
      if (wal() != nullptr) {
        wal::WalRecord record;
        record.type = wal::WalRecordType::kCreateTable;
        record.table = statement.create_table.name;
        record.schema = statement.create_table.schema;
        status = CommitMutation(&record);
      } else {
        status = db().AddRelation(Relation(statement.create_table.name,
                                           statement.create_table.schema));
      }
      if (!status.ok()) {
        had_error_ = true;
        last_status_ = status;
      }
      out << (status.ok() ? "created " + statement.create_table.name
                          : status.ToString())
          << "\n";
      return;
    }
    case sql::Statement::Kind::kInsert: {
      // Resolve linguistic terms against a snapshot before anything is
      // logged: the WAL record carries the resolved trapezoid, so replay
      // is exact even if the term is redefined later.
      const Catalog snapshot = db().Snapshot();
      if (!snapshot.HasRelation(statement.insert.table)) {
        FailStatement(Status::NotFound("no relation named '" +
                                       statement.insert.table + "'"),
                      out);
        return;
      }
      std::vector<Value> values;
      for (const sql::Literal& literal : statement.insert.values) {
        if (!literal.term.empty()) {
          auto term = snapshot.terms().Lookup(literal.term);
          if (!term.ok()) {
            FailStatement(term.status(), out);
            return;
          }
          values.push_back(Value::Fuzzy(*term));
        } else {
          values.push_back(literal.value);
        }
      }
      Tuple tuple(std::move(values), statement.insert.degree);
      Status status;
      uint64_t relation_id = 0;
      if (wal() != nullptr) {
        wal::WalRecord record;
        record.type = wal::WalRecordType::kInsert;
        record.table = statement.insert.table;
        record.tuple = std::move(tuple);
        status = CommitMutation(&record);
        if (status.ok()) {
          if (auto rel = db().GetRelationRef(statement.insert.table);
              rel.ok()) {
            relation_id = (*rel)->id();
          }
        }
      } else {
        auto relation = db().GetMutableRelation(statement.insert.table);
        if (!relation.ok()) {
          FailStatement(relation.status(), out);
          return;
        }
        status = (*relation)->Append(std::move(tuple));
        relation_id = (*relation)->id();
      }
      if (!status.ok()) {
        had_error_ = true;
        last_status_ = status;
      }
      // Version bumping already makes stale cache keys unreachable; the
      // explicit invalidation reclaims their memory immediately. The id
      // survives copy-on-write (the MVCC chain keeps it), so this
      // reaches cache entries for every version of the relation.
      if (status.ok() && relation_id != 0) {
        CacheManager::Global().InvalidateRelation(relation_id);
      }
      out << (status.ok() ? "inserted 1 tuple" : status.ToString()) << "\n";
      return;
    }
    case sql::Statement::Kind::kDefineTerm: {
      if (wal() != nullptr) {
        wal::WalRecord record;
        record.type = wal::WalRecordType::kDefineTerm;
        record.term = statement.define_term.name;
        record.shape = statement.define_term.value;
        const Status status = CommitMutation(&record);
        if (!status.ok()) {
          FailStatement(status, out);
          return;
        }
      } else {
        db().mutable_terms().Define(statement.define_term.name,
                                    statement.define_term.value);
      }
      out << "defined \"" << statement.define_term.name << "\"\n";
      return;
    }
    case sql::Statement::Kind::kDropTable: {
      if (!db().HasRelation(statement.drop_table.name)) {
        had_error_ = true;
        last_status_ = Status::NotFound(
            "no relation named '" + statement.drop_table.name + "'");
        out << "no relation named '" << statement.drop_table.name << "'\n";
        return;
      }
      if (auto dropped = db().GetRelationRef(statement.drop_table.name);
          dropped.ok()) {
        CacheManager::Global().InvalidateRelation((*dropped)->id());
      }
      if (wal() != nullptr) {
        wal::WalRecord record;
        record.type = wal::WalRecordType::kDropTable;
        record.table = statement.drop_table.name;
        const Status status = CommitMutation(&record);
        if (!status.ok()) {
          FailStatement(status, out);
          return;
        }
      } else {
        db().DropRelation(statement.drop_table.name);
      }
      out << "dropped " << statement.drop_table.name << "\n";
      return;
    }
    case sql::Statement::Kind::kCheckpoint: {
      wal::WalManager* manager = wal();
      if (manager == nullptr) {
        FailStatement(
            Status::Unsupported(
                "CHECKPOINT requires write-ahead durability (--wal-dir)"),
            out);
        return;
      }
      // Quiesce writers for the sync-then-image window so the saved
      // catalog matches the covered LSN exactly.
      auto commit_lock = manager->AcquireCommitLock();
      Catalog snapshot = db().Snapshot();
      // sys.* relations are session-materialized views, not durable
      // state: keep them out of the checkpoint image.
      for (const std::string& name : snapshot.RelationNames()) {
        if (ToLower(name).compare(0, 4, "sys.") == 0) {
          snapshot.DropRelation(name);
        }
      }
      BufferPool pool(64);
      uint64_t checkpoint_lsn = 0;
      const Status status =
          manager->Checkpoint(snapshot, &pool, &checkpoint_lsn);
      if (!status.ok()) {
        FailStatement(status, out);
        return;
      }
      out << "-- checkpoint at lsn " << checkpoint_lsn << "\n";
      return;
    }
  }
}

Status Shell::EnableWal(const std::string& dir,
                        const wal::WalOptions& options, std::ostream& out) {
  BufferPool pool(64);
  auto recovered = wal::OpenWalDatabase(dir, options, &pool);
  FUZZYDB_RETURN_IF_ERROR(recovered.status());
  catalog_ = std::move(recovered->catalog);
  owned_wal_ = std::move(recovered->manager);
  external_catalog_ = nullptr;
  external_wal_ = nullptr;
  if (!quiet_) {
    out << "-- wal " << dir << ": recovered "
        << recovered->records_replayed << " record"
        << (recovered->records_replayed == 1 ? "" : "s")
        << " past checkpoint lsn " << recovered->checkpoint_lsn;
    if (recovered->torn_tail_bytes > 0) {
      out << ", truncated " << recovered->torn_tail_bytes
          << "-byte torn tail";
    }
    if (recovered->orphans_swept > 0) {
      out << ", swept " << recovered->orphans_swept << " orphan"
          << (recovered->orphans_swept == 1 ? "" : "s");
    }
    out << "\n";
  }
  return Status::OK();
}

Status Shell::CommitMutation(wal::WalRecord* record) {
  wal::WalManager* manager = wal();
  auto commit_lock = manager->AcquireCommitLock();
  // Validate first: a statement that cannot apply must never be logged,
  // or replay would diverge from the acknowledged history.
  switch (record->type) {
    case wal::WalRecordType::kCreateTable:
      if (db().HasRelation(record->table)) {
        return Status::AlreadyExists("relation '" + record->table +
                                     "' already exists");
      }
      break;
    case wal::WalRecordType::kInsert: {
      auto relation = db().GetRelationRef(record->table);
      FUZZYDB_RETURN_IF_ERROR(relation.status());
      const size_t arity = (*relation)->schema().NumColumns();
      if (arity != 0 && record->tuple.NumValues() != arity) {
        return Status::InvalidArgument(
            "tuple arity " + std::to_string(record->tuple.NumValues()) +
            " does not match schema arity " + std::to_string(arity) +
            " of relation '" + (*relation)->name() + "'");
      }
      break;
    }
    case wal::WalRecordType::kDropTable:
      if (!db().HasRelation(record->table)) {
        return Status::NotFound("no relation named '" + record->table +
                                "'");
      }
      break;
    case wal::WalRecordType::kDefineTerm:
    case wal::WalRecordType::kCheckpoint:
      break;
  }
  FUZZYDB_RETURN_IF_ERROR(manager->Append(record));
  return wal::ApplyWalRecord(*record, &db());
}

}  // namespace fuzzydb
