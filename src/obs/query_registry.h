// Live query introspection: the active-query registry and per-query
// phase/progress accounting behind SHOW QUERIES, sys.queries, and KILL.
//
// Two pieces, layered the same way as trace.h / metrics.h:
//
//  - QueryProgress is one query's live state: the phase currently
//    executing (plan / filter / sort / window / join / emit), monotonic
//    per-phase timers, and progress counters (items scanned, morsels
//    completed, rows emitted, pairs considered). Workers bump the
//    counters with relaxed atomic adds; phase switches happen only on
//    the control thread (PhaseScope opens and closes strictly outside
//    the parallel barriers, exactly like TraceScope), so concurrent
//    readers -- SHOW QUERIES from another thread -- see a coherent
//    snapshot without locks. A null QueryProgress costs one pointer
//    test per touch point, matching the trace discipline.
//
//  - ActiveQueryRegistry is the process-wide table of in-flight
//    queries. Registration at admission publishes the query's
//    QueryContext (so KILL <id> reaches the existing cancel flag) and
//    its QueryProgress; unregistration folds the per-phase timers into
//    the cumulative fuzzydb_phase_seconds_total{phase=...} metrics.
//
// Determinism: phase *enter counts* and the progress counters are pure
// functions of the plan and the morsel decomposition, so they are
// identical at every thread count (DeterminismSignature() is asserted
// across 1/2/4/8 threads); phase *times* are wall-clock and vary.
#ifndef FUZZYDB_OBS_QUERY_REGISTRY_H_
#define FUZZYDB_OBS_QUERY_REGISTRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "relational/relation.h"

namespace fuzzydb {

/// The pipeline stage a query is executing. kPlan is the residual --
/// classification, planning, cache lookups, and everything between
/// operator scopes -- so the per-phase times sum to the query's wall
/// time. kNone means "not started" or "finished".
enum class QueryPhase : uint32_t {
  kNone = 0,
  kPlan,
  kFilter,
  kSort,
  kWindow,
  kJoin,
  kEmit,
};

inline constexpr size_t kNumQueryPhases = 7;

/// Lower-case stable name ("plan", "sort", ...) used by metrics labels,
/// sys.queries, the phases= annotation, and the query journal.
const char* QueryPhaseName(QueryPhase phase);

/// One query's live progress. Counter updates are relaxed atomics
/// (worker-safe); phase switches are control-thread-only. Readers may
/// sample any accessor from any thread at any time.
class QueryProgress {
 public:
  QueryProgress() : created_(std::chrono::steady_clock::now()) {}
  QueryProgress(const QueryProgress&) = delete;
  QueryProgress& operator=(const QueryProgress&) = delete;

  // ---- Control-thread-only phase accounting (see PhaseScope) --------

  /// Switches to `phase`, flushing the elapsed time into the previous
  /// phase's timer and counting one enter of the new phase. The first
  /// call also latches the queue wait (construction -> first phase).
  /// Returns the previous phase so PhaseScope can restore it.
  QueryPhase EnterPhase(QueryPhase phase);

  /// As EnterPhase without counting an enter: PhaseScope destructors
  /// restore the enclosing phase through this, so enter counts reflect
  /// operator activations, not scope nesting.
  void SwitchTo(QueryPhase phase);

  /// Flushes the tail of the current phase and parks in kNone. Called
  /// once when the query finishes (ActiveQueryRegistration destructor).
  void FinishPhases();

  // ---- Worker-safe progress counters --------------------------------

  /// One morsel of `items` input tuples completed.
  void AddMorsel(uint64_t items) {
    morsels_done_.fetch_add(1, std::memory_order_relaxed);
    items_done_.fetch_add(items, std::memory_order_relaxed);
  }
  void AddRows(uint64_t n) {
    rows_emitted_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddPairs(uint64_t n) {
    pairs_considered_.fetch_add(n, std::memory_order_relaxed);
  }

  // ---- Readers (any thread) -----------------------------------------

  QueryPhase phase() const {
    return static_cast<QueryPhase>(phase_.load(std::memory_order_relaxed));
  }
  uint64_t items_done() const {
    return items_done_.load(std::memory_order_relaxed);
  }
  uint64_t morsels_done() const {
    return morsels_done_.load(std::memory_order_relaxed);
  }
  uint64_t rows_emitted() const {
    return rows_emitted_.load(std::memory_order_relaxed);
  }
  uint64_t pairs_considered() const {
    return pairs_considered_.load(std::memory_order_relaxed);
  }
  uint64_t queue_wait_micros() const {
    return queue_wait_micros_.load(std::memory_order_relaxed);
  }
  /// Flushed time of one phase in microseconds (the currently open
  /// phase's in-flight slice is not included until the next switch).
  uint64_t PhaseMicros(QueryPhase phase) const {
    return phase_micros_[static_cast<size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  uint64_t PhaseEnters(QueryPhase phase) const {
    return phase_enters_[static_cast<size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  uint64_t TotalPhaseMicros() const;

  /// "plan=1.2ms sort=0.8ms ..." over the phases entered at least once,
  /// in pipeline order (the EXPLAIN ANALYZE phases= annotation).
  std::string PhasesText() const;

  /// Thread-count-invariant digest: phase enter counts plus the
  /// progress counters, no times. Equal across 1/2/4/8 threads.
  std::string DeterminismSignature() const;

  /// The registry id, 0 until registered (set by ActiveQueryRegistry).
  uint64_t query_id() const {
    return query_id_.load(std::memory_order_relaxed);
  }
  void set_query_id(uint64_t id) {
    query_id_.store(id, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> phase_{0};
  std::array<std::atomic<uint64_t>, kNumQueryPhases> phase_micros_{};
  std::array<std::atomic<uint64_t>, kNumQueryPhases> phase_enters_{};
  std::atomic<uint64_t> items_done_{0};
  std::atomic<uint64_t> morsels_done_{0};
  std::atomic<uint64_t> rows_emitted_{0};
  std::atomic<uint64_t> pairs_considered_{0};
  std::atomic<uint64_t> queue_wait_micros_{0};
  std::atomic<uint64_t> query_id_{0};
  // Control-thread-only: when the open phase started. Readers never
  // touch these; they see only the flushed atomics above.
  std::chrono::steady_clock::time_point created_;
  std::chrono::steady_clock::time_point mark_{};
  bool started_ = false;
};

/// RAII phase switch on the control thread. Null progress is a no-op.
/// Nested scopes restore the enclosing phase on close, so time spent in
/// an inner operator (e.g. the interval sort inside a group-aggregate)
/// is charged to the inner phase and the remainder to the outer one --
/// exclusive self-time, summing to wall time.
class PhaseScope {
 public:
  PhaseScope(QueryProgress* progress, QueryPhase phase)
      : progress_(progress) {
    if (progress_ != nullptr) prev_ = progress_->EnterPhase(phase);
  }
  ~PhaseScope() {
    if (progress_ != nullptr) progress_->SwitchTo(prev_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  QueryProgress* progress_;
  QueryPhase prev_ = QueryPhase::kNone;
};

/// A point-in-time copy of one registered query, safe to hold after the
/// query finishes.
struct ActiveQueryInfo {
  uint64_t id = 0;
  std::string sql;
  std::string phase;
  double elapsed_ms = 0.0;
  double queue_wait_ms = 0.0;
  uint64_t items_done = 0;
  uint64_t morsels_done = 0;
  uint64_t rows_emitted = 0;
  uint64_t pairs_considered = 0;
  int64_t mem_used_bytes = 0;
  int64_t mem_peak_bytes = 0;
  size_t threads = 1;
  bool cancel_requested = false;
};

/// Process-wide table of in-flight queries. Register/Unregister cost one
/// mutex acquisition per query (not per morsel); all per-tuple traffic
/// stays on the lock-free QueryProgress.
class ActiveQueryRegistry {
 public:
  static ActiveQueryRegistry& Global();

  /// Admits a query and returns its id (monotonic, never reused).
  /// `ctx` and `progress` may be null (then KILL is a no-op and no
  /// progress columns populate); both must outlive the registration.
  uint64_t Register(std::string sql, QueryContext* ctx,
                    QueryProgress* progress, size_t threads);

  /// Removes a finished query. Folds its phase timers into the
  /// cumulative fuzzydb_phase_seconds_total{phase=...} counters.
  void Unregister(uint64_t id);

  /// Copies of every registered query, ordered by id.
  std::vector<ActiveQueryInfo> Snapshot() const;

  /// Cancels query `id` through its QueryContext (the same flag SIGINT
  /// and deadlines use, so it lands as CANCELLED within one morsel).
  /// False when the id is unknown (already finished) or unkillable
  /// (registered without a context).
  bool Kill(uint64_t id);

  /// Cancels every registered query through its QueryContext and
  /// returns how many were cancelled. Thread-safe (takes the registry
  /// mutex, so it never races a context's destruction -- Unregister
  /// precedes that on the query thread) but NOT async-signal-safe;
  /// signal handlers use GlobalInterrupt::Raise() instead. The server's
  /// graceful-drain path calls this from its shutdown thread.
  size_t CancelAll();

  size_t Size() const;

  /// Lock-free registered-query count for async-signal-safe callers
  /// (the SIGINT handler asks "is anything in flight" before raising
  /// the global interrupt). May lag Register/Unregister by a moment.
  size_t ApproxSize() const {
    return approx_size_.load(std::memory_order_relaxed);
  }

  /// The sys.queries system relation: (id, phase, elapsed_ms, queue_ms,
  /// items, rows, pairs, mem_bytes, threads, query), degree 1 per row.
  Relation ToRelation() const;

  /// One line per query, for SHOW QUERIES.
  std::string ToText() const;

 private:
  ActiveQueryRegistry() = default;

  struct Entry {
    std::string sql;
    QueryContext* ctx = nullptr;
    QueryProgress* progress = nullptr;
    size_t threads = 1;
    std::chrono::steady_clock::time_point start;
  };

  ActiveQueryInfo InfoFor(uint64_t id, const Entry& entry) const;

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Entry> entries_;
  std::atomic<size_t> approx_size_{0};
};

/// RAII registration for one query execution: registers in the
/// constructor, finalizes the progress and unregisters in the
/// destructor. The id stays valid (for journaling) after destruction.
class ActiveQueryRegistration {
 public:
  ActiveQueryRegistration(std::string sql, QueryContext* ctx,
                          QueryProgress* progress, size_t threads);
  ~ActiveQueryRegistration();
  ActiveQueryRegistration(const ActiveQueryRegistration&) = delete;
  ActiveQueryRegistration& operator=(const ActiveQueryRegistration&) = delete;

  uint64_t id() const { return id_; }

 private:
  uint64_t id_;
  QueryProgress* progress_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_OBS_QUERY_REGISTRY_H_
