// Log-bucketed latency/size histogram with per-thread sharding.
//
// Record() is a pair of relaxed atomic adds (count + sum) plus a CAS loop
// for the max, on a shard picked by thread id — no locks, no false sharing
// between shards. Snapshot() folds the shards on the reader's side, so the
// hot path never pays for aggregation. Buckets are powers of two
// (bucket i holds values v with bit_width(v) == i), which keeps quantile
// estimates within a factor of two everywhere and exact at the tracked max.
#ifndef FUZZYDB_OBS_HISTOGRAM_H_
#define FUZZYDB_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fuzzydb {

// Folded, immutable view of a Histogram at one point in time.
struct HistogramSnapshot {
  // counts[i] holds samples v with std::bit_width(v) == i; counts[0] is
  // the zero-value bucket. 64-bit values need bit_width <= 64.
  std::array<uint64_t, 65> counts{};
  uint64_t total_count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  // Quantile estimate for q in [0, 1]. Interpolates within the winning
  // bucket and clamps to the tracked max, so Quantile(1.0) is exact and a
  // single-sample histogram reports that sample at every quantile.
  // Returns 0 when the histogram is empty.
  double Quantile(double q) const;
  double Mean() const;
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Hot path: two relaxed adds and a relaxed CAS-max on this thread's shard.
  void Record(uint64_t value);

  // Folds all shards. Safe to call concurrently with Record(); the result
  // is a consistent-enough view for monitoring (counts may trail sums by
  // in-flight samples, never by more).
  HistogramSnapshot Snapshot() const;

  // Zeroes all shards. Intended for quiescent moments (SHOW METRICS RESET,
  // test setup); concurrent Record() calls are not lost, they just land
  // before or after the reset.
  void Reset();

  // Folds and zeroes in one pass using per-atomic exchange(0): every
  // sample recorded before the call lands in exactly one snapshot --
  // this one or a later one -- never both and never neither, even with
  // Record() racing from workers mid-query. (A sample's count/sum/bucket
  // triple may straddle the boundary between two snapshots; totals
  // summed across consecutive snapshots are exact, which is what the
  // SHOW METRICS RESET regression test asserts.) The max is exchanged
  // too, so the new epoch's max reflects only post-reset samples.
  HistogramSnapshot SnapshotAndReset();

 private:
  static constexpr int kBuckets = 65;
  static constexpr int kShards = 16;

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> counts{};
    std::atomic<uint64_t> total_count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_OBS_HISTOGRAM_H_
