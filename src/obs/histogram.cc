#include "obs/histogram.h"

#include <bit>
#include <thread>

namespace fuzzydb {
namespace {

int BucketFor(uint64_t value) { return std::bit_width(value); }

// Lower/upper value bounds of bucket i: [2^(i-1), 2^i - 1] for i >= 1,
// {0} for i == 0.
uint64_t BucketLow(int i) {
  return i <= 1 ? 0 : (uint64_t{1} << (i - 1));
}
uint64_t BucketHigh(int i) {
  if (i == 0) return 0;
  if (i >= 64) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (total_count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the sample we want, 1-based; q=1 asks for the last sample.
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total_count - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < static_cast<int>(counts.size()); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      // Interpolate linearly through the bucket's value range.
      const double into = counts[i] == 1
                              ? 1.0
                              : static_cast<double>(rank - seen) /
                                    static_cast<double>(counts[i]);
      const double low = static_cast<double>(BucketLow(i));
      const double high = static_cast<double>(BucketHigh(i));
      double v = low + (high - low) * into;
      // The top occupied bucket can't exceed the tracked max.
      if (v > static_cast<double>(max)) v = static_cast<double>(max);
      return v;
    }
    seen += counts[i];
  }
  return static_cast<double>(max);
}

double HistogramSnapshot::Mean() const {
  if (total_count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(total_count);
}

size_t Histogram::ShardIndex() {
  // Cheap per-thread shard choice; collisions are harmless (still atomic),
  // they just share a cache line.
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot % kShards;
}

void Histogram::Record(uint64_t value) {
  Shard& shard = shards_[ShardIndex()];
  shard.counts[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  shard.total_count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = shard.max.load(std::memory_order_relaxed);
  while (prev < value && !shard.max.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    for (int i = 0; i < kBuckets; ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.total_count += shard.total_count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    const uint64_t m = shard.max.load(std::memory_order_relaxed);
    if (m > snap.max) snap.max = m;
  }
  return snap;
}

HistogramSnapshot Histogram::SnapshotAndReset() {
  HistogramSnapshot snap;
  for (Shard& shard : shards_) {
    for (int i = 0; i < kBuckets; ++i) {
      snap.counts[i] += shard.counts[i].exchange(0, std::memory_order_relaxed);
    }
    snap.total_count +=
        shard.total_count.exchange(0, std::memory_order_relaxed);
    snap.sum += shard.sum.exchange(0, std::memory_order_relaxed);
    const uint64_t m = shard.max.exchange(0, std::memory_order_relaxed);
    if (m > snap.max) snap.max = m;
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (int i = 0; i < kBuckets; ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
    shard.total_count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

}  // namespace fuzzydb
