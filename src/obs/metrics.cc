#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "engine/exec_options.h"
#include "obs/query_registry.h"

namespace fuzzydb {
namespace {

// Formats a double the way both the text dump and sys.metrics should see
// it: integers without a fraction, everything else with enough digits to
// round-trip query latencies. Sub-millisecond magnitudes (time counters
// render micros / 1e6) get six digits so short phases don't collapse
// to 0.000.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else if (std::fabs(v) < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

// Stamped by the build system (root CMakeLists.txt) from git rev-parse;
// "unknown" covers source tarballs and exported checkouts.
#ifndef FUZZYDB_GIT_SHA
#define FUZZYDB_GIT_SHA "unknown"
#endif

std::string CompilerLabel() {
#if defined(__clang_major__)
  return "clang-" + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc-" + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  return "unknown";
#endif
}

void AppendHistogramSeries(
    const std::string& name, const HistogramSnapshot& snap,
    std::vector<std::pair<std::string, double>>* out) {
  out->emplace_back(name + "_count", static_cast<double>(snap.total_count));
  out->emplace_back(name + "_sum", static_cast<double>(snap.sum));
  out->emplace_back(name + "_p50", snap.Quantile(0.50));
  out->emplace_back(name + "_p90", snap.Quantile(0.90));
  out->emplace_back(name + "_p99", snap.Quantile(0.99));
  out->emplace_back(name + "_max", static_cast<double>(snap.max));
}

}  // namespace

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot % kShards;
}

void MemoryTracker::Charge(uint64_t bytes) {
  const int64_t now = current_.fetch_add(static_cast<int64_t>(bytes),
                                         std::memory_order_relaxed) +
                      static_cast<int64_t>(bytes);
  int64_t prev = peak_.load(std::memory_order_relaxed);
  while (prev < now && !peak_.compare_exchange_weak(
                           prev, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Reset() {
  // Live charges (if any) stay; the high-water mark restarts from them.
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  Counter* c = &counter_storage_.emplace_back();
  counters_.emplace(name, c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  Gauge* g = &gauge_storage_.emplace_back();
  gauges_.emplace(name, g);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  Histogram* h = &histogram_storage_.emplace_back();
  histograms_.emplace(name, h);
  return h;
}

MemoryTracker* MetricsRegistry::GetMemoryTracker(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = trackers_.find(name);
  if (it != trackers_.end()) return it->second;
  MemoryTracker* t = &tracker_storage_.emplace_back();
  trackers_.emplace(name, t);
  return t;
}

Counter* MetricsRegistry::GetTimeCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = time_counters_.find(name);
  if (it != time_counters_.end()) return it->second;
  Counter* c = &time_counter_storage_.emplace_back();
  time_counters_.emplace(name, c);
  return c;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, t] : trackers_) t->Reset();
  for (auto& [name, c] : time_counters_) c->Reset();
}

std::vector<std::pair<std::string, double>> MetricsRegistry::FoldSeries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> series;
  for (const auto& [name, c] : counters_) {
    series.emplace_back(name, static_cast<double>(c->Value()));
  }
  for (const auto& [name, g] : gauges_) {
    series.emplace_back(name, static_cast<double>(g->Value()));
  }
  for (const auto& [name, t] : trackers_) {
    series.emplace_back(name + "_bytes", static_cast<double>(t->Current()));
    series.emplace_back(name + "_peak_bytes",
                        static_cast<double>(t->Peak()));
  }
  for (const auto& [name, c] : time_counters_) {
    // Micros inside, seconds on every surface (_seconds_total names).
    series.emplace_back(name, static_cast<double>(c->Value()) / 1e6);
  }
  for (const auto& [name, h] : histograms_) {
    AppendHistogramSeries(name, h->Snapshot(), &series);
  }
  // maps iterate sorted per kind; merge-sort the kinds by name so the
  // rendering is alphabetical overall.
  std::sort(series.begin(), series.end());
  return series;
}

std::string MetricsRegistry::ToText() const {
  std::ostringstream out;
  for (const auto& [name, value] : FoldSeries()) {
    out << name << " " << FormatValue(value) << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ToTextAndReset() {
  // FoldSeries() with draining reads: each counter shard and histogram
  // bucket is claimed with exchange(0), so an Add racing this call lands
  // either in the rendered text or in the fresh epoch -- never both.
  std::vector<std::pair<std::string, double>> series;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) {
      series.emplace_back(name, static_cast<double>(c->ValueAndReset()));
    }
    for (auto& [name, g] : gauges_) {
      series.emplace_back(name, static_cast<double>(g->ValueAndReset()));
    }
    for (auto& [name, t] : trackers_) {
      // Live charges survive a reset (Reset() restarts the peak from
      // them), so render-then-reset is the honest drain for trackers.
      series.emplace_back(name + "_bytes",
                          static_cast<double>(t->Current()));
      series.emplace_back(name + "_peak_bytes",
                          static_cast<double>(t->Peak()));
      t->Reset();
    }
    for (auto& [name, c] : time_counters_) {
      series.emplace_back(name,
                          static_cast<double>(c->ValueAndReset()) / 1e6);
    }
    for (auto& [name, h] : histograms_) {
      AppendHistogramSeries(name, h->SnapshotAndReset(), &series);
    }
    std::sort(series.begin(), series.end());
  }
  std::ostringstream out;
  for (const auto& [name, value] : series) {
    out << name << " " << FormatValue(value) << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  // Render one block per series, then emit sorted by series name so the
  // exposition is stable regardless of metric kind -- ToText/ToJson/
  // sys.metrics sort via FoldSeries(); this surface must match so
  // goldens and docs examples don't depend on registration order.
  //
  // Labeled series embed their labels in the registry name
  // (name{key="value"}); the TYPE line must carry the bare metric name
  // (stripped at the brace), and consecutive blocks of the same label
  // family must not repeat it -- the exposition format allows one TYPE
  // line per metric.
  struct Block {
    std::string sort_key;
    std::string type_line;
    std::string body;
    bool operator<(const Block& other) const {
      return sort_key < other.sort_key;
    }
  };
  const auto bare = [](const std::string& name) {
    const size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
  };
  std::vector<Block> blocks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      std::ostringstream b;
      b << name << " " << c->Value() << "\n";
      blocks.push_back(
          {name, "# TYPE " + bare(name) + " counter\n", b.str()});
    }
    for (const auto& [name, g] : gauges_) {
      std::ostringstream b;
      b << name << " " << g->Value() << "\n";
      blocks.push_back(
          {name, "# TYPE " + bare(name) + " gauge\n", b.str()});
    }
    for (const auto& [name, t] : trackers_) {
      std::ostringstream b;
      b << name << "_bytes " << t->Current() << "\n";
      blocks.push_back({name + "_bytes",
                        "# TYPE " + name + "_bytes gauge\n", b.str()});
      std::ostringstream p;
      p << name << "_peak_bytes " << t->Peak() << "\n";
      blocks.push_back({name + "_peak_bytes",
                        "# TYPE " + name + "_peak_bytes gauge\n",
                        p.str()});
    }
    for (const auto& [name, c] : time_counters_) {
      std::ostringstream b;
      b << name << " "
        << FormatValue(static_cast<double>(c->Value()) / 1e6) << "\n";
      blocks.push_back(
          {name, "# TYPE " + bare(name) + " counter\n", b.str()});
    }
    for (const auto& [name, h] : histograms_) {
      const HistogramSnapshot snap = h->Snapshot();
      std::ostringstream b;
      b << name << "{quantile=\"0.5\"} "
        << FormatValue(snap.Quantile(0.5)) << "\n";
      b << name << "{quantile=\"0.9\"} "
        << FormatValue(snap.Quantile(0.9)) << "\n";
      b << name << "{quantile=\"0.99\"} "
        << FormatValue(snap.Quantile(0.99)) << "\n";
      b << name << "_sum " << snap.sum << "\n";
      b << name << "_count " << snap.total_count << "\n";
      b << name << "_max " << snap.max << "\n";
      blocks.push_back({name, "# TYPE " + name + " summary\n", b.str()});
    }
  }
  std::sort(blocks.begin(), blocks.end());
  std::ostringstream out;
  const std::string* last_type = nullptr;
  for (const Block& block : blocks) {
    if (last_type == nullptr || *last_type != block.type_line) {
      out << block.type_line;
    }
    out << block.body;
    last_type = &block.type_line;
  }
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, value] : FoldSeries()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << FormatValue(value);
  }
  out << "}";
  return out.str();
}

Relation MetricsRegistry::ToRelation() const {
  Relation rel("sys.metrics", Schema{{"name", ValueType::kString},
                                     {"value", ValueType::kFuzzy}});
  for (const auto& [name, value] : FoldSeries()) {
    // Round-trip through the text formatting so SHOW METRICS and
    // SELECT ... FROM sys.metrics agree digit-for-digit.
    const double v = std::stod(FormatValue(value));
    (void)rel.Append(
        Tuple({Value::String(name), Value::Number(v)}, /*degree=*/1.0));
  }
  return rel;
}

EngineMetrics* EngineMetrics::Instance() {
  static EngineMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new EngineMetrics();
    m->queries_total = reg.GetCounter("fuzzydb_queries_total");
    m->queries_naive_fallback =
        reg.GetCounter("fuzzydb_queries_naive_fallback_total");
    m->queries_failed = reg.GetCounter("fuzzydb_queries_failed_total");
    m->slow_queries = reg.GetCounter("fuzzydb_slow_queries_total");
    m->queries_cancelled = reg.GetCounter("fuzzydb_queries_cancelled_total");
    m->queries_deadline_exceeded =
        reg.GetCounter("fuzzydb_queries_deadline_exceeded_total");
    m->queries_resource_exhausted =
        reg.GetCounter("fuzzydb_queries_resource_exhausted_total");
    m->budget_denied_bytes =
        reg.GetCounter("fuzzydb_budget_denied_bytes_total");
    m->query_latency_us = reg.GetHistogram("fuzzydb_query_latency_us");
    m->naive_blocks = reg.GetCounter("fuzzydb_naive_blocks_total");
    m->naive_rows_out = reg.GetCounter("fuzzydb_naive_rows_out_total");
    m->filter_rows_in = reg.GetCounter("fuzzydb_filter_rows_in_total");
    m->filter_rows_out = reg.GetCounter("fuzzydb_filter_rows_out_total");
    m->sort_rows = reg.GetCounter("fuzzydb_sort_rows_total");
    m->merge_join_rows_in =
        reg.GetCounter("fuzzydb_merge_join_rows_in_total");
    m->merge_join_rows_out =
        reg.GetCounter("fuzzydb_merge_join_rows_out_total");
    m->nested_loop_rows_in =
        reg.GetCounter("fuzzydb_nested_loop_rows_in_total");
    m->nested_loop_rows_out =
        reg.GetCounter("fuzzydb_nested_loop_rows_out_total");
    m->partitioned_join_rows_in =
        reg.GetCounter("fuzzydb_partitioned_join_rows_in_total");
    m->partitioned_join_rows_out =
        reg.GetCounter("fuzzydb_partitioned_join_rows_out_total");
    m->merge_window_length =
        reg.GetHistogram("fuzzydb_merge_window_length");
    m->batch_batches = reg.GetCounter("fuzzydb_batch_batches_total");
    m->batch_rows = reg.GetCounter("fuzzydb_batch_rows_total");
    m->batch_fill = reg.GetHistogram("fuzzydb_batch_fill");
    m->planner_plans = reg.GetCounter("fuzzydb_planner_plans_total");
    m->planner_stats_builds =
        reg.GetCounter("fuzzydb_planner_stats_builds_total");
    m->planner_merge_steps =
        reg.GetCounter("fuzzydb_planner_merge_steps_total");
    m->planner_nested_steps =
        reg.GetCounter("fuzzydb_planner_nested_steps_total");
    m->planner_q_error = reg.GetHistogram("fuzzydb_planner_q_error");
    m->sort_spill_bytes = reg.GetCounter("fuzzydb_sort_spill_bytes_total");
    m->partition_spill_bytes =
        reg.GetCounter("fuzzydb_partition_spill_bytes_total");
    m->sort_memory = reg.GetMemoryTracker("fuzzydb_sort_memory");
    m->join_memory = reg.GetMemoryTracker("fuzzydb_join_memory");
    m->morsel_queue_wait_us =
        reg.GetHistogram("fuzzydb_morsel_queue_wait_us");
    m->sort_stage_us = reg.GetHistogram("fuzzydb_sort_stage_us");
    m->join_stage_us = reg.GetHistogram("fuzzydb_join_stage_us");
    m->cache_hits = reg.GetCounter("fuzzydb_cache_hits_total");
    m->cache_misses = reg.GetCounter("fuzzydb_cache_misses_total");
    m->cache_inserts = reg.GetCounter("fuzzydb_cache_inserts_total");
    m->cache_evictions = reg.GetCounter("fuzzydb_cache_evictions_total");
    m->cache_bytes = reg.GetGauge("fuzzydb_cache_bytes");
    m->journal_records = reg.GetCounter("fuzzydb_journal_records_total");
    m->journal_errors = reg.GetCounter("fuzzydb_journal_errors_total");
    // Two labeled outcomes of one series: "rotated" counts rotations
    // performed, "dropped" counts files deleted because they fell past
    // the keep-N generation window.
    m->journal_rotations =
        reg.GetCounter(std::string("fuzzydb_journal_rotations_total") +
                       "{outcome=\"rotated\"}");
    m->journal_rotations_dropped =
        reg.GetCounter(std::string("fuzzydb_journal_rotations_total") +
                       "{outcome=\"dropped\"}");
    m->queries_killed = reg.GetCounter("fuzzydb_queries_killed_total");
    // One labeled series per pipeline phase; slot 0 (kNone) stays null.
    m->phase_seconds[0] = nullptr;
    for (size_t i = 1; i < kNumQueryPhases; ++i) {
      m->phase_seconds[i] = reg.GetTimeCounter(
          std::string("fuzzydb_phase_seconds_total") + "{phase=\"" +
          QueryPhaseName(static_cast<QueryPhase>(i)) + "\"}");
    }
    const ExecOptions defaults;
    m->build_info = reg.GetGauge(
        std::string("fuzzydb_build_info") + "{git_sha=\"" +
        FUZZYDB_GIT_SHA + "\",compiler=\"" + CompilerLabel() +
        "\",batch_size=\"" + std::to_string(defaults.batch_size) +
        "\",cost_based=\"" + (defaults.cost_based ? "on" : "off") +
        "\"}");
    m->build_info->Set(1);
    return m;
  }();
  return metrics;
}

EngineMetrics* EngineMetrics::IfEnabled() {
  if (!MetricsRegistry::Global().enabled()) return nullptr;
  return Instance();
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

void SlowQueryLog::Add(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  while (entries_.size() > kCapacity) entries_.pop_front();
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t SlowQueryLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Relation SlowQueryLog::ToRelation() const {
  Relation rel("sys.slowlog", Schema{{"elapsed_ms", ValueType::kFuzzy},
                                     {"query", ValueType::kString},
                                     {"trace", ValueType::kString}});
  for (const Entry& entry : Entries()) {
    (void)rel.Append(Tuple({Value::Number(entry.elapsed_ms),
                            Value::String(entry.query_text),
                            Value::String(entry.trace_text)},
                           /*degree=*/1.0));
  }
  return rel;
}

}  // namespace fuzzydb
