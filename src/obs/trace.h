// Per-operator execution traces: the observability layer behind
// EXPLAIN ANALYZE, the Chrome trace export, and the benchmarks'
// operator-level JSON breakdowns.
//
// An ExecTrace is a tree of spans, one TraceNode per operator instance
// (filter, interval sort, merge window, aggregation, external sort,
// file join, ...). Operators open a span with TraceScope; on close the
// span records its wall time and the *deltas* of the CpuStats/IoStats
// accumulators it was given -- the same accumulators the operators
// already tally into, folded from per-worker slots at the parallel
// barriers (see parallel/parallel_for.h). Because spans open and close
// on the control thread, strictly outside those barriers, every
// recorded counter delta is thread-count-invariant: the same query
// yields the same trace (names, cardinalities, counters) on 1 or 16
// threads; only wall times differ.
//
// Tracing is off by default (ExecOptions::trace == nullptr) and the
// disabled path costs one pointer test per span -- no allocation, no
// clock read, no counter snapshot.
//
// Deltas are computed with the checked helpers (CpuStats::CheckedDelta,
// IoStats::CheckedDelta), which clamp at zero and flag instead of
// wrapping, so a mis-nested span can never report 2^64-ish counters in
// a Release build.
#ifndef FUZZYDB_OBS_TRACE_H_
#define FUZZYDB_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"
#include "engine/exec_stats.h"
#include "storage/io_stats.h"

namespace fuzzydb {

/// One operator instance in an execution trace. Counter fields are
/// *inclusive*: a parent span's deltas cover its children (use
/// ExecTrace::SelfCpu for the exclusive share).
struct TraceNode {
  /// Sentinel for "the operator did not report this cardinality".
  static constexpr uint64_t kNoCount = ~uint64_t{0};

  std::string name;    // operator, e.g. "merge-window"
  std::string detail;  // annotation, e.g. the query type or table name
  double start_seconds = 0.0;  // offset from the trace epoch
  double wall_seconds = 0.0;
  CpuStats cpu;  // counter deltas over the span (inclusive)
  IoStats io;    // page-traffic deltas over the span (inclusive)
  uint64_t input_rows = kNoCount;
  uint64_t output_rows = kNoCount;
  /// Planner-estimated output cardinality (EXPLAIN ANALYZE renders it as
  /// "est=N" next to the actual rows; the estimator-accuracy gate
  /// computes per-operator q-error from est_rows vs rows_out). kNoCount
  /// when the operator ran without a cost-based estimate (--no-cbo, or
  /// an operator the planner does not estimate).
  uint64_t est_rows = kNoCount;
  /// Batch execution (docs/architecture.md): batch-kernel invocations
  /// inside the span and the lanes they evaluated. kNoCount when the
  /// operator ran scalar (batch_size = 0) or had no batchable work.
  /// Like the counter deltas these are thread-count-invariant, but they
  /// *do* vary with ExecOptions::batch_size, so they are deliberately
  /// not part of the determinism signature in parallel_test.cc.
  uint64_t batches = kNoCount;
  uint64_t batch_rows = kNoCount;
  size_t threads = 1;    // worker slots the operator ran with
  bool clamped = false;  // a counter delta was clamped (snapshot misuse)
  std::vector<size_t> children;  // indices into ExecTrace::nodes()
};

/// A tree of operator spans for one (or several) query executions.
/// Spans must open and close on one thread in LIFO order; parallel
/// operators fold their per-worker tallies before their span closes.
class ExecTrace {
 public:
  ExecTrace() = default;

  /// Opens a span as a child of the innermost open span (or as a root).
  /// Returns the node id used by CloseSpan and node().
  size_t OpenSpan(std::string name, std::string detail = "");

  /// Closes span `id`, recording its wall time. Out-of-order closes are
  /// tolerated by closing every span opened after `id` first.
  void CloseSpan(size_t id);

  TraceNode& node(size_t id) { return nodes_[id]; }
  const std::vector<TraceNode>& nodes() const { return nodes_; }
  const std::vector<size_t>& roots() const { return roots_; }
  bool empty() const { return nodes_.empty(); }

  /// Number of spans still open. A well-formed trace — including one cut
  /// short by a throwing operator — ends at zero: TraceScope destructors
  /// close their spans during unwinding.
  size_t open_span_count() const { return open_.size(); }

  /// Seconds since this trace was constructed (the span clock).
  double ElapsedSeconds() const { return epoch_.ElapsedSeconds(); }

  /// Sum of the root spans' inclusive deltas. When every operator of a
  /// run is spanned, these equal the run's whole-query totals.
  CpuStats TotalCpu() const;
  IoStats TotalIo() const;

  /// Exclusive share of node `id`: its inclusive delta minus its
  /// children's (clamped, never negative).
  CpuStats SelfCpu(size_t id) const;
  IoStats SelfIo(size_t id) const;

  /// The annotated tree, one indented line per span, e.g.
  ///   merge-window [R.Y=S.Z] wall=1.234ms rows=300 threads=4
  ///       cpu={pairs=900 degrees=450 cmp=1700 subq=0}
  /// `include_timing` = false drops the wall= fields (golden tests).
  std::string ToString(bool include_timing = true) const;

  /// Chrome trace_event JSON ("ph":"X" complete events, microsecond
  /// timestamps); load in chrome://tracing or Perfetto.
  std::string ToChromeTraceJson() const;

  /// Machine-readable per-operator summary: a JSON array, one object
  /// per span in preorder, with depth/wall/counters/cardinalities.
  std::string ToJsonSummary() const;

 private:
  void AppendText(size_t id, int depth, bool include_timing,
                  std::string* out) const;
  void AppendSummary(size_t id, int depth, bool* first,
                     std::string* out) const;

  Stopwatch epoch_;
  std::vector<TraceNode> nodes_;
  std::vector<size_t> roots_;
  std::vector<size_t> open_;  // stack of open span ids
};

/// RAII span. With a null trace every member is a no-op; otherwise the
/// constructor snapshots the given counter accumulators and the
/// destructor records the checked deltas.
class TraceScope {
 public:
  /// `cpu` / `io` point at the accumulators the spanned operator
  /// tallies into (either may be null: that delta stays zero).
  TraceScope(ExecTrace* trace, std::string_view name,
             const CpuStats* cpu = nullptr, const IoStats* io = nullptr,
             std::string detail = "");
  ~TraceScope() { Close(); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool enabled() const { return trace_ != nullptr; }

  void SetInputRows(uint64_t n) {
    if (trace_ != nullptr) trace_->node(id_).input_rows = n;
  }
  void SetOutputRows(uint64_t n) {
    if (trace_ != nullptr) trace_->node(id_).output_rows = n;
  }
  void SetEstimatedRows(uint64_t n) {
    if (trace_ != nullptr) trace_->node(id_).est_rows = n;
  }
  void SetThreads(size_t n) {
    if (trace_ != nullptr) trace_->node(id_).threads = n;
  }
  void SetDetail(std::string detail) {
    if (trace_ != nullptr) trace_->node(id_).detail = std::move(detail);
  }
  /// Records batch-path usage (EXPLAIN ANALYZE renders it as
  /// "batches=N rows/batch=M"). Call only when batches > 0; spans
  /// without batch work stay unannotated.
  void SetBatches(uint64_t batches, uint64_t batch_rows) {
    if (trace_ != nullptr) {
      trace_->node(id_).batches = batches;
      trace_->node(id_).batch_rows = batch_rows;
    }
  }

  /// Closes the span early (idempotent).
  void Close();

 private:
  ExecTrace* trace_;
  size_t id_ = 0;
  const CpuStats* cpu_source_ = nullptr;
  const IoStats* io_source_ = nullptr;
  CpuStats cpu_before_;
  IoStats io_before_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_OBS_TRACE_H_
