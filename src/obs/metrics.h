// Process-wide metrics registry: cumulative counters, gauges, memory
// trackers, and latency histograms aggregated across queries.
//
// Design goals, in order:
//  1. The hot path is a relaxed atomic add on a per-thread shard — no
//     locks, no fences, no allocation. When metrics are disabled the
//     cost is a single branch (EngineMetrics::IfEnabled() == nullptr).
//  2. Readers fold shards on demand; SHOW METRICS, sys.metrics, and the
//     Prometheus/JSON dumps all render the same folded snapshot.
//  3. Metric identity is a registry name, so the set of exported series
//     is fixed at startup and stable across runs (bench comparability).
//
// Per-query detail (span trees) lives in obs/trace.h; this file is the
// cross-query, server-lifetime view. The SlowQueryLog bridges the two by
// retaining the rendered trace of queries over ExecOptions::slow_query_ms.
#ifndef FUZZYDB_OBS_METRICS_H_
#define FUZZYDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "relational/relation.h"

namespace fuzzydb {

// Monotonic event counter, sharded per thread like Histogram.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }
  /// Atomically drains every shard and returns the folded value.
  /// Unlike Value()-then-Reset(), a concurrent Add can never land
  /// between the read and the zeroing and be silently dropped: each
  /// shard's exchange(0) claims exactly what was there.
  uint64_t ValueAndReset() {
    uint64_t total = 0;
    for (Shard& s : shards_) {
      total += s.v.exchange(0, std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  static size_t ShardIndex();
  std::array<Shard, kShards> shards_;
};

// Instantaneous signed level (e.g. live bytes). Single atomic: gauges are
// updated at operator granularity, not per tuple, so contention is nil.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }
  /// Atomic read-and-zero (see Counter::ValueAndReset): a concurrent
  /// Add lands in the returned value or in the fresh epoch, never both.
  int64_t ValueAndReset() {
    return value_.exchange(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

// A gauge of live bytes that also tracks the high-water mark. Charge and
// Release are called by memory-hungry operators (external sort run
// buffers, partitioned-join build sides) around their allocations.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  void Charge(uint64_t bytes);
  void Release(uint64_t bytes) {
    current_.fetch_sub(static_cast<int64_t>(bytes),
                       std::memory_order_relaxed);
  }
  int64_t Current() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t Peak() const { return peak_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

// RAII charge against a MemoryTracker; tolerates a null tracker so call
// sites don't have to branch on whether metrics are enabled.
class ScopedMemoryCharge {
 public:
  explicit ScopedMemoryCharge(MemoryTracker* tracker) : tracker_(tracker) {}
  ~ScopedMemoryCharge() {
    if (tracker_ != nullptr) tracker_->Release(bytes_);
  }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  void Charge(uint64_t bytes) {
    if (tracker_ == nullptr) return;
    tracker_->Charge(bytes);
    bytes_ += bytes;
  }

 private:
  MemoryTracker* tracker_;
  uint64_t bytes_ = 0;
};

// Owns every metric in the process. Get* registers on first use (under a
// mutex) and returns a stable pointer; the returned objects are lock-free
// to update. Rendering folds everything under the same mutex, which only
// excludes concurrent *registration*, never updates.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  MemoryTracker* GetMemoryTracker(const std::string& name);

  /// A counter of accumulated *microseconds* rendered as seconds
  /// (value / 1e6) on every surface, so _seconds_total series names
  /// stay truthful while the hot path remains an integer relaxed add.
  Counter* GetTimeCounter(const std::string& name);

  // When disabled, EngineMetrics::IfEnabled() returns nullptr and no
  // engine call site records anything. Direct holders of metric pointers
  // may still record; disabling is a tap for the engine wiring, not a
  // freeze of the objects.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Zeroes every registered metric (SHOW METRICS RESET).
  void ResetAll();

  // One "name value" line per series, histograms expanded to
  // _count/_sum/_p50/_p90/_p99/_max, sorted by name. This is the text of
  // SHOW METRICS and the exact value set mirrored into sys.metrics.
  std::string ToText() const;

  // ToText() and ResetAll() as one atomic step: every metric is drained
  // with an exchange (counters) or snapshot-then-zero fold (histograms,
  // Histogram::SnapshotAndReset), so a Record/Add racing the reset lands
  // in exactly one of {the rendered text, the fresh epoch} -- never both,
  // never neither. SHOW METRICS RESET uses this so mid-query resets do
  // not skew in-flight folds.
  std::string ToTextAndReset();

  // Prometheus exposition format (counters, gauges, histogram summaries).
  std::string ToPrometheusText() const;

  // Single JSON object {"name": value, ...} over the same series as
  // ToText().
  std::string ToJson() const;

  // The sys.metrics system relation: schema (name STRING, value FUZZY),
  // one row per ToText() series, every row with degree 1.
  Relation ToRelation() const;

 private:
  MetricsRegistry() = default;

  // Flattened (name, value) view shared by all renderers.
  std::vector<std::pair<std::string, double>> FoldSeries() const;

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{true};
  // std::map for deterministic iteration; deques keep pointers stable.
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  std::map<std::string, MemoryTracker*> trackers_;
  std::map<std::string, Counter*> time_counters_;
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::deque<MemoryTracker> tracker_storage_;
  std::deque<Counter> time_counter_storage_;
};

// The engine's fixed metric set, resolved once from the global registry.
// Call sites do:
//   if (EngineMetrics* m = EngineMetrics::IfEnabled()) m->foo->Add(n);
// so the disabled path is one branch and the enabled path is one relaxed
// add. Hot loops should hoist the IfEnabled() call out of the loop.
struct EngineMetrics {
  // Query lifecycle.
  Counter* queries_total;
  Counter* queries_naive_fallback;
  Counter* queries_failed;
  Counter* slow_queries;
  Histogram* query_latency_us;

  // Governance outcomes (see common/query_context.h): queries stopped by
  // cooperative cancel, deadline, or memory-budget denial, and the total
  // bytes of denied budget charges.
  Counter* queries_cancelled;
  Counter* queries_deadline_exceeded;
  Counter* queries_resource_exhausted;
  Counter* budget_denied_bytes;

  // Naive (nested-loop) evaluator activity: query blocks evaluated
  // (subquery re-evaluations included) and answer rows produced.
  Counter* naive_blocks;
  Counter* naive_rows_out;

  // Rows in/out per operator class.
  Counter* filter_rows_in;
  Counter* filter_rows_out;
  Counter* sort_rows;
  Counter* merge_join_rows_in;
  Counter* merge_join_rows_out;
  Counter* nested_loop_rows_in;
  Counter* nested_loop_rows_out;
  Counter* partitioned_join_rows_in;
  Counter* partitioned_join_rows_out;

  // Paper-specific distribution: |Rng(r)| per outer tuple (Def. 3.2).
  Histogram* merge_window_length;

  // Batch execution path (docs/architecture.md, "Batch execution"):
  // batch-kernel invocations, lanes evaluated through them, and the
  // fill level (lanes per invocation; low fill means ragged tails or
  // scalar fallbacks are dominating).
  Counter* batch_batches;
  Counter* batch_rows;
  Histogram* batch_fill;

  // Cost-based planner (engine/cost_model.h, stats/column_stats.h):
  // cost-based chain plans computed, column-statistics builds, chain
  // steps decided each way, and the per-operator q-error distribution
  // (max(est/act, act/est) scaled by 100, so 100 = perfect) feeding the
  // estimator-accuracy gate.
  Counter* planner_plans;
  Counter* planner_stats_builds;
  Counter* planner_merge_steps;
  Counter* planner_nested_steps;
  Histogram* planner_q_error;

  // Spill + memory accounting.
  Counter* sort_spill_bytes;
  Counter* partition_spill_bytes;
  MemoryTracker* sort_memory;
  MemoryTracker* join_memory;

  // Scheduling + stage latency.
  Histogram* morsel_queue_wait_us;
  Histogram* sort_stage_us;
  Histogram* join_stage_us;

  // Cross-query cache (src/cache/cache_manager.h): lookup outcomes,
  // entries admitted, entries evicted, and the current resident bytes.
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* cache_inserts;
  Counter* cache_evictions;
  Gauge* cache_bytes;

  // Live query introspection (obs/query_registry.h, obs/query_journal.h):
  // journal records written / write failures swallowed / file rotations,
  // queries cancelled through KILL, and the cumulative per-phase
  // execution time folded at query unregistration. phase_seconds is
  // indexed by QueryPhase; slot 0 (kNone) is null -- it is not a
  // pipeline phase. The series are time counters: microseconds inside,
  // seconds on every rendered surface.
  Counter* journal_records;
  Counter* journal_errors;
  Counter* journal_rotations;          // {outcome="rotated"}
  Counter* journal_rotations_dropped;  // {outcome="dropped"}, per file
  Counter* queries_killed;
  Counter* phase_seconds[7];

  // Build identity for self-describing scrapes and bench artifacts:
  // constant 1, with the git sha, compiler, and the batch/cbo defaults
  // as labels on the series name.
  Gauge* build_info;

  // Null when MetricsRegistry::Global() is disabled.
  static EngineMetrics* IfEnabled();
  // Always non-null; for tests and renderers that bypass the tap.
  static EngineMetrics* Instance();
};

// Fixed-capacity ring of the most recent over-threshold queries, each
// retaining its rendered EXPLAIN ANALYZE tree.
class SlowQueryLog {
 public:
  struct Entry {
    std::string query_text;
    double elapsed_ms = 0.0;
    std::string trace_text;  // rendered span tree, may be empty
  };

  static SlowQueryLog& Global();

  void Add(Entry entry);
  std::vector<Entry> Entries() const;  // oldest first
  void Clear();
  size_t Size() const;

  /// The sys.slowlog system relation: (elapsed_ms FUZZY, query STRING,
  /// trace STRING), oldest first, every row with degree 1 -- the same
  /// render discipline as sys.metrics / sys.queries.
  Relation ToRelation() const;

 private:
  static constexpr size_t kCapacity = 32;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_OBS_METRICS_H_
