#include "obs/query_registry.h"

#include <sstream>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace fuzzydb {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kNone:
      return "none";
    case QueryPhase::kPlan:
      return "plan";
    case QueryPhase::kFilter:
      return "filter";
    case QueryPhase::kSort:
      return "sort";
    case QueryPhase::kWindow:
      return "window";
    case QueryPhase::kJoin:
      return "join";
    case QueryPhase::kEmit:
      return "emit";
  }
  return "none";
}

QueryPhase QueryProgress::EnterPhase(QueryPhase phase) {
  const auto now = std::chrono::steady_clock::now();
  const QueryPhase prev = this->phase();
  if (!started_) {
    started_ = true;
    queue_wait_micros_.store(MicrosBetween(created_, now),
                             std::memory_order_relaxed);
  } else {
    phase_micros_[static_cast<size_t>(prev)].fetch_add(
        MicrosBetween(mark_, now), std::memory_order_relaxed);
  }
  mark_ = now;
  phase_enters_[static_cast<size_t>(phase)].fetch_add(
      1, std::memory_order_relaxed);
  phase_.store(static_cast<uint32_t>(phase), std::memory_order_relaxed);
  return prev;
}

void QueryProgress::SwitchTo(QueryPhase phase) {
  const auto now = std::chrono::steady_clock::now();
  if (started_) {
    phase_micros_[static_cast<size_t>(this->phase())].fetch_add(
        MicrosBetween(mark_, now), std::memory_order_relaxed);
  } else {
    started_ = true;
    queue_wait_micros_.store(MicrosBetween(created_, now),
                             std::memory_order_relaxed);
  }
  mark_ = now;
  phase_.store(static_cast<uint32_t>(phase), std::memory_order_relaxed);
}

void QueryProgress::FinishPhases() { SwitchTo(QueryPhase::kNone); }

uint64_t QueryProgress::TotalPhaseMicros() const {
  uint64_t total = 0;
  // Index 0 (kNone) holds time flushed after the query parked; it is
  // not a pipeline phase, so it stays out of the total.
  for (size_t i = 1; i < kNumQueryPhases; ++i) {
    total += phase_micros_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::string QueryProgress::PhasesText() const {
  std::ostringstream out;
  bool first = true;
  for (size_t i = 1; i < kNumQueryPhases; ++i) {
    const QueryPhase phase = static_cast<QueryPhase>(i);
    if (PhaseEnters(phase) == 0) continue;
    if (!first) out << " ";
    first = false;
    out << QueryPhaseName(phase) << "="
        << FormatDouble(static_cast<double>(PhaseMicros(phase)) / 1e3, 3)
        << "ms";
  }
  return out.str();
}

std::string QueryProgress::DeterminismSignature() const {
  std::ostringstream out;
  out << "enters=";
  for (size_t i = 1; i < kNumQueryPhases; ++i) {
    const QueryPhase phase = static_cast<QueryPhase>(i);
    if (i > 1) out << ",";
    out << QueryPhaseName(phase) << ":" << PhaseEnters(phase);
  }
  out << ";items=" << items_done() << ";morsels=" << morsels_done()
      << ";rows=" << rows_emitted() << ";pairs=" << pairs_considered();
  return out.str();
}

ActiveQueryRegistry& ActiveQueryRegistry::Global() {
  static ActiveQueryRegistry* registry = new ActiveQueryRegistry();
  return *registry;
}

uint64_t ActiveQueryRegistry::Register(std::string sql, QueryContext* ctx,
                                       QueryProgress* progress,
                                       size_t threads) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  Entry entry;
  entry.sql = std::move(sql);
  entry.ctx = ctx;
  entry.progress = progress;
  entry.threads = threads;
  entry.start = std::chrono::steady_clock::now();
  entries_.emplace(id, std::move(entry));
  approx_size_.store(entries_.size(), std::memory_order_relaxed);
  if (progress != nullptr) progress->set_query_id(id);
  return id;
}

void ActiveQueryRegistry::Unregister(uint64_t id) {
  QueryProgress* progress = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    progress = it->second.progress;
    entries_.erase(it);
    approx_size_.store(entries_.size(), std::memory_order_relaxed);
  }
  // Fold the finished query's phase timers into the cumulative
  // per-phase counters. The progress object is owned by the caller
  // (still alive: ActiveQueryRegistration holds it through this call).
  if (progress == nullptr) return;
  EngineMetrics* m = EngineMetrics::IfEnabled();
  if (m == nullptr) return;
  for (size_t i = 1; i < kNumQueryPhases; ++i) {
    const uint64_t micros =
        progress->PhaseMicros(static_cast<QueryPhase>(i));
    if (micros > 0) m->phase_seconds[i]->Add(micros);
  }
}

ActiveQueryInfo ActiveQueryRegistry::InfoFor(uint64_t id,
                                             const Entry& entry) const {
  ActiveQueryInfo info;
  info.id = id;
  info.sql = entry.sql;
  info.threads = entry.threads;
  info.elapsed_ms =
      static_cast<double>(
          MicrosBetween(entry.start, std::chrono::steady_clock::now())) /
      1e3;
  if (entry.progress != nullptr) {
    info.phase = QueryPhaseName(entry.progress->phase());
    info.queue_wait_ms =
        static_cast<double>(entry.progress->queue_wait_micros()) / 1e3;
    info.items_done = entry.progress->items_done();
    info.morsels_done = entry.progress->morsels_done();
    info.rows_emitted = entry.progress->rows_emitted();
    info.pairs_considered = entry.progress->pairs_considered();
  } else {
    info.phase = "none";
  }
  if (entry.ctx != nullptr) {
    info.mem_used_bytes = entry.ctx->memory().used();
    info.mem_peak_bytes = entry.ctx->memory().peak();
    info.cancel_requested = entry.ctx->cancel_requested();
  }
  return info;
}

std::vector<ActiveQueryInfo> ActiveQueryRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ActiveQueryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    out.push_back(InfoFor(id, entry));
  }
  return out;
}

bool ActiveQueryRegistry::Kill(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second.ctx == nullptr) return false;
  // Safe under the lock: Unregister precedes the context's destruction
  // on the executing thread, so a registered ctx is always alive here.
  it->second.ctx->Cancel();
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->queries_killed->Add();
  }
  return true;
}

size_t ActiveQueryRegistry::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t cancelled = 0;
  for (auto& [id, entry] : entries_) {
    if (entry.ctx == nullptr) continue;
    entry.ctx->Cancel();
    ++cancelled;
  }
  return cancelled;
}

size_t ActiveQueryRegistry::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Relation ActiveQueryRegistry::ToRelation() const {
  Relation rel("sys.queries", Schema{{"id", ValueType::kFuzzy},
                                     {"phase", ValueType::kString},
                                     {"elapsed_ms", ValueType::kFuzzy},
                                     {"queue_ms", ValueType::kFuzzy},
                                     {"items", ValueType::kFuzzy},
                                     {"rows", ValueType::kFuzzy},
                                     {"pairs", ValueType::kFuzzy},
                                     {"mem_bytes", ValueType::kFuzzy},
                                     {"threads", ValueType::kFuzzy},
                                     {"query", ValueType::kString}});
  for (const ActiveQueryInfo& q : Snapshot()) {
    (void)rel.Append(
        Tuple({Value::Number(static_cast<double>(q.id)),
               Value::String(q.phase), Value::Number(q.elapsed_ms),
               Value::Number(q.queue_wait_ms),
               Value::Number(static_cast<double>(q.items_done)),
               Value::Number(static_cast<double>(q.rows_emitted)),
               Value::Number(static_cast<double>(q.pairs_considered)),
               Value::Number(static_cast<double>(q.mem_used_bytes)),
               Value::Number(static_cast<double>(q.threads)),
               Value::String(q.sql)},
              /*degree=*/1.0));
  }
  return rel;
}

std::string ActiveQueryRegistry::ToText() const {
  std::ostringstream out;
  for (const ActiveQueryInfo& q : Snapshot()) {
    out << "id=" << q.id << " phase=" << q.phase
        << " elapsed_ms=" << FormatDouble(q.elapsed_ms, 3)
        << " queue_ms=" << FormatDouble(q.queue_wait_ms, 3)
        << " items=" << q.items_done << " rows=" << q.rows_emitted
        << " pairs=" << q.pairs_considered
        << " mem_bytes=" << q.mem_used_bytes << " threads=" << q.threads
        << (q.cancel_requested ? " cancelling" : "") << " query=" << q.sql
        << "\n";
  }
  return out.str();
}

ActiveQueryRegistration::ActiveQueryRegistration(std::string sql,
                                                QueryContext* ctx,
                                                QueryProgress* progress,
                                                size_t threads)
    : id_(ActiveQueryRegistry::Global().Register(std::move(sql), ctx,
                                                 progress, threads)),
      progress_(progress) {}

ActiveQueryRegistration::~ActiveQueryRegistration() {
  if (progress_ != nullptr) progress_->FinishPhases();
  ActiveQueryRegistry::Global().Unregister(id_);
}

}  // namespace fuzzydb
