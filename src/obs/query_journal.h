// The structured query journal: an always-on, bounded JSONL audit log
// with one record per completed query.
//
// The slow-query log only sees queries over a threshold; the journal
// sees every query (or every Nth with sampling), so post-hoc triage --
// "what ran before the latency spike", "which plans mis-estimated" --
// has complete data. Each record carries the query's identity (SQL,
// plan fingerprint, registry id), outcome (status, rows, est vs actual),
// resource profile (phase timings, cpu/io counters, peak memory, cache
// hits), and timing. tools/journal_check.py validates the schema in CI.
//
// Disabled (no path set, the default) the cost is one relaxed atomic
// load per query. Enabled, appends happen on the query's control thread
// under one mutex -- per query, not per tuple. A write failure (full
// disk, fail point "journal/write") increments
// fuzzydb_journal_errors_total and NEVER fails the query: the journal
// is observability, not durability. Rotation keeps the log bounded: at
// max_bytes the file is renamed to PATH.1 (older generations shifting
// to PATH.2 .. PATH.keep_files) and a fresh PATH is started, so disk
// use never exceeds ~(keep_files + 1) x max_bytes. Files shifted past
// the keep limit are deleted and counted in
// fuzzydb_journal_rotations_total{outcome="dropped"}.
#ifndef FUZZYDB_OBS_QUERY_JOURNAL_H_
#define FUZZYDB_OBS_QUERY_JOURNAL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "common/status.h"
#include "engine/exec_stats.h"
#include "obs/query_registry.h"
#include "storage/io_stats.h"

namespace fuzzydb {

/// Everything one journal line records. The evaluator fills what it
/// knows; zero/empty fields render as such (the schema is fixed).
struct QueryJournalRecord {
  uint64_t query_id = 0;     // ActiveQueryRegistry id; 0 = unregistered
  std::string sql;           // statement text (may be empty)
  std::string fingerprint;   // canonical plan fingerprint (may be empty)
  std::string type;          // classified query type, e.g. "J"
  std::string engine = "unnested";  // "unnested" | "naive-fallback"
  std::string status = "OK";        // OK | CANCELLED | DEADLINE_EXCEEDED
                                    // | RESOURCE_EXHAUSTED | FAILED
  uint64_t rows = 0;                // answer cardinality
  bool has_est_rows = false;
  uint64_t est_rows = 0;            // planner estimate, when produced
  double elapsed_ms = 0.0;
  double queue_wait_ms = 0.0;
  size_t threads = 1;
  /// Flushed per-phase micros, indexed by QueryPhase (0 = none, unused).
  std::array<uint64_t, kNumQueryPhases> phase_micros{};
  CpuStats cpu;
  IoStats io;
  int64_t mem_peak_bytes = 0;
  uint64_t cache_hits = 0;    // process-level delta over the query
  uint64_t cache_misses = 0;
};

/// Process-wide journal sink. All members are thread-safe.
class QueryJournal {
 public:
  static QueryJournal& Global();

  /// Opens (appending) the journal at `path`; empty closes and disables.
  /// Existing records are kept -- restarting a session extends the log.
  /// Starts a new id session: record ids restart at 1, which
  /// tools/journal_check.py recognizes as a session boundary.
  Status SetPath(const std::string& path);
  std::string path() const;

  /// Journal every Nth query (1 = every query, the default; 0 behaves
  /// as 1). Skipped queries still advance the id sequence, so sampled
  /// logs stay monotonic and gaps are visible. The sampling decision
  /// comes from a dedicated monotonic record counter, not the id: ids
  /// may restart at 1 (new session appending to the same file) without
  /// disturbing the cadence, and changing the rate resets the sampling
  /// epoch so the very next record is always written -- a rate change
  /// or id restart can never silence the journal for a whole epoch.
  void set_sample_every(uint64_t n);

  /// Rotation threshold in bytes (default 64 MiB; 0 = never rotate).
  void set_max_bytes(uint64_t bytes);

  /// Rotated generations to keep as PATH.1 (newest) .. PATH.n (oldest);
  /// default 3. 0 deletes the live file on rotation instead of renaming
  /// it. Every file deleted by rotation is counted in
  /// fuzzydb_journal_rotations_total{outcome="dropped"}.
  void set_keep_files(uint64_t n);
  uint64_t keep_files() const;

  /// One relaxed load; the evaluator's "should I assemble a record"
  /// gate, mirroring EngineMetrics::IfEnabled().
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Assigns the next journal id and, unless sampled out, writes one
  /// JSONL record. Never fails: errors are counted, not raised.
  void Append(const QueryJournalRecord& record);

  /// Records written since the journal opened (sampling and write
  /// failures excluded); for tests and the CI gate.
  uint64_t records_written() const;

 private:
  QueryJournal() = default;

  void RotateLocked();

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::string path_;
  std::ofstream out_;
  uint64_t seq_ = 0;          // record ids; restarts at SetPath
  uint64_t sample_seq_ = 0;   // sampling epoch position, id-independent
  uint64_t sample_every_ = 1;
  uint64_t max_bytes_ = 64ull << 20;
  uint64_t keep_files_ = 3;
  uint64_t bytes_written_ = 0;
  uint64_t records_written_ = 0;
};

}  // namespace fuzzydb

#endif  // FUZZYDB_OBS_QUERY_JOURNAL_H_
