#include "obs/trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace fuzzydb {

namespace {

std::string FormatCpu(const CpuStats& cpu) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "cpu={pairs=%llu degrees=%llu cmp=%llu subq=%llu}",
                static_cast<unsigned long long>(cpu.tuple_pairs),
                static_cast<unsigned long long>(cpu.degree_evaluations),
                static_cast<unsigned long long>(cpu.comparisons),
                static_cast<unsigned long long>(cpu.subquery_evaluations));
  return buf;
}

std::string FormatIo(const IoStats& io) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "io={reads=%llu writes=%llu hits=%llu}",
                static_cast<unsigned long long>(io.page_reads),
                static_cast<unsigned long long>(io.page_writes),
                static_cast<unsigned long long>(io.buffer_hits));
  return buf;
}

/// Escapes a string for inclusion in a JSON string literal. Span names
/// and details are plain identifiers today; this keeps the exporters
/// correct if one ever carries a quote or backslash.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendField(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  *out += buf;
}

}  // namespace

size_t ExecTrace::OpenSpan(std::string name, std::string detail) {
  const size_t id = nodes_.size();
  TraceNode node;
  node.name = std::move(name);
  node.detail = std::move(detail);
  node.start_seconds = epoch_.ElapsedSeconds();
  nodes_.push_back(std::move(node));
  if (open_.empty()) {
    roots_.push_back(id);
  } else {
    nodes_[open_.back()].children.push_back(id);
  }
  open_.push_back(id);
  return id;
}

void ExecTrace::CloseSpan(size_t id) {
  assert(!open_.empty() && open_.back() == id && "mis-nested trace spans");
  // Tolerate (and close) spans a misbehaving operator left open below
  // `id` so the tree stays well formed in Release builds.
  while (!open_.empty()) {
    const size_t top = open_.back();
    open_.pop_back();
    nodes_[top].wall_seconds =
        epoch_.ElapsedSeconds() - nodes_[top].start_seconds;
    if (top == id) break;
  }
}

CpuStats ExecTrace::TotalCpu() const {
  CpuStats total;
  for (size_t root : roots_) total += nodes_[root].cpu;
  return total;
}

IoStats ExecTrace::TotalIo() const {
  IoStats total;
  for (size_t root : roots_) total += nodes_[root].io;
  return total;
}

CpuStats ExecTrace::SelfCpu(size_t id) const {
  CpuStats children;
  for (size_t child : nodes_[id].children) children += nodes_[child].cpu;
  return nodes_[id].cpu.CheckedDelta(children);
}

IoStats ExecTrace::SelfIo(size_t id) const {
  IoStats children;
  for (size_t child : nodes_[id].children) children += nodes_[child].io;
  return nodes_[id].io.CheckedDelta(children);
}

void ExecTrace::AppendText(size_t id, int depth, bool include_timing,
                           std::string* out) const {
  const TraceNode& node = nodes_[id];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name;
  if (!node.detail.empty()) {
    *out += " [";
    *out += node.detail;
    *out += "]";
  }
  if (include_timing) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " wall=%.3fms",
                  node.wall_seconds * 1000.0);
    *out += buf;
  }
  if (node.input_rows != TraceNode::kNoCount ||
      node.output_rows != TraceNode::kNoCount) {
    *out += " rows=";
    if (node.input_rows != TraceNode::kNoCount) {
      *out += std::to_string(node.input_rows);
    }
    if (node.output_rows != TraceNode::kNoCount) {
      *out += "->";
      *out += std::to_string(node.output_rows);
    }
  }
  if (node.est_rows != TraceNode::kNoCount) {
    *out += " est=";
    *out += std::to_string(node.est_rows);
  }
  if (node.batches != TraceNode::kNoCount && node.batches > 0) {
    *out += " batches=";
    *out += std::to_string(node.batches);
    *out += " rows/batch=";
    *out += std::to_string(node.batch_rows / node.batches);
  }
  if (node.threads > 1) {
    *out += " threads=";
    *out += std::to_string(node.threads);
  }
  *out += " ";
  *out += FormatCpu(node.cpu);
  if (node.io.TotalIos() + node.io.buffer_hits > 0) {
    *out += " ";
    *out += FormatIo(node.io);
  }
  if (node.clamped) *out += " CLAMPED";
  *out += "\n";
  for (size_t child : node.children) {
    AppendText(child, depth + 1, include_timing, out);
  }
}

std::string ExecTrace::ToString(bool include_timing) const {
  std::string out;
  for (size_t root : roots_) AppendText(root, 0, include_timing, &out);
  return out;
}

std::string ExecTrace::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TraceNode& node = nodes_[i];
    if (!first) out += ",";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"cat\":\"fuzzydb\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
                  JsonEscape(node.name).c_str(), node.start_seconds * 1e6,
                  node.wall_seconds * 1e6);
    out += buf;
    out += "\"detail\":\"" + JsonEscape(node.detail) + "\"";
    AppendField(&out, "pairs", node.cpu.tuple_pairs);
    AppendField(&out, "degree_evals", node.cpu.degree_evaluations);
    AppendField(&out, "comparisons", node.cpu.comparisons);
    AppendField(&out, "subquery_evals", node.cpu.subquery_evaluations);
    AppendField(&out, "page_reads", node.io.page_reads);
    AppendField(&out, "page_writes", node.io.page_writes);
    AppendField(&out, "threads", node.threads);
    if (node.input_rows != TraceNode::kNoCount) {
      AppendField(&out, "rows_in", node.input_rows);
    }
    if (node.output_rows != TraceNode::kNoCount) {
      AppendField(&out, "rows_out", node.output_rows);
    }
    if (node.est_rows != TraceNode::kNoCount) {
      AppendField(&out, "est_rows", node.est_rows);
    }
    if (node.batches != TraceNode::kNoCount) {
      AppendField(&out, "batches", node.batches);
      AppendField(&out, "batch_rows", node.batch_rows);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

void ExecTrace::AppendSummary(size_t id, int depth, bool* first,
                              std::string* out) const {
  const TraceNode& node = nodes_[id];
  if (!*first) *out += ",\n";
  *first = false;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "{\"op\":\"%s\",\"depth\":%d",
                JsonEscape(node.name).c_str(), depth);
  *out += buf;
  *out += ",\"detail\":\"" + JsonEscape(node.detail) + "\"";
  std::snprintf(buf, sizeof(buf), ",\"wall_ms\":%.4f",
                node.wall_seconds * 1000.0);
  *out += buf;
  AppendField(out, "pairs", node.cpu.tuple_pairs);
  AppendField(out, "degree_evals", node.cpu.degree_evaluations);
  AppendField(out, "comparisons", node.cpu.comparisons);
  AppendField(out, "subquery_evals", node.cpu.subquery_evaluations);
  AppendField(out, "page_reads", node.io.page_reads);
  AppendField(out, "page_writes", node.io.page_writes);
  AppendField(out, "buffer_hits", node.io.buffer_hits);
  AppendField(out, "threads", node.threads);
  if (node.input_rows != TraceNode::kNoCount) {
    AppendField(out, "rows_in", node.input_rows);
  }
  if (node.output_rows != TraceNode::kNoCount) {
    AppendField(out, "rows_out", node.output_rows);
  }
  if (node.est_rows != TraceNode::kNoCount) {
    AppendField(out, "est_rows", node.est_rows);
  }
  if (node.batches != TraceNode::kNoCount) {
    AppendField(out, "batches", node.batches);
    AppendField(out, "batch_rows", node.batch_rows);
  }
  *out += "}";
  for (size_t child : node.children) {
    AppendSummary(child, depth + 1, first, out);
  }
}

std::string ExecTrace::ToJsonSummary() const {
  std::string out = "[";
  bool first = true;
  for (size_t root : roots_) AppendSummary(root, 0, &first, &out);
  out += "]";
  return out;
}

TraceScope::TraceScope(ExecTrace* trace, std::string_view name,
                       const CpuStats* cpu, const IoStats* io,
                       std::string detail)
    : trace_(trace) {
  if (trace_ == nullptr) return;
  id_ = trace_->OpenSpan(std::string(name), std::move(detail));
  cpu_source_ = cpu;
  io_source_ = io;
  if (cpu_source_ != nullptr) cpu_before_ = *cpu_source_;
  if (io_source_ != nullptr) io_before_ = *io_source_;
}

void TraceScope::Close() {
  if (trace_ == nullptr) return;
  TraceNode& node = trace_->node(id_);
  if (cpu_source_ != nullptr) {
    node.cpu = cpu_source_->CheckedDelta(cpu_before_, &node.clamped);
  }
  if (io_source_ != nullptr) {
    node.io = io_source_->CheckedDelta(io_before_, &node.clamped);
  }
  trace_->CloseSpan(id_);
  trace_ = nullptr;
}

}  // namespace fuzzydb
