#include "obs/query_journal.h"

#include <cstdio>
#include <sstream>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace fuzzydb {

namespace {

/// JSON string escaping for SQL text and fingerprints: quotes,
/// backslashes, and control characters (statements can contain
/// anything the lexer accepted, including embedded quotes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderRecord(uint64_t id, const QueryJournalRecord& r) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"query_id\":" << r.query_id << ",\"sql\":\""
      << JsonEscape(r.sql) << "\",\"fingerprint\":\""
      << JsonEscape(r.fingerprint) << "\",\"type\":\"" << JsonEscape(r.type)
      << "\",\"engine\":\"" << JsonEscape(r.engine) << "\",\"status\":\""
      << JsonEscape(r.status) << "\",\"rows\":" << r.rows << ",\"est_rows\":";
  if (r.has_est_rows) {
    out << r.est_rows;
  } else {
    out << "null";
  }
  out << ",\"elapsed_ms\":" << r.elapsed_ms
      << ",\"queue_wait_ms\":" << r.queue_wait_ms
      << ",\"threads\":" << r.threads << ",\"phases_us\":{";
  for (size_t i = 1; i < kNumQueryPhases; ++i) {
    if (i > 1) out << ",";
    out << "\"" << QueryPhaseName(static_cast<QueryPhase>(i)) << "\":"
        << r.phase_micros[i];
  }
  out << "},\"cpu\":{\"pairs\":" << r.cpu.tuple_pairs
      << ",\"degrees\":" << r.cpu.degree_evaluations
      << ",\"cmp\":" << r.cpu.comparisons
      << ",\"subq\":" << r.cpu.subquery_evaluations
      << "},\"io\":{\"page_reads\":" << r.io.page_reads
      << ",\"page_writes\":" << r.io.page_writes
      << ",\"buffer_hits\":" << r.io.buffer_hits
      << "},\"mem_peak_bytes\":" << r.mem_peak_bytes
      << ",\"cache_hits\":" << r.cache_hits
      << ",\"cache_misses\":" << r.cache_misses << "}";
  return out.str();
}

}  // namespace

QueryJournal& QueryJournal::Global() {
  static QueryJournal* journal = new QueryJournal();
  return *journal;
}

Status QueryJournal::SetPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.close();
  path_ = path;
  bytes_written_ = 0;
  // New id session: ids restart at 1 (journal_check.py treats that as a
  // session boundary) and the sampling epoch restarts with them, so the
  // first record of the new session is always written.
  seq_ = 0;
  sample_seq_ = 0;
  if (path_.empty()) {
    enabled_.store(false, std::memory_order_relaxed);
    return Status::OK();
  }
  out_.open(path_, std::ios::out | std::ios::app);
  if (!out_) {
    enabled_.store(false, std::memory_order_relaxed);
    return Status::IoError("cannot open query journal at " + path_);
  }
  enabled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

std::string QueryJournal::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

void QueryJournal::set_sample_every(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  sample_every_ = n == 0 ? 1 : n;
  // Restart the sampling epoch: the next record always logs. Deciding
  // from the id instead (the old id % N != 1 test) could go silent for
  // an entire epoch when the rate changed mid-stream or ids restarted.
  sample_seq_ = 0;
}

void QueryJournal::set_max_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_bytes_ = bytes;
}

void QueryJournal::set_keep_files(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  keep_files_ = n;
}

uint64_t QueryJournal::keep_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keep_files_;
}

uint64_t QueryJournal::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_written_;
}

void QueryJournal::RotateLocked() {
  out_.close();
  uint64_t dropped = 0;
  if (keep_files_ == 0) {
    // No generations kept: the live file is simply discarded.
    if (std::remove(path_.c_str()) == 0) ++dropped;
  } else {
    // Shift PATH.(keep-1) .. PATH.1 down one generation, dropping the
    // file that falls off the end, then the live file becomes PATH.1.
    const std::string oldest =
        path_ + "." + std::to_string(keep_files_);
    if (std::remove(oldest.c_str()) == 0) ++dropped;
    for (uint64_t gen = keep_files_; gen > 1; --gen) {
      const std::string from = path_ + "." + std::to_string(gen - 1);
      const std::string to = path_ + "." + std::to_string(gen);
      std::rename(from.c_str(), to.c_str());
    }
    std::rename(path_.c_str(), (path_ + ".1").c_str());
  }
  out_.open(path_, std::ios::out | std::ios::trunc);
  bytes_written_ = 0;
  if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
    m->journal_rotations->Add();
    if (dropped > 0) m->journal_rotations_dropped->Add(dropped);
  }
}

void QueryJournal::Append(const QueryJournalRecord& record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const uint64_t id = ++seq_;
  // The sampling decision comes from its own monotonic counter, not the
  // id: slot 0 of every epoch logs, so the first record after SetPath or
  // a rate change is always written.
  const uint64_t slot = sample_seq_++;
  if (sample_every_ > 1 && slot % sample_every_ != 0) return;
  const std::string line = RenderRecord(id, record) + "\n";
  // Failure -- injected ("journal/write") or real (closed/full sink) --
  // is counted and swallowed: the query's result is already computed
  // and must not depend on observability I/O.
  const bool injected = !FailPoints::Check("journal/write").ok();
  if (!injected && max_bytes_ > 0 &&
      bytes_written_ + line.size() > max_bytes_ && bytes_written_ > 0) {
    RotateLocked();
  }
  bool ok = !injected && out_.is_open();
  if (ok) {
    out_ << line;
    out_.flush();
    ok = static_cast<bool>(out_);
  }
  if (ok) {
    bytes_written_ += line.size();
    ++records_written_;
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->journal_records->Add();
    }
  } else {
    if (EngineMetrics* m = EngineMetrics::IfEnabled()) {
      m->journal_errors->Add();
    }
    // A sick stream would fail every future append; clear the error so
    // a transient condition (disk briefly full) can recover.
    out_.clear();
  }
}

}  // namespace fuzzydb
