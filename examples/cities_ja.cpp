// Query 5 of the paper (Section 6, type JA): an aggregate subquery with a
// correlation predicate --
//
//   SELECT R.NAME FROM CITIES_REGION_A R
//   WHERE R.AVE_HOME_INCOME >
//     (SELECT MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S
//      WHERE S.POPULATION = R.POPULATION)
//
// "cities in region A whose average household income exceeds the maximum
// of region-B cities with similar population". Populations are ill-known
// (census estimates), so the correlation is a fuzzy equality; the
// unnested plan is the T1/T2 aggregate pipeline of Theorem 6.1.
#include <cstdio>

#include "common/rng.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "relational/catalog.h"
#include "sql/binder.h"

using namespace fuzzydb;

namespace {

Relation MakeRegion(const std::string& name, size_t count, uint64_t seed) {
  Rng rng(seed);
  Relation region(name, Schema{Column{"NAME", ValueType::kString},
                               Column{"POPULATION", ValueType::kFuzzy},
                               Column{"AVE_HOME_INCOME", ValueType::kFuzzy}});
  for (size_t i = 0; i < count; ++i) {
    // Populations in thousands, known to ~10%: "about 120k people".
    const double population = static_cast<double>(rng.UniformInt(20, 500));
    const double spread = population * 0.1;
    // Average household income in $k, a narrow band.
    const double income = rng.UniformDouble(35, 95);
    (void)region.Append(
        Tuple({Value::String(name.substr(14) + "-city" + std::to_string(i)),
               Value::Fuzzy(Trapezoid::About(population, spread)),
               Value::Fuzzy(Trapezoid(income - 3, income - 1, income + 1,
                                      income + 3))},
              1.0));
  }
  return region;
}

}  // namespace

int main() {
  Catalog db;
  (void)db.AddRelation(MakeRegion("CITIES_REGION_A", 150, 11));
  (void)db.AddRelation(MakeRegion("CITIES_REGION_B", 150, 22));

  const char* sql =
      "SELECT R.NAME FROM CITIES_REGION_A R "
      "WHERE R.AVE_HOME_INCOME > "
      "(SELECT MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S "
      " WHERE S.POPULATION = R.POPULATION) "
      "WITH D >= 0.6";
  std::printf("%s\n\n", sql);

  auto bound = sql::ParseAndBind(sql, db);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }

  UnnestingEvaluator engine;
  auto answer = engine.Evaluate(**bound);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: type %s (unnested: %s)\n\n",
              QueryTypeName(engine.last_type()),
              engine.last_was_unnested() ? "yes" : "no");
  std::printf("%s\n", answer->ToString(10).c_str());

  // Cross-check against the nested execution semantics.
  NaiveEvaluator naive;
  auto nested_answer = naive.Evaluate(**bound);
  if (!nested_answer.ok()) return 1;
  std::printf("matches the nested-loop semantics: %s\n",
              nested_answer->EquivalentTo(*answer) ? "yes" : "NO");

  // The COUNT flavour (Query COUNT' with its left outer join): cities
  // out-earning the *number* of comparably sized region-B cities.
  const char* count_sql =
      "SELECT R.NAME FROM CITIES_REGION_A R "
      "WHERE R.AVE_HOME_INCOME > "
      "(SELECT COUNT(S.NAME) FROM CITIES_REGION_B S "
      " WHERE S.POPULATION = R.POPULATION)";
  auto count_bound = sql::ParseAndBind(count_sql, db);
  if (!count_bound.ok()) {
    std::fprintf(stderr, "%s\n", count_bound.status().ToString().c_str());
    return 1;
  }
  auto count_answer = engine.Evaluate(**count_bound);
  auto count_nested = naive.Evaluate(**count_bound);
  if (!count_answer.ok() || !count_nested.ok()) return 1;
  std::printf(
      "\nCOUNT variant (exercises the left-outer-join arm): %zu cities, "
      "semantics match: %s\n",
      count_answer->NumTuples(),
      count_nested->EquivalentTo(*count_answer) ? "yes" : "NO");
  return 0;
}
