-- The paper's dating-service database, as a fuzzydb_shell script:
--
--   build/tools/fuzzydb_shell < examples/dating_service.sql
--
-- Rebuilds Example 4.1 from scratch with DDL/DML, then runs Query 2 and
-- friends. The terms are already built in; shown here with DEFINE TERM
-- anyway so the script is self-contained documentation of their shapes.

DEFINE TERM "medium young" AS TRAP(20, 25, 30, 35);
DEFINE TERM "middle age"   AS TRAP(31.5, 31.5, 44, 49);
DEFINE TERM "about 35"     AS TRAP(30, 35, 35, 40);
DEFINE TERM "about 50"     AS TRAP(45, 50, 50, 55);
DEFINE TERM "about 29"     AS TRAP(27, 29, 29, 31);
DEFINE TERM "low"          AS TRAP(0, 0, 15, 30);
DEFINE TERM "medium low"   AS TRAP(15, 25, 35, 45);
DEFINE TERM "medium high"  AS TRAP(55, 60, 64, 69);
DEFINE TERM "high"         AS TRAP(62, 67, 150, 150);
DEFINE TERM "about 25k"    AS TRAP(20, 25, 25, 30);
DEFINE TERM "about 40k"    AS TRAP(35, 40, 40, 45);
DEFINE TERM "about 60k"    AS TRAP(55, 60, 60, 65);

CREATE TABLE F (ID FUZZY, NAME STRING, AGE FUZZY, INCOME FUZZY);
INSERT INTO F VALUES (101, 'Ann',   "about 35",     "about 60k");
INSERT INTO F VALUES (102, 'Ann',   "medium young", "medium high");
INSERT INTO F VALUES (103, 'Betty', "middle age",   "high");
INSERT INTO F VALUES (104, 'Cathy', "about 50",     "low");

CREATE TABLE M (ID FUZZY, NAME STRING, AGE FUZZY, INCOME FUZZY);
INSERT INTO M VALUES (201, 'Allen', 24,           "about 25k");
INSERT INTO M VALUES (202, 'Allen', "about 50",   "about 40k");
INSERT INTO M VALUES (203, 'Bill',  "middle age", "high");
INSERT INTO M VALUES (204, 'Carl',  "about 29",   "medium low");

.tables
.explain on

-- The temporary relation T of Example 4.1: { about 40K: 0.4, high: 1 }.
SELECT M.INCOME FROM M WHERE M.AGE = "middle age";

-- Query 2: expected { Ann: 0.7, Betty: 0.7 }.
SELECT F.NAME FROM F
WHERE F.AGE = "medium young" AND
      F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = "middle age")
ORDER BY D DESC;

-- The correlated variant (type J).
SELECT F.NAME FROM F
WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE);

-- Query 5's shape (type JA).
SELECT F.NAME FROM F
WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM M WHERE M.AGE = F.AGE);

.quit
