// Similarity retrieval of pictures -- the application the paper's
// conclusion points to ("One such application is the picture retrieval
// [2]", the authors' SEMCOG/IFQ line of work).
//
// Each picture carries imprecise visual features extracted by an
// (imperfect) analyzer: dominant hue and brightness come back as
// possibility distributions ("somewhere around 30 degrees"), and the
// depicted person's age is estimated as a fuzzy band. Retrieval asks for
// pictures *similar* to a probe, using the ~= comparator with per-feature
// tolerances (Section 2.2's similarity-relation comparisons), and ranks
// by the matching possibility.
#include <cstdio>

#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "common/rng.h"
#include "relational/catalog.h"
#include "sql/binder.h"

using namespace fuzzydb;

namespace {

Catalog BuildGallery(size_t pictures) {
  Catalog db;
  Rng rng(2024);
  Relation gallery("Pictures", Schema{Column{"FILE", ValueType::kString},
                                      Column{"HUE", ValueType::kFuzzy},
                                      Column{"BRIGHTNESS", ValueType::kFuzzy},
                                      Column{"PERSON_AGE", ValueType::kFuzzy}});
  for (size_t i = 0; i < pictures; ++i) {
    const double hue = rng.UniformDouble(0, 360);
    const double brightness = rng.UniformDouble(0, 100);
    const double age = rng.UniformDouble(5, 80);
    // The analyzer reports each feature with its own imprecision.
    (void)gallery.Append(Tuple(
        {Value::String("img_" + std::to_string(1000 + i) + ".jpg"),
         Value::Fuzzy(Trapezoid::About(hue, rng.UniformDouble(4, 12))),
         Value::Fuzzy(Trapezoid::About(brightness, rng.UniformDouble(2, 8))),
         Value::Fuzzy(Trapezoid::About(age, rng.UniformDouble(3, 10)))},
        1.0));
  }
  (void)db.AddRelation(std::move(gallery));
  return db;
}

}  // namespace

int main() {
  Catalog db = BuildGallery(500);

  // The probe: "sunset-ish pictures of a person about 30": hue near 25
  // degrees (orange), fairly dark, person about 30 years old. Each ~=
  // gets a tolerance matched to the feature's scale.
  const char* query =
      "SELECT FILE FROM Pictures "
      "WHERE HUE ~= 25 WITHIN 40 "
      "  AND BRIGHTNESS ~= 35 WITHIN 30 "
      "  AND PERSON_AGE ~= ABOUT(30, 5) WITHIN 15 "
      "ORDER BY D DESC "
      "WITH D >= 0.5";
  std::printf("%s\n\n", query);

  auto bound = sql::ParseAndBind(query, db);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  UnnestingEvaluator engine;
  auto answer = engine.Evaluate(**bound);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu of 500 pictures match with possibility >= 0.5; top hits:\n",
              answer->NumTuples());
  size_t shown = 0;
  for (const Tuple& t : answer->tuples()) {
    if (shown++ >= 8) break;
    std::printf("  %-16s  match possibility %.3f\n",
                t.ValueAt(0).AsString().c_str(), t.degree());
  }

  // Nested variant: pictures whose person could be the same age as in
  // some very bright picture -- a type J query over the same gallery.
  const char* nested =
      "SELECT P.FILE FROM Pictures P "
      "WHERE P.PERSON_AGE IN "
      "  (SELECT Q.PERSON_AGE FROM Pictures Q WHERE Q.BRIGHTNESS >= 90) "
      "WITH D >= 0.8";
  auto nested_bound = sql::ParseAndBind(nested, db);
  if (!nested_bound.ok()) {
    std::fprintf(stderr, "%s\n", nested_bound.status().ToString().c_str());
    return 1;
  }
  auto nested_answer = engine.Evaluate(**nested_bound);
  NaiveEvaluator naive;
  auto check = naive.Evaluate(**nested_bound);
  if (!nested_answer.ok() || !check.ok()) return 1;
  std::printf(
      "\nNested age-match query: %zu pictures (plan: type %s; equals the\n"
      "nested-loop semantics: %s)\n",
      nested_answer->NumTuples(), QueryTypeName(engine.last_type()),
      check->EquivalentTo(*nested_answer) ? "yes" : "NO");
  return 0;
}
