// Query 4 of the paper (Section 5, type JX): set-exclusion with a
// correlated subquery --
//
//   SELECT R.NAME FROM EMP_SALES R
//   WHERE R.INCOME IS NOT IN
//     (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)
//
// "employees of the Sales department who do not have an income of any
// employee of the Research department with his/her age". Generated
// employee data; the unnested plan is the group-by-minimum antijoin of
// Theorem 5.1.
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "relational/catalog.h"
#include "sql/binder.h"

using namespace fuzzydb;

namespace {

/// Employees with imprecise ages ("about X") and salary bands.
Relation MakeDepartment(const std::string& name, size_t count,
                        uint64_t seed) {
  Rng rng(seed);
  Relation dept(name, Schema{Column{"NAME", ValueType::kString},
                             Column{"AGE", ValueType::kFuzzy},
                             Column{"INCOME", ValueType::kFuzzy}});
  for (size_t i = 0; i < count; ++i) {
    const double age = static_cast<double>(rng.UniformInt(22, 64));
    const double income =
        static_cast<double>(rng.UniformInt(8, 30)) * 5.0;  // 40k..150k
    // Half the ages are known only approximately; incomes are bands.
    const Value age_value =
        rng.Bernoulli(0.5) ? Value::Fuzzy(Trapezoid::About(age, 3))
                           : Value::Number(age);
    const Value income_value =
        Value::Fuzzy(Trapezoid(income - 5, income - 2, income + 2, income + 5));
    (void)dept.Append(Tuple({Value::String(name.substr(4, 1) + "emp" +
                                           std::to_string(i)),
                             age_value, income_value},
                            1.0));
  }
  return dept;
}

}  // namespace

int main() {
  Catalog db;
  (void)db.AddRelation(MakeDepartment("EMP_SALES", 400, 101));
  (void)db.AddRelation(MakeDepartment("EMP_RESEARCH", 400, 202));

  const char* sql =
      "SELECT R.NAME FROM EMP_SALES R "
      "WHERE R.INCOME IS NOT IN "
      "(SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE) "
      "WITH D >= 0.5";
  std::printf("%s\n\n", sql);

  auto bound = sql::ParseAndBind(sql, db);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }

  Stopwatch naive_watch;
  NaiveEvaluator naive;
  auto nested_answer = naive.Evaluate(**bound);
  const double naive_seconds = naive_watch.ElapsedSeconds();

  Stopwatch unnested_watch;
  UnnestingEvaluator engine;
  auto answer = engine.Evaluate(**bound);
  const double unnested_seconds = unnested_watch.ElapsedSeconds();
  if (!nested_answer.ok() || !answer.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }

  std::printf("%zu sales employees have, with possibility >= 0.5, no\n"
              "research-department income at their age. First few:\n",
              answer->NumTuples());
  std::printf("%s\n", answer->ToString(8).c_str());
  std::printf("naive nested loop: %.3fs; unnested antijoin: %.3fs "
              "(%.1fx); answers identical: %s\n",
              naive_seconds, unnested_seconds,
              naive_seconds / unnested_seconds,
              nested_answer->EquivalentTo(*answer) ? "yes" : "NO");
  return 0;
}
