// Quickstart: build a fuzzy database, run Fuzzy SQL, read fuzzy answers.
//
// Walks through the full public API surface in ~100 lines:
//   1. define linguistic terms (trapezoidal possibility distributions),
//   2. create fuzzy relations whose attribute values may be ill-known,
//   3. parse + bind a Fuzzy SQL query,
//   4. evaluate it (the engine picks an unnested plan automatically),
//   5. read the answer: a fuzzy relation whose tuples carry membership
//      degrees = the possibility that they satisfy the query.
#include <cstdio>

#include "engine/unnested_evaluator.h"
#include "relational/catalog.h"
#include "sql/binder.h"

using namespace fuzzydb;

int main() {
  // --- 1. Vocabulary -------------------------------------------------
  Catalog db;  // ships with the paper's AGE/INCOME terms built in
  db.mutable_terms().Define("tall", Trapezoid(175, 185, 220, 220));

  // --- 2. Data: people with imprecisely known ages -------------------
  Relation people("People", Schema{Column{"NAME", ValueType::kString},
                                   Column{"AGE", ValueType::kFuzzy},
                                   Column{"HEIGHT", ValueType::kFuzzy}});
  auto add = [&](const char* name, Value age, double height, double degree) {
    Status st = people.Append(
        Tuple({Value::String(name), std::move(age), Value::Number(height)},
              degree));
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  };
  // A crisp age, a linguistic age, and a hand-made trapezoid; the last
  // tuple only "mostly" belongs to the relation (membership 0.8).
  add("ana", Value::Number(24), 182, 1.0);
  add("bo", Value::Fuzzy(db.terms().Lookup("medium young").value()), 169,
      1.0);
  add("chen", Value::Fuzzy(Trapezoid(30, 33, 36, 40)), 190, 1.0);
  add("dee", Value::Fuzzy(Trapezoid::About(50, 5)), 178, 0.8);
  if (Status st = db.AddRelation(std::move(people)); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // --- 3./4. Ask a vague question ------------------------------------
  const char* query =
      "SELECT NAME FROM People "
      "WHERE AGE = \"medium young\" AND HEIGHT >= 175 "
      "WITH D >= 0.2";
  auto bound = sql::ParseAndBind(query, db);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  UnnestingEvaluator engine;
  auto answer = engine.Evaluate(**bound);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }

  // --- 5. Fuzzy answers ----------------------------------------------
  std::printf("query: %s\n\n", query);
  std::printf("%s\n", answer->ToString().c_str());
  std::printf(
      "Each membership degree D is the possibility that the person\n"
      "satisfies the condition: ana is 24 (mu_medium_young(24) = 0.8),\n"
      "chen's ill-known age overlaps \"medium young\" only partially,\n"
      "and dee is ruled out (about 50 does not overlap at all).\n");
  return 0;
}
