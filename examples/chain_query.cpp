// Query 6 of the paper (Section 8): a K-level chain query, unnested to a
// flat K-way join (Theorem 8.1). A small supply-chain scenario:
//
//   suppliers ship PARTS whose measured WEIGHT is imprecise; parts go
//   into ASSEMBLIES; assemblies into PRODUCTS. Find products whose
//   target weight matches an assembly that uses a part compatible with
//   a given supplier batch.
//
// Every linking predicate is a fuzzy IN; the correlation predicates
// reference enclosing blocks, including one that skips a level
// (p_{3,1} in the paper's notation).
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/classifier.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "relational/catalog.h"
#include "sql/binder.h"

using namespace fuzzydb;

namespace {

/// grade in 1..5, weight imprecise around a grade-correlated center.
Relation MakeTable(const std::string& name, size_t count, uint64_t seed) {
  Rng rng(seed);
  Relation rel(name, Schema{Column{"ID", ValueType::kFuzzy},
                            Column{"WEIGHT", ValueType::kFuzzy},
                            Column{"GRADE", ValueType::kFuzzy}});
  for (size_t i = 0; i < count; ++i) {
    const double grade = static_cast<double>(rng.UniformInt(1, 5));
    const double weight = grade * 100 + rng.UniformDouble(-30, 30);
    (void)rel.Append(
        Tuple({Value::Number(static_cast<double>(i)),
               Value::Fuzzy(Trapezoid::About(weight, 8)),
               Value::Number(grade)},
              1.0));
  }
  return rel;
}

}  // namespace

int main() {
  Catalog db;
  (void)db.AddRelation(MakeTable("PRODUCTS", 150, 1));
  (void)db.AddRelation(MakeTable("ASSEMBLIES", 150, 2));
  (void)db.AddRelation(MakeTable("PARTS", 150, 3));

  // A 3-level chain: products -> assemblies -> parts, with correlation
  // predicates on GRADE, one of them skipping back to the outermost
  // block (PARTS.GRADE >= PRODUCTS.GRADE).
  const char* sql =
      "SELECT P.ID FROM PRODUCTS P "
      "WHERE P.WEIGHT IN "
      "  (SELECT A.WEIGHT FROM ASSEMBLIES A "
      "   WHERE A.GRADE = P.GRADE AND A.WEIGHT IN "
      "     (SELECT T.WEIGHT FROM PARTS T "
      "      WHERE T.GRADE = A.GRADE AND T.GRADE >= P.GRADE))";
  std::printf("%s\n\n", sql);

  auto bound = sql::ParseAndBind(sql, db);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("nesting depth: %d, classified as: %s\n\n",
              (*bound)->NestingDepth(), QueryTypeName(Classify(**bound)));

  Stopwatch naive_watch;
  NaiveEvaluator naive;
  auto nested_answer = naive.Evaluate(**bound);
  const double naive_seconds = naive_watch.ElapsedSeconds();

  Stopwatch flat_watch;
  UnnestingEvaluator engine;
  auto answer = engine.Evaluate(**bound);
  const double flat_seconds = flat_watch.ElapsedSeconds();
  if (!nested_answer.ok() || !answer.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }

  std::printf("answer: %zu products (showing 6)\n%s\n",
              answer->NumTuples(), answer->ToString(6).c_str());
  std::printf(
      "naive (nested loops over 3 levels): %.3fs\n"
      "unnested flat 3-way merge-join:     %.3fs  (%.0fx)\n"
      "answers identical: %s\n",
      naive_seconds, flat_seconds, naive_seconds / flat_seconds,
      nested_answer->EquivalentTo(*answer) ? "yes" : "NO");
  return 0;
}
