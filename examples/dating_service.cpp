// The paper's running example (Sections 2 and 4): the Omron dating
// service database with male/female clients whose ages and incomes are
// possibility distributions. Reproduces Queries 1 and 2 and the exact
// numbers of Example 4.1, and shows that the naive nested-loop execution
// and the unnested merge-join plan return the same fuzzy relation.
#include <cstdio>

#include "engine/classifier.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "relational/catalog.h"
#include "sql/binder.h"

using namespace fuzzydb;

namespace {

Catalog BuildDatabase() {
  Catalog db;
  const Schema schema{Column{"ID", ValueType::kFuzzy},
                      Column{"NAME", ValueType::kString},
                      Column{"AGE", ValueType::kFuzzy},
                      Column{"INCOME", ValueType::kFuzzy}};
  auto term = [&](const char* name) {
    return Value::Fuzzy(db.terms().Lookup(name).value());
  };

  Relation f("F", schema);
  (void)f.Append(Tuple({Value::Number(101), Value::String("Ann"),
                        term("about 35"), term("about 60k")}, 1.0));
  (void)f.Append(Tuple({Value::Number(102), Value::String("Ann"),
                        term("medium young"), term("medium high")}, 1.0));
  (void)f.Append(Tuple({Value::Number(103), Value::String("Betty"),
                        term("middle age"), term("high")}, 1.0));
  (void)f.Append(Tuple({Value::Number(104), Value::String("Cathy"),
                        term("about 50"), term("low")}, 1.0));
  (void)db.AddRelation(std::move(f));

  Relation m("M", schema);
  (void)m.Append(Tuple({Value::Number(201), Value::String("Allen"),
                        Value::Number(24), term("about 25k")}, 1.0));
  (void)m.Append(Tuple({Value::Number(202), Value::String("Allen"),
                        term("about 50"), term("about 40k")}, 1.0));
  (void)m.Append(Tuple({Value::Number(203), Value::String("Bill"),
                        term("middle age"), term("high")}, 1.0));
  (void)m.Append(Tuple({Value::Number(204), Value::String("Carl"),
                        term("about 29"), term("medium low")}, 1.0));
  (void)db.AddRelation(std::move(m));
  return db;
}

int RunAndShow(const Catalog& db, const char* title, const char* sql) {
  std::printf("---- %s ----\n%s\n\n", title, sql);
  auto bound = sql::ParseAndBind(sql, db);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("classified as type %s\n", QueryTypeName(Classify(**bound)));

  NaiveEvaluator naive;
  auto nested_answer = naive.Evaluate(**bound);
  UnnestingEvaluator unnesting;
  auto unnested_answer = unnesting.Evaluate(**bound);
  if (!nested_answer.ok() || !unnested_answer.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }
  std::printf("%s", unnested_answer->ToString().c_str());
  std::printf("nested and unnested answers identical: %s\n\n",
              nested_answer->EquivalentTo(*unnested_answer) ? "yes" : "NO");
  return 0;
}

}  // namespace

int main() {
  Catalog db = BuildDatabase();

  // Query 1 (Section 2.2): a flat fuzzy join -- pairs about the same age
  // where the man earns more than "medium high".
  if (RunAndShow(db, "Query 1",
                 "SELECT F.NAME, M.NAME FROM F, M "
                 "WHERE F.AGE = M.AGE AND M.INCOME > \"medium high\"")) {
    return 1;
  }

  // The inner block of Query 2 alone: the temporary relation T of
  // Example 4.1 -- expected {about 40K: 0.4, high: 1}.
  if (RunAndShow(db, "Example 4.1, temporary relation T",
                 "SELECT M.INCOME FROM M WHERE M.AGE = \"middle age\"")) {
    return 1;
  }

  // Query 2 (Section 2.3): medium young women having some middle-aged
  // man's income -- expected {Ann: 0.7, Betty: 0.7}.
  if (RunAndShow(db, "Query 2 (type N, unnested per Theorem 4.1)",
                 "SELECT F.NAME FROM F "
                 "WHERE F.AGE = \"medium young\" AND F.INCOME IN "
                 "(SELECT M.INCOME FROM M WHERE M.AGE = \"middle age\")")) {
    return 1;
  }

  // A correlated variant (type J): same-aged matches by income.
  if (RunAndShow(db, "Correlated variant (type J, Theorem 4.2)",
                 "SELECT F.NAME FROM F "
                 "WHERE F.INCOME IN "
                 "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)")) {
    return 1;
  }

  // Thresholded answers: WITH D >= 0.7 keeps only confident matches.
  return RunAndShow(db, "Query 2 with WITH D >= 0.7",
                    "SELECT F.NAME FROM F "
                    "WHERE F.AGE = \"medium young\" AND F.INCOME IN "
                    "(SELECT M.INCOME FROM M WHERE M.AGE = \"middle age\") "
                    "WITH D >= 0.7");
}
