#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace fuzzydb {
namespace {

// ------------------------------ Status --------------------------------

TEST(StatusTest, OkByDefault) {
  const Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad = Status::IoError("disk on fire");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
}

Result<int> Doubler(Result<int> input) {
  FUZZYDB_ASSIGN_OR_RETURN(int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Doubler(21).ok());
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

// ------------------------------- Rng -----------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

// --------------------------- string_util --------------------------------

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("MiXeD_42"), "mixed_42");
  EXPECT_EQ(ToUpper("MiXeD_42"), "MIXED_42");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "sELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("Select", "Selec"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(42.0), "42");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " AND "), "a AND b AND c");
}

}  // namespace
}  // namespace fuzzydb
