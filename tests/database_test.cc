#include "storage/database.h"

#include <gtest/gtest.h>

#include <fstream>

#include "engine/unnested_evaluator.h"
#include "sql/binder.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

std::string TempDir(const std::string& name) {
  return ::testing::TempDir() + "/fuzzydb_db_" + name;
}

TEST(DatabaseStoreTest, RoundTripsThePaperDatabase) {
  Catalog original = testing_util::MakePaperCatalog();
  BufferPool pool(16);
  const std::string dir = TempDir("paper");
  ASSERT_OK(SaveDatabase(original, dir, &pool));

  ASSERT_OK_AND_ASSIGN(Catalog loaded, LoadDatabase(dir, &pool));

  // Relations survive with identical tuples and degrees.
  for (const std::string& name : {"F", "M"}) {
    ASSERT_OK_AND_ASSIGN(const Relation* before, original.GetRelation(name));
    ASSERT_OK_AND_ASSIGN(const Relation* after, loaded.GetRelation(name));
    EXPECT_EQ(before->schema().ToString(), after->schema().ToString());
    EXPECT_TRUE(before->EquivalentTo(*after, 0.0)) << name;
  }

  // Terms survive.
  ASSERT_OK_AND_ASSIGN(Trapezoid term, loaded.terms().Lookup("medium young"));
  EXPECT_EQ(term, Trapezoid(20, 25, 30, 35));

  // And queries over the loaded database still reproduce Example 4.1.
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(R"sql(
      SELECT F.NAME FROM F
      WHERE F.AGE = "medium young" AND
            F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = "middle age"))sql",
                                                     loaded));
  UnnestingEvaluator engine;
  ASSERT_OK_AND_ASSIGN(Relation answer, engine.Evaluate(*bound));
  EXPECT_DOUBLE_EQ(testing_util::DegreeOf(answer, "Ann"), 0.7);
  EXPECT_DOUBLE_EQ(testing_util::DegreeOf(answer, "Betty"), 0.7);
}

TEST(DatabaseStoreTest, RoundTripsLargeGeneratedRelations) {
  Catalog original;
  ASSERT_OK(original.AddRelation(GenerateRandomRelation(9, "Big", 3, 2000)));
  BufferPool pool(8);
  const std::string dir = TempDir("large");
  ASSERT_OK(SaveDatabase(original, dir, &pool));
  ASSERT_OK_AND_ASSIGN(Catalog loaded, LoadDatabase(dir, &pool));
  ASSERT_OK_AND_ASSIGN(const Relation* before, original.GetRelation("Big"));
  ASSERT_OK_AND_ASSIGN(const Relation* after, loaded.GetRelation("Big"));
  ASSERT_EQ(before->NumTuples(), after->NumTuples());
  for (size_t i = 0; i < before->NumTuples(); ++i) {
    EXPECT_TRUE(before->TupleAt(i).SameValues(after->TupleAt(i)));
    EXPECT_DOUBLE_EQ(before->TupleAt(i).degree(), after->TupleAt(i).degree());
  }
}

TEST(DatabaseStoreTest, SaveReplacesExistingDatabase) {
  BufferPool pool(8);
  const std::string dir = TempDir("replace");
  Catalog first;
  ASSERT_OK(first.AddRelation(GenerateRandomRelation(1, "A", 1, 10)));
  ASSERT_OK(SaveDatabase(first, dir, &pool));

  Catalog second;
  ASSERT_OK(second.AddRelation(GenerateRandomRelation(2, "B", 2, 5)));
  ASSERT_OK(SaveDatabase(second, dir, &pool));

  ASSERT_OK_AND_ASSIGN(Catalog loaded, LoadDatabase(dir, &pool));
  EXPECT_FALSE(loaded.HasRelation("A"));
  EXPECT_TRUE(loaded.HasRelation("B"));
}

TEST(DatabaseStoreTest, LoadMissingDirectoryFails) {
  BufferPool pool(4);
  const auto result = LoadDatabase(TempDir("nonexistent_xyz"), &pool);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseStoreTest, CorruptManifestFails) {
  BufferPool pool(4);
  const std::string dir = TempDir("corrupt");
  Catalog catalog;
  ASSERT_OK(catalog.AddRelation(GenerateRandomRelation(3, "C", 1, 4)));
  ASSERT_OK(SaveDatabase(catalog, dir, &pool));

  std::ofstream out(dir + "/catalog.meta", std::ios::trunc);
  out << "not a manifest\n";
  out.close();
  EXPECT_FALSE(LoadDatabase(dir, &pool).ok());
}

TEST(DatabaseStoreTest, TruncatedManifestFails) {
  BufferPool pool(4);
  const std::string dir = TempDir("truncated");
  Catalog catalog;
  ASSERT_OK(catalog.AddRelation(GenerateRandomRelation(4, "D", 1, 4)));
  ASSERT_OK(SaveDatabase(catalog, dir, &pool));

  // Drop the trailing "end" marker.
  std::ifstream in(dir + "/catalog.meta");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const size_t end_pos = content.rfind("end\n");
  ASSERT_NE(end_pos, std::string::npos);
  std::ofstream out(dir + "/catalog.meta", std::ios::trunc);
  out << content.substr(0, end_pos);
  out.close();
  const auto result = LoadDatabase(dir, &pool);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DatabaseStoreTest, EmptyCatalogRoundTrips) {
  BufferPool pool(4);
  const std::string dir = TempDir("empty");
  Catalog catalog;
  catalog.mutable_terms() = TermDictionary();  // nothing at all
  ASSERT_OK(SaveDatabase(catalog, dir, &pool));
  ASSERT_OK_AND_ASSIGN(Catalog loaded, LoadDatabase(dir, &pool));
  EXPECT_TRUE(loaded.RelationNames().empty());
}

}  // namespace
}  // namespace fuzzydb
