#include "engine/aggregate.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fuzzydb {
namespace {

using sql::AggFunc;
using testing_util::MakeSet;

TEST(AggregateTest, CountCountsDistinctValues) {
  const Relation set = MakeSet("T", {{Trapezoid::Crisp(1), 0.5},
                                     {Trapezoid::Crisp(2), 1.0},
                                     {Trapezoid(0, 1, 2, 3), 0.2}});
  ASSERT_OK_AND_ASSIGN(AggregateResult r,
                       ApplyAggregate(AggFunc::kCount, set));
  EXPECT_DOUBLE_EQ(r.value.AsFuzzy().CrispValue(), 3.0);
  EXPECT_DOUBLE_EQ(r.degree, 1.0);
}

TEST(AggregateTest, CountOfEmptySetIsZero) {
  const Relation set = MakeSet("T", {});
  ASSERT_OK_AND_ASSIGN(AggregateResult r,
                       ApplyAggregate(AggFunc::kCount, set));
  EXPECT_DOUBLE_EQ(r.value.AsFuzzy().CrispValue(), 0.0);
}

TEST(AggregateTest, NonCountAggregatesOfEmptySetAreNull) {
  const Relation set = MakeSet("T", {});
  for (AggFunc f :
       {AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin, AggFunc::kMax}) {
    ASSERT_OK_AND_ASSIGN(AggregateResult r, ApplyAggregate(f, set));
    EXPECT_TRUE(r.value.is_null());
  }
}

TEST(AggregateTest, SumUsesFuzzyAddition) {
  const Relation set = MakeSet(
      "T", {{Trapezoid(1, 2, 3, 4), 1.0}, {Trapezoid(10, 20, 30, 40), 0.5}});
  ASSERT_OK_AND_ASSIGN(AggregateResult r, ApplyAggregate(AggFunc::kSum, set));
  EXPECT_EQ(r.value.AsFuzzy(), Trapezoid(11, 22, 33, 44));
}

TEST(AggregateTest, AvgScalesTheSum) {
  const Relation set = MakeSet(
      "T", {{Trapezoid(1, 2, 3, 4), 1.0}, {Trapezoid(3, 4, 5, 6), 1.0}});
  ASSERT_OK_AND_ASSIGN(AggregateResult r, ApplyAggregate(AggFunc::kAvg, set));
  EXPECT_EQ(r.value.AsFuzzy(), Trapezoid(2, 3, 4, 5));
}

TEST(AggregateTest, MinMaxDefuzzifyByCoreCenter) {
  // Centers: 2.5, 25, 7.
  const Relation set = MakeSet("T", {{Trapezoid(1, 2, 3, 4), 1.0},
                                     {Trapezoid(10, 20, 30, 40), 1.0},
                                     {Trapezoid::Crisp(7), 1.0}});
  ASSERT_OK_AND_ASSIGN(AggregateResult lo, ApplyAggregate(AggFunc::kMin, set));
  EXPECT_EQ(lo.value.AsFuzzy(), Trapezoid(1, 2, 3, 4));
  ASSERT_OK_AND_ASSIGN(AggregateResult hi, ApplyAggregate(AggFunc::kMax, set));
  EXPECT_EQ(hi.value.AsFuzzy(), Trapezoid(10, 20, 30, 40));
}

TEST(AggregateTest, MinMaxTieBreakIsDeterministic) {
  // Same core center 5, different shapes; both orders give the same pick.
  const Trapezoid narrow(4, 5, 5, 6), wide(0, 4, 6, 10);
  const Relation a = MakeSet("T", {{narrow, 1.0}, {wide, 1.0}});
  const Relation b = MakeSet("T", {{wide, 1.0}, {narrow, 1.0}});
  ASSERT_OK_AND_ASSIGN(AggregateResult ra, ApplyAggregate(AggFunc::kMin, a));
  ASSERT_OK_AND_ASSIGN(AggregateResult rb, ApplyAggregate(AggFunc::kMin, b));
  EXPECT_TRUE(ra.value.Identical(rb.value));
}

TEST(AggregateTest, RejectsNonNumericValues) {
  Relation set("T", Schema{Column{"Z", ValueType::kString}});
  ASSERT_OK(set.Append(Tuple({Value::String("x")}, 1.0)));
  EXPECT_FALSE(ApplyAggregate(AggFunc::kSum, set).ok());
  // COUNT works on anything.
  ASSERT_OK_AND_ASSIGN(AggregateResult r,
                       ApplyAggregate(AggFunc::kCount, set));
  EXPECT_DOUBLE_EQ(r.value.AsFuzzy().CrispValue(), 1.0);
}

}  // namespace
}  // namespace fuzzydb
