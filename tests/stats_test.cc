#include "stats/column_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "fuzzy/trapezoid.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

// Structural equality of two summaries, used by the determinism tests.
// Exact double comparison is intended: the build must be a pure function
// of the value multiset, bit for bit.
void ExpectSameStats(const ColumnStats& a, const ColumnStats& b) {
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.fuzzy_rows, b.fuzzy_rows);
  EXPECT_EQ(a.distinct_estimate, b.distinct_estimate);
  EXPECT_EQ(a.min_begin, b.min_begin);
  EXPECT_EQ(a.max_end, b.max_end);
  EXPECT_EQ(a.avg_support_width, b.avg_support_width);
  ASSERT_EQ(a.begin_buckets.size(), b.begin_buckets.size());
  for (size_t i = 0; i < a.begin_buckets.size(); ++i) {
    EXPECT_EQ(a.begin_buckets[i].begin_lo, b.begin_buckets[i].begin_lo);
    EXPECT_EQ(a.begin_buckets[i].begin_hi, b.begin_buckets[i].begin_hi);
    EXPECT_EQ(a.begin_buckets[i].mean_begin, b.begin_buckets[i].mean_begin);
    EXPECT_EQ(a.begin_buckets[i].mean_end, b.begin_buckets[i].mean_end);
    EXPECT_EQ(a.begin_buckets[i].count, b.begin_buckets[i].count);
  }
  EXPECT_EQ(a.end_edges, b.end_edges);
}

std::vector<Trapezoid> RandomValues(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(0.0, 100.0);
  std::uniform_real_distribution<double> width(0.0, 5.0);
  std::vector<Trapezoid> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double lo = pos(rng);
    const double w = width(rng);
    values.push_back(Trapezoid(lo, lo + w / 3, lo + 2 * w / 3, lo + w));
  }
  return values;
}

TEST(ColumnStatsBuildTest, PermutationInvariant) {
  std::vector<Trapezoid> values = RandomValues(17, 500);
  const ColumnStats reference = BuildColumnStats(values);
  std::mt19937_64 rng(99);
  for (int round = 0; round < 3; ++round) {
    std::shuffle(values.begin(), values.end(), rng);
    ExpectSameStats(reference, BuildColumnStats(values));
  }
}

TEST(ColumnStatsBuildTest, BucketsPartitionTheValues) {
  const std::vector<Trapezoid> values = RandomValues(23, 333);
  const ColumnStats stats = BuildColumnStats(values, 16);
  ASSERT_FALSE(stats.begin_buckets.empty());
  uint64_t total = 0;
  double prev_hi = stats.begin_buckets.front().begin_lo;
  for (const StatsBucket& b : stats.begin_buckets) {
    EXPECT_GT(b.count, 0u);
    EXPECT_LE(b.begin_lo, b.begin_hi);
    EXPECT_LE(prev_hi, b.begin_hi);
    EXPECT_GE(b.mean_begin, b.begin_lo);
    EXPECT_LE(b.mean_begin, b.begin_hi);
    EXPECT_GE(b.mean_end, b.mean_begin);  // end >= begin always
    total += b.count;
    prev_hi = b.begin_hi;
  }
  EXPECT_EQ(total, stats.fuzzy_rows);
  EXPECT_EQ(stats.fuzzy_rows, values.size());
  // Equi-depth: no bucket more than twice the ideal depth.
  for (const StatsBucket& b : stats.begin_buckets) {
    EXPECT_LE(b.count, 2 * (values.size() / 16 + 1));
  }
}

TEST(ColumnStatsBuildTest, EmptyColumn) {
  const ColumnStats stats = BuildColumnStats(std::vector<Trapezoid>{});
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.fuzzy_rows, 0u);
  EXPECT_TRUE(stats.begin_buckets.empty());
  // Estimators fall back to conservative answers instead of dividing
  // by zero.
  const ColumnStats other = BuildColumnStats(RandomValues(5, 20));
  EXPECT_DOUBLE_EQ(EstimateOverlapFanout(stats, other),
                   static_cast<double>(other.fuzzy_rows));
  EXPECT_DOUBLE_EQ(EstimateJoinSelectivity(stats, other), 1.0);
  EXPECT_DOUBLE_EQ(
      EstimatePredicateSelectivity(stats, CompareOp::kEq, Trapezoid::Crisp(1)),
      1.0);
}

TEST(ColumnStatsBuildTest, SingleValueDegenerate) {
  const std::vector<Trapezoid> one = {Trapezoid::Crisp(7.0)};
  const ColumnStats stats = BuildColumnStats(one);
  EXPECT_EQ(stats.fuzzy_rows, 1u);
  EXPECT_EQ(stats.distinct_estimate, 1u);
  EXPECT_DOUBLE_EQ(stats.min_begin, 7.0);
  EXPECT_DOUBLE_EQ(stats.max_end, 7.0);
  // The whole mass overlaps its own support; none overlaps elsewhere.
  EXPECT_DOUBLE_EQ(stats.OverlapFraction(6.9, 7.1), 1.0);
  EXPECT_DOUBLE_EQ(stats.OverlapFraction(8.0, 9.0), 0.0);
}

TEST(ColumnStatsBuildTest, AllIdenticalCrispValues) {
  const std::vector<Trapezoid> same(64, Trapezoid::Crisp(3.0));
  const ColumnStats stats = BuildColumnStats(same);
  EXPECT_EQ(stats.fuzzy_rows, 64u);
  EXPECT_EQ(stats.distinct_estimate, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_support_width, 0.0);
  EXPECT_DOUBLE_EQ(stats.OverlapFraction(2.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.OverlapFraction(4.0, 5.0), 0.0);
  // Self-join of a single-point column: everything joins everything.
  const double fanout = EstimateOverlapFanout(stats, stats);
  EXPECT_NEAR(fanout, 64.0, 1.0);
}

TEST(ColumnStatsBuildTest, DistinctEstimateOnSeparatedValues) {
  std::vector<Trapezoid> values;
  for (int i = 0; i < 10; ++i) {
    for (int copy = 0; copy < 3; ++copy) {
      values.push_back(Trapezoid::Crisp(10.0 * i));
    }
  }
  const ColumnStats stats = BuildColumnStats(values);
  EXPECT_EQ(stats.distinct_estimate, 10u);
}

TEST(ColumnStatsCdfTest, MonotoneAndBounded) {
  const ColumnStats stats = BuildColumnStats(RandomValues(31, 400), 16);
  double prev_begin = -1.0, prev_end = -1.0;
  for (double x = -10.0; x <= 120.0; x += 0.5) {
    const double cb = stats.CdfBeginLeq(x);
    const double ce = stats.CdfEndLt(x);
    EXPECT_GE(cb, 0.0);
    EXPECT_LE(cb, 1.0);
    EXPECT_GE(ce, 0.0);
    EXPECT_LE(ce, 1.0);
    EXPECT_GE(cb, prev_begin) << "CdfBeginLeq not monotone at " << x;
    EXPECT_GE(ce, prev_end) << "CdfEndLt not monotone at " << x;
    // begin <= end for every value, so count(begin <= x) >=
    // count(end < x) pointwise.
    EXPECT_GE(cb, ce - 1e-9) << "CDF ordering violated at " << x;
    prev_begin = cb;
    prev_end = ce;
  }
  EXPECT_DOUBLE_EQ(stats.CdfBeginLeq(stats.max_end + 1), 1.0);
  EXPECT_DOUBLE_EQ(stats.CdfEndLt(stats.min_begin - 1), 0.0);
}

TEST(ColumnStatsCdfTest, OverlapFractionMatchesExactCountOnRandomData) {
  const std::vector<Trapezoid> values = RandomValues(47, 600);
  const ColumnStats stats = BuildColumnStats(values);
  // Compare the interpolated overlap against brute force on a few probe
  // intervals. The summary is approximate; demand agreement within 10%
  // of the population plus a small absolute slack for thin probes.
  for (double lo : {5.0, 25.0, 50.0, 80.0}) {
    const double hi = lo + 10.0;
    size_t exact = 0;
    for (const Trapezoid& t : values) {
      if (t.SupportBegin() <= hi && t.SupportEnd() >= lo) ++exact;
    }
    const double est = stats.OverlapFraction(lo, hi) * values.size();
    EXPECT_NEAR(est, static_cast<double>(exact), 0.10 * values.size() + 5)
        << "probe [" << lo << ", " << hi << "]";
  }
}

// ---- Fan-out estimation vs the generator's ground truth C ----------

// The workload generator builds join columns in well-separated groups
// with C = n_S / num_groups members each (see workload/generator.h), so
// the true average fan-out is known by construction. The estimator only
// sees the histograms; accept agreement within a factor of 3 (observed
// ~1.5x on this data at the default bucket count).
TEST(FanoutEstimateTest, TypeJWorkloadGroundTruth) {
  for (double fanout : {3.0, 6.0, 12.0}) {
    WorkloadConfig config;
    config.seed = 7;
    config.num_r = 200;
    config.num_s = 300;
    config.join_fanout = fanout;
    const TypeJDataset dataset = GenerateTypeJDataset(config);

    const ColumnStats y = BuildColumnStats(dataset.r, /*col=*/1);
    const ColumnStats z = BuildColumnStats(dataset.s, /*col=*/0);
    ASSERT_FALSE(y.empty());
    ASSERT_FALSE(z.empty());

    // Ground truth from the data itself (group membership is random, so
    // measure rather than trust the nominal C exactly).
    uint64_t pairs = 0;
    for (size_t i = 0; i < dataset.r.NumTuples(); ++i) {
      const Trapezoid& a = dataset.r.TupleAt(i).ValueAt(1).AsFuzzy();
      for (size_t j = 0; j < dataset.s.NumTuples(); ++j) {
        const Trapezoid& b = dataset.s.TupleAt(j).ValueAt(0).AsFuzzy();
        if (a.SupportBegin() <= b.SupportEnd() &&
            b.SupportBegin() <= a.SupportEnd()) {
          ++pairs;
        }
      }
    }
    const double true_c =
        static_cast<double>(pairs) / static_cast<double>(dataset.r.NumTuples());
    const double est_c = EstimateOverlapFanout(y, z);
    EXPECT_GE(est_c, true_c / 3.0) << "fanout=" << fanout;
    EXPECT_LE(est_c, true_c * 3.0) << "fanout=" << fanout;

    // Selectivity is the same number normalized by |S|.
    EXPECT_NEAR(EstimateJoinSelectivity(y, z),
                est_c / static_cast<double>(z.fuzzy_rows), 1e-12);
  }
}

TEST(FanoutEstimateTest, DisjointColumnsEstimateNearZero) {
  std::vector<Trapezoid> lows, highs;
  for (int i = 0; i < 100; ++i) {
    lows.push_back(Trapezoid::About(static_cast<double>(i % 10), 0.2));
    highs.push_back(
        Trapezoid::About(1000.0 + static_cast<double>(i % 10), 0.2));
  }
  const ColumnStats a = BuildColumnStats(lows);
  const ColumnStats b = BuildColumnStats(highs);
  EXPECT_LT(EstimateOverlapFanout(a, b), 1.0);
  EXPECT_LT(EstimateJoinSelectivity(a, b), 0.01);
}

// ---- Predicate selectivity --------------------------------------------

TEST(PredicateSelectivityTest, BoundedAndDirectionallyCorrect) {
  const ColumnStats stats = BuildColumnStats(RandomValues(53, 500));
  const Trapezoid mid = Trapezoid::About(50.0, 2.0);
  const Trapezoid low = Trapezoid::About(-500.0, 1.0);
  const Trapezoid high = Trapezoid::About(500.0, 1.0);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kLe,
                       CompareOp::kGt, CompareOp::kGe, CompareOp::kNe}) {
    const double s = EstimatePredicateSelectivity(stats, op, mid);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  // Equality with a far-away constant keeps nothing; `< huge` and
  // `> tiny` keep everything.
  EXPECT_DOUBLE_EQ(EstimatePredicateSelectivity(stats, CompareOp::kEq, high),
                   0.0);
  EXPECT_DOUBLE_EQ(EstimatePredicateSelectivity(stats, CompareOp::kLt, high),
                   1.0);
  EXPECT_DOUBLE_EQ(EstimatePredicateSelectivity(stats, CompareOp::kGt, low),
                   1.0);
  // A mid-domain equality keeps a strict subset.
  const double eq_mid =
      EstimatePredicateSelectivity(stats, CompareOp::kEq, mid);
  EXPECT_GT(eq_mid, 0.0);
  EXPECT_LT(eq_mid, 0.5);
}

// ---- TableStats -------------------------------------------------------

TEST(TableStatsTest, OnePassOverTheWorkloadRelations) {
  WorkloadConfig config;
  config.seed = 11;
  config.num_r = 50;
  config.num_s = 80;
  const TypeJDataset dataset = GenerateTypeJDataset(config);
  const TableStats stats = BuildTableStats(dataset.s);
  EXPECT_EQ(stats.rows, 80u);
  ASSERT_EQ(stats.columns.size(), dataset.s.schema().NumColumns());
  EXPECT_GT(stats.avg_record_bytes, 0.0);
  for (const ColumnStats& col : stats.columns) {
    EXPECT_EQ(col.rows, 80u);
  }
}

}  // namespace
}  // namespace fuzzydb
