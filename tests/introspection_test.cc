// Live query introspection end to end: the active-query registry
// (SHOW QUERIES / sys.queries / KILL), per-phase accounting and its
// thread-count-invariant determinism signature, the structured query
// journal (sampling, rotation, fault injection), and the observability
// surfaces that ride on them. The concurrent tests double as the TSan
// workload for QueryProgress and ActiveQueryRegistry.
#include "obs/query_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "engine/exec_options.h"
#include "engine/unnested_evaluator.h"
#include "obs/metrics.h"
#include "obs/query_journal.h"
#include "shell/shell.h"
#include "sql/binder.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

namespace fs = std::filesystem;

// The governance_test workload: a Type J query whose relations span
// many morsels, so every phase (plan, filter, sort, window, emit) and
// the parallel barriers are exercised.
constexpr char kJoinQuery[] =
    "SELECT R.C0 FROM R WHERE R.C1 IN "
    "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)";

Catalog MakeJoinCatalog() {
  Catalog catalog;
  EXPECT_OK(catalog.AddRelation(GenerateRandomRelation(11, "R", 3, 400)));
  EXPECT_OK(catalog.AddRelation(GenerateRandomRelation(22, "S", 2, 400)));
  return catalog;
}

class IntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::DisarmAll();
    // Disable any journal a previous test left open.
    ASSERT_OK(QueryJournal::Global().SetPath(""));
  }
  void TearDown() override {
    FailPoints::DisarmAll();
    ASSERT_OK(QueryJournal::Global().SetPath(""));
  }
};

// ---------------------------------------------------------------------
// QueryProgress / PhaseScope unit semantics
// ---------------------------------------------------------------------

TEST_F(IntrospectionTest, PhaseScopeCountsEntersAndRestoresNesting) {
  QueryProgress progress;
  EXPECT_EQ(progress.phase(), QueryPhase::kNone);
  {
    PhaseScope plan(&progress, QueryPhase::kPlan);
    EXPECT_EQ(progress.phase(), QueryPhase::kPlan);
    {
      PhaseScope sort(&progress, QueryPhase::kSort);
      EXPECT_EQ(progress.phase(), QueryPhase::kSort);
    }
    // The inner scope restored the enclosing phase without counting a
    // second plan enter.
    EXPECT_EQ(progress.phase(), QueryPhase::kPlan);
  }
  progress.FinishPhases();
  EXPECT_EQ(progress.phase(), QueryPhase::kNone);
  EXPECT_EQ(progress.PhaseEnters(QueryPhase::kPlan), 1u);
  EXPECT_EQ(progress.PhaseEnters(QueryPhase::kSort), 1u);
  EXPECT_EQ(progress.PhaseEnters(QueryPhase::kJoin), 0u);
  // The annotation lists entered phases in pipeline order.
  const std::string text = progress.PhasesText();
  EXPECT_NE(text.find("plan="), std::string::npos) << text;
  EXPECT_NE(text.find("sort="), std::string::npos) << text;
  EXPECT_EQ(text.find("join="), std::string::npos) << text;
  EXPECT_LT(text.find("plan="), text.find("sort=")) << text;
}

TEST_F(IntrospectionTest, NullProgressIsANoOp) {
  // The whole engine runs with progress == nullptr; the scope must cost
  // one pointer test and nothing else.
  PhaseScope scope(nullptr, QueryPhase::kJoin);
  QueryProgress progress;
  progress.AddMorsel(10);
  progress.AddRows(3);
  progress.AddPairs(7);
  EXPECT_EQ(progress.items_done(), 10u);
  EXPECT_EQ(progress.morsels_done(), 1u);
  EXPECT_EQ(progress.rows_emitted(), 3u);
  EXPECT_EQ(progress.pairs_considered(), 7u);
}

// ---------------------------------------------------------------------
// Registry lifecycle
// ---------------------------------------------------------------------

TEST_F(IntrospectionTest, RegistrationIsVisibleWhileHeldAndGoneAfter) {
  ActiveQueryRegistry& registry = ActiveQueryRegistry::Global();
  const size_t size_before = registry.Size();
  uint64_t id = 0;
  {
    QueryContext qctx;
    QueryProgress progress;
    ActiveQueryRegistration reg(kJoinQuery, &qctx, &progress, 4);
    id = reg.id();
    ASSERT_GT(id, 0u);
    EXPECT_EQ(progress.query_id(), id);
    EXPECT_EQ(registry.Size(), size_before + 1);

    progress.AddRows(42);
    std::vector<ActiveQueryInfo> snapshot = registry.Snapshot();
    bool found = false;
    for (const ActiveQueryInfo& info : snapshot) {
      if (info.id != id) continue;
      found = true;
      EXPECT_EQ(info.sql, kJoinQuery);
      EXPECT_EQ(info.phase, "none");  // no phase entered yet
      EXPECT_EQ(info.rows_emitted, 42u);
      EXPECT_EQ(info.threads, 4u);
      EXPECT_FALSE(info.cancel_requested);
    }
    EXPECT_TRUE(found);

    // The text and relation surfaces render the same entry.
    EXPECT_NE(registry.ToText().find(kJoinQuery), std::string::npos);
    Relation relation = registry.ToRelation();
    EXPECT_EQ(relation.name(), "sys.queries");
    EXPECT_EQ(relation.schema().NumColumns(), 10u);
    EXPECT_GE(relation.NumTuples(), 1u);
  }
  EXPECT_EQ(registry.Size(), size_before);
  // A finished id is no longer killable.
  EXPECT_FALSE(registry.Kill(id));
}

TEST_F(IntrospectionTest, ConcurrentReaderSeesLiveQuery) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  ActiveQueryRegistry& registry = ActiveQueryRegistry::Global();

  std::atomic<bool> observed{false};
  std::atomic<uint64_t> query_id{0};
  std::thread worker([&] {
    QueryContext qctx;
    QueryProgress progress;
    ActiveQueryRegistration reg(kJoinQuery, &qctx, &progress, 4);
    query_id.store(reg.id());
    ExecOptions options;
    options.num_threads = 4;
    options.morsel_size = 16;
    options.context = &qctx;
    options.progress = &progress;
    UnnestingEvaluator engine(options);
    Result<Relation> answer = engine.Evaluate(*bound);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    // Hold the registration until the reader has sampled the finished
    // query, so the observation below is deterministic.
    while (!observed.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });

  // Sample the registry while the query runs and after it finishes;
  // every snapshot must be coherent (this loop is the TSan workload for
  // reader-vs-worker races on QueryProgress).
  bool saw_finished = false;
  while (!saw_finished) {
    for (const ActiveQueryInfo& info : registry.Snapshot()) {
      if (info.id != query_id.load()) continue;
      EXPECT_EQ(info.sql, kJoinQuery);
      EXPECT_EQ(info.threads, 4u);
      if (info.rows_emitted > 0 && info.phase == "none") {
        // All phases closed and rows published: the query is done.
        EXPECT_GT(info.items_done, 0u);
        saw_finished = true;
      }
    }
    std::this_thread::yield();
  }
  observed.store(true, std::memory_order_release);
  worker.join();
}

// ---------------------------------------------------------------------
// KILL
// ---------------------------------------------------------------------

TEST_F(IntrospectionTest, KillFromSecondThreadCancelsTheQuery) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  EngineMetrics* metrics = EngineMetrics::Instance();
  const uint64_t killed_before = metrics->queries_killed->Value();

  QueryContext qctx;
  QueryProgress progress;
  ActiveQueryRegistration reg(kJoinQuery, &qctx, &progress, 4);
  std::thread killer([&] {
    EXPECT_TRUE(ActiveQueryRegistry::Global().Kill(reg.id()));
  });
  killer.join();
  EXPECT_TRUE(qctx.cancel_requested());
  EXPECT_EQ(metrics->queries_killed->Value(), killed_before + 1);

  ExecOptions options;
  options.num_threads = 4;
  options.morsel_size = 16;
  options.context = &qctx;
  options.progress = &progress;
  UnnestingEvaluator engine(options);
  Result<Relation> answer = engine.Evaluate(*bound);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled)
      << answer.status().ToString();
  EXPECT_EQ(qctx.memory().used(), 0);
}

TEST_F(IntrospectionTest, KillRacingAMidFlightQueryNeverCrashes) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  for (int round = 0; round < 5; ++round) {
    QueryContext qctx;
    QueryProgress progress;
    ActiveQueryRegistration reg(kJoinQuery, &qctx, &progress, 4);
    std::thread killer([&] { ActiveQueryRegistry::Global().Kill(reg.id()); });
    ExecOptions options;
    options.num_threads = 4;
    options.morsel_size = 16;
    options.context = &qctx;
    options.progress = &progress;
    UnnestingEvaluator engine(options);
    Result<Relation> answer = engine.Evaluate(*bound);
    killer.join();
    if (!answer.ok()) {
      EXPECT_EQ(answer.status().code(), StatusCode::kCancelled)
          << answer.status().ToString();
    }
    EXPECT_EQ(qctx.memory().used(), 0);
  }
}

TEST_F(IntrospectionTest, KillUnknownIdFails) {
  EXPECT_FALSE(ActiveQueryRegistry::Global().Kill(0));
  EXPECT_FALSE(ActiveQueryRegistry::Global().Kill(~0ull));
}

// ---------------------------------------------------------------------
// Determinism across thread counts, introspection on and off
// ---------------------------------------------------------------------

TEST_F(IntrospectionTest, SignatureAndAnswersInvariantAcrossThreadCounts) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));

  // Reference: one thread, introspection off.
  ExecOptions options;
  options.num_threads = 1;
  options.morsel_size = 16;
  UnnestingEvaluator reference(options);
  ASSERT_OK_AND_ASSIGN(Relation expected, reference.Evaluate(*bound));

  std::string reference_signature;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // Introspection on: the progress counters and phase enter counts
    // are pure functions of the plan and morsel decomposition, so the
    // signature (no times) matches at every thread count.
    QueryProgress progress;
    options.num_threads = threads;
    options.progress = &progress;
    UnnestingEvaluator with(options);
    ASSERT_OK_AND_ASSIGN(Relation observed, with.Evaluate(*bound));
    EXPECT_TRUE(expected.EquivalentTo(observed, 0.0))
        << threads << " threads (introspection on)";
    progress.FinishPhases();
    const std::string signature = progress.DeterminismSignature();
    EXPECT_NE(signature.find("rows="), std::string::npos) << signature;
    if (reference_signature.empty()) {
      reference_signature = signature;
      EXPECT_GT(progress.rows_emitted(), 0u);
    } else {
      EXPECT_EQ(signature, reference_signature) << threads << " threads";
    }

    // Introspection off: bit-identical answers -- observation must not
    // perturb the computation.
    options.progress = nullptr;
    UnnestingEvaluator without(options);
    ASSERT_OK_AND_ASSIGN(Relation plain, without.Evaluate(*bound));
    EXPECT_TRUE(expected.EquivalentTo(plain, 0.0))
        << threads << " threads (introspection off)";
  }
}

// ---------------------------------------------------------------------
// The structured query journal
// ---------------------------------------------------------------------

class JournalTest : public IntrospectionTest {
 protected:
  void SetUp() override {
    IntrospectionTest::SetUp();
    dir_ = fs::path(::testing::TempDir()) / "fuzzydb_journal_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "journal.jsonl").string();
  }
  void TearDown() override {
    IntrospectionTest::TearDown();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::vector<std::string> Lines() const {
    std::vector<std::string> lines;
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(JournalTest, OneWellFormedRecordPerQuery) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  ASSERT_OK(QueryJournal::Global().SetPath(path_));
  QueryJournal::Global().set_sample_every(1);
  const uint64_t written_before = QueryJournal::Global().records_written();

  QueryProgress progress;
  ExecOptions options;
  options.num_threads = 2;
  options.morsel_size = 16;
  options.progress = &progress;
  options.query_text = kJoinQuery;
  UnnestingEvaluator engine(options);
  ASSERT_OK_AND_ASSIGN(Relation answer, engine.Evaluate(*bound));

  EXPECT_EQ(QueryJournal::Global().records_written(), written_before + 1);
  std::vector<std::string> lines = Lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& record = lines[0];
  // Identity, outcome, and resource fields all present.
  for (const char* key :
       {"\"id\":", "\"query_id\":", "\"sql\":", "\"fingerprint\":",
        "\"type\":", "\"engine\":\"unnested\"", "\"status\":\"OK\"",
        "\"rows\":", "\"est_rows\":", "\"elapsed_ms\":",
        "\"queue_wait_ms\":", "\"threads\":2", "\"phases_us\":",
        "\"plan\":", "\"cpu\":", "\"pairs\":", "\"io\":",
        "\"mem_peak_bytes\":", "\"cache_hits\":", "\"cache_misses\":"}) {
    EXPECT_NE(record.find(key), std::string::npos) << key << "\n" << record;
  }
  EXPECT_NE(record.find(kJoinQuery), std::string::npos);
  const std::string rows =
      "\"rows\":" + std::to_string(answer.NumTuples());
  EXPECT_NE(record.find(rows), std::string::npos) << record;
}

TEST_F(JournalTest, CancelledQueriesJournalTheirStatus) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  ASSERT_OK(QueryJournal::Global().SetPath(path_));
  QueryJournal::Global().set_sample_every(1);

  QueryContext qctx;
  qctx.Cancel();
  ExecOptions options;
  options.num_threads = 2;
  options.morsel_size = 16;
  options.context = &qctx;
  options.query_text = kJoinQuery;
  UnnestingEvaluator engine(options);
  Result<Relation> answer = engine.Evaluate(*bound);
  ASSERT_FALSE(answer.ok());

  std::vector<std::string> lines = Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"status\":\"CANCELLED\""), std::string::npos)
      << lines[0];
}

TEST_F(JournalTest, SamplingKeepsEveryNthQueryAndMonotonicIds) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  ASSERT_OK(QueryJournal::Global().SetPath(path_));
  QueryJournal::Global().set_sample_every(3);

  for (int i = 0; i < 6; ++i) {
    ExecOptions options;
    options.num_threads = 1;
    options.query_text = kJoinQuery;
    UnnestingEvaluator engine(options);
    ASSERT_OK(engine.Evaluate(*bound).status());
  }
  QueryJournal::Global().set_sample_every(1);

  // SetPath started a new id session (ids 1..6) and the sampling epoch
  // with it, so the first record always logs: ids 1 and 4 survive and
  // the skipped ids stay visible as gaps.
  std::vector<std::string> lines = Lines();
  ASSERT_EQ(lines.size(), 2u);
  uint64_t prev_id = 0;
  for (const std::string& line : lines) {
    const size_t at = line.find("\"id\":");
    ASSERT_NE(at, std::string::npos);
    const uint64_t id = std::strtoull(line.c_str() + at + 5, nullptr, 10);
    EXPECT_EQ(id % 3, 1u) << line;
    EXPECT_GT(id, prev_id);
    prev_id = id;
  }
}

TEST_F(JournalTest, SamplingSurvivesIdRestartAndRateChanges) {
  // Regression: the old decision (id % N != 1) went silent for a whole
  // epoch whenever the cadence and the id stream fell out of phase --
  // e.g. after a rate change mid-stream. The decision now comes from a
  // monotonic per-process record counter that restarts with the epoch,
  // so the first record after SetPath or set_sample_every always logs.
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  auto run_one = [&]() {
    ExecOptions options;
    options.num_threads = 1;
    options.query_text = kJoinQuery;
    UnnestingEvaluator engine(options);
    ASSERT_OK(engine.Evaluate(*bound).status());
  };

  ASSERT_OK(QueryJournal::Global().SetPath(path_));
  QueryJournal::Global().set_sample_every(1);
  run_one();
  run_one();  // ids 1, 2 -- both logged
  // Rate change mid-stream: under the old id-phase rule the next logged
  // id would have to satisfy id % 5 == 1, i.e. nothing until id 6.
  QueryJournal::Global().set_sample_every(5);
  run_one();  // id 3 -- first record of the new epoch, must log
  run_one();  // id 4 -- sampled out
  std::vector<std::string> lines = Lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[2].find("\"id\":3,"), std::string::npos) << lines[2];

  // Process restart simulation: a new SetPath session appends to the
  // same file with ids restarting at 1, and its first record logs even
  // though the sampling rate is still 5.
  ASSERT_OK(QueryJournal::Global().SetPath(path_));
  run_one();  // id 1 of the new session
  lines = Lines();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[3].find("\"id\":1,"), std::string::npos) << lines[3];
  QueryJournal::Global().set_sample_every(1);
}

TEST_F(JournalTest, RotationBoundsTheLogAndKeepsNGenerations) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  ASSERT_OK(QueryJournal::Global().SetPath(path_));
  QueryJournal::Global().set_sample_every(1);
  QueryJournal::Global().set_max_bytes(1024);
  QueryJournal::Global().set_keep_files(2);
  EngineMetrics* metrics = EngineMetrics::Instance();
  const uint64_t rotations_before = metrics->journal_rotations->Value();
  const uint64_t dropped_before =
      metrics->journal_rotations_dropped->Value();

  // Each record is a few hundred bytes; two dozen queries forces at
  // least four rotations at a 1 KiB threshold, so with keep_files=2 at
  // least one generation must fall off the end and be dropped.
  for (int i = 0; i < 24; ++i) {
    ExecOptions options;
    options.num_threads = 1;
    options.query_text = kJoinQuery;
    UnnestingEvaluator engine(options);
    ASSERT_OK(engine.Evaluate(*bound).status());
  }
  QueryJournal::Global().set_max_bytes(64ull << 20);
  QueryJournal::Global().set_keep_files(3);

  const uint64_t rotations =
      metrics->journal_rotations->Value() - rotations_before;
  EXPECT_GE(rotations, 4u);
  // Both kept generations exist, nothing past the keep limit survives,
  // and every file shifted off the end was counted as dropped.
  EXPECT_TRUE(fs::exists(path_ + ".1"));
  EXPECT_TRUE(fs::exists(path_ + ".2"));
  EXPECT_FALSE(fs::exists(path_ + ".3"));
  EXPECT_EQ(metrics->journal_rotations_dropped->Value() - dropped_before,
            rotations - 2);
  // Disk stays bounded: live file under threshold plus one record.
  EXPECT_LE(fs::file_size(path_), 1024u + 1024u);
  // Generation continuity: ids across PATH.2, PATH.1, PATH read as one
  // strictly increasing sequence (rotation never reorders or drops
  // records inside the kept window).
  uint64_t prev_id = 0;
  for (const std::string& file :
       {path_ + ".2", path_ + ".1", path_}) {
    std::ifstream in(file);
    std::string line;
    while (std::getline(in, line)) {
      const size_t at = line.find("\"id\":");
      ASSERT_NE(at, std::string::npos);
      const uint64_t id = std::strtoull(line.c_str() + at + 5, nullptr, 10);
      if (prev_id != 0) {
        EXPECT_EQ(id, prev_id + 1) << file << ": " << line;
      }
      prev_id = id;
    }
  }
}

TEST_F(JournalTest, WriteFaultNeverFailsTheQueryAndRecovers) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  ASSERT_OK(QueryJournal::Global().SetPath(path_));
  QueryJournal::Global().set_sample_every(1);
  EngineMetrics* metrics = EngineMetrics::Instance();
  const uint64_t errors_before = metrics->journal_errors->Value();

  FailPoints::Arm("journal/write", /*failures=*/1);
  ExecOptions options;
  options.num_threads = 2;
  options.morsel_size = 16;
  options.query_text = kJoinQuery;
  {
    // The journal is observability, not durability: the injected write
    // failure is counted and the query still succeeds.
    UnnestingEvaluator engine(options);
    ASSERT_OK_AND_ASSIGN(Relation answer, engine.Evaluate(*bound));
    EXPECT_GT(answer.NumTuples(), 0u);
  }
  EXPECT_EQ(metrics->journal_errors->Value(), errors_before + 1);
  EXPECT_GE(FailPoints::Hits("journal/write"), 1u);
  EXPECT_TRUE(Lines().empty());

  // The sink recovered: the next query journals normally.
  UnnestingEvaluator engine(options);
  ASSERT_OK(engine.Evaluate(*bound).status());
  EXPECT_EQ(Lines().size(), 1u);
}

// ---------------------------------------------------------------------
// Shell and metrics surfaces
// ---------------------------------------------------------------------

TEST_F(IntrospectionTest, ShellShowQueriesAndKill) {
  Shell shell;
  std::ostringstream show;
  shell.FeedLine("SHOW QUERIES;", show);
  EXPECT_NE(show.str().find("-- 0 active queries"), std::string::npos)
      << show.str();

  std::ostringstream kill;
  shell.FeedLine("KILL 123456789;", kill);
  EXPECT_NE(kill.str().find("no active query with id 123456789"),
            std::string::npos)
      << kill.str();

  std::ostringstream bad;
  shell.FeedLine("KILL abc;", bad);
  EXPECT_NE(bad.str().find("expected query id"), std::string::npos)
      << bad.str();
}

TEST_F(IntrospectionTest, ShellSystemRelationsExist) {
  Shell shell;
  std::ostringstream setup;
  shell.FeedLine("CREATE TABLE t (name STRING, score FUZZY);", setup);
  shell.FeedLine("INSERT INTO t VALUES ('a', ABOUT(10, 2));", setup);
  shell.FeedLine("SELECT name FROM t WITH D >= 0.1;", setup);

  // sys.queries: empty between statements (the SELECT reading it is not
  // itself registered as active while the relation snapshot is taken).
  std::ostringstream queries;
  shell.FeedLine("SELECT id, phase FROM sys.queries WITH D >= 0.0;", queries);
  EXPECT_NE(queries.str().find("0 tuples"), std::string::npos)
      << queries.str();

  // sys.slowlog mirrors the slow-query ring (empty: no threshold set).
  std::ostringstream slowlog;
  shell.FeedLine("SELECT elapsed_ms, query FROM sys.slowlog WITH D >= 0.0;",
                 slowlog);
  EXPECT_NE(slowlog.str().find("tuples"), std::string::npos) << slowlog.str();
}

TEST_F(IntrospectionTest, SlowlogRelationCapturesSlowQueries) {
  SlowQueryLog::Global().Clear();
  Shell shell;
  shell.set_slow_query_ms(0.0001);  // everything is "slow"
  std::ostringstream setup;
  shell.FeedLine("CREATE TABLE ts (name STRING, score FUZZY);", setup);
  shell.FeedLine("INSERT INTO ts VALUES ('a', ABOUT(10, 2));", setup);
  shell.FeedLine("SELECT name FROM ts WITH D >= 0.1;", setup);

  Relation slowlog = SlowQueryLog::Global().ToRelation();
  EXPECT_EQ(slowlog.name(), "sys.slowlog");
  ASSERT_GE(slowlog.NumTuples(), 1u);
  EXPECT_EQ(slowlog.schema().NumColumns(), 3u);
  SlowQueryLog::Global().Clear();
}

TEST_F(IntrospectionTest, PhaseMetricsFoldOnUnregister) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  EngineMetrics* metrics = EngineMetrics::Instance();
  uint64_t sort_before = 0;
  if (metrics->phase_seconds[static_cast<size_t>(QueryPhase::kSort)] !=
      nullptr) {
    sort_before =
        metrics->phase_seconds[static_cast<size_t>(QueryPhase::kSort)]
            ->Value();
  }
  {
    QueryContext qctx;
    QueryProgress progress;
    ActiveQueryRegistration reg(kJoinQuery, &qctx, &progress, 2);
    ExecOptions options;
    options.num_threads = 2;
    options.morsel_size = 16;
    options.context = &qctx;
    options.progress = &progress;
    UnnestingEvaluator engine(options);
    ASSERT_OK(engine.Evaluate(*bound).status());
    EXPECT_GT(progress.PhaseEnters(QueryPhase::kSort), 0u);
  }
  // Unregistration folded the per-query timers into the cumulative
  // fuzzydb_phase_seconds_total counters (micros under the hood).
  ASSERT_NE(metrics->phase_seconds[static_cast<size_t>(QueryPhase::kSort)],
            nullptr);
  EXPECT_GE(
      metrics->phase_seconds[static_cast<size_t>(QueryPhase::kSort)]->Value(),
      sort_before);
}

TEST_F(IntrospectionTest, PrometheusTextDeduplicatesLabeledTypeLines) {
  // Force the labeled families into existence.
  (void)EngineMetrics::Instance();
  const std::string text = MetricsRegistry::Global().ToPrometheusText();

  // Six phase series, one TYPE header, and the header carries the bare
  // family name (no labels).
  size_t type_lines = 0;
  size_t series_lines = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE fuzzydb_phase_seconds_total", 0) == 0) {
      ++type_lines;
      EXPECT_EQ(line, "# TYPE fuzzydb_phase_seconds_total counter");
    }
    if (line.rfind("fuzzydb_phase_seconds_total{phase=", 0) == 0) {
      ++series_lines;
    }
    if (line.rfind("# TYPE", 0) == 0) {
      EXPECT_EQ(line.find('{'), std::string::npos) << line;
    }
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_EQ(series_lines, 6u);
  EXPECT_NE(text.find("fuzzydb_build_info{git_sha="), std::string::npos);
}

TEST_F(IntrospectionTest, BuildInfoGaugeSurvivesMetricsReset) {
  Shell shell;
  std::ostringstream reset;
  shell.FeedLine("SHOW METRICS RESET;", reset);
  EXPECT_NE(reset.str().find("-- metrics reset"), std::string::npos);

  std::ostringstream show;
  shell.FeedLine("SHOW METRICS;", show);
  const size_t at = show.str().find("fuzzydb_build_info{");
  ASSERT_NE(at, std::string::npos) << show.str();
  const std::string line =
      show.str().substr(at, show.str().find('\n', at) - at);
  // Still stamped to 1 after the reset drained every other metric.
  EXPECT_EQ(line.substr(line.size() - 2), " 1") << line;
  for (const char* label :
       {"git_sha=", "compiler=", "batch_size=", "cost_based="}) {
    EXPECT_NE(line.find(label), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace fuzzydb
