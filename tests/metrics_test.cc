// The metrics layer (src/obs/metrics.h, histogram.h): histogram edge
// cases and thread-count invariance, counter/gauge/memory-tracker
// semantics, registry rendering agreement across SHOW METRICS text,
// JSON, and the sys.metrics relation, the one-branch disabled path, and
// the slow-query log fed by the unnesting evaluator.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/unnested_evaluator.h"
#include "obs/histogram.h"
#include "shell/shell.h"
#include "sql/binder.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

// ---------------------------------------------------------------------
// Histogram edge cases
// ---------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogramReportsZeroes) {
  Histogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total_count, 0u);
  EXPECT_EQ(snapshot.sum, 0u);
  EXPECT_EQ(snapshot.max, 0u);
  EXPECT_EQ(snapshot.Quantile(0.5), 0.0);
  EXPECT_EQ(snapshot.Quantile(1.0), 0.0);
  EXPECT_EQ(snapshot.Mean(), 0.0);
}

TEST(HistogramTest, SingleSampleIsEveryQuantile) {
  Histogram histogram;
  histogram.Record(777);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total_count, 1u);
  EXPECT_EQ(snapshot.sum, 777u);
  EXPECT_EQ(snapshot.max, 777u);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snapshot.Quantile(q), 777.0) << "q=" << q;
  }
}

TEST(HistogramTest, ZeroValuedSamplesLandInTheZeroBucket) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total_count, 2u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.max, 0u);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.99), 0.0);
}

TEST(HistogramTest, ValuesBeyondTheTopBucketAreTracked) {
  // bit_width(2^63) = 64: the last bucket. The quantile clamps to the
  // tracked max, so even the open-ended bucket reports exactly.
  Histogram histogram;
  const uint64_t huge = UINT64_MAX;
  histogram.Record(huge);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.counts[64], 1u);
  EXPECT_EQ(snapshot.max, huge);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), static_cast<double>(huge));
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), static_cast<double>(huge));
}

TEST(HistogramTest, QuantilesAreMonotoneAndBucketAccurate) {
  Histogram histogram;
  for (uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total_count, 1000u);
  EXPECT_EQ(snapshot.max, 1000u);
  const double p50 = snapshot.Quantile(0.50);
  const double p90 = snapshot.Quantile(0.90);
  const double p99 = snapshot.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, 1000.0);
  // Power-of-two buckets: every estimate is within a factor of two.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 495.0);
}

TEST(HistogramTest, ConcurrentRecordingFoldsLikeSerial) {
  // The same multiset of values must fold to the same snapshot at every
  // thread count: sharding may split the samples differently, but the
  // fold is a sum. This is the thread-count-invariance acceptance
  // criterion, and the test is the TSan workload for the histogram.
  constexpr uint64_t kPerThread = 2000;
  Histogram serial;
  for (int t = 0; t < 8; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      serial.Record(t * 131 + i * 7);
    }
  }
  const HistogramSnapshot expected = serial.Snapshot();

  for (int num_threads : {1, 2, 4, 8}) {
    Histogram concurrent;
    std::vector<std::thread> threads;
    // Partition the same 8 "logical" streams over num_threads workers.
    for (int w = 0; w < num_threads; ++w) {
      threads.emplace_back([&concurrent, w, num_threads] {
        for (int t = w; t < 8; t += num_threads) {
          for (uint64_t i = 0; i < kPerThread; ++i) {
            concurrent.Record(t * 131 + i * 7);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();

    const HistogramSnapshot folded = concurrent.Snapshot();
    EXPECT_EQ(folded.total_count, expected.total_count)
        << num_threads << " threads";
    EXPECT_EQ(folded.sum, expected.sum) << num_threads << " threads";
    EXPECT_EQ(folded.max, expected.max) << num_threads << " threads";
    EXPECT_EQ(folded.counts, expected.counts) << num_threads << " threads";
    EXPECT_DOUBLE_EQ(folded.Quantile(0.99), expected.Quantile(0.99))
        << num_threads << " threads";
  }
}

TEST(HistogramTest, SnapshotAndResetLosesNoSamplesUnderConcurrency) {
  // The SHOW METRICS RESET bug this guards against: a separate
  // Snapshot() followed by Reset() drops every sample recorded between
  // the two calls. SnapshotAndReset drains each shard with one atomic
  // exchange, so across any interleaving every Record lands in exactly
  // one drain.
  Histogram histogram;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recorded{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&histogram, &stop, &recorded] {
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.Record(7);
        recorded.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  uint64_t drained = 0;
  for (int i = 0; i < 200; ++i) {
    drained += histogram.SnapshotAndReset().total_count;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : writers) thread.join();
  drained += histogram.SnapshotAndReset().total_count;
  EXPECT_EQ(drained, recorded.load());
  EXPECT_EQ(histogram.Snapshot().total_count, 0u);
}

TEST(CounterTest, ValueAndResetDrainsExactlyOnce) {
  Counter counter;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> added{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&counter, &stop, &added] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Add();
        added.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  uint64_t drained = 0;
  for (int i = 0; i < 200; ++i) drained += counter.ValueAndReset();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : writers) thread.join();
  drained += counter.ValueAndReset();
  EXPECT_EQ(drained, added.load());
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(HistogramTest, ResetZeroesEveryShard) {
  Histogram histogram;
  for (uint64_t v = 0; v < 100; ++v) histogram.Record(v);
  histogram.Reset();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total_count, 0u);
  EXPECT_EQ(snapshot.max, 0u);
}

// ---------------------------------------------------------------------
// Counter / Gauge / MemoryTracker
// ---------------------------------------------------------------------

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), 80000u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(MemoryTrackerTest, PeakHoldsTheHighWaterMark) {
  MemoryTracker tracker;
  tracker.Charge(100);
  tracker.Charge(50);
  EXPECT_EQ(tracker.Current(), 150);
  EXPECT_EQ(tracker.Peak(), 150);
  tracker.Release(120);
  tracker.Charge(20);
  EXPECT_EQ(tracker.Current(), 50);
  EXPECT_EQ(tracker.Peak(), 150);  // releases never lower the peak
  tracker.Reset();
  EXPECT_EQ(tracker.Peak(), tracker.Current());
}

TEST(MemoryTrackerTest, ScopedChargeReleasesOnExit) {
  MemoryTracker tracker;
  {
    ScopedMemoryCharge charge(&tracker);
    charge.Charge(64);
    charge.Charge(64);
    EXPECT_EQ(tracker.Current(), 128);
  }
  EXPECT_EQ(tracker.Current(), 0);
  EXPECT_EQ(tracker.Peak(), 128);
  ScopedMemoryCharge null_charge(nullptr);  // must not crash
  null_charge.Charge(1);
}

// ---------------------------------------------------------------------
// Registry: identity, rendering agreement, reset
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test_registry_identity_total");
  Counter* b = registry.GetCounter("test_registry_identity_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.GetHistogram("test_registry_identity_us"),
            registry.GetHistogram("test_registry_identity_us"));
}

TEST(MetricsRegistryTest, TextJsonAndRelationAgree) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_agree_total")->Add(41);
  registry.GetHistogram("test_agree_us")->Record(12);

  const std::string text = registry.ToText();
  EXPECT_NE(text.find("test_agree_total 41\n"), std::string::npos);
  EXPECT_NE(text.find("test_agree_us_count"), std::string::npos);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test_agree_total\":41"), std::string::npos);

  // sys.metrics mirrors ToText() value for value: same series count and,
  // for every row, the same rendered number as the text line.
  const Relation relation = registry.ToRelation();
  size_t text_lines = 0;
  for (char c : text) text_lines += (c == '\n');
  ASSERT_EQ(relation.NumTuples(), text_lines);
  for (const Tuple& row : relation.tuples()) {
    ASSERT_EQ(row.NumValues(), 2u);
    const std::string& name = row.ValueAt(0).AsString();
    const double value = row.ValueAt(1).AsFuzzy().a();  // crisp trapezoid
    if (name == "test_agree_total") EXPECT_DOUBLE_EQ(value, 41.0);
    // Every relation row must appear as a text line verbatim.
    const size_t at = text.find(name + " ");
    ASSERT_NE(at, std::string::npos) << name;
    const size_t end = text.find('\n', at);
    const std::string rendered =
        text.substr(at + name.size() + 1, end - at - name.size() - 1);
    EXPECT_DOUBLE_EQ(std::stod(rendered), value) << name;
  }

  registry.GetCounter("test_agree_total")->Reset();
  registry.GetHistogram("test_agree_us")->Reset();
}

TEST(MetricsRegistryTest, PrometheusTextNamesEverySeries) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_prom_total")->Add(3);
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(prom.find("test_prom_total 3"), std::string::npos);
  registry.GetCounter("test_prom_total")->Reset();
}

TEST(MetricsRegistryTest, ResetAllZeroesRegisteredMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_resetall_total");
  Histogram* histogram = registry.GetHistogram("test_resetall_us");
  counter->Add(5);
  histogram->Record(9);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Snapshot().total_count, 0u);
}

// ---------------------------------------------------------------------
// Engine integration: counters move when queries run, stand still when
// disabled, and the slow-query log captures over-threshold queries.
// ---------------------------------------------------------------------

constexpr const char* kTypeJaQuery =
    "SELECT R.C0 FROM R WHERE R.C1 > "
    "(SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C2)";

Catalog MakeWorkloadCatalog() {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.AddRelation(GenerateRandomRelation(901, "R", 3, 150)).ok());
  EXPECT_TRUE(
      catalog.AddRelation(GenerateRandomRelation(902, "S", 2, 150)).ok());
  return catalog;
}

TEST(EngineMetricsTest, QueryExecutionMovesTheCounters) {
  Catalog catalog = MakeWorkloadCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kTypeJaQuery, catalog));
  // An IN-family query with a fuzzy equality link takes the merge-window
  // path, so |Rng(r)| samples land in the window histogram.
  ASSERT_OK_AND_ASSIGN(
      auto bound_in,
      sql::ParseAndBind("SELECT R.C0 FROM R WHERE R.C1 IN "
                        "(SELECT S.C0 FROM S)",
                        catalog));

  EngineMetrics* metrics = EngineMetrics::Instance();
  ASSERT_NE(metrics, nullptr);
  const uint64_t queries_before = metrics->queries_total->Value();
  const uint64_t latencies_before =
      metrics->query_latency_us->Snapshot().total_count;
  const uint64_t filter_in_before = metrics->filter_rows_in->Value();
  const uint64_t windows_before =
      metrics->merge_window_length->Snapshot().total_count;

  UnnestingEvaluator evaluator{ExecOptions{}};
  ASSERT_OK_AND_ASSIGN(Relation answer, evaluator.Evaluate(*bound));
  ASSERT_TRUE(evaluator.last_was_unnested());
  ASSERT_OK_AND_ASSIGN(Relation in_answer, evaluator.Evaluate(*bound_in));
  (void)answer;
  (void)in_answer;

  EXPECT_EQ(metrics->queries_total->Value(), queries_before + 2);
  EXPECT_EQ(metrics->query_latency_us->Snapshot().total_count,
            latencies_before + 2);
  EXPECT_GT(metrics->filter_rows_in->Value(), filter_in_before);
  // One |Rng(r)| sample per outer tuple of the IN query.
  EXPECT_GT(metrics->merge_window_length->Snapshot().total_count,
            windows_before);
}

TEST(EngineMetricsTest, DisabledPathRecordsNothing) {
  Catalog catalog = MakeWorkloadCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kTypeJaQuery, catalog));

  MetricsRegistry::Global().SetEnabled(false);
  EXPECT_EQ(EngineMetrics::IfEnabled(), nullptr);
  EngineMetrics* metrics = EngineMetrics::Instance();
  const uint64_t queries_before = metrics->queries_total->Value();

  UnnestingEvaluator evaluator{ExecOptions{}};
  ASSERT_OK_AND_ASSIGN(Relation answer, evaluator.Evaluate(*bound));
  (void)answer;

  EXPECT_EQ(metrics->queries_total->Value(), queries_before);
  MetricsRegistry::Global().SetEnabled(true);
  EXPECT_NE(EngineMetrics::IfEnabled(), nullptr);
}

TEST(SlowQueryLogTest, CapturesOverThresholdQueriesWithTraces) {
  Catalog catalog = MakeWorkloadCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kTypeJaQuery, catalog));

  SlowQueryLog::Global().Clear();
  ExecOptions options;
  options.slow_query_ms = 1e-9;  // everything is slow
  options.query_text = kTypeJaQuery;
  UnnestingEvaluator evaluator(options);
  ASSERT_OK_AND_ASSIGN(Relation answer, evaluator.Evaluate(*bound));
  (void)answer;

  const auto entries = SlowQueryLog::Global().Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].query_text, kTypeJaQuery);
  EXPECT_GT(entries[0].elapsed_ms, 0.0);
  // The log retains the rendered EXPLAIN ANALYZE tree even though the
  // caller attached no trace of its own.
  EXPECT_NE(entries[0].trace_text.find("evaluate"), std::string::npos);
  SlowQueryLog::Global().Clear();
}

TEST(SlowQueryLogTest, RingKeepsOnlyTheMostRecentEntries) {
  SlowQueryLog::Global().Clear();
  for (int i = 0; i < 40; ++i) {
    SlowQueryLog::Global().Add(
        {"q" + std::to_string(i), static_cast<double>(i), ""});
  }
  const auto entries = SlowQueryLog::Global().Entries();
  ASSERT_EQ(entries.size(), 32u);  // kCapacity
  EXPECT_EQ(entries.front().query_text, "q8");  // oldest surviving
  EXPECT_EQ(entries.back().query_text, "q39");
  SlowQueryLog::Global().Clear();
}

// ---------------------------------------------------------------------
// Shell surfaces: SHOW METRICS and sys.metrics expose the same values.
// ---------------------------------------------------------------------

TEST(ShellMetricsTest, ShowMetricsAndSysMetricsAgree) {
  Shell shell;
  std::ostringstream setup;
  shell.FeedLine("CREATE TABLE t (name STRING, score FUZZY);", setup);
  shell.FeedLine("INSERT INTO t VALUES ('a', ABOUT(10, 2)) DEGREE 0.8;",
                 setup);
  shell.FeedLine("SELECT name FROM t WITH D >= 0.1;", setup);

  std::ostringstream show;
  shell.FeedLine("SHOW METRICS;", show);
  EXPECT_NE(show.str().find("fuzzydb_queries_total"), std::string::npos);

  std::ostringstream select;
  shell.FeedLine("SELECT name, value FROM sys.metrics WITH D >= 0.0;",
                 select);
  // Every text line's series appears in the relation output with the
  // same rendered value (the relation prints crisp numbers plainly).
  size_t series = 0;
  std::istringstream lines(show.str());
  std::string line;
  while (std::getline(lines, line)) {
    const size_t space = line.find(' ');
    if (space == std::string::npos || line.rfind("fuzzydb_", 0) != 0) {
      continue;
    }
    ++series;
    const std::string name = line.substr(0, space);
    EXPECT_NE(select.str().find("'" + name + "'"), std::string::npos)
        << name;
  }
  EXPECT_GT(series, 20u);  // the whole engine family is present
}

TEST(ShellMetricsTest, ShowMetricsResetZeroes) {
  Shell shell;
  std::ostringstream setup;
  shell.FeedLine("CREATE TABLE t2 (name STRING);", setup);
  shell.FeedLine("SELECT name FROM t2 WITH D >= 0.0;", setup);
  ASSERT_GT(EngineMetrics::Instance()->queries_total->Value(), 0u);

  std::ostringstream reset;
  shell.FeedLine("SHOW METRICS RESET;", reset);
  EXPECT_NE(reset.str().find("-- metrics reset"), std::string::npos);
  EXPECT_EQ(EngineMetrics::Instance()->queries_total->Value(), 0u);
}

}  // namespace
}  // namespace fuzzydb
