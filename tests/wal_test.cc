// The write-ahead log proper: record framing, the segment manager, and
// the checkpoint protocol (docs/durability.md). Crash recovery end to
// end lives in recovery_test.cc; MVCC snapshot semantics in
// mvcc_test.cc.
#include <cstdlib>
#include <vector>

#include "common/failpoint.h"
#include "storage/buffer_pool.h"
#include "test_util.h"
#include "wal/recovery.h"
#include "wal/wal_manager.h"
#include "wal/wal_record.h"

namespace fuzzydb {
namespace {

using wal::WalRecord;
using wal::WalRecordType;

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/fuzzydb_wal_" + name;
  const std::string cmd = "rm -rf '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

WalRecord CreateRecord(const std::string& table) {
  WalRecord record;
  record.type = WalRecordType::kCreateTable;
  record.table = table;
  record.schema = Schema{{"x", ValueType::kFuzzy}};
  return record;
}

WalRecord InsertRecord(const std::string& table, double v, double degree) {
  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.table = table;
  record.tuple = Tuple({Value::Number(v)}, degree);
  return record;
}

// ---------------------------- record format ----------------------------

TEST(WalRecordTest, RoundTripsEveryRecordType) {
  std::vector<WalRecord> records;
  WalRecord create;
  create.type = WalRecordType::kCreateTable;
  create.table = "emp";
  ASSERT_OK(create.schema.AddColumn({"name", ValueType::kString}));
  ASSERT_OK(create.schema.AddColumn({"age", ValueType::kFuzzy}));
  records.push_back(create);

  WalRecord insert;
  insert.type = WalRecordType::kInsert;
  insert.table = "emp";
  insert.tuple =
      Tuple({Value::String("ann"), Value::Fuzzy(Trapezoid(25, 28, 32, 35))},
            0.875);
  records.push_back(insert);

  WalRecord drop;
  drop.type = WalRecordType::kDropTable;
  drop.table = "emp";
  records.push_back(drop);

  WalRecord term;
  term.type = WalRecordType::kDefineTerm;
  term.term = "medium young";
  term.shape = Trapezoid(25, 27.5, 32.5, 35);
  records.push_back(term);

  WalRecord checkpoint;
  checkpoint.type = WalRecordType::kCheckpoint;
  checkpoint.checkpoint_lsn = 42;
  records.push_back(checkpoint);

  std::vector<uint8_t> buffer;
  uint64_t lsn = 1;
  for (WalRecord& record : records) {
    record.lsn = lsn++;
    EncodeWalRecord(record, &buffer);
  }

  size_t pos = 0;
  for (const WalRecord& expected : records) {
    WalRecord decoded;
    size_t consumed = 0;
    ASSERT_EQ(wal::DecodeWalRecord(buffer.data() + pos, buffer.size() - pos,
                                   &decoded, &consumed),
              wal::WalDecodeOutcome::kRecord);
    EXPECT_EQ(decoded.lsn, expected.lsn);
    EXPECT_EQ(decoded.type, expected.type);
    EXPECT_EQ(decoded.table, expected.table);
    EXPECT_EQ(decoded.term, expected.term);
    EXPECT_EQ(decoded.checkpoint_lsn, expected.checkpoint_lsn);
    if (expected.type == WalRecordType::kCreateTable) {
      EXPECT_TRUE(decoded.schema == expected.schema);
    }
    if (expected.type == WalRecordType::kInsert) {
      EXPECT_TRUE(decoded.tuple.SameValues(expected.tuple));
      // Degrees survive bit-for-bit: raw IEEE-754 bytes in the frame.
      EXPECT_EQ(decoded.tuple.degree(), expected.tuple.degree());
    }
    if (expected.type == WalRecordType::kDefineTerm) {
      EXPECT_EQ(decoded.shape.a(), expected.shape.a());
      EXPECT_EQ(decoded.shape.d(), expected.shape.d());
    }
    pos += consumed;
  }
  EXPECT_EQ(pos, buffer.size());
  WalRecord tail;
  size_t consumed = 0;
  EXPECT_EQ(wal::DecodeWalRecord(buffer.data() + pos, 0, &tail, &consumed),
            wal::WalDecodeOutcome::kEnd);
}

TEST(WalRecordTest, FlippedBitAnywhereIsCorrupt) {
  WalRecord record = InsertRecord("t", 3.5, 1.0);
  record.lsn = 7;
  std::vector<uint8_t> buffer;
  EncodeWalRecord(record, &buffer);
  for (size_t i = 0; i < buffer.size(); ++i) {
    std::vector<uint8_t> damaged = buffer;
    damaged[i] ^= 0x40;
    WalRecord decoded;
    size_t consumed = 0;
    EXPECT_EQ(wal::DecodeWalRecord(damaged.data(), damaged.size(), &decoded,
                                   &consumed),
              wal::WalDecodeOutcome::kCorrupt)
        << "flip at byte " << i;
  }
}

TEST(WalRecordTest, TruncatedFrameIsCorruptNotEnd) {
  WalRecord record = InsertRecord("t", 1.0, 1.0);
  record.lsn = 1;
  std::vector<uint8_t> buffer;
  EncodeWalRecord(record, &buffer);
  // Every proper prefix is a torn write: corrupt, never a clean end.
  for (size_t keep = 1; keep < buffer.size(); ++keep) {
    WalRecord decoded;
    size_t consumed = 0;
    EXPECT_EQ(wal::DecodeWalRecord(buffer.data(), keep, &decoded, &consumed),
              wal::WalDecodeOutcome::kCorrupt)
        << "prefix of " << keep << " bytes";
  }
}

TEST(WalManagerTest, ParsesFsyncModes) {
  ASSERT_OK_AND_ASSIGN(const wal::FsyncMode always,
                       wal::ParseFsyncMode("always"));
  EXPECT_EQ(always, wal::FsyncMode::kAlways);
  ASSERT_OK_AND_ASSIGN(const wal::FsyncMode batch,
                       wal::ParseFsyncMode("batch"));
  EXPECT_EQ(batch, wal::FsyncMode::kBatch);
  ASSERT_OK_AND_ASSIGN(const wal::FsyncMode off, wal::ParseFsyncMode("off"));
  EXPECT_EQ(off, wal::FsyncMode::kOff);
  EXPECT_FALSE(wal::ParseFsyncMode("sometimes").ok());
}

// ---------------------------- segment manager --------------------------

TEST(WalManagerTest, AppendsStampMonotonicLsnsAcrossReopen) {
  const std::string dir = TempDir("reopen");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kOff;
  {
    ASSERT_OK_AND_ASSIGN(auto manager,
                         wal::WalManager::Open(dir, options, 1, 0));
    WalRecord create = CreateRecord("t");
    ASSERT_OK(manager->Append(&create));
    EXPECT_EQ(create.lsn, 1u);
    for (int i = 0; i < 5; ++i) {
      WalRecord record = InsertRecord("t", i, 1.0);
      ASSERT_OK(manager->Append(&record));
      EXPECT_EQ(record.lsn, static_cast<uint64_t>(i + 2));
    }
    EXPECT_EQ(manager->LastLsn(), 6u);
  }
  // Reopen the way recovery does: next LSN continues after the last.
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(auto recovered,
                       wal::OpenWalDatabase(dir, options, &pool));
  EXPECT_EQ(recovered.records_replayed, 6u);
  ASSERT_OK_AND_ASSIGN(const Relation* t, recovered.catalog.GetRelation("t"));
  EXPECT_EQ(t->NumTuples(), 5u);
  WalRecord record = InsertRecord("t", 99, 1.0);
  ASSERT_OK(recovered.manager->Append(&record));
  EXPECT_EQ(record.lsn, 7u);
}

TEST(WalManagerTest, RotatesAtTheConfiguredSegmentSize) {
  const std::string dir = TempDir("rotate");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kOff;
  options.segment_bytes = 256;  // a few records per segment
  ASSERT_OK_AND_ASSIGN(auto manager,
                       wal::WalManager::Open(dir, options, 1, 0));
  for (int i = 0; i < 40; ++i) {
    WalRecord record = InsertRecord("t", i, 1.0);
    ASSERT_OK(manager->Append(&record));
  }
  EXPECT_GT(manager->SegmentCount(), 3u);
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> seqs,
                       wal::ListWalSegments(dir));
  EXPECT_EQ(seqs.size(), manager->SegmentCount());
}

TEST(WalManagerTest, BatchModeSyncsEveryNthAppend) {
  const std::string dir = TempDir("batch");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kBatch;
  options.batch_records = 4;
  ASSERT_OK_AND_ASSIGN(auto manager,
                       wal::WalManager::Open(dir, options, 1, 0));
  // Arm the fsync point with a skip larger than the test will ever hit:
  // it never fires, but its hit counter observes exactly when the
  // manager reaches fsync().
  FailPoints::Arm("wal/fsync", /*failures=*/1, /*skip=*/1000);
  for (int i = 0; i < 3; ++i) {
    WalRecord record = InsertRecord("t", i, 1.0);
    ASSERT_OK(manager->Append(&record));
  }
  EXPECT_EQ(FailPoints::Hits("wal/fsync"), 0u);
  WalRecord record = InsertRecord("t", 3, 1.0);
  ASSERT_OK(manager->Append(&record));  // 4th append crosses the batch
  EXPECT_EQ(FailPoints::Hits("wal/fsync"), 1u);
  FailPoints::DisarmAll();
}

TEST(WalManagerTest, FailedAppendLeavesNoTrace) {
  const std::string dir = TempDir("scrub");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kAlways;
  ASSERT_OK_AND_ASSIGN(auto manager,
                       wal::WalManager::Open(dir, options, 1, 0));
  WalRecord create = CreateRecord("t");
  ASSERT_OK(manager->Append(&create));
  WalRecord ok_record = InsertRecord("t", 1, 1.0);
  ASSERT_OK(manager->Append(&ok_record));

  for (const char* point : {"wal/append", "wal/fsync"}) {
    FailPoints::Arm(point);
    WalRecord failed = InsertRecord("t", 2, 1.0);
    EXPECT_FALSE(manager->Append(&failed).ok()) << point;
    FailPoints::DisarmAll();
    // The failed record must leave the log untouched, and the LSN it
    // would have taken is reused by the next success.
    EXPECT_EQ(manager->LastLsn(), 2u) << point;
  }

  WalRecord next = InsertRecord("t", 3, 1.0);
  ASSERT_OK(manager->Append(&next));
  EXPECT_EQ(next.lsn, 3u);
  manager.reset();

  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(auto recovered,
                       wal::OpenWalDatabase(dir, options, &pool));
  EXPECT_EQ(recovered.records_replayed, 3u);
  EXPECT_EQ(recovered.torn_tail_bytes, 0u);
  ASSERT_OK_AND_ASSIGN(const Relation* t, recovered.catalog.GetRelation("t"));
  EXPECT_EQ(t->NumTuples(), 2u);  // values 1 and 3; the failed 2 never was
}

// ------------------------------ checkpoint -----------------------------

TEST(WalManagerTest, CheckpointPrunesSegmentsAndOldImages) {
  const std::string dir = TempDir("ckpt");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kOff;
  options.segment_bytes = 256;
  ASSERT_OK_AND_ASSIGN(auto manager,
                       wal::WalManager::Open(dir, options, 1, 0));

  Catalog catalog;
  WalRecord create = CreateRecord("t");
  ASSERT_OK(manager->Append(&create));
  ASSERT_OK(wal::ApplyWalRecord(create, &catalog));
  for (int i = 0; i < 30; ++i) {
    WalRecord record = InsertRecord("t", i, 1.0);
    ASSERT_OK(manager->Append(&record));
    ASSERT_OK(wal::ApplyWalRecord(record, &catalog));
  }
  ASSERT_GT(manager->SegmentCount(), 2u);

  BufferPool pool(8);
  uint64_t first_lsn = 0;
  ASSERT_OK(manager->Checkpoint(catalog, &pool, &first_lsn));
  EXPECT_EQ(first_lsn, 31u);  // create + 30 inserts
  EXPECT_EQ(manager->CheckpointLsn(), 31u);
  // Sealed segments are gone; only the fresh active one remains.
  EXPECT_EQ(manager->SegmentCount(), 1u);

  // A second checkpoint replaces the image and supersedes the first.
  WalRecord record = InsertRecord("t", 100, 1.0);
  ASSERT_OK(manager->Append(&record));
  ASSERT_OK(wal::ApplyWalRecord(record, &catalog));
  uint64_t second_lsn = 0;
  ASSERT_OK(manager->Checkpoint(catalog, &pool, &second_lsn));
  EXPECT_GT(second_lsn, first_lsn);
  ASSERT_OK_AND_ASSIGN(const wal::CheckpointMeta meta,
                       wal::ReadCheckpointMeta(dir));
  EXPECT_EQ(meta.lsn, second_lsn);

  // Restart: the image alone carries the data; nothing to replay but
  // the informational checkpoint marker.
  manager.reset();
  ASSERT_OK_AND_ASSIGN(auto recovered,
                       wal::OpenWalDatabase(dir, options, &pool));
  EXPECT_EQ(recovered.checkpoint_lsn, second_lsn);
  ASSERT_OK_AND_ASSIGN(const Relation* after,
                       recovered.catalog.GetRelation("t"));
  EXPECT_EQ(after->NumTuples(), 31u);
}

TEST(WalManagerTest, CheckpointFailPointLeavesPreviousCheckpointLive) {
  const std::string dir = TempDir("ckptfail");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kOff;
  ASSERT_OK_AND_ASSIGN(auto manager,
                       wal::WalManager::Open(dir, options, 1, 0));
  Catalog catalog;
  WalRecord create = CreateRecord("t");
  ASSERT_OK(manager->Append(&create));
  ASSERT_OK(wal::ApplyWalRecord(create, &catalog));
  WalRecord record = InsertRecord("t", 1, 1.0);
  ASSERT_OK(manager->Append(&record));
  ASSERT_OK(wal::ApplyWalRecord(record, &catalog));

  BufferPool pool(8);
  uint64_t lsn = 0;
  ASSERT_OK(manager->Checkpoint(catalog, &pool, &lsn));

  FailPoints::Arm("wal/checkpoint");
  EXPECT_FALSE(manager->Checkpoint(catalog, &pool, &lsn).ok());
  FailPoints::DisarmAll();

  ASSERT_OK_AND_ASSIGN(const wal::CheckpointMeta meta,
                       wal::ReadCheckpointMeta(dir));
  EXPECT_EQ(meta.lsn, manager->CheckpointLsn());
}

TEST(WalManagerTest, SysWalRelationListsSegments) {
  const std::string dir = TempDir("syswal");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kOff;
  options.segment_bytes = 256;
  ASSERT_OK_AND_ASSIGN(auto manager,
                       wal::WalManager::Open(dir, options, 1, 0));
  for (int i = 0; i < 20; ++i) {
    WalRecord record = InsertRecord("t", i, 1.0);
    ASSERT_OK(manager->Append(&record));
  }
  const Relation rel = manager->ToRelation();
  EXPECT_EQ(rel.NumTuples(), manager->SegmentCount());
  ASSERT_OK_AND_ASSIGN(const size_t active_col,
                       rel.schema().IndexOf("active"));
  size_t active_rows = 0;
  for (const Tuple& tuple : rel.tuples()) {
    if (tuple.ValueAt(active_col).AsFuzzy().CrispValue() == 1.0) ++active_rows;
  }
  EXPECT_EQ(active_rows, 1u);
}

}  // namespace
}  // namespace fuzzydb
