// The observability layer (src/obs/): span trees, checked counter
// deltas, the disabled-path guarantee, and the acceptance criterion of
// the layer -- per-operator counter deltas that sum to the whole-query
// totals at every thread count.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/fuzzydb_trace_" + name;
}

// ---------------------------------------------------------------------
// Span tree mechanics
// ---------------------------------------------------------------------

TEST(ExecTraceTest, SpansNestLifo) {
  ExecTrace trace;
  const size_t a = trace.OpenSpan("a");
  const size_t b = trace.OpenSpan("b", "inner");
  trace.CloseSpan(b);
  const size_t c = trace.OpenSpan("c");
  trace.CloseSpan(c);
  trace.CloseSpan(a);
  const size_t d = trace.OpenSpan("d");
  trace.CloseSpan(d);

  ASSERT_EQ(trace.nodes().size(), 4u);
  ASSERT_EQ(trace.roots(), (std::vector<size_t>{a, d}));
  EXPECT_EQ(trace.node(a).children, (std::vector<size_t>{b, c}));
  EXPECT_TRUE(trace.node(b).children.empty());
  EXPECT_EQ(trace.node(b).detail, "inner");
  // Every closed span recorded a wall time and a start offset ordered
  // with its open order.
  for (const TraceNode& node : trace.nodes()) {
    EXPECT_GE(node.wall_seconds, 0.0);
  }
  EXPECT_LE(trace.node(a).start_seconds, trace.node(b).start_seconds);
  EXPECT_LE(trace.node(b).start_seconds, trace.node(c).start_seconds);
}

TEST(ExecTraceTest, TraceScopeRecordsCounterDeltas) {
  ExecTrace trace;
  CpuStats cpu;
  IoStats io;
  cpu.comparisons = 100;  // pre-span work must not leak into the span
  io.page_reads = 7;
  {
    TraceScope outer(&trace, "outer", &cpu, &io);
    cpu.tuple_pairs += 10;
    io.page_writes += 3;
    {
      TraceScope inner(&trace, "inner", &cpu);
      cpu.tuple_pairs += 5;
      cpu.degree_evaluations += 2;
      inner.SetInputRows(20);
      inner.SetOutputRows(15);
      inner.SetThreads(4);
    }
    cpu.comparisons += 1;
  }
  ASSERT_EQ(trace.nodes().size(), 2u);
  const TraceNode& outer = trace.nodes()[0];
  const TraceNode& inner = trace.nodes()[1];

  EXPECT_EQ(outer.cpu.tuple_pairs, 15u);  // inclusive of the child
  EXPECT_EQ(outer.cpu.comparisons, 1u);
  EXPECT_EQ(outer.io.page_writes, 3u);
  EXPECT_EQ(outer.io.page_reads, 0u);
  EXPECT_FALSE(outer.clamped);

  EXPECT_EQ(inner.cpu.tuple_pairs, 5u);
  EXPECT_EQ(inner.cpu.degree_evaluations, 2u);
  EXPECT_EQ(inner.input_rows, 20u);
  EXPECT_EQ(inner.output_rows, 15u);
  EXPECT_EQ(inner.threads, 4u);

  // Exclusive share: outer minus inner.
  EXPECT_EQ(trace.SelfCpu(0).tuple_pairs, 10u);
  EXPECT_EQ(trace.SelfCpu(1).tuple_pairs, 5u);
  EXPECT_EQ(trace.TotalCpu().tuple_pairs, 15u);
}

TEST(ExecTraceTest, NullTraceScopeIsInert) {
  CpuStats cpu;
  TraceScope scope(nullptr, "nothing", &cpu);
  EXPECT_FALSE(scope.enabled());
  scope.SetInputRows(1);
  scope.SetOutputRows(2);
  scope.SetThreads(3);
  scope.SetDetail("x");
  scope.Close();  // idempotent no-op
}

TEST(ExecTraceTest, ThrowingOperatorClosesSpansAndFoldsWorkers) {
  // An operator that throws mid-span must still close the span (so
  // partial traces of failed queries are well-formed trees) and fold its
  // per-worker stats first, so the span's delta includes worker activity.
  // The ordering comes from declaration order: the CpuStatsFolder is
  // declared after the TraceScope, so it destructs (folds) first.
  ExecTrace trace;
  CpuStats total;
  std::vector<CpuStats> workers(2);
  try {
    TraceScope span(&trace, "throwing-op", &total);
    CpuStatsFolder folder(&workers, &total);
    workers[0].comparisons = 3;
    workers[1].comparisons = 4;
    throw std::runtime_error("operator failed");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(trace.open_span_count(), 0u);
  ASSERT_EQ(trace.nodes().size(), 1u);
  EXPECT_EQ(trace.nodes()[0].name, "throwing-op");
  // The worker fold landed inside the span's counter delta.
  EXPECT_EQ(trace.nodes()[0].cpu.comparisons, 7u);
  EXPECT_EQ(total.comparisons, 7u);
  EXPECT_GE(trace.nodes()[0].wall_seconds, 0.0);
}

TEST(ExecTraceTest, CloseIsIdempotent) {
  ExecTrace trace;
  CpuStats cpu;
  TraceScope scope(&trace, "op", &cpu);
  cpu.comparisons = 4;
  scope.Close();
  cpu.comparisons = 400;  // must not be re-recorded
  scope.Close();
  EXPECT_EQ(trace.nodes()[0].cpu.comparisons, 4u);
}

// ---------------------------------------------------------------------
// Checked deltas: clamp and flag instead of wrapping
// ---------------------------------------------------------------------

TEST(CheckedDeltaTest, CpuClampsAndFlags) {
  CpuStats now;
  now.tuple_pairs = 5;
  now.comparisons = 10;
  CpuStats earlier;
  earlier.tuple_pairs = 2;
  earlier.comparisons = 30;  // "earlier" is ahead: snapshot misuse

  bool clamped = false;
  const CpuStats delta = now.CheckedDelta(earlier, &clamped);
  EXPECT_EQ(delta.tuple_pairs, 3u);   // normal field still exact
  EXPECT_EQ(delta.comparisons, 0u);   // clamped, not 2^64 - 20
  EXPECT_TRUE(clamped);

  clamped = false;
  const CpuStats ok = now.CheckedDelta(CpuStats{}, &clamped);
  EXPECT_EQ(ok.comparisons, 10u);
  EXPECT_FALSE(clamped);
}

TEST(CheckedDeltaTest, IoClampsAndFlags) {
  IoStats now;
  now.page_reads = 4;
  IoStats earlier;
  earlier.page_reads = 1;
  earlier.buffer_hits = 9;

  bool clamped = false;
  const IoStats delta = now.CheckedDelta(earlier, &clamped);
  EXPECT_EQ(delta.page_reads, 3u);
  EXPECT_EQ(delta.buffer_hits, 0u);
  EXPECT_TRUE(clamped);
}

TEST(CheckedDeltaTest, MisNestedSpanReportsClampedNotGarbage) {
  // A span whose accumulator goes backwards (reset mid-span) must mark
  // the node instead of reporting a near-2^64 delta.
  ExecTrace trace;
  CpuStats cpu;
  cpu.degree_evaluations = 50;
  {
    TraceScope scope(&trace, "op", &cpu);
    cpu.degree_evaluations = 10;  // reset-style misuse
  }
  EXPECT_EQ(trace.nodes()[0].cpu.degree_evaluations, 0u);
  EXPECT_TRUE(trace.nodes()[0].clamped);
  EXPECT_NE(trace.ToString().find("CLAMPED"), std::string::npos);
}

// ---------------------------------------------------------------------
// Renderings
// ---------------------------------------------------------------------

TEST(ExecTraceTest, RenderingsAreWellFormed) {
  ExecTrace trace;
  CpuStats cpu;
  {
    TraceScope outer(&trace, "evaluate", &cpu, nullptr, "JA");
    cpu.tuple_pairs = 3;
    TraceScope inner(&trace, "merge-window", &cpu);
    inner.SetInputRows(8);
    inner.SetOutputRows(6);
  }

  const std::string text = trace.ToString();
  EXPECT_NE(text.find("evaluate [JA]"), std::string::npos);
  EXPECT_NE(text.find("wall="), std::string::npos);
  EXPECT_NE(text.find("\n  merge-window"), std::string::npos);  // indented
  EXPECT_NE(text.find("rows=8->6"), std::string::npos);
  // The golden-test mode drops the nondeterministic timing fields.
  EXPECT_EQ(trace.ToString(/*include_timing=*/false).find("wall="),
            std::string::npos);

  const std::string chrome = trace.ToChromeTraceJson();
  EXPECT_EQ(chrome.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"merge-window\""), std::string::npos);
  EXPECT_NE(chrome.find("\"rows_out\":6"), std::string::npos);

  const std::string summary = trace.ToJsonSummary();
  EXPECT_EQ(summary.front(), '[');
  EXPECT_EQ(summary.back(), ']');
  EXPECT_NE(summary.find("\"op\":\"evaluate\""), std::string::npos);
  EXPECT_NE(summary.find("\"depth\":1"), std::string::npos);
}

// ---------------------------------------------------------------------
// In-memory engine: disabled tracing changes nothing; enabled tracing
// accounts for every counter at every thread count (the acceptance
// criterion of the layer).
// ---------------------------------------------------------------------

constexpr const char* kTypeJaQuery =
    "SELECT R.C0 FROM R WHERE R.C1 > "
    "(SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C2)";

Catalog MakeWorkloadCatalog() {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.AddRelation(GenerateRandomRelation(401, "R", 3, 200)).ok());
  EXPECT_TRUE(
      catalog.AddRelation(GenerateRandomRelation(402, "S", 2, 200)).ok());
  return catalog;
}

TEST(TraceEngineTest, DisabledTracingAddsNoCounters) {
  Catalog catalog = MakeWorkloadCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kTypeJaQuery, catalog));

  ExecOptions options;
  options.num_threads = 2;
  options.morsel_size = 16;
  CpuStats untraced_cpu;
  UnnestingEvaluator untraced(options, &untraced_cpu);
  ASSERT_OK_AND_ASSIGN(Relation expected, untraced.Evaluate(*bound));

  ExecTrace trace;
  options.trace = &trace;
  CpuStats traced_cpu;
  UnnestingEvaluator traced(options, &traced_cpu);
  ASSERT_OK_AND_ASSIGN(Relation actual, traced.Evaluate(*bound));

  EXPECT_TRUE(expected.EquivalentTo(actual, 0.0));
  EXPECT_EQ(traced_cpu, untraced_cpu);
  EXPECT_FALSE(trace.empty());
}

TEST(TraceEngineTest, TypeJaOperatorDeltasSumToWholeQueryTotals) {
  Catalog catalog = MakeWorkloadCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kTypeJaQuery, catalog));

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ExecOptions options;
    options.num_threads = threads;
    options.morsel_size = 16;
    ExecTrace trace;
    options.trace = &trace;
    CpuStats cpu;
    UnnestingEvaluator evaluator(options, &cpu);
    ASSERT_OK_AND_ASSIGN(Relation answer, evaluator.Evaluate(*bound));
    ASSERT_TRUE(evaluator.last_was_unnested());
    ASSERT_FALSE(trace.empty());

    // Root spans' inclusive deltas == the whole-query accumulator.
    EXPECT_EQ(trace.TotalCpu(), cpu) << threads << " threads";
    // And the exclusive per-operator shares partition those totals.
    CpuStats self_sum;
    for (size_t id = 0; id < trace.nodes().size(); ++id) {
      EXPECT_FALSE(trace.nodes()[id].clamped)
          << trace.nodes()[id].name << " at " << threads << " threads";
      self_sum += trace.SelfCpu(id);
    }
    EXPECT_EQ(self_sum, cpu) << threads << " threads";

    // The root span reports the query type and the answer cardinality.
    const TraceNode& root = trace.nodes()[trace.roots()[0]];
    EXPECT_EQ(root.name, "evaluate");
    EXPECT_EQ(root.detail, "JA");
    EXPECT_EQ(root.output_rows, answer.NumTuples());
    EXPECT_GT(cpu.degree_evaluations, 0u);
  }
}

TEST(TraceEngineTest, NaiveEvaluatorOpensASpan) {
  Catalog catalog = MakeWorkloadCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kTypeJaQuery, catalog));

  ExecTrace trace;
  CpuStats cpu;
  NaiveEvaluator naive(&cpu, &trace);
  ASSERT_OK_AND_ASSIGN(Relation answer, naive.Evaluate(*bound));
  ASSERT_EQ(trace.roots().size(), 1u);
  const TraceNode& root = trace.nodes()[trace.roots()[0]];
  EXPECT_EQ(root.name, "naive-evaluate");
  EXPECT_EQ(root.output_rows, answer.NumTuples());
  EXPECT_EQ(trace.TotalCpu(), cpu);
}

// ---------------------------------------------------------------------
// File executor: the trace also balances the I/O ledger.
// ---------------------------------------------------------------------

TEST(TraceFileExecutorTest, MergeJoinTraceBalancesCpuAndIo) {
  WorkloadConfig config;
  config.seed = 77;
  config.num_r = 200;
  config.num_s = 200;
  config.join_fanout = 4;
  TypeJDataset dataset = GenerateTypeJDataset(config);

  BufferPool setup_pool(16);
  ASSERT_OK_AND_ASSIGN(
      auto r_file,
      WriteRelationToFile(dataset.r, TempPath("mj_r"), &setup_pool, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_file,
      WriteRelationToFile(dataset.s, TempPath("mj_s"), &setup_pool, 128));

  TypeJQuerySpec spec;
  ASSERT_OK_AND_ASSIGN(
      RunResult untraced,
      RunTypeJMergeJoin(r_file.get(), s_file.get(), spec, 8, TempPath("mj_tmp"),
                        128));

  ExecTrace trace;
  ExecOptions options;
  options.num_threads = 1;
  options.trace = &trace;
  ASSERT_OK_AND_ASSIGN(
      RunResult traced,
      RunTypeJMergeJoin(r_file.get(), s_file.get(), spec, 8, TempPath("mj_tmp"),
                        128, &options));

  // Tracing perturbs nothing: answer and both stat ledgers identical.
  EXPECT_TRUE(untraced.answer.EquivalentTo(traced.answer, 0.0));
  EXPECT_EQ(traced.stats.cpu, untraced.stats.cpu);
  EXPECT_EQ(traced.stats.io, untraced.stats.io);

  // The root "query" span's deltas equal the run's own ledgers.
  EXPECT_EQ(trace.TotalCpu(), traced.stats.cpu);
  EXPECT_EQ(trace.TotalIo(), traced.stats.io);
  EXPECT_GT(trace.TotalIo().page_reads, 0u);

  // The expected operators appear: two external sorts and the merge join
  // under the query root.
  const TraceNode& root = trace.nodes()[trace.roots()[0]];
  EXPECT_EQ(root.name, "query");
  std::vector<std::string> child_names;
  for (size_t child : root.children) {
    child_names.push_back(trace.nodes()[child].name);
  }
  EXPECT_EQ(child_names,
            (std::vector<std::string>{"external-sort", "external-sort",
                                      "merge-join"}));

  r_file.reset();
  s_file.reset();
  RemoveFileIfExists(TempPath("mj_r"));
  RemoveFileIfExists(TempPath("mj_s"));
}

}  // namespace
}  // namespace fuzzydb
