// The fail-point registry: arming semantics (failures/skip budgets, hit
// counters, re-arm/disarm) and FUZZYDB_FAILPOINTS spec parsing.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace fuzzydb {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::DisarmAll(); }
  void TearDown() override { FailPoints::DisarmAll(); }
};

TEST_F(FailPointTest, DisarmedCheckIsFree) {
  EXPECT_OK(FailPoints::Check("never/armed"));
  EXPECT_EQ(FailPoints::Hits("never/armed"), 0u);
  EXPECT_TRUE(FailPoints::ArmedNames().empty());
}

TEST_F(FailPointTest, ArmedPointFailsThenRecovers) {
  FailPoints::Arm("test/point", /*failures=*/1);
  const Status first = FailPoints::Check("test/point");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_NE(first.message().find("test/point"), std::string::npos);
  // The failure budget is spent; subsequent hits pass and are no longer
  // counted (the point is disarmed).
  EXPECT_OK(FailPoints::Check("test/point"));
  EXPECT_OK(FailPoints::Check("test/point"));
  EXPECT_EQ(FailPoints::Hits("test/point"), 1u);
}

TEST_F(FailPointTest, SkipLetsEarlyHitsPass) {
  FailPoints::Arm("test/skip", /*failures=*/2, /*skip=*/2);
  EXPECT_OK(FailPoints::Check("test/skip"));
  EXPECT_OK(FailPoints::Check("test/skip"));
  EXPECT_FALSE(FailPoints::Check("test/skip").ok());
  EXPECT_FALSE(FailPoints::Check("test/skip").ok());
  EXPECT_OK(FailPoints::Check("test/skip"));
  EXPECT_EQ(FailPoints::Hits("test/skip"), 4u);
}

TEST_F(FailPointTest, NegativeFailuresMeansEveryHit) {
  FailPoints::Arm("test/always", /*failures=*/-1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FailPoints::Check("test/always").ok()) << i;
  }
  EXPECT_EQ(FailPoints::Hits("test/always"), 10u);
}

TEST_F(FailPointTest, RearmReplacesStateAndResetsHits) {
  FailPoints::Arm("test/rearm", /*failures=*/1);
  EXPECT_FALSE(FailPoints::Check("test/rearm").ok());
  EXPECT_EQ(FailPoints::Hits("test/rearm"), 1u);
  FailPoints::Arm("test/rearm", /*failures=*/1);
  EXPECT_EQ(FailPoints::Hits("test/rearm"), 0u);
  EXPECT_FALSE(FailPoints::Check("test/rearm").ok());
}

TEST_F(FailPointTest, DisarmStopsInjection) {
  FailPoints::Arm("test/disarm", /*failures=*/-1);
  EXPECT_FALSE(FailPoints::Check("test/disarm").ok());
  FailPoints::Disarm("test/disarm");
  EXPECT_OK(FailPoints::Check("test/disarm"));
  EXPECT_TRUE(FailPoints::ArmedNames().empty());
}

TEST_F(FailPointTest, ArmedNamesListsActivePoints) {
  FailPoints::Arm("test/a");
  FailPoints::Arm("test/b");
  std::vector<std::string> names = FailPoints::ArmedNames();
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "test/a");
  EXPECT_EQ(names[1], "test/b");
}

TEST_F(FailPointTest, SpecParsingArmsEachEntry) {
  ASSERT_TRUE(FailPoints::ArmFromSpec("test/one,test/two=2,test/three=1:3"));
  // test/one: default one failure.
  EXPECT_FALSE(FailPoints::Check("test/one").ok());
  EXPECT_OK(FailPoints::Check("test/one"));
  // test/two: two failures.
  EXPECT_FALSE(FailPoints::Check("test/two").ok());
  EXPECT_FALSE(FailPoints::Check("test/two").ok());
  EXPECT_OK(FailPoints::Check("test/two"));
  // test/three: three passes, then one failure.
  EXPECT_OK(FailPoints::Check("test/three"));
  EXPECT_OK(FailPoints::Check("test/three"));
  EXPECT_OK(FailPoints::Check("test/three"));
  EXPECT_FALSE(FailPoints::Check("test/three").ok());
  EXPECT_OK(FailPoints::Check("test/three"));
}

TEST_F(FailPointTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(FailPoints::ArmFromSpec("=1"));
  EXPECT_FALSE(FailPoints::ArmFromSpec("test/bad=x"));
  EXPECT_FALSE(FailPoints::ArmFromSpec("test/bad=1:y"));
}

}  // namespace
}  // namespace fuzzydb
