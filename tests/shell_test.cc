#include "shell/shell.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sql/statement.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

// -------------------------- Statement parser ---------------------------

TEST(StatementParserTest, CreateTable) {
  ASSERT_OK_AND_ASSIGN(
      sql::Statement statement,
      sql::ParseStatement(
          "CREATE TABLE Emp (NAME STRING, AGE FUZZY, SALARY NUMBER)"));
  EXPECT_EQ(statement.kind, sql::Statement::Kind::kCreateTable);
  EXPECT_EQ(statement.create_table.name, "Emp");
  ASSERT_EQ(statement.create_table.schema.NumColumns(), 3u);
  EXPECT_EQ(statement.create_table.schema.ColumnAt(0).type,
            ValueType::kString);
  EXPECT_EQ(statement.create_table.schema.ColumnAt(2).type,
            ValueType::kFuzzy);
}

TEST(StatementParserTest, CreateTableRejectsBadType) {
  EXPECT_FALSE(sql::ParseStatement("CREATE TABLE T (A BLOB)").ok());
  EXPECT_FALSE(sql::ParseStatement("CREATE TABLE T ()").ok());
}

TEST(StatementParserTest, InsertWithAllLiteralKinds) {
  ASSERT_OK_AND_ASSIGN(
      sql::Statement statement,
      sql::ParseStatement("INSERT INTO T VALUES "
                          "('str', 3.5, -2, \"a term\", TRAP(1,2,3,4), "
                          "ABOUT(10, 2), NULL) DEGREE 0.75"));
  EXPECT_EQ(statement.kind, sql::Statement::Kind::kInsert);
  EXPECT_EQ(statement.insert.table, "T");
  ASSERT_EQ(statement.insert.values.size(), 7u);
  EXPECT_TRUE(statement.insert.values[0].value.is_string());
  EXPECT_DOUBLE_EQ(statement.insert.values[2].value.AsFuzzy().CrispValue(),
                   -2.0);
  EXPECT_EQ(statement.insert.values[3].term, "a term");
  EXPECT_EQ(statement.insert.values[4].value.AsFuzzy(), Trapezoid(1, 2, 3, 4));
  EXPECT_TRUE(statement.insert.values[6].value.is_null());
  EXPECT_DOUBLE_EQ(statement.insert.degree, 0.75);
}

TEST(StatementParserTest, InsertRejectsBadDegree) {
  EXPECT_FALSE(
      sql::ParseStatement("INSERT INTO T VALUES (1) DEGREE 0").ok());
  EXPECT_FALSE(
      sql::ParseStatement("INSERT INTO T VALUES (1) DEGREE 1.5").ok());
}

TEST(StatementParserTest, DefineTermAndDrop) {
  ASSERT_OK_AND_ASSIGN(
      sql::Statement term,
      sql::ParseStatement("DEFINE TERM \"warm\" AS TRAP(15, 20, 25, 30)"));
  EXPECT_EQ(term.kind, sql::Statement::Kind::kDefineTerm);
  EXPECT_EQ(term.define_term.name, "warm");
  EXPECT_EQ(term.define_term.value, Trapezoid(15, 20, 25, 30));

  ASSERT_OK_AND_ASSIGN(sql::Statement drop,
                       sql::ParseStatement("DROP TABLE Emp"));
  EXPECT_EQ(drop.kind, sql::Statement::Kind::kDropTable);
  EXPECT_EQ(drop.drop_table.name, "Emp");
}

TEST(StatementParserTest, SelectPassesThrough) {
  ASSERT_OK_AND_ASSIGN(sql::Statement statement,
                       sql::ParseStatement("SELECT R.X FROM R"));
  EXPECT_EQ(statement.kind, sql::Statement::Kind::kSelect);
  ASSERT_NE(statement.select, nullptr);
}

TEST(StatementParserTest, RejectsGarbage) {
  EXPECT_FALSE(sql::ParseStatement("UPDATE T SET x = 1").ok());
  EXPECT_FALSE(sql::ParseStatement("SELECT R.X FROM R WHERE 42").ok());
  EXPECT_FALSE(sql::ParseStatement("SELECT R.X FROM R; SELECT 2").ok());
}

// ------------------------------ Shell ----------------------------------

std::string RunScript(const std::string& script) {
  Shell shell;
  std::istringstream in(script);
  std::ostringstream out;
  shell.Run(in, out, /*interactive=*/false);
  return out.str();
}

TEST(ShellTest, CreateInsertSelectRoundTrip) {
  const std::string out = RunScript(R"(
CREATE TABLE People (NAME STRING, AGE FUZZY);
INSERT INTO People VALUES ('ana', 24);
INSERT INTO People VALUES ('bo', TRAP(20, 25, 30, 35)) DEGREE 0.9;
SELECT NAME FROM People WHERE AGE = "medium young" WITH D >= 0.5;
)");
  EXPECT_NE(out.find("created People"), std::string::npos);
  EXPECT_NE(out.find("'ana' | D=0.8"), std::string::npos);
  EXPECT_NE(out.find("'bo' | D=0.9"), std::string::npos);
}

TEST(ShellTest, MultiLineStatements) {
  const std::string out = RunScript(
      "CREATE TABLE T\n"
      "  (A FUZZY);\n"
      "INSERT INTO T\n"
      "  VALUES (7);\n"
      "SELECT A FROM T;\n");
  EXPECT_NE(out.find("created T"), std::string::npos);
  EXPECT_NE(out.find("[7 | D=1]"), std::string::npos);
}

TEST(ShellTest, DotCommands) {
  const std::string out = RunScript(R"(
CREATE TABLE T (A FUZZY);
.tables
.schema T
.explain on
SELECT A FROM T WHERE A IN (SELECT A FROM T);
)");
  EXPECT_NE(out.find("T (0 tuples)"), std::string::npos);
  EXPECT_NE(out.find("(A FUZZY)"), std::string::npos);
  EXPECT_NE(out.find("-- type N"), std::string::npos);
}

TEST(ShellTest, EngineSwitchAndIdenticalAnswers) {
  const std::string script = R"(
CREATE TABLE R (X FUZZY, Y FUZZY);
CREATE TABLE S (Z FUZZY, V FUZZY);
INSERT INTO R VALUES (1, 5);
INSERT INTO R VALUES (2, 9);
INSERT INTO S VALUES (5, 1);
SELECT X FROM R WHERE Y IN (SELECT Z FROM S);
.engine naive
SELECT X FROM R WHERE Y IN (SELECT Z FROM S);
)";
  const std::string out = RunScript(script);
  // Both engines report the same single answer.
  size_t first = out.find("[1 | D=1]");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(out.find("[1 | D=1]", first + 1), std::string::npos);
  EXPECT_EQ(out.find("[2 |"), std::string::npos);
}

TEST(ShellTest, ErrorsAreReportedNotFatal) {
  const std::string out = RunScript(R"(
SELECT X FROM Nowhere;
CREATE TABLE T (A FUZZY);
INSERT INTO T VALUES (1, 2);
SELECT A FROM T;
)");
  EXPECT_NE(out.find("NotFound"), std::string::npos);
  EXPECT_NE(out.find("InvalidArgument"), std::string::npos);
  // The session kept going.
  EXPECT_NE(out.find("[0 tuples]"), std::string::npos);
}

TEST(ShellTest, SaveAndOpen) {
  const std::string dir = ::testing::TempDir() + "/fuzzydb_shell_db";
  const std::string out = RunScript(
      "CREATE TABLE T (A FUZZY);\n"
      "INSERT INTO T VALUES (42);\n"
      ".save " + dir + "\n");
  EXPECT_NE(out.find("saved"), std::string::npos);

  const std::string out2 = RunScript(
      ".open " + dir + "\nSELECT A FROM T;\n");
  EXPECT_NE(out2.find("[42 | D=1]"), std::string::npos);
}

TEST(ShellTest, QuitStopsSession) {
  const std::string out = RunScript(".quit\n.tables\n");
  EXPECT_EQ(out.find("tuples"), std::string::npos);
}

TEST(ShellTest, CommentsAndBlankLinesIgnored) {
  const std::string out = RunScript(
      "# a comment\n"
      "-- another\n"
      "\n"
      "CREATE TABLE T (A FUZZY);\n");
  EXPECT_NE(out.find("created T"), std::string::npos);
}

}  // namespace
}  // namespace fuzzydb
