#include "engine/explain.h"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>

#include "shell/shell.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  std::string Plan(const std::string& text) {
    auto bound = sql::ParseAndBind(text, catalog_);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound.ok() ? DescribePlan(**bound) : "";
  }

  Catalog catalog_ = testing_util::MakePaperCatalog();
};

TEST_F(ExplainTest, FlatQuery) {
  const std::string plan =
      Plan("SELECT F.NAME FROM F WHERE F.AGE = \"medium young\"");
  EXPECT_NE(plan.find("type FLAT"), std::string::npos);
  EXPECT_NE(plan.find("scan F (4 tuples)"), std::string::npos);
  EXPECT_NE(plan.find("filter: F.AGE ="), std::string::npos);
}

TEST_F(ExplainTest, TypeJNamesTheTheorem) {
  const std::string plan = Plan(
      "SELECT F.NAME FROM F WHERE F.INCOME IN "
      "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)");
  EXPECT_NE(plan.find("type J (Theorem 4.2)"), std::string::npos);
  EXPECT_NE(plan.find("semijoin (IN) on F.INCOME"), std::string::npos);
  EXPECT_NE(plan.find("correlation: M.AGE = outer(1)"), std::string::npos);
}

TEST_F(ExplainTest, JXAndJALL) {
  EXPECT_NE(Plan("SELECT F.NAME FROM F WHERE F.INCOME NOT IN "
                 "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)")
                .find("anti-semijoin (NOT IN)"),
            std::string::npos);
  EXPECT_NE(Plan("SELECT F.NAME FROM F WHERE F.INCOME <= ALL "
                 "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)")
                .find("group-by-min (op ALL)"),
            std::string::npos);
}

TEST_F(ExplainTest, AggregateCountMentionsOuterJoin) {
  const std::string plan = Plan(
      "SELECT F.NAME FROM F WHERE F.INCOME > "
      "(SELECT COUNT(M.INCOME) FROM M WHERE M.AGE = F.AGE)");
  EXPECT_NE(plan.find("Theorem 6.1"), std::string::npos);
  EXPECT_NE(plan.find("left outer join for COUNT"), std::string::npos);
}

TEST_F(ExplainTest, ChainShowsNestedScans) {
  const std::string plan = Plan(
      "SELECT F.NAME FROM F WHERE F.INCOME IN "
      "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE AND M.INCOME IN "
      "(SELECT F.INCOME FROM F WHERE F.AGE = M.AGE))");
  EXPECT_NE(plan.find("type CHAIN (Theorem 8.1)"), std::string::npos);
  // Three scan lines, one per level.
  size_t scans = 0, pos = 0;
  while ((pos = plan.find("scan ", pos)) != std::string::npos) {
    ++scans;
    pos += 5;
  }
  EXPECT_EQ(scans, 3u);
}

TEST_F(ExplainTest, WithThresholdShown) {
  EXPECT_NE(Plan("SELECT F.NAME FROM F WITH D >= 0.5")
                .find("threshold: WITH D >= 0.5"),
            std::string::npos);
}

// ----------------------- EXPLAIN [ANALYZE] -----------------------------

std::string RunShell(const std::string& script) {
  Shell shell;
  std::istringstream in(script);
  std::ostringstream out;
  shell.Run(in, out, /*interactive=*/false);
  return out.str();
}

// Strips the fields a golden comparison may not depend on: wall-clock
// times, per-phase times, and the worker-slot annotation
// (machine-dependent). Which phases appear stays asserted -- the enter
// pattern is deterministic; only the durations vary.
std::string Normalize(const std::string& text) {
  std::string out =
      std::regex_replace(text, std::regex("wall=[0-9]+\\.[0-9]+ms"),
                         "wall=<t>");
  out = std::regex_replace(
      out, std::regex("(plan|filter|sort|window|join|emit)=[0-9.]+ms"),
      "$1=<t>");
  return std::regex_replace(out, std::regex("threads=[0-9]+"), "threads=<n>");
}

constexpr const char* kExplainSetup = R"(
CREATE TABLE R (C0 FUZZY, C1 FUZZY, C2 FUZZY);
CREATE TABLE S (C0 FUZZY, C1 FUZZY);
INSERT INTO R VALUES (1, 10, 3);
INSERT INTO R VALUES (2, 1, 3);
INSERT INTO R VALUES (3, 6, 4);
INSERT INTO S VALUES (5, 3);
INSERT INTO S VALUES (7, 3);
INSERT INTO S VALUES (2, 4);
)";

TEST(ExplainAnalyzeTest, PlainExplainShowsThePlanOnly) {
  const std::string out = RunShell(
      std::string(kExplainSetup) +
      "EXPLAIN SELECT R.C0 FROM R WHERE R.C1 IN (SELECT S.C0 FROM S);\n");
  EXPECT_NE(out.find("-- type N"), std::string::npos);
  EXPECT_NE(out.find("plan:"), std::string::npos);
  // No execution happened.
  EXPECT_EQ(out.find("execution trace:"), std::string::npos);
  EXPECT_EQ(out.find("answer tuple"), std::string::npos);
}

TEST(ExplainAnalyzeTest, TypeJaGolden) {
  const std::string out = RunShell(
      std::string(kExplainSetup) +
      "EXPLAIN ANALYZE SELECT R.C0 FROM R WHERE R.C1 > "
      "(SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C2);\n");

  // The golden tail: classification, plan, per-operator trace with
  // cardinalities and exact counter deltas, and the answer count. Wall
  // times and worker counts are normalized away; every counter is
  // thread-count-invariant (see parallel_test.cc), so this text is
  // stable across machines.
  const std::string kGolden =
      "-- type JA\n"
      "plan: type JA (Theorem 6.1)\n"
      "  scan R (3 tuples)\n"
      "  aggregate pipeline (T1/T2) on R.C1\n"
      "    scan S (3 tuples)\n"
      "    correlation: S.C1 = outer(1)\n"
      "execution trace:\n"
      "evaluate [JA] wall=<t> rows=->2 "
      "cpu={pairs=3 degrees=6 cmp=14 subq=0}\n"
      "  filter [R] wall=<t> rows=3->3 est=3 "
      "cpu={pairs=0 degrees=0 cmp=0 subq=0}\n"
      "  subquery [AGG MAX] wall=<t> rows=3 "
      "cpu={pairs=3 degrees=6 cmp=14 subq=0}\n"
      "    filter [S] wall=<t> rows=3->3 est=3 "
      "cpu={pairs=0 degrees=0 cmp=0 subq=0}\n"
      "    group-aggregate [merge t1=2] wall=<t> rows=3->2 "
      "cpu={pairs=3 degrees=3 cmp=14 subq=0}\n"
      "      interval-sort [col1] wall=<t> rows=3 "
      "cpu={pairs=0 degrees=0 cmp=4 subq=0}\n"
      "  emit wall=<t> rows=3->2 cpu={pairs=0 degrees=0 cmp=0 subq=0}\n"
      "-- 2 answer tuples\n"
      "-- phases=plan=<t> filter=<t> sort=<t> join=<t> emit=<t>\n";

  const std::string normalized = Normalize(out);
  const size_t start = normalized.find("-- type JA");
  ASSERT_NE(start, std::string::npos) << out;
  EXPECT_EQ(normalized.substr(start), kGolden);
}

// Data for the batch-annotation golden: R.C1 values that land inside
// the inner merge window so the batched emit path actually runs.
constexpr const char* kBatchExplainSetup = R"(
CREATE TABLE R (C0 FUZZY, C1 FUZZY, C2 FUZZY);
CREATE TABLE S (C0 FUZZY, C1 FUZZY);
INSERT INTO R VALUES (1, 5, 3);
INSERT INTO R VALUES (2, 7, 3);
INSERT INTO R VALUES (3, 6, 4);
INSERT INTO S VALUES (5, 3);
INSERT INTO S VALUES (7, 3);
INSERT INTO S VALUES (2, 4);
)";

TEST(ExplainAnalyzeTest, BatchAnnotationsGolden) {
  // A local predicate makes the filter batch-eligible and the IN link
  // drives the merge window's batched emit path, so both spans carry
  // the "batches=N rows/batch=M" annotation. The batch counts are
  // thread-count-invariant (batches never span a morsel); the shell
  // runs the default batch_size, so this golden is exact.
  const std::string out = RunShell(
      std::string(kBatchExplainSetup) +
      "EXPLAIN ANALYZE SELECT R.C0 FROM R WHERE R.C0 >= 1 AND "
      "R.C1 IN (SELECT S.C0 FROM S);\n");

  const std::string kGolden =
      "-- type N\n"
      "plan: type N (Theorem 4.1)\n"
      "  scan R (3 tuples)\n"
      "  filter: R.C0 >= 1\n"
      "  semijoin (IN) on R.C1\n"
      "    scan S (3 tuples)\n"
      "execution trace:\n"
      "evaluate [N] wall=<t> rows=->2 "
      "cpu={pairs=2 degrees=5 cmp=17 subq=0}\n"
      "  filter [R] wall=<t> rows=3->3 est=3 batches=1 rows/batch=3 "
      "cpu={pairs=0 degrees=3 cmp=0 subq=0}\n"
      "  subquery [IN] wall=<t> rows=3 "
      "cpu={pairs=2 degrees=2 cmp=17 subq=0}\n"
      "    filter [S] wall=<t> rows=3->3 est=3 "
      "cpu={pairs=0 degrees=0 cmp=0 subq=0}\n"
      "    interval-sort [outer-view col1] wall=<t> rows=3 "
      "cpu={pairs=0 degrees=0 cmp=5 subq=0}\n"
      "    interval-sort [col0] wall=<t> rows=3 "
      "cpu={pairs=0 degrees=0 cmp=3 subq=0}\n"
      "    merge-window [inner=3] wall=<t> rows=3->2 est=3 "
      "batches=1 rows/batch=2 "
      "cpu={pairs=2 degrees=2 cmp=9 subq=0}\n"
      "  emit wall=<t> rows=3->2 cpu={pairs=0 degrees=0 cmp=0 subq=0}\n"
      "-- 2 answer tuples\n"
      "-- phases=plan=<t> filter=<t> sort=<t> window=<t> emit=<t>\n";

  const std::string normalized = Normalize(out);
  const size_t start = normalized.find("-- type N");
  ASSERT_NE(start, std::string::npos) << out;
  EXPECT_EQ(normalized.substr(start), kGolden);
}

TEST(ExplainAnalyzeTest, NaiveEngineTracesToo) {
  const std::string out = RunShell(
      std::string(kExplainSetup) +
      ".engine naive\n"
      "EXPLAIN ANALYZE SELECT R.C0 FROM R WHERE R.C1 > "
      "(SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C2);\n");
  EXPECT_NE(out.find("naive-evaluate [R]"), std::string::npos);
  EXPECT_NE(out.find("-- 2 answer tuples"), std::string::npos);
}

TEST(ExplainAnalyzeTest, RejectsNonSelect) {
  const std::string out =
      RunShell("EXPLAIN CREATE TABLE T (A FUZZY);\n");
  EXPECT_NE(out.find("expected SELECT after EXPLAIN"), std::string::npos);
}

}  // namespace
}  // namespace fuzzydb
