#include "engine/explain.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fuzzydb {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  std::string Plan(const std::string& text) {
    auto bound = sql::ParseAndBind(text, catalog_);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound.ok() ? DescribePlan(**bound) : "";
  }

  Catalog catalog_ = testing_util::MakePaperCatalog();
};

TEST_F(ExplainTest, FlatQuery) {
  const std::string plan =
      Plan("SELECT F.NAME FROM F WHERE F.AGE = \"medium young\"");
  EXPECT_NE(plan.find("type FLAT"), std::string::npos);
  EXPECT_NE(plan.find("scan F (4 tuples)"), std::string::npos);
  EXPECT_NE(plan.find("filter: F.AGE ="), std::string::npos);
}

TEST_F(ExplainTest, TypeJNamesTheTheorem) {
  const std::string plan = Plan(
      "SELECT F.NAME FROM F WHERE F.INCOME IN "
      "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)");
  EXPECT_NE(plan.find("type J (Theorem 4.2)"), std::string::npos);
  EXPECT_NE(plan.find("semijoin (IN) on F.INCOME"), std::string::npos);
  EXPECT_NE(plan.find("correlation: M.AGE = outer(1)"), std::string::npos);
}

TEST_F(ExplainTest, JXAndJALL) {
  EXPECT_NE(Plan("SELECT F.NAME FROM F WHERE F.INCOME NOT IN "
                 "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)")
                .find("anti-semijoin (NOT IN)"),
            std::string::npos);
  EXPECT_NE(Plan("SELECT F.NAME FROM F WHERE F.INCOME <= ALL "
                 "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)")
                .find("group-by-min (op ALL)"),
            std::string::npos);
}

TEST_F(ExplainTest, AggregateCountMentionsOuterJoin) {
  const std::string plan = Plan(
      "SELECT F.NAME FROM F WHERE F.INCOME > "
      "(SELECT COUNT(M.INCOME) FROM M WHERE M.AGE = F.AGE)");
  EXPECT_NE(plan.find("Theorem 6.1"), std::string::npos);
  EXPECT_NE(plan.find("left outer join for COUNT"), std::string::npos);
}

TEST_F(ExplainTest, ChainShowsNestedScans) {
  const std::string plan = Plan(
      "SELECT F.NAME FROM F WHERE F.INCOME IN "
      "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE AND M.INCOME IN "
      "(SELECT F.INCOME FROM F WHERE F.AGE = M.AGE))");
  EXPECT_NE(plan.find("type CHAIN (Theorem 8.1)"), std::string::npos);
  // Three scan lines, one per level.
  size_t scans = 0, pos = 0;
  while ((pos = plan.find("scan ", pos)) != std::string::npos) {
    ++scans;
    pos += 5;
  }
  EXPECT_EQ(scans, 3u);
}

TEST_F(ExplainTest, WithThresholdShown) {
  EXPECT_NE(Plan("SELECT F.NAME FROM F WITH D >= 0.5")
                .find("threshold: WITH D >= 0.5"),
            std::string::npos);
}

}  // namespace
}  // namespace fuzzydb
