// The cross-query cache (src/cache/): correctness under concurrency,
// invalidation, theta-subsumption, budget admission, and fault
// injection. The overriding invariant is the repo-wide one: with the
// cache on, every query must return exactly the tuples and degrees of a
// cache-off run, at every thread count -- the cache may only change wall
// time.
//
// Run this binary under TSan (-DFUZZYDB_SANITIZE=thread) to validate
// the locking; see README.md.
#include "cache/cache_manager.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "sql/binder.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

const char* kTypeJQuery =
    "SELECT R.C0 FROM R WHERE R.C1 IN "
    "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)";

Catalog MakeCatalog(uint64_t seed) {
  Catalog catalog;
  EXPECT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed * 11 + 1, "R", 3, 40)));
  EXPECT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed * 13 + 2, "S", 2, 40)));
  return catalog;
}

/// Runs `query` through the unnesting evaluator with the given cache
/// (null = cache off), thread count, and batch size (0 = scalar path).
Result<Relation> RunQuery(const std::string& query, const Catalog& catalog,
                     CacheManager* cache, size_t threads = 1,
                     QueryContext* context = nullptr,
                     size_t batch_size = 1024) {
  auto bound = sql::ParseAndBind(query, catalog);
  if (!bound.ok()) return bound.status();
  ExecOptions options;
  options.num_threads = threads;
  options.batch_size = batch_size;
  options.cache = cache;
  options.context = context;
  UnnestingEvaluator engine(options);
  return engine.Evaluate(**bound);
}

// ---------------------------------------------------------------------
// CacheManager unit behavior
// ---------------------------------------------------------------------

TEST(CacheManagerTest, CapacityZeroIsCompletelyInert) {
  CacheManager cache;
  EXPECT_FALSE(cache.enabled());
  auto perm = std::make_shared<CacheManager::Permutation>(
      CacheManager::Permutation{0, 1, 2});
  EXPECT_FALSE(cache.InsertPermutation("k", perm, {}, nullptr));
  EXPECT_EQ(cache.LookupPermutation("k"), nullptr);
  std::string path;
  EXPECT_FALSE(cache.LookupSortedFile("f", &path));
  // Nothing is recorded: a cache-off run leaves no metric footprint.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(CacheManagerTest, LruEvictsLeastRecentlyUsed) {
  CacheManager cache;
  cache.set_capacity_bytes(1 << 20);
  auto perm = [](size_t n) {
    auto p = std::make_shared<CacheManager::Permutation>();
    p->resize(n);
    return p;
  };
  // Three entries of ~64KiB each into a 1MiB cache; then shrink so only
  // two fit. "a" is oldest but gets touched, so "b" must go.
  ASSERT_TRUE(cache.InsertPermutation("a", perm(16384), {}, nullptr));
  ASSERT_TRUE(cache.InsertPermutation("b", perm(16384), {}, nullptr));
  ASSERT_TRUE(cache.InsertPermutation("c", perm(16384), {}, nullptr));
  EXPECT_NE(cache.LookupPermutation("a"), nullptr);
  cache.set_capacity_bytes(2 * 70 * 1024);
  EXPECT_NE(cache.LookupPermutation("a"), nullptr);
  EXPECT_EQ(cache.LookupPermutation("b"), nullptr);
  EXPECT_NE(cache.LookupPermutation("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.Clear();
  EXPECT_EQ(cache.used_bytes(), 0u);
  // Stats survive Clear.
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheManagerTest, SysCacheRelationListsEntriesSortedByKey) {
  CacheManager cache;
  cache.set_capacity_bytes(1 << 20);
  auto perm = std::make_shared<CacheManager::Permutation>(
      CacheManager::Permutation{0});
  ASSERT_TRUE(cache.InsertPermutation("zz", perm, {}, nullptr));
  ASSERT_TRUE(cache.InsertPermutation("aa", perm, {}, nullptr));
  const Relation rel = cache.ToRelation();
  ASSERT_EQ(rel.NumTuples(), 2u);
  EXPECT_EQ(rel.tuples()[0].ValueAt(0).AsString(), "aa");
  EXPECT_EQ(rel.tuples()[1].ValueAt(0).AsString(), "zz");
}

// ---------------------------------------------------------------------
// Determinism: warm results == cold results == cache-off results, and
// cache stats are identical at every thread count.
// ---------------------------------------------------------------------

TEST(CacheDeterminismTest, WarmRunsMatchCacheOffAtEveryThreadCount) {
  const Catalog catalog = MakeCatalog(7);
  ASSERT_OK_AND_ASSIGN(Relation expected,
                       RunQuery(kTypeJQuery, catalog, nullptr));

  CacheStats reference;
  bool have_reference = false;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // The batch-kernel knob joins the matrix: cached filter replays,
    // cold batched scans, and the scalar path must agree exactly.
    for (size_t batch_size : {0u, 1u, 7u, 1024u}) {
      const std::string label = "threads=" + std::to_string(threads) +
                                " batch=" + std::to_string(batch_size);
      CacheManager cache;
      cache.set_capacity_bytes(32 << 20);
      ASSERT_OK_AND_ASSIGN(Relation cold,
                           RunQuery(kTypeJQuery, catalog, &cache, threads,
                                    nullptr, batch_size));
      ASSERT_OK_AND_ASSIGN(Relation warm,
                           RunQuery(kTypeJQuery, catalog, &cache, threads,
                                    nullptr, batch_size));
      EXPECT_TRUE(expected.EquivalentTo(cold, 1e-12)) << label;
      EXPECT_TRUE(expected.EquivalentTo(warm, 1e-12)) << label;
      const CacheStats stats = cache.stats();
      EXPECT_GT(stats.hits, 0u) << label;
      EXPECT_GT(stats.inserts, 0u) << label;
      if (!have_reference) {
        reference = stats;
        have_reference = true;
      } else {
        // Cache behavior is part of the determinism contract: the hit,
        // miss, and insert sequence must not depend on the thread count
        // or on the batch size.
        EXPECT_EQ(stats.hits, reference.hits) << label;
        EXPECT_EQ(stats.misses, reference.misses) << label;
        EXPECT_EQ(stats.inserts, reference.inserts) << label;
      }
    }
  }
}

TEST(CacheDeterminismTest, EveryQueryTypeSurvivesAWarmCache) {
  const char* kQueries[] = {
      "SELECT R.C0 FROM R WHERE R.C1 IN (SELECT S.C0 FROM S)",
      kTypeJQuery,
      "SELECT R.C0 FROM R WHERE R.C1 NOT IN "
      "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)",
      "SELECT R.C0 FROM R WHERE R.C1 > (SELECT MAX(S.C0) FROM S)",
      "SELECT R.C0 FROM R WHERE R.C1 > "
      "(SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C2)",
      "SELECT R.C0 FROM R WHERE R.C1 <= ALL "
      "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)",
  };
  const Catalog catalog = MakeCatalog(3);
  CacheManager cache;
  cache.set_capacity_bytes(32 << 20);
  for (const char* query : kQueries) {
    ASSERT_OK_AND_ASSIGN(Relation expected, RunQuery(query, catalog, nullptr));
    // Twice each: the second run exercises the hit paths.
    for (int round = 0; round < 2; ++round) {
      ASSERT_OK_AND_ASSIGN(Relation got, RunQuery(query, catalog, &cache, 4));
      EXPECT_TRUE(expected.EquivalentTo(got, 1e-12))
          << query << " round " << round;
    }
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

// ---------------------------------------------------------------------
// Invalidation on write
// ---------------------------------------------------------------------

TEST(CacheInvalidationTest, VersionKeysMakeStaleHitsImpossible) {
  Catalog catalog = MakeCatalog(11);
  CacheManager cache;
  cache.set_capacity_bytes(32 << 20);
  ASSERT_OK(RunQuery(kTypeJQuery, catalog, &cache).status());

  // Mutate S through the catalog; the version bump alone must keep every
  // subsequent cached read consistent, with no explicit invalidation.
  ASSERT_OK_AND_ASSIGN(Relation * s, catalog.GetMutableRelation("S"));
  ASSERT_OK(s->Append((*s).tuples()[0]));

  NaiveEvaluator naive;
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kTypeJQuery, catalog));
  ASSERT_OK_AND_ASSIGN(Relation expected, naive.Evaluate(*bound));
  ASSERT_OK_AND_ASSIGN(Relation got, RunQuery(kTypeJQuery, catalog, &cache));
  EXPECT_TRUE(expected.EquivalentTo(got, 1e-12));
}

TEST(CacheInvalidationTest, InvalidateRelationFreesDependentEntries) {
  Catalog catalog = MakeCatalog(11);
  CacheManager cache;
  cache.set_capacity_bytes(32 << 20);
  ASSERT_OK(RunQuery(kTypeJQuery, catalog, &cache).status());
  ASSERT_GT(cache.used_bytes(), 0u);

  ASSERT_OK_AND_ASSIGN(const Relation* r, catalog.GetRelation("R"));
  ASSERT_OK_AND_ASSIGN(const Relation* s, catalog.GetRelation("S"));
  cache.InvalidateRelation(r->id());
  cache.InvalidateRelation(s->id());
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_GT(cache.stats().invalidated, 0u);
}

// ---------------------------------------------------------------------
// Theta-subsumption
// ---------------------------------------------------------------------

TEST(CacheThetaSubsumptionTest, LowerThresholdEntryAnswersHigher) {
  const Catalog catalog = MakeCatalog(5);
  const std::string thresholded = std::string(kTypeJQuery) +
                                  " WITH D >= 0.4";
  CacheManager cache;
  cache.set_capacity_bytes(32 << 20);

  // Populate at theta = 0 (no WITH clause), then query at theta = 0.4:
  // the cached general result must be filtered, not recomputed.
  ASSERT_OK(RunQuery(kTypeJQuery, catalog, &cache).status());
  const uint64_t hits_before = cache.stats().hits;
  ASSERT_OK_AND_ASSIGN(Relation got, RunQuery(thresholded, catalog, &cache));
  EXPECT_GT(cache.stats().hits, hits_before);

  ASSERT_OK_AND_ASSIGN(Relation expected,
                       RunQuery(thresholded, catalog, nullptr));
  EXPECT_TRUE(expected.EquivalentTo(got, 1e-12));
}

TEST(CacheThetaSubsumptionTest, HigherThresholdEntryCannotAnswerLower) {
  const Catalog catalog = MakeCatalog(5);
  const std::string thresholded = std::string(kTypeJQuery) +
                                  " WITH D >= 0.4";
  CacheManager cache;
  cache.set_capacity_bytes(32 << 20);

  // Populate at theta = 0.4 first. The later theta = 0 query must not be
  // served from it (tuples below 0.4 are missing there).
  ASSERT_OK(RunQuery(thresholded, catalog, &cache).status());
  ASSERT_OK_AND_ASSIGN(Relation got, RunQuery(kTypeJQuery, catalog, &cache));
  ASSERT_OK_AND_ASSIGN(Relation expected,
                       RunQuery(kTypeJQuery, catalog, nullptr));
  EXPECT_TRUE(expected.EquivalentTo(got, 1e-12));

  // And the general result must now have replaced the thresholded entry:
  // a repeat of either query hits.
  const uint64_t hits_before = cache.stats().hits;
  ASSERT_OK(RunQuery(thresholded, catalog, &cache).status());
  EXPECT_GT(cache.stats().hits, hits_before);
}

// ---------------------------------------------------------------------
// Budget admission
// ---------------------------------------------------------------------

TEST(CacheBudgetTest, DirectDenialIsObservableAndBalanced) {
  CacheManager cache;
  cache.set_capacity_bytes(1 << 20);
  QueryContext query;
  query.memory().set_limit(1);  // denies any non-trivial charge
  auto perm = std::make_shared<CacheManager::Permutation>(
      CacheManager::Permutation{0, 1, 2, 3});
  EXPECT_FALSE(cache.InsertPermutation("k", perm, {}, &query));
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_GE(cache.stats().denied, 1u);
  // Charge/Release are balanced even on the denial path.
  EXPECT_EQ(query.memory().used(), 0u);
  EXPECT_GT(query.memory().denied_bytes(), 0u);
}

TEST(CacheBudgetTest, DeniedInsertNeverFailsTheQuery) {
  const Catalog catalog = MakeCatalog(9);
  CacheManager cache;
  cache.set_capacity_bytes(32 << 20);
  QueryContext query;
  query.memory().set_limit(1);
  ASSERT_OK_AND_ASSIGN(Relation got,
                       RunQuery(kTypeJQuery, catalog, &cache, 1, &query));
  ASSERT_OK_AND_ASSIGN(Relation expected,
                       RunQuery(kTypeJQuery, catalog, nullptr));
  EXPECT_TRUE(expected.EquivalentTo(got, 1e-12));
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_GT(cache.stats().denied, 0u);
  EXPECT_EQ(query.memory().used(), 0u);
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

TEST(CacheFailPointTest, EvictionUnderFaultStaysBalanced) {
  FailPoints::DisarmAll();
  CacheManager cache;
  auto perm = [](size_t n) {
    auto p = std::make_shared<CacheManager::Permutation>();
    p->resize(n);
    return p;
  };
  // Capacity fits two ~64KiB entries; the third insert must evict.
  cache.set_capacity_bytes(2 * 70 * 1024);
  ASSERT_TRUE(cache.InsertPermutation("a", perm(16384), {}, nullptr));
  ASSERT_TRUE(cache.InsertPermutation("b", perm(16384), {}, nullptr));

  FailPoints::Arm("cache/evict", /*failures=*/1);
  // The eviction completes (LRU "a" leaves, bytes balanced); the insert
  // in flight is abandoned.
  EXPECT_FALSE(cache.InsertPermutation("c", perm(16384), {}, nullptr));
  FailPoints::DisarmAll();

  EXPECT_EQ(cache.LookupPermutation("a"), nullptr);
  EXPECT_EQ(cache.LookupPermutation("c"), nullptr);
  EXPECT_NE(cache.LookupPermutation("b"), nullptr);
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  // Zero-leak: dropping everything returns the accounting to zero.
  cache.Clear();
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(CacheFailPointTest, SortedFileInsertUnderFaultLeavesNoFile) {
  FailPoints::DisarmAll();
  CacheManager cache;
  cache.set_capacity_bytes(1 << 20);
  const std::string path =
      ::testing::TempDir() + "/fuzzydb_cache_sorted_run";
  {
    std::ofstream file(path);
    file << "sorted payload";
  }
  FailPoints::Arm("cache/insert", /*failures=*/1);
  // The cache takes the file (rename) before admission runs; on the
  // injected fault it deletes its copy and reports the path consumed.
  EXPECT_TRUE(cache.InsertSortedFile("srun|x", path, 4096, nullptr));
  FailPoints::DisarmAll();

  std::string cached_path;
  EXPECT_FALSE(cache.LookupSortedFile("srun|x", &cached_path));
  EXPECT_EQ(cache.used_bytes(), 0u);
  std::ifstream gone(path);
  EXPECT_FALSE(gone.good()) << "original path should be consumed";
}

TEST(CacheFailPointTest, ClearUnlinksCachedSortedFiles) {
  CacheManager cache;
  cache.set_capacity_bytes(1 << 20);
  const std::string path =
      ::testing::TempDir() + "/fuzzydb_cache_sorted_run2";
  {
    std::ofstream file(path);
    file << "sorted payload";
  }
  ASSERT_TRUE(cache.InsertSortedFile("srun|y", path, 4096, nullptr));
  std::string cached_path;
  ASSERT_TRUE(cache.LookupSortedFile("srun|y", &cached_path));
  {
    std::ifstream present(cached_path);
    ASSERT_TRUE(present.good());
  }
  cache.Clear();
  std::ifstream gone(cached_path);
  EXPECT_FALSE(gone.good()) << "Clear() must unlink cache-owned files";
}

}  // namespace
}  // namespace fuzzydb
