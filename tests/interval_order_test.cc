#include "fuzzy/interval_order.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace fuzzydb {
namespace {

TEST(IntervalOrderTest, PaperExample31) {
  // Example 3.1: r1.X, r2.X, r3.X represent [30,35], [20,28], [20,35];
  // s1.X, s2.X, s3.X represent [32,34], [20,25], [30,40].
  const Trapezoid r1 = Trapezoid::Interval(30, 35);
  const Trapezoid r2 = Trapezoid::Interval(20, 28);
  const Trapezoid r3 = Trapezoid::Interval(20, 35);
  // [20,28] < [20,35] < [30,35]  =>  r2 < r3 < r1.
  EXPECT_TRUE(IntervalOrderLess(r2, r3));
  EXPECT_TRUE(IntervalOrderLess(r3, r1));
  EXPECT_TRUE(IntervalOrderLess(r2, r1));
  EXPECT_FALSE(IntervalOrderLess(r1, r3));

  const Trapezoid s1 = Trapezoid::Interval(32, 34);
  const Trapezoid s2 = Trapezoid::Interval(20, 25);
  const Trapezoid s3 = Trapezoid::Interval(30, 40);
  // s2 < s3 < s1.
  EXPECT_TRUE(IntervalOrderLess(s2, s3));
  EXPECT_TRUE(IntervalOrderLess(s3, s1));
}

TEST(IntervalOrderTest, TiesOnBeginBreakOnEnd) {
  const Trapezoid narrow = Trapezoid::Interval(10, 12);
  const Trapezoid wide = Trapezoid::Interval(10, 20);
  EXPECT_TRUE(IntervalOrderLess(narrow, wide));
  EXPECT_FALSE(IntervalOrderLess(wide, narrow));
  EXPECT_EQ(CompareIntervalOrder(narrow, narrow), 0);
}

TEST(IntervalOrderTest, CrispValuesOrderAsNumbers) {
  EXPECT_TRUE(IntervalOrderLess(Trapezoid::Crisp(3), Trapezoid::Crisp(4)));
  EXPECT_FALSE(IntervalOrderLess(Trapezoid::Crisp(4), Trapezoid::Crisp(3)));
  EXPECT_EQ(CompareIntervalOrder(Trapezoid::Crisp(4), Trapezoid::Crisp(4)), 0);
}

TEST(IntervalOrderTest, IsStrictWeakOrdering) {
  Rng rng(7);
  std::vector<Trapezoid> values;
  for (int i = 0; i < 50; ++i) {
    double c[4];
    for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 20));
    std::sort(c, c + 4);
    values.push_back(Trapezoid(c[0], c[1], c[2], c[3]));
  }
  // Irreflexivity and asymmetry.
  for (const auto& x : values) {
    EXPECT_FALSE(IntervalOrderLess(x, x));
    for (const auto& y : values) {
      if (IntervalOrderLess(x, y)) EXPECT_FALSE(IntervalOrderLess(y, x));
      // Transitivity.
      for (const auto& z : values) {
        if (IntervalOrderLess(x, y) && IntervalOrderLess(y, z)) {
          EXPECT_TRUE(IntervalOrderLess(x, z));
        }
      }
    }
  }
}

TEST(IntervalOrderTest, SupportsIntersect) {
  EXPECT_TRUE(SupportsIntersect(Trapezoid::Interval(0, 5),
                                Trapezoid::Interval(5, 10)));
  EXPECT_FALSE(SupportsIntersect(Trapezoid::Interval(0, 5),
                                 Trapezoid::Interval(6, 10)));
  EXPECT_TRUE(SupportsIntersect(Trapezoid::Interval(0, 10),
                                Trapezoid::Crisp(7)));
}

TEST(IntervalOrderTest, SupportEntirelyBefore) {
  EXPECT_TRUE(SupportEntirelyBefore(Trapezoid::Interval(0, 5),
                                    Trapezoid::Interval(6, 10)));
  EXPECT_FALSE(SupportEntirelyBefore(Trapezoid::Interval(0, 5),
                                     Trapezoid::Interval(5, 10)));
  EXPECT_FALSE(SupportEntirelyBefore(Trapezoid::Interval(6, 10),
                                     Trapezoid::Interval(0, 5)));
}

TEST(IntervalOrderTest, ZeroEqualityDegreeOutsideIntersection) {
  // "For any two values a and b, d(a = b) = 0 if their intervals do not
  // intersect" -- the property that makes the merge-join window sound.
  const Trapezoid a = Trapezoid::Interval(0, 5);
  const Trapezoid b = Trapezoid::Interval(6, 10);
  EXPECT_FALSE(SupportsIntersect(a, b));
}

}  // namespace
}  // namespace fuzzydb
